"""Tests for the ablation switches on the deployment/validator."""


from repro.api import Jury
from repro.config import JuryConfig


def drive(experiment, count=4):
    hosts = experiment.topology.host_list()
    for i in range(count):
        experiment.sim.schedule(i * 40.0, hosts[i % len(hosts)].open_connection,
                                hosts[(i + 3) % len(hosts)])
    experiment.run(1500.0)


def test_taint_classification_flag_controls_external_detection():
    """Without taint-based classification, a trigger is external only once
    its response count exceeds k+2 — tainted singletons decide as internal."""
    exp = Jury.experiment(JuryConfig(kind="onos", n=5, k=4, switches=8, seed=180,
                           timeout_ms=250.0, taint_classification=False))
    exp.warmup()
    drive(exp)
    validator = exp.validator
    # Full-count triggers (2k+2 > k+2) still classify as external.
    full = [r for r in validator.results if not r.timed_out and r.external]
    assert full
    # But LLDP-style triggers with only k tainted replica results (k <= k+2)
    # now decide as internal — classification lost its taint signal.
    small = [r for r in validator.results
             if r.timed_out and r.n_responses <= validator.k + 2]
    assert small
    assert any(not r.external for r in small)


def test_taint_classification_default_uses_taint():
    exp = Jury.experiment(JuryConfig(kind="onos", n=5, k=4, switches=8, seed=180,
                           timeout_ms=250.0, taint_classification=True))
    exp.warmup()
    drive(exp)
    validator = exp.validator
    # With taint classification every replicated trigger counts as external,
    # even those with few responses.
    small_external = [r for r in validator.results
                      if r.n_responses <= validator.k + 2 and r.external]
    assert small_external


def test_state_aware_flag_passthrough():
    exp = Jury.experiment(JuryConfig(kind="onos", n=3, k=2, switches=4, seed=181,
                           state_aware=False, timeout_ms=200.0))
    assert exp.validator.state_aware is False
    exp = Jury.experiment(JuryConfig(kind="onos", n=3, k=2, switches=4, seed=181, timeout_ms=200.0))
    assert exp.validator.state_aware is True


def test_warmup_without_arp_learns_no_hosts():
    exp = Jury.experiment(JuryConfig(kind="onos", n=3, k=None, switches=4, seed=182, timeout_ms=200.0))
    exp.warmup(arp=False)
    c1 = exp.cluster.controller("c1")
    assert len(c1.store.entries("HostsDB")) == 0
    # Topology discovery still happened.
    assert len(c1.store.entries("EdgesDB")) > 0
