"""Tests for the experiment harness, metrics, and reporting."""

import pytest

from repro.errors import WorkloadError
from repro.api import Jury
from repro.config import JuryConfig
from repro.harness.experiment import DetectionStats
from repro.harness.metrics import cdf_points, mbps, percentile
from repro.harness.reporting import format_series, format_table


def test_percentile_basics():
    samples = list(range(1, 101))
    assert percentile(samples, 0.0) == 1
    assert percentile(samples, 1.0) == 100
    assert abs(percentile(samples, 0.5) - 50.5) < 1.0
    assert abs(percentile(samples, 0.95) - 95.05) < 1.0


def test_percentile_single_sample():
    assert percentile([7.0], 0.5) == 7.0


def test_percentile_errors():
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


def test_percentile_boundaries_are_min_and_max():
    # Linear interpolation between closest ranks: q=0 and q=1 hit the
    # extremes exactly, regardless of sample order.
    samples = [9.0, 3.0, 41.0, 7.0]
    assert percentile(samples, 0.0) == 3.0
    assert percentile(samples, 1.0) == 41.0


def test_percentile_single_sample_any_q():
    for q in (0.0, 0.25, 0.5, 0.99, 1.0):
        assert percentile([42.0], q) == 42.0


def test_percentile_interpolates_between_ranks():
    # Two samples: q=0.5 must land exactly halfway — interpolation, not
    # nearest-rank (which would return one of the samples).
    assert percentile([10.0, 20.0], 0.5) == 15.0
    assert percentile([10.0, 20.0], 0.25) == 12.5


def test_percentile_duplicated_values():
    samples = [5.0, 5.0, 5.0, 5.0]
    for q in (0.0, 0.3, 0.5, 1.0):
        assert percentile(samples, q) == 5.0
    # A run of duplicates anchors the quantiles that fall inside it.
    samples = [1.0, 2.0, 2.0, 2.0, 3.0]
    assert percentile(samples, 0.5) == 2.0
    assert percentile(samples, 0.25) == 2.0


def test_cdf_points_monotonic():
    points = cdf_points([5.0, 1.0, 3.0, 2.0, 4.0])
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    assert xs == sorted(xs)
    assert ys == sorted(ys)
    assert ys[-1] == 1.0


def test_cdf_points_downsamples():
    points = cdf_points(list(range(1000)), points=50)
    assert len(points) == 50


def test_cdf_points_empty():
    assert cdf_points([]) == []


def test_mbps():
    assert mbps(125_000, 1000.0) == pytest.approx(1.0)
    assert mbps(100, 0.0) == 0.0


def test_format_table_alignment():
    text = format_table("Title", ["a", "bb"], [[1, 2.5], ["xx", "y"]])
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert "a" in lines[2]
    assert "2.50" in lines[3]


def test_format_series():
    text = format_series("Fig", [(1, 2.0), (3, 4.0)], "x", "y")
    assert "Fig" in text
    assert "4.00" in text


def test_detection_stats_properties():
    stats = DetectionStats(samples=[10.0, 20.0, 30.0, 40.0], timeouts=2)
    assert stats.count == 4
    assert stats.median == 25.0
    assert stats.p95 > stats.median
    assert stats.timeouts == 2
    empty = DetectionStats(samples=[], timeouts=0)
    assert empty.median == 0.0


def test_experiment_vanilla_has_no_jury():
    exp = Jury.experiment(JuryConfig(kind="onos", n=2, switches=2, seed=1, k=None, timeout_ms=200.0))
    assert exp.jury is None
    with pytest.raises(WorkloadError):
        _ = exp.validator
    with pytest.raises(WorkloadError):
        exp.detection_stats()


def test_experiment_rejects_unknowns():
    with pytest.raises(WorkloadError):
        Jury.experiment(JuryConfig(kind="floodlight", k=None, timeout_ms=200.0))
    with pytest.raises(WorkloadError):
        Jury.experiment(JuryConfig(topology="torus", k=None, timeout_ms=200.0))


def test_three_tier_experiment_builds():
    exp = Jury.experiment(JuryConfig(kind="onos", n=3, topology="three_tier", seed=2, k=None, timeout_ms=200.0))
    assert len(exp.topology.switches) == 14


def test_throughput_requires_window():
    exp = Jury.experiment(JuryConfig(kind="onos", n=2, switches=2, seed=3, k=None, timeout_ms=200.0))
    with pytest.raises(WorkloadError):
        exp.throughput()
    exp.warmup()
    exp.begin_window()
    exp.run(100.0)
    point = exp.throughput()
    assert point.window_ms == pytest.approx(100.0)


def test_overhead_mbps_reports_jury_counters():
    exp = Jury.experiment(JuryConfig(kind="onos", n=3, k=2, switches=4, seed=4, timeout_ms=200.0))
    exp.warmup()
    exp.begin_window()
    hosts = exp.topology.host_list()
    hosts[0].open_connection(hosts[2])
    exp.run(500.0)
    overheads = exp.overhead_mbps()
    assert set(overheads) == {"inter_controller", "replication", "validator"}
    assert overheads["replication"] > 0


def test_profile_overrides_applied():
    exp = Jury.experiment(JuryConfig(kind="onos", n=2, switches=2, seed=5,
                           profile_overrides=(("lldp_period_ms", 123.0),), k=None, timeout_ms=200.0))
    controller = exp.cluster.controller("c1")
    assert controller.profile.lldp_period_ms == 123.0
