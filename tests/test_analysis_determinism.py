"""D-rules: nondeterminism sources (wall clock, RNG, id(), sets, threads)."""

import textwrap

from repro.analysis import Analyzer


def _rules(source, path="src/example.py"):
    findings = Analyzer().analyze_source(textwrap.dedent(source), path=path)
    return [f.rule_id for f in findings]


def _findings(source, path="src/example.py"):
    return Analyzer().analyze_source(textwrap.dedent(source), path=path)


# ----------------------------------------------------------------------
# D101 — wall clock
# ----------------------------------------------------------------------

def test_d101_flags_time_time():
    src = """
    import time

    def handler():
        return time.time()
    """
    assert "D101" in _rules(src)


def test_d101_flags_datetime_now():
    src = """
    import datetime

    def handler():
        return datetime.datetime.now()
    """
    assert "D101" in _rules(src)


def test_d101_anchor_points_at_the_call():
    findings = [f for f in _findings("""
    import time

    def handler():
        return time.perf_counter()
    """) if f.rule_id == "D101"]
    assert findings[0].line == 5
    assert findings[0].symbol == "handler"


def test_d101_ignores_sim_now():
    src = """
    def handler(sim):
        return sim.now
    """
    assert "D101" not in _rules(src)


# ----------------------------------------------------------------------
# D102 — global RNG
# ----------------------------------------------------------------------

def test_d102_flags_module_level_random():
    src = """
    import random

    def jitter():
        return random.random() + random.gauss(0.0, 1.0)
    """
    assert _rules(src).count("D102") == 2


def test_d102_allows_seeded_instances():
    src = """
    import random

    def make_rng(seed):
        rng = random.Random(seed)
        return rng.random()
    """
    assert "D102" not in _rules(src)


# ----------------------------------------------------------------------
# D103 — id() keys
# ----------------------------------------------------------------------

def test_d103_flags_id_keys():
    src = """
    def track(channel, seen):
        seen.add(id(channel))
    """
    assert "D103" in _rules(src)


def test_d103_ignores_custom_id_attributes():
    src = """
    def track(channel, seen):
        seen.add(channel.uid)
    """
    assert "D103" not in _rules(src)


# ----------------------------------------------------------------------
# D104 — set iteration
# ----------------------------------------------------------------------

def test_d104_flags_iterating_a_local_set():
    src = """
    def flood(ports_a, ports_b):
        fabric = set(ports_a) | set(ports_b)
        chosen = set(ports_a)
        out = []
        for port in chosen:
            out.append(port)
        return out
    """
    assert "D104" in _rules(src)


def test_d104_flags_inline_set_comprehension_iteration():
    src = """
    def responders(responses):
        return [cid for cid in {r.controller_id for r in responses}]
    """
    assert "D104" in _rules(src)


def test_d104_allows_sorted_iteration():
    src = """
    def flood(ports_a):
        chosen = set(ports_a)
        return [port for port in sorted(chosen)]
    """
    assert "D104" not in _rules(src)


def test_d104_allows_membership_tests():
    src = """
    def flood(all_ports, fabric_list):
        fabric = set(fabric_list)
        return [p for p in all_ports if p not in fabric]
    """
    assert "D104" not in _rules(src)


def test_d104_flags_tuple_conversion_of_set():
    src = """
    def snapshot(items):
        pending = set(items)
        return tuple(pending)
    """
    assert "D104" in _rules(src)


# ----------------------------------------------------------------------
# D105 — threads
# ----------------------------------------------------------------------

def test_d105_flags_thread_spawn():
    src = """
    import threading

    def start(worker):
        threading.Thread(target=worker).start()
    """
    assert "D105" in _rules(src)


def test_d105_ignores_sim_schedule():
    src = """
    def start(sim, worker):
        sim.schedule(5.0, worker)
    """
    assert "D105" not in _rules(src)
