"""Unit tests for the sharded validation pipeline internals."""

from __future__ import annotations

import pytest

from repro.core.alarms import (
    Alarm,
    AlarmReason,
    alarm_merge_key,
    canonical_alarm_stream,
)
from repro.core.pipeline import ValidationPipeline, shard_of
from repro.core.timeouts import StaticTimeout
from repro.harness.bench import compare, synthetic_validation_workload
from repro.api import Jury
from repro.config import JuryConfig
from repro.sim.simulator import Simulator
from repro.workloads.traffic import TrafficDriver


def make_pipeline(sim, k=6, **kwargs):
    kwargs.setdefault("timeout", StaticTimeout(10_000.0))
    return ValidationPipeline(sim, k, **kwargs)


# ----------------------------------------------------------------------
# Shard routing
# ----------------------------------------------------------------------

def test_shard_of_is_stable_and_in_range():
    taus = [("ext", i) for i in range(500)] + \
           [("int", f"c{i % 5}", i) for i in range(500)]
    for shards in (1, 2, 4, 8):
        first = [shard_of(tau, shards) for tau in taus]
        second = [shard_of(tau, shards) for tau in taus]
        assert first == second
        assert all(0 <= s < shards for s in first)


def test_shard_of_spreads_triggers():
    counts = [0, 0, 0, 0]
    for i in range(4000):
        counts[shard_of(("ext", i), 4)] += 1
    # CRC-32 of distinct reprs should land far from degenerate: every
    # shard sees a substantial share of a uniform id space.
    assert min(counts) > 500


def test_all_responses_of_a_trigger_share_a_shard():
    workload = synthetic_validation_workload(triggers=200, k=3, seed=5)
    sim = Simulator(seed=0)
    pipeline = make_pipeline(sim, k=3, shards=4)
    for responses in workload:
        for response in responses:
            pipeline.ingest(response)
    pipeline.drain()
    # Every trigger decided at the full 2k+2 count proves no trigger's
    # responses split across shards (a split would force timeouts).
    assert pipeline.triggers_decided == 200
    assert all(r.n_responses == 2 * 3 + 2 for r in pipeline.results)


# ----------------------------------------------------------------------
# Backpressure and overflow accounting
# ----------------------------------------------------------------------

def test_tiny_queue_drops_nothing():
    workload = synthetic_validation_workload(triggers=300, k=3, seed=9)
    sim = Simulator(seed=0)
    pipeline = make_pipeline(sim, k=3, shards=2, queue_capacity=4,
                             batch_max=8)
    for responses in workload:
        for response in responses:
            pipeline.ingest(response)
    pipeline.drain()
    stats = pipeline.stats
    assert pipeline.triggers_decided == 300
    assert stats.total("enqueued") == 300 * (2 * 3 + 2)
    assert stats.total("processed") == stats.total("enqueued")
    assert stats.total("overflow_enqueued") == stats.total("overflow_drained")
    assert stats.total("overflow_enqueued") > 0, \
        "capacity 4 must overflow under this load"
    assert stats.total("backpressure_events") > 0


def test_queue_high_water_respects_capacity():
    workload = synthetic_validation_workload(triggers=100, k=3, seed=2)
    sim = Simulator(seed=0)
    pipeline = make_pipeline(sim, k=3, shards=2, queue_capacity=16)
    for responses in workload:
        for response in responses:
            pipeline.ingest(response)
    pipeline.drain()
    snapshot = pipeline.stats.snapshot()
    assert snapshot["aggregate"]["queue_high_water"] <= 16


def test_constructor_validation():
    sim = Simulator(seed=0)
    with pytest.raises(ValueError):
        ValidationPipeline(sim, 4, shards=0)
    with pytest.raises(ValueError):
        ValidationPipeline(sim, 4, queue_capacity=0)
    with pytest.raises(ValueError):
        ValidationPipeline(sim, 4, batch_max=0)


# ----------------------------------------------------------------------
# Deterministic merge order
# ----------------------------------------------------------------------

def test_alarm_merge_order_is_time_then_trigger_id():
    def alarm(tau, at):
        return Alarm(trigger_id=tau, reason=AlarmReason.CONSENSUS_MISMATCH,
                     offending_controller="c1", raised_at=at)

    alarms = [alarm(("ext", 12), 5.0), alarm(("ext", 2), 5.0),
              alarm(("ext", 30), 1.0), alarm(("int", "c1", 3), 5.0)]
    ordered = sorted(alarms, key=alarm_merge_key)
    assert [a.raised_at for a in ordered] == [1.0, 5.0, 5.0, 5.0]
    # At equal time, repr order of the trigger id breaks the tie.
    assert [a.trigger_id for a in ordered[1:]] == \
        sorted([a.trigger_id for a in ordered[1:]], key=repr)
    # The canonical stream is invariant under emission-order permutations.
    assert canonical_alarm_stream(alarms) == canonical_alarm_stream(
        list(reversed(alarms)))


def test_pipeline_alarms_property_is_merge_ordered():
    workload = synthetic_validation_workload(triggers=400, k=3, seed=3,
                                             fault_rate=0.2)
    sim = Simulator(seed=0)
    pipeline = make_pipeline(sim, k=3, shards=4)
    for responses in workload:
        for response in responses:
            pipeline.ingest(response)
    pipeline.drain()
    assert pipeline.triggers_alarmed > 0
    keys = [alarm_merge_key(a) for a in pipeline.alarms]
    assert keys == sorted(keys)


# ----------------------------------------------------------------------
# Ψid merged view
# ----------------------------------------------------------------------

def test_merged_view_matches_shared_view():
    workload = synthetic_validation_workload(triggers=300, k=4, seed=6)
    sim = Simulator(seed=0)
    pipeline = make_pipeline(sim, k=4, shards=4)
    for responses in workload:
        for response in responses:
            pipeline.ingest(response)
    pipeline.drain()
    merged = pipeline.merged_view()
    assert set(merged) == set(pipeline.state)
    for cid, entry in merged.items():
        shared = pipeline.state[cid]
        assert entry.digest_progress == shared.digest_progress
        assert entry.cache_updates == shared.cache_updates


# ----------------------------------------------------------------------
# Validator API parity behind the deployment
# ----------------------------------------------------------------------

def test_config_pipeline_experiment_is_drop_in():
    experiment = Jury.experiment(JuryConfig(kind="onos", n=5, k=4, switches=6,
                                  seed=13, timeout_ms=250.0, pipeline=2))
    experiment.warmup()
    assert isinstance(experiment.validator, ValidationPipeline)
    driver = TrafficDriver(experiment.sim, experiment.topology,
                           packet_in_rate_per_s=300.0, duration_ms=300.0)
    driver.start()
    experiment.begin_window()
    experiment.run(300.0 + 1000.0)
    validator = experiment.validator
    assert validator.triggers_decided > 0
    assert validator.false_positive_rate() == 0.0
    assert validator.detection_times()
    # The harness-facing summary helpers work unchanged.
    stats = experiment.detection_stats()
    assert stats.count > 0
    assert validator.pending_count == 0


def test_pipeline_on_alarm_callback_fires():
    workload = synthetic_validation_workload(triggers=50, k=3, seed=8,
                                             fault_rate=1.0)
    sim = Simulator(seed=0)
    pipeline = make_pipeline(sim, k=3, shards=2)
    seen = []
    pipeline.on_alarm = seen.append
    for responses in workload:
        for response in responses:
            pipeline.ingest(response)
    pipeline.drain()
    assert len(seen) == len(pipeline.alarms) > 0


# ----------------------------------------------------------------------
# Bench harness smoke
# ----------------------------------------------------------------------

def test_bench_compare_smoke():
    payload = compare(triggers=400, k=4, seed=1, shards=2, chunk=32)
    assert payload["benchmark"] == "validator_pipeline"
    assert payload["alarm_streams_identical"] is True
    assert payload["sequential"]["decided"] == 400
    assert payload["pipeline"]["decided"] == 400
    assert payload["sequential"]["ops_per_s"] > 0
    assert payload["pipeline"]["ops_per_s"] > 0
    assert payload["speedup"] > 0
