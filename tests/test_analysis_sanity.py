"""S-rules: static analog of the T2 network/cache sanity pairing."""

import textwrap

from repro.analysis import Analyzer

APP_PATH = "src/repro/controllers/apps/example.py"


def _rules(source, path=APP_PATH):
    findings = Analyzer().analyze_source(textwrap.dedent(source), path=path)
    return [f.rule_id for f in findings]


# ----------------------------------------------------------------------
# S301 — FLOW_MOD with no cache pairing
# ----------------------------------------------------------------------

def test_s301_flags_flow_mod_without_cache_write():
    src = """
    class BadApp:
        def handle_packet_in(self, message, ctx):
            self.controller.send_flow_mod(message, ctx)
            return True
    """
    assert "S301" in _rules(src)


def test_s301_satisfied_by_cache_write():
    src = """
    class GoodApp:
        def handle_packet_in(self, message, ctx):
            self.controller.cache_write("FlowsDB", "k", "v", ctx=ctx)
            self.controller.send_flow_mod(message, ctx)
            return True
    """
    assert "S301" not in _rules(src)


def test_s301_satisfied_by_cache_delete():
    src = """
    class GoodApp:
        def delete_flow(self, dpid, key, ctx):
            self.controller.cache_delete("FlowsDB", key, ctx=ctx)
            self.controller.send_flow_mod(dpid, ctx)
    """
    assert "S301" not in _rules(src)


def test_s301_exempts_on_cache_event():
    # Remote-master pattern: the peer's cache write is the justification.
    src = """
    class GoodApp:
        def on_cache_event(self, event):
            self.controller.send_flow_mod(event, None)
    """
    assert "S301" not in _rules(src)


def test_s301_ignores_packet_out_only_handlers():
    # PACKET_OUTs have no cache footprint by design (§V).
    src = """
    class GoodApp:
        def handle_packet_in(self, message, ctx):
            self.controller.send_packet_out(message, ctx)
            return True
    """
    assert "S301" not in _rules(src)


# ----------------------------------------------------------------------
# S302 — flow-cache write with no emission path
# ----------------------------------------------------------------------

def test_s302_flags_flowsdb_write_without_emission():
    src = """
    class BadApp:
        def handle_packet_in(self, message, ctx):
            self.controller.cache_write(FLOWSDB, "k", "v", ctx=ctx)
            return True
    """
    assert "S302" in _rules(src)


def test_s302_satisfied_by_any_network_emitter():
    src = """
    class GoodApp:
        def handle_packet_in(self, message, ctx):
            self.controller.cache_write(FLOWSDB, "k", "v", ctx=ctx)
            self.controller.send_flow_mod(message, ctx)
            return True
    """
    assert "S302" not in _rules(src)


def test_s302_ignores_non_flow_caches():
    # Host learning writes HostsDB; no FLOW_MOD promise is made.
    src = """
    class GoodApp:
        def handle_packet_in(self, message, ctx):
            self.controller.cache_write(HOSTSDB, "k", "v", ctx=ctx)
            return True
    """
    assert "S302" not in _rules(src)


def test_s302_only_examines_handler_entry_points():
    # Reconciliation helpers legitimately refresh FlowsDB without emitting.
    src = """
    class GoodApp:
        def _reconcile(self, key, value, ctx):
            self.controller.cache_write(FLOWSDB, key, value, ctx=ctx)
    """
    assert "S302" not in _rules(src)


def test_shipped_apps_are_sanity_clean():
    report = Analyzer().analyze_paths(["src/repro/controllers/apps"])
    sanity = [f for f in report.findings if f.family == "S"]
    assert sanity == []
