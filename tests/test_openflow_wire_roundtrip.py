"""Property-based encode/decode roundtrips for the OpenFlow wire format.

The fuzz PR's satellite contract: *any* message the repro can construct
must survive ``wire.encode`` → ``wire.decode`` unchanged, and any Match
must survive ``canonical()`` → ``from_canonical()``. Hypothesis drives the
construction; explicit regression tests pin the framing bugs the sweep
found (a header ``length`` shorter than the header itself used to slice
already-consumed bytes back into the remainder, fabricating phantom
messages in ``decode_all``; out-of-range xids used to be silently masked)
and the deliberate canonical collapse of reserved-port outputs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OpenFlowError
from repro.net.packet import EtherType, IpProto, LldpPayload, Packet
from repro.openflow import wire
from repro.openflow.actions import (
    ActionController,
    ActionDrop,
    ActionFlood,
    ActionOutput,
)
from repro.openflow.constants import (
    OFPP_CONTROLLER,
    OFPP_FLOOD,
    FlowModCommand,
)
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    Hello,
    PacketIn,
    PacketOut,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

xids = st.integers(min_value=0, max_value=0xFFFFFFFF)
dpids = st.integers(min_value=1, max_value=4096)
ports = st.integers(min_value=1, max_value=0xFF00)
macs = st.from_regex(r"[0-9a-f]{2}(:[0-9a-f]{2}){5}", fullmatch=True)
ips = st.from_regex(r"10\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})", fullmatch=True)

# Reserved ports decode back as their dedicated action classes by design,
# so the generic output strategy avoids them (the collapse is pinned in
# test_reserved_port_outputs_collapse_to_dedicated_actions).
plain_output_ports = ports.filter(
    lambda p: p not in (OFPP_FLOOD, OFPP_CONTROLLER))

actions = st.lists(
    st.one_of(
        st.builds(ActionOutput, port=plain_output_ports),
        st.just(ActionFlood()),
        st.just(ActionController()),
        st.just(ActionDrop()),
    ),
    max_size=4).map(tuple)


@st.composite
def matches(draw):
    """Arbitrary (not necessarily hierarchy-valid) OpenFlow 1.0 matches."""
    return Match(
        in_port=draw(st.none() | ports),
        dl_src=draw(st.none() | macs),
        dl_dst=draw(st.none() | macs),
        dl_type=draw(st.none() | st.sampled_from(
            [int(EtherType.IPV4), int(EtherType.ARP), int(EtherType.LLDP)])),
        nw_src=draw(st.none() | ips),
        nw_dst=draw(st.none() | ips),
        nw_proto=draw(st.none() | st.sampled_from(
            [int(IpProto.ICMP), int(IpProto.TCP), int(IpProto.UDP)])),
        tp_src=draw(st.none() | ports),
        tp_dst=draw(st.none() | ports),
    )


lldp_payloads = st.builds(LldpPayload, src_dpid=dpids, src_port=ports,
                          controller_id=st.none() | st.just("c1"))
# The wire format serializes scalar payloads and LLDP TLVs; NaN is excluded
# because it never compares equal to itself.
payloads = st.one_of(
    st.none(),
    st.text(max_size=12),
    st.integers(min_value=-2**31, max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    lldp_payloads,
)


@st.composite
def packets(draw):
    has_ip = draw(st.booleans())
    ip_proto = draw(st.none() | st.sampled_from(list(IpProto))) \
        if has_ip else None
    return Packet(
        src_mac=draw(macs),
        dst_mac=draw(macs),
        eth_type=draw(st.sampled_from(list(EtherType))),
        src_ip=draw(ips) if has_ip else None,
        dst_ip=draw(ips) if has_ip else None,
        ip_proto=ip_proto,
        src_port=draw(st.none() | ports) if ip_proto is not None else None,
        dst_port=draw(st.none() | ports) if ip_proto is not None else None,
        payload=draw(payloads),
        size=draw(st.integers(min_value=60, max_value=1514)),
        flow_id=draw(st.none() | st.integers(min_value=0, max_value=2**31)),
    )


@st.composite
def messages(draw):
    klass = draw(st.sampled_from(
        [Hello, EchoRequest, EchoReply, FeaturesRequest, FeaturesReply,
         PacketIn, PacketOut, FlowMod, BarrierRequest, BarrierReply]))
    xid = draw(xids)
    if klass is FeaturesReply:
        return FeaturesReply(dpid=draw(dpids),
                             ports=tuple(draw(st.lists(ports, max_size=8))),
                             xid=xid)
    if klass is PacketIn:
        return PacketIn(dpid=draw(dpids), in_port=draw(ports),
                        packet=draw(st.none() | packets()),
                        buffer_id=draw(st.none() | st.integers(0, 2**31)),
                        xid=xid)
    if klass is PacketOut:
        return PacketOut(dpid=draw(dpids), in_port=draw(ports),
                         packet=draw(st.none() | packets()),
                         buffer_id=draw(st.none() | st.integers(0, 2**31)),
                         actions=draw(actions), xid=xid)
    if klass is FlowMod:
        return FlowMod(dpid=draw(dpids),
                       command=draw(st.sampled_from(list(FlowModCommand))),
                       match=draw(matches()),
                       actions=draw(actions),
                       priority=draw(st.integers(0, 0xFFFF)),
                       idle_timeout=draw(st.sampled_from(
                           [0.0, 5.0, 10.0, 60.0])),
                       cookie=draw(st.integers(0, 2**63 - 1)),
                       xid=xid)
    return klass(xid=xid)


# ----------------------------------------------------------------------
# Roundtrip properties
# ----------------------------------------------------------------------

@given(messages())
@settings(max_examples=200, deadline=None)
def test_encode_decode_roundtrip(message):
    encoded = wire.encode(message)
    decoded, remainder = wire.decode(encoded)
    assert remainder == b""
    assert decoded == message


@given(st.lists(messages(), min_size=1, max_size=6))
@settings(max_examples=50, deadline=None)
def test_decode_all_roundtrips_concatenated_streams(stream):
    blob = b"".join(wire.encode(m) for m in stream)
    assert wire.decode_all(blob) == stream


@given(matches())
@settings(max_examples=200, deadline=None)
def test_match_canonical_roundtrip(match):
    assert Match.from_canonical(match.canonical()) == match


@given(matches())
@settings(max_examples=100, deadline=None)
def test_match_canonical_is_deterministic_and_hashable(match):
    assert match.canonical() == match.canonical()
    assert hash(Match.from_canonical(match.canonical())) == hash(match)


@given(messages())
@settings(max_examples=100, deadline=None)
def test_header_length_field_is_exact(message):
    encoded = wire.encode(message)
    _, _, length, _ = wire._HEADER.unpack_from(encoded)
    assert length == len(encoded)


# ----------------------------------------------------------------------
# Framing edge cases (regressions found by the roundtrip sweep)
# ----------------------------------------------------------------------

def test_decode_rejects_length_shorter_than_header():
    # A crafted header claiming length < 8 must not fabricate phantom
    # messages by re-serving its own header bytes as the remainder.
    bogus = wire._HEADER.pack(wire.OFP_VERSION, 0, 4, 1)
    with pytest.raises(OpenFlowError):
        wire.decode(bogus)
    with pytest.raises(OpenFlowError):
        wire.decode_all(bogus)


def test_encode_rejects_out_of_range_xid():
    with pytest.raises(OpenFlowError):
        wire.encode(Hello(xid=2**32))
    with pytest.raises(OpenFlowError):
        wire.encode(Hello(xid=-1))


def test_decode_rejects_truncated_body():
    encoded = wire.encode(FeaturesReply(dpid=7, ports=(1, 2, 3)))
    with pytest.raises(OpenFlowError):
        wire.decode(encoded[:-1])


def test_decode_rejects_unknown_type_and_version():
    with pytest.raises(OpenFlowError):
        wire.decode(wire._HEADER.pack(0x04, 0, 8, 1))  # OF 1.3 version
    with pytest.raises(OpenFlowError):
        wire.decode(wire._HEADER.pack(wire.OFP_VERSION, 99, 8, 1))


def test_reserved_port_outputs_collapse_to_dedicated_actions():
    """ActionOutput(OFPP_FLOOD/CONTROLLER) decodes as ActionFlood/
    ActionController — canonically equal by design, so the collapse is
    pinned rather than treated as a roundtrip failure."""
    message = PacketOut(dpid=1, in_port=1,
                        actions=(ActionOutput(OFPP_FLOOD),
                                 ActionOutput(OFPP_CONTROLLER)))
    decoded, _ = wire.decode(wire.encode(message))
    assert decoded.actions == (ActionFlood(), ActionController())
    assert [a.canonical() for a in decoded.actions] \
        == [a.canonical() for a in message.actions]
