"""Tests for the datastore core: writes, events, locks, digests."""

import pytest

from repro.datastore.events import CacheEvent, CacheOp, cache_canonical
from repro.datastore.hazelcast import HazelcastCluster
from repro.errors import CacheLockError, DatastoreError
from repro.sim.simulator import Simulator


@pytest.fixture
def cluster():
    return HazelcastCluster(Simulator(seed=1))


def test_put_and_get(cluster):
    node = cluster.create_node("c1")
    node.put("FlowsDB", "k", {"v": 1})
    assert node.get("FlowsDB", "k") == {"v": 1}
    assert node.get("FlowsDB", "missing") is None
    assert node.get("FlowsDB", "missing", default=3) == 3


def test_create_vs_update_op(cluster):
    node = cluster.create_node("c1")
    first = node.put("FlowsDB", "k", 1)
    second = node.put("FlowsDB", "k", 2)
    assert first.event.op == CacheOp.CREATE
    assert second.event.op == CacheOp.UPDATE


def test_delete_removes_and_emits(cluster):
    node = cluster.create_node("c1")
    node.put("FlowsDB", "k", 1)
    result = node.delete("FlowsDB", "k")
    assert result.event.op == CacheOp.DELETE
    assert node.get("FlowsDB", "k") is None


def test_events_notify_local_listeners(cluster):
    node = cluster.create_node("c1")
    events = []
    node.add_listener(lambda n, e: events.append(e))
    node.put("HostsDB", "h", {"ip": "10.0.0.1"})
    assert len(events) == 1
    assert events[0].cache == "HostsDB"
    assert events[0].origin == "c1"


def test_event_sequence_numbers_monotonic(cluster):
    node = cluster.create_node("c1")
    seqs = [node.put("X", i, i).event.seq for i in range(5)]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == 5


def test_action_id_and_trigger_id(cluster):
    node = cluster.create_node("c1")
    event = node.put("X", "k", 1, tau=("ext", 9)).event
    assert event.action_id == ("c1", event.seq)
    assert event.trigger_id == ("ext", 9)
    untagged = node.put("X", "k2", 1).event
    assert untagged.trigger_id == ("int", "c1", untagged.seq)


def test_lock_manager_refusal(cluster):
    node = cluster.create_node("c1")
    node.lock_manager = lambda cache, key: cache != "SwitchesDB"
    node.put("FlowsDB", "k", 1)  # unaffected cache is fine
    with pytest.raises(CacheLockError):
        node.put("SwitchesDB", "s", 1)
    assert node.get("SwitchesDB", "s") is None


def test_duplicate_node_rejected(cluster):
    cluster.create_node("c1")
    with pytest.raises(DatastoreError):
        cluster.create_node("c1")


def test_state_digest_tracks_applied_seqs(cluster):
    sim = cluster.sim
    a = cluster.create_node("c1")
    b = cluster.create_node("c2")
    a.put("X", "k", 1)
    assert dict(a.state_digest())["c1"] == 1
    assert "c1" not in dict(b.state_digest())  # not yet propagated
    sim.run()
    assert dict(b.state_digest())["c1"] == 1


def test_digests_equal_after_convergence(cluster):
    sim = cluster.sim
    nodes = [cluster.create_node(f"c{i}") for i in range(3)]
    for i, node in enumerate(nodes):
        node.put("X", i, i)
    sim.run()
    digests = {node.state_digest() for node in nodes}
    assert len(digests) == 1


def test_cache_canonical_consistency(cluster):
    """A captured (shadow) write must compare equal to the real event."""
    node = cluster.create_node("c1")
    value = {"dpid": 1, "state": "pending_add"}
    event = node.put("FlowsDB", ("flow", 1), value).event
    captured = cache_canonical("FlowsDB", ("flow", 1), CacheOp.CREATE, value)
    assert event.canonical() == captured


def test_canonical_value_handles_nested_structures():
    event = CacheEvent(cache="X", key=("k",), value={"a": [1, 2], "b": {"c": 3}},
                       op=CacheOp.CREATE, origin="c1", seq=1, time=0.0)
    canonical = event.canonical()
    assert isinstance(canonical, tuple)
    # Deterministic regardless of dict ordering.
    event2 = CacheEvent(cache="X", key=("k",), value={"b": {"c": 3}, "a": [1, 2]},
                        op=CacheOp.CREATE, origin="c1", seq=2, time=0.0)
    assert canonical == event2.canonical()


def test_wire_size_estimates(cluster):
    node = cluster.create_node("c1")
    small = node.put("X", "k", None).event
    big = node.put("X", "k2", {"data": "x" * 600}).event
    assert small.wire_size() < big.wire_size()
    assert big.wire_size() <= 96 + 512  # capped


def test_remove_node_stops_delivery(cluster):
    sim = cluster.sim
    a = cluster.create_node("c1")
    b = cluster.create_node("c2")
    cluster.remove_node("c2")
    a.put("X", "k", 1)
    sim.run()
    assert b.get("X", "k") is None
