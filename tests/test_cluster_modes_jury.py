"""JURY across the HA connection-management modes (§VI, [4])."""

import pytest

from repro.controllers.cluster import ControllerCluster, HaMode
from repro.controllers.onos import OnosController
from repro.api import Jury
from repro.config import JuryConfig
from repro.datastore.hazelcast import HazelcastCluster
from repro.net.topology import linear_topology
from repro.sim.simulator import Simulator


def build_mode(ha_mode, seed=210, n=3, switches=4, k=2):
    sim = Simulator(seed=seed)
    topo = linear_topology(sim, switches)
    store = HazelcastCluster(sim)
    cluster = ControllerCluster(sim, ha_mode=ha_mode)
    for i in range(1, n + 1):
        cid = f"c{i}"
        cluster.add_controller(OnosController(sim, cid, store.create_node(cid)))
    cluster.connect_topology(topo)
    jury = Jury.build(JuryConfig(k=k, timeout_ms=250.0), cluster=cluster)
    cluster.start()
    sim.run(until=2500.0)
    hosts = topo.host_list()
    for index, host in enumerate(hosts):
        sim.schedule(index * 2.0, host.send_arp_request,
                     hosts[(index + 1) % switches].ip)
    sim.run(until=sim.now + 500.0)
    return sim, topo, cluster, jury


@pytest.mark.parametrize("ha_mode", [
    HaMode.ANY_CONTROLLER_ONE_MASTER,
    HaMode.SINGLE_CONTROLLER,
    HaMode.ACTIVE_PASSIVE,
])
def test_traffic_validates_cleanly_in_every_mode(ha_mode):
    sim, topo, cluster, jury = build_mode(ha_mode)
    hosts = topo.host_list()
    flow_id = hosts[0].open_connection(hosts[3])
    sim.run(until=sim.now + 1500.0)
    assert hosts[3].received_by_flow.get(flow_id) == 1
    assert jury.validator.triggers_decided > 0
    assert jury.validator.triggers_alarmed == 0


def test_active_passive_all_triggers_hit_the_active():
    sim, topo, cluster, jury = build_mode(HaMode.ACTIVE_PASSIVE, seed=211)
    active = cluster.controller("c1")
    passives = [cluster.controller("c2"), cluster.controller("c3")]
    pins_before = [c.packet_ins_received for c in passives]
    hosts = topo.host_list()
    hosts[0].open_connection(hosts[3])
    sim.run(until=sim.now + 1000.0)
    # Passives processed only JURY's replicated (shadow) triggers.
    for controller, before in zip(passives, pins_before):
        shadow = jury.modules[controller.id].shadow_triggers
        assert controller.packet_ins_received - before <= shadow
    assert active.packet_ins_received > 0


def test_single_controller_mode_replicates_across_partitions():
    sim, topo, cluster, jury = build_mode(HaMode.SINGLE_CONTROLLER, seed=212)
    hosts = topo.host_list()
    hosts[0].open_connection(hosts[3])
    sim.run(until=sim.now + 1500.0)
    # Secondaries in other partitions shadow the triggers.
    assert jury.total_shadow_triggers() > 0
    full = [r for r in jury.validator.results
            if r.external and not r.timed_out]
    assert full
