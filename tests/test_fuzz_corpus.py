"""The regression corpus: every saved repro replays forever.

``tests/corpus/*.json`` holds minimal repros of real counterexamples found
(and shrunk) by ``jury-repro fuzz``. The replay test re-runs each entry's
spec through the differential oracle and requires the violation signature
to match ``expect`` exactly — in both directions: a historic violation must
not silently disappear, and no new violation may creep in. Fixing a pinned
bug legitimately flips an entry; that PR updates or retires the entry.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ValidationError
from repro.fuzz import (
    CorpusEntry,
    DifferentialOracle,
    ScenarioSpec,
    default_corpus_dir,
    load_corpus,
    load_entry,
    replay_entry,
    save_entry,
)

CORPUS = load_corpus(default_corpus_dir())


def test_corpus_exists_and_is_named():
    assert CORPUS, "tests/corpus must hold at least the planted repro"
    names = {entry.name for entry in CORPUS}
    assert "k0-response-corruption-evades" in names


@pytest.mark.parametrize("entry", CORPUS, ids=lambda e: e.name)
def test_corpus_entry_replays_with_its_exact_signature(entry):
    outcome = replay_entry(entry, oracle=DifferentialOracle())
    assert outcome.matched, outcome.detail


def test_planted_divergence_entry_is_a_fire_drill():
    """The ENGINE_DIVERGENCE plant: perturbed oracle, artifacts attached."""
    entry = next(e for e in CORPUS if e.name == "planted-engine-divergence")
    assert entry.expect == ("ENGINE_DIVERGENCE",)
    perturb = entry.oracle["perturb"]
    assert perturb == {"backend": "serial", "shards": 4,
                       "timeout_delta_ms": 60.0}
    assert "fire drill" in entry.notes
    outcome = replay_entry(entry, oracle=DifferentialOracle())
    assert outcome.matched, outcome.detail
    report = outcome.report
    # Every surviving divergence ships its triage artifacts.
    assert set(report.artifacts) == {"trace_diff", "flight"}
    diff = report.artifacts["trace_diff"]
    assert diff["identical"] is False
    assert diff["first_divergence"]["kind"] in (
        "changed", "left-only", "right-only")
    assert report.artifacts["flight"]["format"] == "jury-flight"
    [violation] = [v for v in report.violations
                   if v.code == "ENGINE_DIVERGENCE"]
    assert "first divergence at t=" in violation.detail
    assert "perturbed timeout 260.0 ms" in violation.detail
    assert "artifacts" in report.to_dict()


def test_planted_entry_is_minimal_and_documents_itself():
    entry = next(e for e in CORPUS
                 if e.name == "k0-response-corruption-evades")
    assert entry.expect == ("FAULT_UNDETECTED",)
    assert entry.spec.k == 0, "the k=0 blind spot is the point of the entry"
    assert entry.spec.n == 2 and entry.spec.switches == 2, \
        "the shrinker reduced this to the floor; keep it that way"
    assert entry.spec.traffic is None
    assert "k=0" in entry.notes


# ----------------------------------------------------------------------
# Corpus plumbing
# ----------------------------------------------------------------------

def _spec() -> ScenarioSpec:
    return ScenarioSpec(seed=3, n=3, k=2, switches=4, timeout_ms=200.0)


def test_save_load_roundtrip(tmp_path):
    entry = CorpusEntry(name="roundtrip", spec=_spec(),
                        expect=("ENGINE_DIVERGENCE",), notes="synthetic")
    path = save_entry(entry, tmp_path)
    assert path.name == "roundtrip.json"
    assert load_entry(path) == entry
    # The file itself is deterministic: key-sorted, newline-terminated.
    text = path.read_text()
    assert text.endswith("\n")
    assert json.dumps(json.loads(text), indent=2, sort_keys=True) + "\n" \
        == text


def test_oracle_knob_roundtrips_and_validates(tmp_path):
    perturb = {"perturb": {"backend": "serial", "shards": 2,
                           "timeout_delta_ms": 10.0}}
    entry = CorpusEntry(name="knob", spec=_spec(),
                        expect=("ENGINE_DIVERGENCE",), oracle=perturb)
    path = save_entry(entry, tmp_path)
    loaded = load_entry(path)
    assert loaded.oracle == perturb
    # Entries without the knob keep their old on-disk shape.
    plain_path = save_entry(CorpusEntry(name="plain", spec=_spec(),
                                        expect=()), tmp_path)
    assert "oracle" not in json.loads(plain_path.read_text())
    assert load_entry(plain_path).oracle is None
    bad = json.loads(path.read_text())
    bad["oracle"] = "not-a-dict"
    path.write_text(json.dumps(bad))
    with pytest.raises(ValidationError, match="'oracle' must be an object"):
        load_entry(path)


def test_load_corpus_sorted_and_duplicate_safe(tmp_path):
    save_entry(CorpusEntry(name="bbb", spec=_spec(), expect=()), tmp_path)
    save_entry(CorpusEntry(name="aaa", spec=_spec(), expect=()), tmp_path)
    names = [entry.name for entry in load_corpus(tmp_path)]
    assert names == ["aaa", "bbb"]

    clash = tmp_path / "aaa-again.json"
    data = json.loads((tmp_path / "aaa.json").read_text())
    clash.write_text(json.dumps(data))
    with pytest.raises(ValidationError):
        load_corpus(tmp_path)


def test_load_corpus_missing_dir_is_empty(tmp_path):
    assert load_corpus(tmp_path / "nope") == []


def test_load_entry_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ValidationError):
        load_entry(bad)
    missing = tmp_path / "fields.json"
    missing.write_text(json.dumps({"format": 1, "name": "x"}))
    with pytest.raises(ValidationError):
        load_entry(missing)
    wrong_format = tmp_path / "fmt.json"
    wrong_format.write_text(json.dumps({"format": 2, "name": "x",
                                        "spec": _spec().to_dict()}))
    with pytest.raises(ValidationError):
        load_entry(wrong_format)


def test_default_corpus_dir_resolves_to_the_repo_corpus():
    directory = default_corpus_dir()
    assert directory.name == "corpus"
    assert (directory / "k0-response-corruption-evades.json").is_file()
