"""Property-based tests (hypothesis) for core data structures and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.responses import Response, ResponseKind, sort_canonicals
from repro.core.selection import designated_secondaries
from repro.core.consensus import evaluate_consensus
from repro.harness.metrics import cdf_points, percentile
from repro.net.packet import EtherType, IpProto, Packet
from repro.openflow.actions import ActionOutput
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.match import Match
from repro.sim.simulator import Simulator


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

macs = st.sampled_from([f"00:00:00:00:00:{i:02x}" for i in range(8)])
ips = st.sampled_from([f"10.0.0.{i}" for i in range(1, 9)])
ports = st.integers(min_value=1, max_value=5)


@st.composite
def matches(draw):
    """Arbitrary (possibly hierarchy-violating) matches."""
    return Match(
        in_port=draw(st.none() | ports),
        dl_src=draw(st.none() | macs),
        dl_dst=draw(st.none() | macs),
        dl_type=draw(st.none() | st.sampled_from(
            [int(EtherType.IPV4), int(EtherType.ARP), 0x86DD])),
        nw_src=draw(st.none() | ips),
        nw_dst=draw(st.none() | ips),
        nw_proto=draw(st.none() | st.sampled_from(
            [int(IpProto.TCP), int(IpProto.UDP), 89])),
        tp_src=draw(st.none() | st.integers(min_value=1, max_value=65535)),
        tp_dst=draw(st.none() | st.integers(min_value=1, max_value=65535)),
    )


@st.composite
def packets(draw):
    return Packet(
        src_mac=draw(macs), dst_mac=draw(macs),
        eth_type=draw(st.sampled_from([EtherType.IPV4, EtherType.ARP])),
        src_ip=draw(ips), dst_ip=draw(ips),
        ip_proto=draw(st.none() | st.sampled_from([IpProto.TCP, IpProto.UDP])),
        src_port=draw(st.none() | st.integers(min_value=1, max_value=65535)),
        dst_port=draw(st.none() | st.integers(min_value=1, max_value=65535)),
    )


# ----------------------------------------------------------------------
# Match hierarchy invariants
# ----------------------------------------------------------------------

@given(matches())
def test_strip_unsupported_fields_is_valid_and_idempotent(match):
    stripped = match.strip_unsupported_fields()
    assert stripped.hierarchy_violations() == ()
    assert stripped.strip_unsupported_fields() == stripped


@given(matches())
def test_strip_never_adds_fields(match):
    stripped = match.strip_unsupported_fields()
    assert stripped.specificity() <= match.specificity()


@given(matches(), packets(), st.none() | ports)
def test_stripped_match_is_broader(match, packet, in_port):
    """Anything the original matches, the stripped match also matches."""
    stripped = match.strip_unsupported_fields()
    if match.matches(packet, in_port):
        assert stripped.matches(packet, in_port)


@given(matches())
def test_canonical_roundtrip_property(match):
    assert Match.from_canonical(match.canonical()) == match


# ----------------------------------------------------------------------
# Flow table invariants
# ----------------------------------------------------------------------

@given(st.lists(st.tuples(matches(), st.integers(min_value=1, max_value=200)),
                max_size=25))
def test_flowtable_lookup_returns_highest_priority_match(entries):
    table = FlowTable()
    for match, priority in entries:
        table.add(FlowEntry(match=match, actions=(ActionOutput(1),),
                            priority=priority))
    packet = Packet(src_mac="00:00:00:00:00:01", dst_mac="00:00:00:00:00:02",
                    eth_type=EtherType.IPV4, src_ip="10.0.0.1",
                    dst_ip="10.0.0.2", ip_proto=IpProto.TCP,
                    src_port=1, dst_port=2)
    found = table.lookup(packet, in_port=1)
    candidates = [e for e in table if e.match.matches(packet, 1)]
    if not candidates:
        assert found is None
    else:
        assert found is not None
        assert found.priority == max(e.priority for e in candidates)


@given(st.lists(matches(), max_size=15))
def test_flowtable_delete_removes_what_was_added(entries):
    table = FlowTable()
    for match in entries:
        table.add(FlowEntry(match=match, actions=(), priority=10))
    for match in entries:
        table.delete(match)
    assert len(table) == 0


# ----------------------------------------------------------------------
# Selection determinism
# ----------------------------------------------------------------------

ids = [f"c{i}" for i in range(1, 10)]


@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=0, max_value=10),
       st.sampled_from(ids))
def test_selection_deterministic_and_well_formed(trigger, k, primary):
    tau = ("ext", trigger)
    a = designated_secondaries(tau, ids, k, exclude=(primary,))
    b = designated_secondaries(tau, ids, k, exclude=(primary,))
    assert a == b
    assert primary not in a
    assert len(a) == min(k, len(ids) - 1)
    assert len(set(a)) == len(a)


# ----------------------------------------------------------------------
# Metrics invariants
# ----------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=200),
       st.floats(min_value=0.0, max_value=1.0))
def test_percentile_within_bounds(samples, q):
    value = percentile(samples, q)
    assert min(samples) <= value <= max(samples)


@given(st.lists(st.floats(min_value=0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=200))
def test_percentile_monotonic_in_q(samples):
    values = [percentile(samples, q) for q in (0.1, 0.5, 0.9)]
    assert values == sorted(values)


@given(st.lists(st.floats(min_value=0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=500))
def test_cdf_points_valid_probabilities(samples):
    points = cdf_points(samples)
    assert all(0 < y <= 1.0 for _, y in points)
    ys = [y for _, y in points]
    assert ys == sorted(ys)


# ----------------------------------------------------------------------
# Canonical sorting and consensus invariants
# ----------------------------------------------------------------------

mixed_tuples = st.lists(
    st.tuples(st.sampled_from(["flow_mod", "packet_out", "cache"]),
              st.integers(min_value=0, max_value=5),
              st.none() | st.integers(min_value=0, max_value=5)),
    max_size=10)


@given(mixed_tuples)
def test_sort_canonicals_is_order_insensitive(items):
    shuffled = list(items)
    random.Random(0).shuffle(shuffled)
    assert sort_canonicals(items) == sort_canonicals(shuffled)


@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=6))
@settings(max_examples=50)
def test_consensus_unanimous_replicas_never_alarm(k, extra_empty):
    """If the primary and every replica agree, consensus must pass."""
    cache = (("cache", "FlowsDB", ("flow", 1, (), 100), "create",
              (("state", "pending_add"),)),)
    net = (("flow_mod", 1, "add", (), (), 100),)
    combined = (cache, net)
    responses = [
        Response("c1", ("ext", 1), ResponseKind.NETWORK_WRITE, net,
                 state_digest=(1,)),
        Response("c1", ("ext", 1), ResponseKind.CACHE_UPDATE, cache,
                 state_digest=(1,), origin="c1"),
    ]
    for i in range(k):
        responses.append(Response(
            f"s{i}", ("ext", 1), ResponseKind.REPLICA_RESULT, combined,
            tainted=True, state_digest=(1,), primary_hint="c1"))
    outcome = evaluate_consensus(responses, k=k, external=True)
    assert outcome.ok


# ----------------------------------------------------------------------
# Simulator ordering invariant
# ----------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0, max_value=1000,
                          allow_nan=False, allow_infinity=False),
                max_size=50))
def test_simulator_fires_in_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(d))
    sim.run()
    assert fired == sorted(fired)


# ----------------------------------------------------------------------
# Sharded pipeline routing invariants
# ----------------------------------------------------------------------

def _tagged_responses(trigger_indices, k):
    """One response per listed trigger index, in the given interleaving."""
    responses = []
    for index in trigger_indices:
        tau = ("ext", index)
        responses.append(Response(
            controller_id=f"c{index % 4}", trigger_id=tau,
            kind=ResponseKind.CACHE_UPDATE, entry=(("cache", index),),
            origin="c1", state_digest=(("c1", index % 7),)))
    return responses


@given(st.lists(st.integers(min_value=0, max_value=30),
                min_size=1, max_size=120),
       st.sampled_from([1, 2, 4, 8]))
@settings(max_examples=40, deadline=None)
def test_pipeline_routes_each_trigger_to_one_shard(trigger_indices, shards):
    """Every response for a trigger lands on the shard its hash names."""
    from repro.core.pipeline import ValidationPipeline, shard_of
    from repro.core.timeouts import StaticTimeout

    sim = Simulator(seed=0)
    pipeline = ValidationPipeline(sim, 3, shards=shards,
                                  timeout=StaticTimeout(10_000.0))
    for response in _tagged_responses(trigger_indices, k=3):
        pipeline.ingest(response)
    pipeline.drain()
    for index, shard in enumerate(pipeline._shards):
        for tau in shard.records:
            assert shard_of(tau, shards) == index
        for _, queued in list(shard.queue) + list(shard.overflow):
            assert shard_of(queued.trigger_id, shards) == index


@given(st.lists(st.integers(min_value=0, max_value=30),
                min_size=1, max_size=150),
       st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=16))
@settings(max_examples=40, deadline=None)
def test_pipeline_conserves_responses_under_backpressure(
        trigger_indices, capacity, batch_max):
    """No response is dropped and the overflow accounting balances."""
    from repro.core.pipeline import ValidationPipeline
    from repro.core.timeouts import StaticTimeout

    sim = Simulator(seed=0)
    pipeline = ValidationPipeline(sim, 3, shards=2,
                                  timeout=StaticTimeout(10_000.0),
                                  queue_capacity=capacity,
                                  batch_max=batch_max)
    responses = _tagged_responses(trigger_indices, k=3)
    for response in responses:
        pipeline.ingest(response)
    stats = pipeline.stats
    queued_now = sum(len(s.queue) + len(s.overflow)
                     for s in pipeline._shards)
    # Conservation before the drain: routed == processed + still queued.
    assert stats.responses_routed == len(responses)
    assert stats.total("enqueued") == stats.responses_routed
    assert stats.total("processed") + queued_now == stats.total("enqueued")
    pipeline.drain()
    stats = pipeline.stats
    assert stats.total("processed") == stats.total("enqueued")
    assert stats.total("overflow_enqueued") == stats.total("overflow_drained")
    assert sum(len(s.queue) + len(s.overflow)
               for s in pipeline._shards) == 0
    # Processed responses are either held in records or counted late.
    held = sum(r.count for s in pipeline._shards
               for r in s.records.values())
    decided = sum(r.n_responses for r in pipeline.results)
    late = pipeline.late_responses
    assert held + decided + late == stats.total("processed")
