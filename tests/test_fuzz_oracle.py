"""The differential oracle's invariant catalog and the shrinker.

These tests run real scenarios end-to-end, so they pick the smallest
cheap-but-meaningful shapes: seed 9 (the lightest generated clean spec)
and the planted k=0 evasion that the regression corpus pins.
"""

from __future__ import annotations

import pytest

from repro.fuzz.oracle import DifferentialOracle
from repro.fuzz.runner import run_campaign
from repro.fuzz.scenario import FaultSpec, ScenarioGen, ScenarioSpec
from repro.fuzz.shrink import Shrinker


@pytest.fixture(scope="module")
def oracle():
    return DifferentialOracle()


def _planted_evasion() -> ScenarioSpec:
    """k=0: no shadow replicas, so a corrupted primary is never outvoted."""
    return ScenarioSpec(
        seed=11, n=3, k=0, switches=4, timeout_ms=200.0,
        faults=(FaultSpec(name="response-corruption",
                          params=(("faulty_controller", "c1"),)),))


# ----------------------------------------------------------------------
# Oracle verdicts
# ----------------------------------------------------------------------

def test_clean_generated_scenario_passes_every_invariant(oracle):
    spec = ScenarioGen().spec(9)
    assert not spec.faults, "test assumes seed 9 draws a clean scenario"
    report = oracle.run(spec)
    assert report.ok, [str(v) for v in report.violations]
    assert report.triggers_decided > 20
    assert report.records > 0
    # Digests are the seed-stability contract: all three must be present.
    assert len(report.spec_digest) == 64
    assert len(report.alarm_digest) == 64
    assert len(report.trace_digest) == 64


def test_faulted_generated_scenario_detects_and_passes(oracle):
    spec = ScenarioGen().spec(7)
    assert spec.faults, "test assumes seed 7 draws a faulted scenario"
    report = oracle.run(spec)
    assert report.ok, [str(v) for v in report.violations]
    assert report.fault_outcomes and all(
        outcome.detected for outcome in report.fault_outcomes)


def test_planted_k0_evasion_is_caught_as_fault_undetected(oracle):
    report = oracle.run(_planted_evasion())
    assert not report.ok
    assert report.codes() == ("FAULT_UNDETECTED",)
    outcome = report.fault_outcomes[0]
    assert outcome.name == "response-corruption" and not outcome.detected


def test_report_to_dict_is_json_shaped(oracle):
    import json

    report = oracle.run(ScenarioGen().spec(9))
    payload = report.to_dict()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["ok"] is True
    assert payload["spec"]["seed"] == 9


def test_oracle_runs_are_reproducible(oracle):
    """Same spec, two fresh runs in one process → identical digests.

    This is the in-process half of the seed-stability satellite (the
    cross-process half lives in test_fuzz_cli.py); it only holds because
    the oracle resets the global trigger-id counters per run."""
    spec = ScenarioGen().spec(9)
    first = oracle.run(spec)
    second = oracle.run(spec)
    assert first.spec_digest == second.spec_digest
    assert first.alarm_digest == second.alarm_digest
    assert first.trace_digest == second.trace_digest


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------

def test_shrinker_minimizes_the_planted_evasion(oracle):
    plant = _planted_evasion()
    result = Shrinker(oracle=oracle, budget=25).shrink(plant)
    assert result.signature == ("FAULT_UNDETECTED",)
    assert result.shrunk
    minimized = result.minimized
    assert minimized.n < plant.n or minimized.switches < plant.switches
    assert minimized.faults, "the shrinker must keep the failing fault"
    assert minimized.k == 0, "k=0 is the essence of the failure"
    # The minimized spec still fails with the same signature.
    assert oracle.run(minimized).codes() == ("FAULT_UNDETECTED",)


def test_shrinker_respects_its_budget(oracle):
    result = Shrinker(oracle=oracle, budget=3).shrink(_planted_evasion())
    assert result.evaluations <= 3


def test_shrinker_rejects_passing_specs(oracle):
    with pytest.raises(ValueError):
        Shrinker(oracle=oracle).shrink(ScenarioGen().spec(9),
                                       signature=())


# ----------------------------------------------------------------------
# The campaign runner
# ----------------------------------------------------------------------

def test_campaign_clean_seeds(oracle):
    result = run_campaign(base_seed=8, runs=2, oracle=oracle)
    assert result.ok
    assert result.completed_runs == 2
    assert [r.spec.seed for r in result.reports] == [8, 9]


def test_campaign_time_budget_uses_injected_clock(oracle):
    ticks = iter(range(100))

    def clock():
        return float(next(ticks))

    result = run_campaign(base_seed=8, runs=10, oracle=oracle,
                          time_budget_s=1.0, clock=clock)
    # The fake clock advances 1s per call: the first scenario always runs,
    # the next between-scenario check sees the budget spent.
    assert result.budget_exhausted
    assert 1 <= result.completed_runs < 10


def test_campaign_time_budget_requires_clock(oracle):
    with pytest.raises(ValueError):
        run_campaign(base_seed=8, runs=1, oracle=oracle, time_budget_s=5.0)


class _PlantedGen(ScenarioGen):
    """Generator stub whose every draw is the planted evasion."""

    def spec(self, seed):
        return _planted_evasion().replace(seed=seed)


def test_campaign_shrinks_counterexamples(oracle):
    result = run_campaign(base_seed=11, runs=1, oracle=oracle,
                          gen=_PlantedGen(), shrink=True, shrink_budget=15)
    assert not result.ok
    counterexample = result.counterexamples[0]
    assert counterexample.report.codes() == ("FAULT_UNDETECTED",)
    assert counterexample.shrink is not None
    assert counterexample.minimal_spec.n <= counterexample.spec.n
    payload = counterexample.to_dict()
    assert payload["minimal_spec"]["k"] == 0
