"""Tests for topology builders and manipulation."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.net.topology import Topology, linear_topology, three_tier_topology
from repro.sim.simulator import Simulator


def test_linear_topology_structure():
    sim = Simulator()
    topo = linear_topology(sim, 24)
    assert len(topo.switches) == 24
    assert len(topo.hosts) == 24
    graph = topo.switch_graph()
    assert graph.number_of_edges() == 23
    assert nx.is_connected(graph)
    # A chain: exactly two leaves.
    leaves = [n for n in graph if graph.degree(n) == 1]
    assert len(leaves) == 2


def test_linear_topology_host_locations():
    sim = Simulator()
    topo = linear_topology(sim, 4)
    for i in range(1, 5):
        dpid, port = topo.host_location(topo.hosts[f"h{i}"])
        assert dpid == i


def test_three_tier_structure():
    sim = Simulator()
    topo = three_tier_topology(sim)  # 8 edge, 4 agg, 2 core
    assert len(topo.switches) == 14
    graph = topo.switch_graph()
    assert nx.is_connected(graph)
    # 4 agg x 2 core + 8 edge x 2 agg = 24 fabric links.
    assert graph.number_of_edges() == 24
    assert len(topo.hosts) == 16  # 2 per edge switch


def test_three_tier_has_redundant_paths():
    sim = Simulator()
    topo = three_tier_topology(sim)
    graph = topo.switch_graph()
    # Removing one aggregate must not disconnect the fabric.
    agg = 3  # cores are 1..2, aggs 3..6
    graph.remove_node(agg)
    assert nx.is_connected(graph)


def test_duplicate_dpid_rejected():
    sim = Simulator()
    topo = Topology(sim)
    topo.add_switch(1)
    with pytest.raises(TopologyError):
        topo.add_switch(1)


def test_duplicate_host_rejected():
    sim = Simulator()
    topo = Topology(sim)
    topo.add_host("h1")
    with pytest.raises(TopologyError):
        topo.add_host("h1")


def test_auto_dpid_assignment():
    sim = Simulator()
    topo = Topology(sim)
    s1 = topo.add_switch()
    s2 = topo.add_switch()
    assert s2.dpid == s1.dpid + 1


def test_port_allocation_sequential():
    sim = Simulator()
    topo = Topology(sim)
    s1, s2, s3 = topo.add_switch(), topo.add_switch(), topo.add_switch()
    topo.add_link(s1, s2)
    topo.add_link(s1, s3)
    assert sorted(s1.ports) == [1, 2]


def test_fail_and_restore_link():
    sim = Simulator()
    topo = linear_topology(sim, 3)
    topo.fail_link(1, 2)
    graph = topo.switch_graph()
    assert not graph.has_edge(1, 2)
    topo.restore_link(1, 2)
    assert topo.switch_graph().has_edge(1, 2)


def test_fail_unknown_link_raises():
    sim = Simulator()
    topo = linear_topology(sim, 3)
    with pytest.raises(TopologyError):
        topo.fail_link(1, 3)


def test_link_between():
    sim = Simulator()
    topo = linear_topology(sim, 3)
    assert topo.link_between(1, 2) is not None
    assert topo.link_between(2, 1) is not None  # order-insensitive
    assert topo.link_between(1, 3) is None


def test_host_location_unattached_raises():
    sim = Simulator()
    topo = Topology(sim)
    host = topo.add_host("h1")
    with pytest.raises(TopologyError):
        topo.host_location(host)


def test_unique_macs_and_ips():
    sim = Simulator()
    topo = linear_topology(sim, 10)
    macs = {h.mac for h in topo.host_list()}
    ips = {h.ip for h in topo.host_list()}
    assert len(macs) == 10
    assert len(ips) == 10


def test_invalid_linear_size():
    with pytest.raises(TopologyError):
        linear_topology(Simulator(), 0)


def test_invalid_three_tier_params():
    with pytest.raises(TopologyError):
        three_tier_topology(Simulator(), agg=1)
