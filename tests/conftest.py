"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.controllers.onos import build_onos_cluster
from repro.api import Jury
from repro.config import JuryConfig
from repro.net.topology import linear_topology
from repro.sim.simulator import Simulator


@pytest.fixture
def sim():
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=1234)


@pytest.fixture
def small_topo(sim):
    """A 4-switch linear topology with one host per switch."""
    return linear_topology(sim, 4)


@pytest.fixture
def onos3(sim, small_topo):
    """A 3-node ONOS cluster wired to the small topology, discovery settled."""
    cluster, store = build_onos_cluster(sim, n=3)
    cluster.connect_topology(small_topo)
    cluster.start()
    sim.run(until=2500.0)
    return cluster, store


@pytest.fixture
def warm_jury_experiment():
    """A warmed-up 5-node ONOS experiment with JURY (k=4)."""
    exp = Jury.experiment(JuryConfig(kind="onos", n=5, k=4, switches=8, seed=77,
                           timeout_ms=250.0))
    exp.warmup()
    return exp


@pytest.fixture(scope="session")
def scenario_gen():
    """The seeded scenario generator (pure per-seed; safe to share)."""
    from repro.fuzz import ScenarioGen
    return ScenarioGen()


@pytest.fixture(scope="session")
def small_fuzz_corpus(scenario_gen):
    """A handful of generated specs: some fault-free, some faulted.

    Seeds are fixed so suites that reuse the fixture stay deterministic;
    the spread is chosen so both flavors are always present (seed 7 and 10
    carry fault schedules, 8 and 9 are clean — pinned by a fuzz test).
    """
    return [scenario_gen.spec(seed) for seed in (7, 8, 9, 10)]


def discover_and_learn(experiment, extra_ms: float = 500.0):
    """Drive an ARP from each host so the cluster learns every location."""
    hosts = experiment.topology.host_list()
    for index, host in enumerate(hosts):
        target = hosts[(index + 1) % len(hosts)]
        experiment.sim.schedule(index * 2.0, host.send_arp_request, target.ip)
    experiment.run(2 * len(hosts) + extra_ms)
