"""Tests for controller profiles and cluster builder helpers."""

from repro.controllers.odl import build_odl_cluster
from repro.controllers.onos import build_onos_cluster
from repro.controllers.profile import (
    ODL_PROFILE,
    ONOS_PROFILE,
    odl_profile,
    onos_profile,
)
from repro.sim.simulator import Simulator


def test_profile_factories_accept_overrides():
    profile = onos_profile(lldp_period_ms=42.0, jitter_sigma=0.5)
    assert profile.lldp_period_ms == 42.0
    assert profile.jitter_sigma == 0.5
    # Other fields keep their defaults.
    assert profile.store == "hazelcast"


def test_profile_factories_return_fresh_objects():
    a = onos_profile()
    b = onos_profile()
    a.lldp_period_ms = 1.0
    assert b.lldp_period_ms != 1.0
    assert ONOS_PROFILE.lldp_period_ms != 1.0


def test_onos_and_odl_profiles_differ_where_it_matters():
    onos, odl = onos_profile(), odl_profile()
    assert onos.store == "hazelcast"
    assert odl.store == "infinispan"
    assert odl.jitter_median_ms > onos.jitter_median_ms
    assert odl.replication_encapsulated and not onos.replication_encapsulated
    assert odl.flow_reconcile_delay_ms == 0.0
    assert onos.flow_reconcile_delay_ms > 0.0


def test_cluster_builders_give_each_controller_its_own_profile():
    sim = Simulator(seed=1)
    cluster, _ = build_onos_cluster(sim, n=3, profile=onos_profile())
    profiles = [c.profile for c in cluster.controllers.values()]
    # Object distinctness, not state keyed by identity:
    assert len({id(p) for p in profiles}) == 3  # jury: ignore[D103]
    profiles[0].jitter_median_ms = 999.0
    assert profiles[1].jitter_median_ms != 999.0


def test_builders_assign_sequential_ids_and_election_ids():
    sim = Simulator(seed=1)
    cluster, _ = build_odl_cluster(sim, n=4)
    assert cluster.controller_ids() == ["c1", "c2", "c3", "c4"]
    eids = [cluster.controller(cid).election_id
            for cid in cluster.controller_ids()]
    assert eids == [1, 2, 3, 4]


def test_onos_app_stack():
    sim = Simulator(seed=1)
    cluster, _ = build_onos_cluster(sim, n=1)
    controller = cluster.controller("c1")
    names = [app.name for app in controller.apps]
    assert names == ["topology", "hosttracker", "forwarding"]


def test_odl_app_stack_depends_on_proactive_flag():
    sim = Simulator(seed=1)
    cluster, _ = build_odl_cluster(sim, n=1)
    names = [app.name for app in cluster.controller("c1").apps]
    assert "forwarding" in names  # the paper's custom reactive module

    sim2 = Simulator(seed=2)
    cluster2, _ = build_odl_cluster(sim2, n=1,
                                    profile=odl_profile(proactive=True))
    names2 = [app.name for app in cluster2.controller("c1").apps]
    assert "proactive" in names2
    assert "forwarding" not in names2
