"""Integration tests: every fault in the paper is detected and attributed.

These are the Table 1 / §VII-A1 claims: T1 faults via consensus, T2 via the
network/cache sanity check, T3 via administrator policies — in the worst
case configuration shape (full replication).
"""

import pytest

from repro.core.alarms import AlarmReason
from repro.faults import (
    CrashFault,
    FaultClass,
    FaultyProactiveFault,
    FlowDeletionFailureFault,
    FlowInstantiationFailureFault,
    LinkDetectionInconsistencyFault,
    LinkFailureFault,
    OdlFlowModDropFault,
    OdlIncorrectFlowModFault,
    OnosDatabaseLockFault,
    OnosMasterElectionFault,
    PendingAddFault,
    ResponseCorruptionFault,
    ResponseOmissionFault,
    TimingFault,
    UndesirableFlowModFault,
)
from repro.faults.base import run_scenario
from repro.faults.injector import FaultDriver, default_policy_engine
from repro.api import Jury
from repro.config import JuryConfig


def build(kind="onos", seed=50):
    exp = Jury.experiment(JuryConfig(
        kind=kind, n=7, k=6, switches=12, seed=seed,
        timeout_ms=250.0 if kind == "onos" else 1200.0,
        policy_engine=default_policy_engine(), with_northbound=True))
    exp.warmup()
    return exp


def assert_detected(kind, scenario):
    exp = build(kind)
    result = run_scenario(exp, scenario)
    assert result.detected, (
        f"{scenario.name} not detected; alarms={result.all_alarms}")
    if scenario.expected_offender is not None:
        assert result.attribution_correct, (
            f"{scenario.name} misattributed: {result.matching_alarms}")
    return result


# --- Real faults (§III-B) ---------------------------------------------

def test_onos_database_locking_detected():
    result = assert_detected("onos", OnosDatabaseLockFault("c1"))
    assert result.matching_alarms[0].reason == AlarmReason.PRIMARY_OMISSION


def test_onos_master_election_detected():
    assert_detected("onos", OnosMasterElectionFault(1, 2))


def test_odl_flow_mod_drop_detected():
    result = assert_detected("odl", OdlFlowModDropFault("c1"))
    assert result.matching_alarms[0].reason == AlarmReason.SANITY_MISMATCH


def test_odl_incorrect_flow_mod_detected_by_policy():
    result = assert_detected("odl", OdlIncorrectFlowModFault("c1"))
    assert result.matching_alarms[0].reason == AlarmReason.POLICY_VIOLATION


def test_odl_incorrect_flow_mod_undetected_without_policy():
    """T3 is invisible to consensus and sanity — policies are required."""
    exp = Jury.experiment(JuryConfig(kind="odl", n=7, k=6, switches=12, seed=51,
                           timeout_ms=1200.0, policy_engine=None,
                           with_northbound=True))
    exp.warmup()
    result = run_scenario(exp, OdlIncorrectFlowModFault("c1"))
    assert not result.detected


# --- Synthetic faults (§VII-A1) ---------------------------------------

def test_synthetic_link_failure_detected():
    result = assert_detected("onos", LinkFailureFault(1, 2))
    assert result.matching_alarms[0].reason == AlarmReason.CONSENSUS_MISMATCH


def test_synthetic_undesirable_flow_mod_detected():
    assert_detected("onos", UndesirableFlowModFault("c2"))


def test_synthetic_faulty_proactive_detected():
    result = assert_detected("onos", FaultyProactiveFault("c3"))
    assert result.matching_alarms[0].reason == AlarmReason.POLICY_VIOLATION


def test_synthetic_faulty_proactive_needs_policy():
    exp = Jury.experiment(JuryConfig(kind="onos", n=7, k=6, switches=12, seed=52,
                           timeout_ms=250.0, policy_engine=None))
    exp.warmup()
    result = run_scenario(exp, FaultyProactiveFault("c3"))
    assert not result.detected  # T3: consensus/sanity cannot see it


# --- Appendix faults ---------------------------------------------------

def test_flow_deletion_failure_detected():
    assert_detected("odl", FlowDeletionFailureFault("c1"))


def test_link_detection_inconsistency_detected():
    assert_detected("onos", LinkDetectionInconsistencyFault(2, 3))


def test_flow_instantiation_failure_detected():
    assert_detected("odl", FlowInstantiationFailureFault("c1"))


def test_pending_add_detected():
    result = assert_detected("onos", PendingAddFault(4))
    assert result.matching_alarms[0].reason == AlarmReason.POLICY_VIOLATION


# --- Generic failure classes (§III-B) ----------------------------------

def test_crash_reported_as_omission():
    result = assert_detected("onos", CrashFault("c1"))
    assert result.matching_alarms[0].reason == AlarmReason.PRIMARY_OMISSION


def test_response_omission_detected():
    assert_detected("onos", ResponseOmissionFault("c2"))


def test_timing_fault_detected():
    assert_detected("onos", TimingFault("c3"))


def test_response_corruption_detected():
    result = assert_detected("onos", ResponseCorruptionFault("c1"))
    assert result.matching_alarms[0].reason == AlarmReason.CONSENSUS_MISMATCH


# --- Detection latency bounds (§VII-A1) ---------------------------------

def test_onos_detection_within_timeout_bound():
    """ONOS faults detected in sub-second time, ~the validation timeout."""
    exp = build("onos")
    result = run_scenario(exp, OnosDatabaseLockFault("c1"))
    assert result.detected
    assert result.detection_ms < 2 * 250.0 + 100.0


def test_odl_detection_within_timeout_bound():
    exp = build("odl")
    result = run_scenario(exp, OdlFlowModDropFault("c1"))
    assert result.detected
    assert result.detection_ms < 2 * 1200.0 + 100.0


# --- The driver (repetitions) -------------------------------------------

def test_fault_driver_repeats_and_aggregates():
    driver = FaultDriver(lambda seed: Jury.experiment(JuryConfig(
        kind="onos", n=5, k=4, switches=8, seed=seed, timeout_ms=250.0,
        policy_engine=default_policy_engine(), with_northbound=True)))
    report = driver.run(lambda: UndesirableFlowModFault("c2"), repetitions=3)
    assert report.runs == 3
    assert report.detected == 3
    assert report.detection_rate == 1.0
    assert report.attribution_correct == 3
    assert report.max_detection_ms is not None


def test_fault_classes_assigned():
    assert OnosDatabaseLockFault().fault_class == FaultClass.T1
    assert OdlFlowModDropFault().fault_class == FaultClass.T2
    assert OdlIncorrectFlowModFault().fault_class == FaultClass.T3
    assert UndesirableFlowModFault().fault_class == FaultClass.T2
    assert FaultyProactiveFault().fault_class == FaultClass.T3


def test_store_desync_detected_by_staleness_monitor():
    from repro.faults import StoreDesyncFault

    result = assert_detected("onos", StoreDesyncFault("c2"))
    assert result.matching_alarms[0].reason == AlarmReason.STALE_REPLICA


def test_store_desync_invisible_to_per_trigger_consensus():
    """With the staleness monitor off, the desync passes silently —
    state-aware consensus cannot distinguish it from transient asynchrony."""
    from repro.faults import StoreDesyncFault

    exp = Jury.experiment(JuryConfig(kind="onos", n=7, k=6, switches=12, seed=53,
                           timeout_ms=250.0, with_northbound=True))
    exp.warmup()
    exp.validator.staleness_threshold = None
    scenario = StoreDesyncFault("c2")
    scenario.inject(exp)
    exp.validator.staleness_threshold = None  # inject() re-enables it
    result = run_scenario(exp, _NoopInject(scenario))
    stale = [a for a in result.all_alarms
             if a.reason == AlarmReason.STALE_REPLICA]
    assert not stale


class _NoopInject:
    """Wraps an already-injected scenario so run_scenario skips inject()."""

    def __init__(self, scenario):
        self._scenario = scenario
        self.name = scenario.name
        self.expected_reasons = scenario.expected_reasons
        self.expected_offender = None

    def inject(self, experiment):
        pass

    def trigger(self, experiment):
        self._scenario.trigger(experiment)

    def settle_ms(self, experiment):
        return self._scenario.settle_ms(experiment)


def test_fault_combination_all_members_detected():
    """§VII-A1: combinations of faults in different parts of the network."""
    from repro.faults import UndesirableFlowModFault, FaultyProactiveFault
    from repro.faults.combination import run_combination

    exp = build("onos")
    results = run_combination(exp, [
        UndesirableFlowModFault("c2"),
        FaultyProactiveFault("c3"),
    ])
    assert len(results) == 2
    for result in results:
        assert result.detected, result.scenario
        assert result.attribution_correct


def test_fault_combination_attribution_separates_offenders():
    from repro.faults import UndesirableFlowModFault
    from repro.faults.combination import run_combination

    exp = build("onos", seed=54)
    results = run_combination(exp, [
        UndesirableFlowModFault("c2", dpid=2),
        UndesirableFlowModFault("c4", dpid=4),
    ])
    blamed = {r.matching_alarms[0].offending_controller for r in results}
    assert blamed == {"c2", "c4"}


def test_combination_requires_members():
    from repro.faults.combination import CombinationScenario

    with pytest.raises(ValueError):
        CombinationScenario([])
