"""Tests for trigger replication and the per-replica JURY module."""

import pytest

from repro.api import Jury
from repro.config import JuryConfig


@pytest.fixture
def exp():
    experiment = Jury.experiment(JuryConfig(kind="onos", n=5, k=3, switches=4, seed=66,
                                  timeout_ms=250.0, with_northbound=True))
    experiment.warmup()
    return experiment


def responses_for(validator, predicate):
    matching = []
    for result in validator.results:
        for alarm in result.alarms:
            matching.extend(alarm.responses)
    return [r for r in matching if predicate(r)]


def test_replicator_fans_out_to_k_secondaries(exp):
    shadows_before = exp.jury.total_shadow_triggers()
    hosts = exp.topology.host_list()
    hosts[0].open_connection(hosts[2])
    exp.run(800.0)
    shadows = exp.jury.total_shadow_triggers() - shadows_before
    # Each PACKET_IN along the path shadowed at exactly k secondaries.
    assert shadows > 0
    assert shadows % exp.jury.k == 0


def test_replicated_triggers_tagged_with_same_tau(exp):
    """The primary's context and the replicas' taints share one τ."""
    hosts = exp.topology.host_list()
    hosts[0].open_connection(hosts[1])
    exp.run(800.0)
    # Full consensus means primary + replica responses were keyed together.
    full = [r for r in exp.validator.results
            if r.external and not r.timed_out]
    assert full
    assert all(r.n_responses == 2 * exp.jury.k + 2 for r in full)


def test_lldp_probes_not_validated(exp):
    """LLDP PACKET_OUTs are whitelisted: no network-only trigger noise."""
    decided_before = exp.validator.triggers_decided
    exp.run(2000.0)  # two LLDP rounds, no traffic
    results = exp.validator.results[decided_before:]
    # LLDP PACKET_INs that rewrite nothing decide empty at the timer; none
    # may alarm (a probe emission is not a T2 network-only write).
    assert all(r.ok for r in results)


def test_module_jitter_positive_and_load_sensitive(exp):
    module = exp.jury.modules["c1"]
    samples = [module._jitter() for _ in range(200)]
    assert all(s > 0 for s in samples)
    median = sorted(samples)[100]
    profile = module.controller.profile
    assert median < profile.jitter_median_ms * 5


def test_replicator_skips_duplicate_switch_connects(exp):
    replicator = exp.jury.replicators[1]
    from repro.openflow.messages import FeaturesReply

    count_before = replicator.triggers_replicated
    # A duplicate FEATURES_REPLY for an already-seen dpid is not replicated.
    replicator._on_switch_trigger(FeaturesReply(dpid=1, ports=(1,)))
    assert replicator.triggers_replicated == count_before


def test_dead_controller_ignores_replicated_triggers(exp):
    controller = exp.cluster.controller("c2")
    controller.alive = False
    module = exp.jury.modules["c2"]
    shadows_before = module.shadow_triggers
    hosts = exp.topology.host_list()
    for host in hosts:
        host.open_connection(hosts[0] if host is not hosts[0] else hosts[1])
    exp.run(800.0)
    assert module.shadow_triggers == shadows_before


def test_validator_channel_counts_bytes(exp):
    before = exp.jury.validator_counter.bytes
    hosts = exp.topology.host_list()
    hosts[0].open_connection(hosts[3])
    exp.run(800.0)
    assert exp.jury.validator_counter.bytes > before


def test_mastership_chatter_charges_store_counter(exp):
    before = exp.store.counter.bytes
    hosts = exp.topology.host_list()
    hosts[0].open_connection(hosts[3])
    exp.run(800.0)
    assert exp.store.counter.bytes > before


def test_promise_holds_network_bundle_for_slow_flow_mod(exp):
    """A FLOW_MOD delayed in egress still lands in the same bundle."""
    from repro.sim.latency import Fixed

    controller = exp.cluster.controller("c1")
    # Make egress slow (but below the promise hold cap).
    controller.egress.service_time = Fixed(20.0)
    hosts = exp.topology.host_list()
    src = hosts[0]  # attached to s1, mastered by c1
    src.open_connection(hosts[3])
    exp.run(1500.0)
    assert exp.validator.triggers_alarmed == 0
