"""Tests for the OpenFlow wire encoding and control-plane record/replay."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import OpenFlowError, WorkloadError
from repro.net.packet import lldp_probe, tcp_packet
from repro.openflow import wire
from repro.openflow.actions import ActionDrop, ActionFlood, ActionOutput
from repro.openflow.constants import FlowModCommand
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    EchoRequest,
    FeaturesReply,
    FlowMod,
    Hello,
    PacketIn,
    PacketOut,
)


def roundtrip(message):
    decoded, rest = wire.decode(wire.encode(message))
    assert rest == b""
    return decoded


def test_header_only_messages_roundtrip():
    for message in (Hello(), EchoRequest(), BarrierReply()):
        decoded = roundtrip(message)
        assert type(decoded) is type(message)
        assert decoded.xid == message.xid


def test_features_reply_roundtrip():
    decoded = roundtrip(FeaturesReply(dpid=42, ports=(1, 2, 3)))
    assert decoded.dpid == 42
    assert decoded.ports == (1, 2, 3)


def test_packet_in_roundtrip_with_tcp_packet():
    packet = tcp_packet("aa", "bb", "10.0.0.1", "10.0.0.2", 5, 80,
                        flow_id=9)
    message = PacketIn(dpid=3, in_port=2, packet=packet, buffer_id=17)
    decoded = roundtrip(message)
    assert decoded.dpid == 3
    assert decoded.buffer_id == 17
    assert decoded.packet == packet


def test_packet_in_roundtrip_with_lldp():
    message = PacketIn(dpid=1, in_port=1,
                       packet=lldp_probe(7, 2, controller_id="c3"))
    decoded = roundtrip(message)
    assert decoded.packet.payload.src_dpid == 7
    assert decoded.packet.payload.controller_id == "c3"


def test_flow_mod_roundtrip():
    packet = tcp_packet("aa", "bb", "10.0.0.1", "10.0.0.2", 5, 80)
    message = FlowMod(dpid=4, command=FlowModCommand.DELETE,
                      match=Match.for_flow(packet, in_port=1),
                      actions=(ActionOutput(3), ActionDrop(), ActionFlood()),
                      priority=77, idle_timeout=5.0, cookie=99)
    decoded = roundtrip(message)
    assert decoded.command == FlowModCommand.DELETE
    assert decoded.match == message.match
    assert decoded.actions == message.actions
    assert decoded.priority == 77
    assert decoded.cookie == 99


def test_packet_out_roundtrip():
    message = PacketOut(dpid=2, in_port=4, buffer_id=None,
                        actions=(ActionOutput(1),))
    decoded = roundtrip(message)
    assert decoded.buffer_id is None
    assert decoded.actions == (ActionOutput(1),)


def test_decode_all_stream():
    stream = wire.encode(Hello()) + wire.encode(EchoRequest())
    messages = wire.decode_all(stream)
    assert [type(m) for m in messages] == [Hello, EchoRequest]


def test_decode_rejects_garbage():
    with pytest.raises(OpenFlowError):
        wire.decode(b"\x00\x01")
    with pytest.raises(OpenFlowError):
        wire.decode(b"\x09" + wire.encode(Hello())[1:])  # bad version
    truncated = wire.encode(FeaturesReply(dpid=1, ports=(1,)))[:-3]
    with pytest.raises(OpenFlowError):
        wire.decode(truncated)


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_xid_preserved(xid):
    decoded = roundtrip(Hello(xid=xid))
    assert decoded.xid == xid


@given(st.integers(min_value=1, max_value=2**32),
       st.lists(st.integers(min_value=1, max_value=65535), max_size=16))
def test_features_reply_roundtrip_property(dpid, ports):
    decoded = roundtrip(FeaturesReply(dpid=dpid, ports=tuple(ports)))
    assert decoded.dpid == dpid
    assert decoded.ports == tuple(ports)


# ----------------------------------------------------------------------
# Recorder / replayer
# ----------------------------------------------------------------------

def build_cluster(seed):
    from repro.controllers.onos import build_onos_cluster
    from repro.net.topology import linear_topology
    from repro.sim.simulator import Simulator

    sim = Simulator(seed=seed)
    topo = linear_topology(sim, 4)
    cluster, _ = build_onos_cluster(sim, n=2)
    cluster.connect_topology(topo)
    cluster.start()
    sim.run(until=2500.0)
    hosts = topo.host_list()
    for index, host in enumerate(hosts):
        sim.schedule(index * 2.0, host.send_arp_request,
                     hosts[(index + 1) % 4].ip)
    sim.run(until=sim.now + 500.0)
    return sim, topo, cluster


def test_recorder_captures_packet_ins():
    from repro.workloads.recorder import ControlPlaneRecorder

    sim, topo, cluster = build_cluster(seed=200)
    recorder = ControlPlaneRecorder(cluster)
    recorder.start()
    hosts = topo.host_list()
    hosts[0].open_connection(hosts[3])
    sim.run(until=sim.now + 800.0)
    recorder.stop()
    assert len(recorder) > 0
    assert all(isinstance(r.message, PacketIn) for r in recorder.records)
    # Stopped: further traffic is not recorded.
    count = len(recorder)
    hosts[1].open_connection(hosts[2])
    sim.run(until=sim.now + 800.0)
    assert len(recorder) == count


def test_recording_dump_load_roundtrip():
    from repro.workloads.recorder import ControlPlaneRecorder

    sim, topo, cluster = build_cluster(seed=201)
    recorder = ControlPlaneRecorder(cluster)
    recorder.start()
    hosts = topo.host_list()
    hosts[0].open_connection(hosts[3])
    sim.run(until=sim.now + 800.0)
    data = recorder.dump()
    loaded = ControlPlaneRecorder.load(data)
    assert len(loaded) == len(recorder)
    for original, reloaded in zip(recorder.records, loaded):
        assert reloaded.dpid == original.dpid
        assert abs(reloaded.time_ms - original.time_ms) < 1e-9
        assert type(reloaded.message) is type(original.message)


def test_load_rejects_corrupt_recording():
    from repro.workloads.recorder import ControlPlaneRecorder

    with pytest.raises(WorkloadError):
        ControlPlaneRecorder.load(b"\x00" * 7)


def test_replay_reproduces_flow_installs():
    from repro.workloads.recorder import ControlPlaneRecorder, TraceReplayer

    sim, topo, cluster = build_cluster(seed=202)
    recorder = ControlPlaneRecorder(cluster)
    recorder.start()
    hosts = topo.host_list()
    hosts[0].open_connection(hosts[3])
    sim.run(until=sim.now + 800.0)
    recorder.stop()
    rules_before = sum(len(s.table) for s in topo.switches.values())
    assert rules_before > 0

    # Replay the recording into a FRESH cluster (same topology shape).
    sim2, topo2, cluster2 = build_cluster(seed=202)
    replayer = TraceReplayer(sim2, cluster2,
                             ControlPlaneRecorder.load(recorder.dump()))
    replayer.start()
    sim2.run(until=sim2.now + 1500.0)
    assert replayer.replayed == len(recorder)
    rules_after = sum(len(s.table) for s in topo2.switches.values())
    assert rules_after >= rules_before


def test_replay_speedup_validation():
    from repro.workloads.recorder import TraceReplayer

    sim, topo, cluster = build_cluster(seed=203)
    with pytest.raises(WorkloadError):
        TraceReplayer(sim, cluster, [], speedup=0.0)
