"""Tests for the flow table: priorities, exact-match fast path, deletion."""

from repro.net.packet import tcp_packet
from repro.openflow.actions import ActionDrop, ActionOutput
from repro.openflow.flowtable import FlowEntry, FlowTable
from repro.openflow.match import Match


def tcp(sport=1000):
    return tcp_packet("aa", "bb", "10.0.0.1", "10.0.0.2", sport, 80)


def exact_entry(packet, port=2, priority=100, in_port=1):
    return FlowEntry(match=Match.for_flow(packet, in_port=in_port),
                     actions=(ActionOutput(port),), priority=priority)


def test_lookup_hits_exact_entry():
    table = FlowTable()
    packet = tcp()
    table.add(exact_entry(packet))
    found = table.lookup(packet, in_port=1)
    assert found is not None
    assert found.actions == (ActionOutput(2),)
    assert table.lookup(packet, in_port=9) is None


def test_lookup_miss_returns_none():
    table = FlowTable()
    assert table.lookup(tcp(), in_port=1) is None


def test_priority_order_among_wildcards():
    table = FlowTable()
    low = FlowEntry(match=Match(dl_dst="bb"), actions=(ActionOutput(1),), priority=10)
    high = FlowEntry(match=Match(dl_dst="bb"), actions=(ActionOutput(2),), priority=50)
    table.add(low)
    table.add(high)
    found = table.lookup(tcp(), in_port=1)
    assert found.actions == (ActionOutput(2),)


def test_higher_priority_wildcard_beats_exact():
    table = FlowTable()
    packet = tcp()
    table.add(exact_entry(packet, port=2, priority=100))
    table.add(FlowEntry(match=Match(dl_dst="bb"),
                        actions=(ActionDrop(),), priority=200))
    found = table.lookup(packet, in_port=1)
    assert found.actions == (ActionDrop(),)


def test_exact_beats_lower_priority_wildcard():
    table = FlowTable()
    packet = tcp()
    table.add(exact_entry(packet, port=2, priority=100))
    table.add(FlowEntry(match=Match(dl_dst="bb"),
                        actions=(ActionDrop(),), priority=50))
    found = table.lookup(packet, in_port=1)
    assert found.actions == (ActionOutput(2),)


def test_duplicate_add_replaces():
    table = FlowTable()
    packet = tcp()
    table.add(exact_entry(packet, port=2))
    table.add(exact_entry(packet, port=3))
    assert len(table) == 1
    assert table.lookup(packet, in_port=1).actions == (ActionOutput(3),)


def test_delete_exact():
    table = FlowTable()
    packet = tcp()
    entry = exact_entry(packet)
    table.add(entry)
    assert table.delete(entry.match) == 1
    assert len(table) == 0
    assert table.delete(entry.match) == 0


def test_delete_strict_requires_priority():
    table = FlowTable()
    packet = tcp()
    entry = exact_entry(packet, priority=77)
    table.add(entry)
    assert table.delete(entry.match, strict_priority=10) == 0
    assert table.delete(entry.match, strict_priority=77) == 1


def test_delete_wildcard():
    table = FlowTable()
    match = Match(dl_dst="bb")
    table.add(FlowEntry(match=match, actions=(ActionOutput(1),), priority=5))
    assert table.delete(match) == 1


def test_find_returns_installed_entry():
    table = FlowTable()
    packet = tcp()
    entry = exact_entry(packet, priority=42)
    table.add(entry)
    assert table.find(entry.match, 42) is entry
    assert table.find(entry.match, 43) is None


def test_iteration_covers_exact_and_wildcard():
    table = FlowTable()
    table.add(exact_entry(tcp(1)))
    table.add(FlowEntry(match=Match(dl_dst="bb"), actions=(), priority=1))
    assert len(list(table)) == 2
    assert len(table.entries) == 2


def test_hit_statistics_updated_by_switch_usage():
    entry = exact_entry(tcp())
    assert entry.packets == 0
    entry.packets += 1
    entry.bytes += 74
    assert entry.packets == 1


def test_expire_idle():
    table = FlowTable()
    packet = tcp()
    entry = FlowEntry(match=Match.for_flow(packet, in_port=1),
                      actions=(ActionOutput(1),), idle_timeout=10.0,
                      installed_at=0.0, last_hit=0.0)
    table.add(entry)
    assert table.expire_idle(now=5.0) == 0
    assert table.expire_idle(now=50.0) == 1
    assert len(table) == 0


def test_scaling_many_exact_entries_constant_lookup():
    table = FlowTable()
    for sport in range(2000):
        table.add(exact_entry(tcp(sport)))
    assert len(table) == 2000
    packet = tcp(1500)
    found = table.lookup(packet, in_port=1)
    assert found is not None
