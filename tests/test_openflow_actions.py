"""Dedicated tests for OpenFlow actions and constants."""

from repro.openflow.actions import (
    ActionController,
    ActionDrop,
    ActionFlood,
    ActionOutput,
    canonical_actions,
)
from repro.openflow.constants import (
    OFPP_CONTROLLER,
    OFPP_FLOOD,
    OFPP_LOCAL,
    OFPP_NONE,
    FlowModCommand,
    FlowState,
)


def test_action_canonicals_are_distinct():
    canonicals = {
        ActionOutput(1).canonical(),
        ActionOutput(2).canonical(),
        ActionFlood().canonical(),
        ActionController().canonical(),
        ActionDrop().canonical(),
    }
    assert len(canonicals) == 5


def test_flood_and_controller_use_reserved_ports():
    assert ActionFlood().canonical() == ("output", OFPP_FLOOD)
    assert ActionController().canonical() == ("output", OFPP_CONTROLLER)


def test_reserved_ports_in_of10_range():
    for port in (OFPP_LOCAL, OFPP_FLOOD, OFPP_CONTROLLER, OFPP_NONE):
        assert 0xFF00 <= port <= 0xFFFF
    assert len({OFPP_LOCAL, OFPP_FLOOD, OFPP_CONTROLLER, OFPP_NONE}) == 4


def test_actions_hashable_and_equal_by_value():
    assert ActionOutput(3) == ActionOutput(3)
    assert ActionOutput(3) != ActionOutput(4)
    assert len({ActionDrop(), ActionDrop()}) == 1


def test_canonical_actions_preserves_order():
    actions = (ActionOutput(2), ActionDrop(), ActionOutput(1))
    assert canonical_actions(actions) == (
        ("output", 2), ("drop",), ("output", 1))


def test_flow_mod_commands_complete():
    assert {c.value for c in FlowModCommand} == {
        "add", "modify", "delete", "delete_strict"}


def test_flow_states_cover_onos_lifecycle():
    assert {s.value for s in FlowState} == {
        "pending_add", "added", "pending_remove", "removed"}
