"""Full-stack tests for the policy Destination directive (Table 2).

LOCAL/REMOTE resolve through the validator's mastership lookup: a flow
write is LOCAL when the acting controller masters the affected switch.
"""


from repro.api import Jury
from repro.config import JuryConfig
from repro.openflow.actions import ActionOutput
from repro.openflow.match import Match
from repro.policy import Policy, PolicyEngine


def build_with_policy(policy, seed=190):
    exp = Jury.experiment(JuryConfig(kind="onos", n=3, k=2, switches=6, seed=seed,
                           timeout_ms=250.0,
                           policy_engine=PolicyEngine([policy]),
                           with_northbound=True))
    exp.warmup()
    return exp


def install(exp, via, dpid, mac, priority):
    exp.northbound.add_flow(via, dpid, Match.for_destination(mac),
                            (ActionOutput(1),), priority=priority)
    exp.run(1500.0)


def test_remote_flow_policy_fires_only_for_remote_installs():
    # Deny flow installs whose target switch is NOT mastered by the caller.
    policy = Policy(allow=False, cache="FlowsDB", destination="remote",
                    name="no-remote-installs")
    exp = build_with_policy(policy)
    # dpid 1 is mastered by c1: a local install via c1 — allowed.
    install(exp, "c1", 1, "aa:00:00:00:00:01", 71)
    assert exp.validator.triggers_alarmed == 0
    # dpid 2 is mastered by c2: install via c1 is remote — denied.
    install(exp, "c1", 2, "aa:00:00:00:00:02", 72)
    violations = [a for a in exp.validator.alarms
                  if a.reason.value == "policy_violation"]
    assert violations
    assert "no-remote-installs" in violations[0].detail


def test_local_flow_policy_fires_only_for_local_installs():
    policy = Policy(allow=False, cache="FlowsDB", destination="local",
                    name="no-local-installs")
    exp = build_with_policy(policy, seed=191)
    install(exp, "c1", 2, "aa:00:00:00:00:03", 73)  # remote: allowed
    assert exp.validator.triggers_alarmed == 0
    install(exp, "c1", 1, "aa:00:00:00:00:04", 74)  # local: denied
    assert any(a.reason.value == "policy_violation"
               for a in exp.validator.alarms)


def test_controller_scoped_policy():
    policy = Policy(allow=False, controller="c2", cache="FlowsDB",
                    name="c2-may-not-install")
    exp = build_with_policy(policy, seed=192)
    install(exp, "c1", 1, "aa:00:00:00:00:05", 75)
    assert exp.validator.triggers_alarmed == 0
    install(exp, "c2", 2, "aa:00:00:00:00:06", 76)
    violations = [a for a in exp.validator.alarms
                  if a.reason.value == "policy_violation"]
    assert violations
    assert violations[0].offending_controller == "c2"
