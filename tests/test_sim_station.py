"""Tests for service stations: queueing, saturation, collapse, holds."""

from repro.sim.latency import Fixed
from repro.sim.simulator import Simulator
from repro.sim.station import ServiceStation


def make(sim, service=1.0, **kwargs):
    return ServiceStation(sim, Fixed(service), **kwargs)


def test_fifo_service_order():
    sim = Simulator()
    station = make(sim)
    done = []
    for i in range(3):
        station.submit(i, done.append)
    sim.run()
    assert done == [0, 1, 2]
    assert sim.now == 3.0  # serialized at 1 ms each


def test_completion_rate_limited_by_service_time():
    sim = Simulator()
    station = make(sim, service=2.0)
    for i in range(10):
        sim.schedule(i * 0.1, station.submit, i, lambda w: None)
    sim.run(until=10.0)
    # 10 ms window / 2 ms service = at most 5 completions.
    assert station.stats.completed == 5


def test_bounded_queue_drops():
    sim = Simulator()
    station = make(sim, capacity=2)
    accepted = [station.submit(i, lambda w: None) for i in range(5)]
    # First goes into service; two queue; rest dropped.
    assert accepted == [True, True, True, False, False]
    assert station.stats.dropped == 2
    sim.run()
    assert station.stats.completed == 3


def test_collapse_on_overload():
    sim = Simulator()
    station = make(sim, collapse_threshold=3, collapse_recovery=100.0)
    for i in range(6):
        station.submit(i, lambda w: None)
    assert station.stalled
    # Everything queued was discarded; arrivals during the stall are dropped.
    assert not station.submit(99, lambda w: None)
    sim.run(until=50.0)
    assert station.stats.completed <= 1  # at most the one already in service
    # After recovery the station accepts again.
    sim.run(until=150.0)
    assert station.submit(100, lambda w: None)


def test_done_return_value_extends_busy_time():
    sim = Simulator()
    station = make(sim, service=1.0)
    done_times = []

    def slow_handler(work):
        done_times.append(sim.now)
        return 4.0  # synchronous store cost

    station.submit("a", slow_handler)
    station.submit("b", slow_handler)
    sim.run()
    # b starts only after a's service (1) + extra (4).
    assert done_times == [1.0, 6.0]


def test_done_returning_true_is_not_extra_time():
    sim = Simulator()
    station = make(sim, service=1.0)
    done_times = []

    def bool_handler(work):
        done_times.append(sim.now)
        return True  # e.g. a submit() result leaking through

    station.submit("a", bool_handler)
    station.submit("b", bool_handler)
    sim.run()
    assert done_times == [1.0, 2.0]


def test_hold_steals_capacity_without_counting():
    sim = Simulator()
    station = make(sim, service=1.0)
    done = []
    station.submit("a", done.append)
    station.hold(10.0)
    station.submit("b", done.append)
    sim.run()
    assert done == ["a", "b"]
    assert sim.now == 12.0  # 1 + 10 (hold) + 1
    assert station.stats.completed == 2  # holds are not completions
    assert station.stats.submitted == 2  # nor arrivals


def test_service_override():
    sim = Simulator()
    station = make(sim, service=1.0)
    station.submit("x", lambda w: None, service_override=7.0)
    sim.run()
    assert sim.now == 7.0


def test_backlog_property():
    sim = Simulator()
    station = make(sim)
    for i in range(4):
        station.submit(i, lambda w: None)
    assert station.backlog == 3  # one in service


def test_record_completions():
    sim = Simulator()
    station = ServiceStation(sim, Fixed(2.0), record_completions=True)
    station.submit(1, lambda w: None)
    station.submit(2, lambda w: None)
    sim.run()
    assert station.stats.completion_times == [2.0, 4.0]
