"""Tests for the controller base: triggers, side-effects, shadow mode."""

import pytest

from repro.controllers.context import Taint, TriggerContext
from repro.controllers.onos import OnosController
from repro.controllers.profile import onos_profile
from repro.datastore.caches import FLOWSDB, SWITCHESDB
from repro.datastore.hazelcast import HazelcastCluster
from repro.openflow.actions import ActionOutput
from repro.openflow.match import Match
from repro.openflow.messages import FeaturesReply, FlowMod, PacketOut
from repro.sim.simulator import Simulator


@pytest.fixture
def controller():
    sim = Simulator(seed=5)
    store = HazelcastCluster(sim)
    node = store.create_node("c1")
    return OnosController(sim, "c1", node)


def test_cache_write_lands_in_store(controller):
    ctx = TriggerContext.external_trigger()
    controller.cache_write("X", "k", 1, ctx=ctx)
    assert controller.store.get("X", "k") == 1
    assert ctx.pending_cost > 0


def test_cache_write_tags_trigger(controller):
    ctx = TriggerContext.external_trigger()
    events = []
    controller.store.add_listener(lambda n, e: events.append(e))
    controller.cache_write("X", "k", 1, ctx=ctx)
    assert events[0].tau == ctx.trigger_id


def test_shadow_cache_write_is_captured_not_applied(controller):
    taint = Taint(trigger_id=("ext", 1), primary_id="c9")
    ctx = TriggerContext.replica_of(taint)
    controller.cache_write("X", "k", 1, ctx=ctx)
    assert controller.store.get("X", "k") is None
    assert len(ctx.captured_cache) == 1


def test_shadow_network_write_is_captured_not_sent(controller):
    taint = Taint(trigger_id=("ext", 1), primary_id="c9")
    ctx = TriggerContext.replica_of(taint)
    controller.send_flow_mod(FlowMod(dpid=1, match=Match(),
                                     actions=(ActionOutput(1),)), ctx)
    controller.send_packet_out(PacketOut(dpid=1), ctx)
    controller.sim.run()
    assert controller.flow_mods_sent == 0
    assert controller.packet_outs_sent == 0
    assert len(ctx.captured_network) == 2


def test_cache_delete_shadow_aware(controller):
    real_ctx = TriggerContext.external_trigger()
    controller.cache_write("X", "k", 1, ctx=real_ctx)
    taint = Taint(trigger_id=("ext", 2), primary_id="c9")
    shadow = TriggerContext.replica_of(taint)
    controller.cache_delete("X", "k", ctx=shadow)
    assert controller.store.get("X", "k") == 1  # suppressed
    controller.cache_delete("X", "k", ctx=real_ctx)
    assert controller.store.get("X", "k") is None


def test_egress_drop_probability(controller):
    controller.egress_drop_prob = 1.0
    ctx = TriggerContext.external_trigger()
    controller.send_flow_mod(FlowMod(dpid=1, match=Match(), actions=()), ctx)
    controller.sim.run()
    assert controller.flow_mods_sent == 0
    assert controller.flow_mods_dropped_egress == 1


def test_network_tap_sees_emissions(controller):
    records = []
    controller.network_tap = records.append
    ctx = TriggerContext.external_trigger()
    controller.send_packet_out(PacketOut(dpid=1), ctx)
    assert len(records) == 1
    assert records[0].tau == ctx.trigger_id
    assert records[0].controller_id == "c1"


def test_run_internal_creates_internal_trigger(controller):
    seen = []
    controller.trigger_done_hook = seen.append
    ctx = controller.run_internal("test", lambda c: None)
    assert not ctx.external
    assert ctx.trigger_id[0] == "int"
    assert seen == [ctx]


def test_effective_id_impersonates_primary(controller):
    taint = Taint(trigger_id=("ext", 1), primary_id="c9")
    shadow = TriggerContext.replica_of(taint)
    normal = TriggerContext.external_trigger()
    assert controller.effective_id(shadow) == "c9"
    assert controller.effective_id(normal) == "c1"


def test_crash_stops_processing(controller):
    controller.crash()
    assert not controller.alive
    from repro.openflow.messages import PacketIn

    controller.ingress_packet_in(PacketIn(dpid=1, in_port=1))
    assert controller.packet_ins_received == 0


def test_reboot_with_new_election_id(controller):
    controller.crash()
    controller.reboot(election_id=99)
    assert controller.alive
    assert controller.election_id == 99


def test_shadow_switch_connect_captures_switch_write(controller):
    taint = Taint(trigger_id=("ext", 3), primary_id="c1")
    ctx = TriggerContext.replica_of(taint)
    captured = []
    controller.trigger_done_hook = captured.append
    controller.shadow_switch_connect(
        FeaturesReply(dpid=42, ports=(1, 2)), ctx)
    assert captured == [ctx]
    assert len(ctx.captured_cache) == 1
    assert controller.store.get(SWITCHESDB, ("switch", 42)) is None


def test_utilization_estimator(controller):
    assert controller.utilization() == 0.0
    from repro.openflow.messages import PacketIn
    from repro.net.packet import tcp_packet

    sim = controller.sim
    packet = tcp_packet("a", "b", "1.1.1.1", "2.2.2.2", 1, 2)
    for i in range(100):
        sim.schedule(i * 0.1, controller.ingress_packet_in,
                     PacketIn(dpid=1, in_port=1, packet=packet))
    sim.run()
    assert 0.0 < controller.utilization() <= 1.0


def test_app_lookup(controller):
    assert controller.app("forwarding") is not None
    assert controller.app("topology") is not None
    assert controller.app("nonexistent") is None
