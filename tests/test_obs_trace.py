"""The tracing layer: span model, determinism, replay, and lookups.

Trace determinism is the load-bearing property: the same recorded response
stream must produce a byte-identical canonical trace through the
sequential validator and through the pipeline at any shard count —
including streams where triggers time out. These tests drive that with the
synthetic benchmark workload (no live experiment needed); the recorded
live-stream variant lives in test_pipeline_differential.py.
"""

from __future__ import annotations

import json

import pytest

from repro.core.timeouts import StaticTimeout
from repro.core.pipeline import ValidationPipeline
from repro.core.validator import Validator
from repro.harness.bench import synthetic_validation_workload
from repro.obs.trace import (
    ACCEPT,
    ALARM,
    CHECK_CONSENSUS,
    DECIDE,
    INGEST,
    NullTracer,
    Span,
    Tracer,
    active_tracer,
    dump_trace,
    load_trace,
    match_trigger_key,
    span_sort_key,
)
from repro.sim.simulator import Simulator

K = 2
TIMEOUT_MS = 100.0


# ----------------------------------------------------------------------
# Unit behaviour
# ----------------------------------------------------------------------

def test_emit_and_lookup():
    tracer = Tracer()
    tau = ("ext", 7)
    tracer.emit(1.5, tau, INGEST, kind="cache", controller="c1")
    tracer.emit(2.5, tau, DECIDE, verdict="full-count")
    tracer.emit(2.0, ("ext", 8), INGEST, kind="net")
    assert len(tracer) == 3
    assert [s.stage for s in tracer.spans_for(tau)] == [INGEST, DECIDE]
    assert tracer.spans_for("('ext', 7)")[0].attr("controller") == "c1"
    assert tracer.spans_for(("ext", 99)) == []
    assert tracer.stage_counts() == {INGEST: 2, DECIDE: 1}


def test_span_attrs_are_sorted_and_hashable():
    span = Span(at=0.0, trigger_id=("ext", 1), stage=INGEST,
                attrs=(("b", 2), ("a", 1)))
    hash(span)  # frozen dataclass with tuple attrs
    tracer = Tracer()
    emitted = tracer.emit(0.0, ("ext", 1), INGEST, b=2, a=1)
    assert emitted.attrs == (("a", 1), ("b", 2))


def test_canonical_sort_orders_time_trigger_stage():
    tracer = Tracer()
    tracer.emit(2.0, ("ext", 1), DECIDE)
    tracer.emit(1.0, ("ext", 2), INGEST)
    tracer.emit(2.0, ("ext", 1), CHECK_CONSENSUS)
    ordered = sorted(tracer.spans, key=span_sort_key)
    assert [s.stage for s in ordered] == [INGEST, DECIDE, CHECK_CONSENSUS]


def test_null_tracer_normalises_to_none():
    assert active_tracer(None) is None
    assert active_tracer(NullTracer()) is None
    tracer = Tracer()
    assert active_tracer(tracer) is tracer
    assert NullTracer().emit(0.0, ("ext", 1), INGEST) is None


def test_timeline_verdicts():
    tracer = Tracer()
    tau = ("ext", 3)
    assert tracer.timeline(tau).verdict == "undecided"
    tracer.emit(0.0, tau, INGEST)
    tracer.emit(1.0, tau, DECIDE, verdict="full-count")
    assert tracer.timeline(tau).verdict == "undecided"
    tracer.emit(1.0, tau, ALARM, verdict="consensus_mismatch")
    timeline = tracer.timeline(tau)
    assert timeline.verdict == "alarm:consensus_mismatch"
    assert timeline.decided_at == 1.0
    other = ("ext", 4)
    tracer.emit(2.0, other, ACCEPT, verdict="ok")
    assert tracer.timeline(other).verdict == "accept"
    assert len(timeline.rows()) == 3


def test_match_trigger_key_forms():
    tracer = Tracer()
    tracer.emit(0.0, ("ext", 42), INGEST)
    tracer.emit(0.0, ("int", "c1", 3), INGEST)
    assert match_trigger_key(tracer, "('ext', 42)") == "('ext', 42)"
    assert match_trigger_key(tracer, "ext:42") == "('ext', 42)"
    assert match_trigger_key(tracer, "int:c1:3") == "('int', 'c1', 3)"
    assert match_trigger_key(tracer, "42") == "('ext', 42)"
    assert match_trigger_key(tracer, "nope:1") is None


# ----------------------------------------------------------------------
# Determinism on the synthetic workload (full-count AND timeout paths)
# ----------------------------------------------------------------------

def _run_traced(make_engine, truncate_every: int = 7):
    """Feed the synthetic workload, starving every Nth trigger so that it
    decides by θτ expiry — the timeout path must trace identically too."""
    sim = Simulator(seed=0)
    tracer = Tracer()
    engine = make_engine(sim, tracer)
    workload = synthetic_validation_workload(40, k=K, seed=5, fault_rate=0.2)
    for index, responses in enumerate(workload):
        subset = (responses[: K + 1]
                  if index % truncate_every == 0 else responses)
        for response in subset:
            engine.ingest(response)
    if hasattr(engine, "drain"):
        engine.drain()
    sim.run(until=10 * TIMEOUT_MS)
    return tracer, engine


def _sequential(sim, tracer):
    return Validator(sim, K, timeout=StaticTimeout(TIMEOUT_MS), tracer=tracer)


def _pipeline(shards):
    def make(sim, tracer):
        return ValidationPipeline(sim, K, shards=shards,
                                  timeout=StaticTimeout(TIMEOUT_MS),
                                  tracer=tracer)
    return make


def test_trace_replay_is_deterministic():
    first, _ = _run_traced(_sequential)
    second, _ = _run_traced(_sequential)
    assert first.canonical() == second.canonical()
    assert len(first) > 0


@pytest.mark.parametrize("shards", [1, 4])
def test_trace_is_engine_independent(shards):
    sequential_trace, sequential = _run_traced(_sequential)
    pipeline_trace, pipeline = _run_traced(_pipeline(shards))
    assert pipeline.triggers_decided == sequential.triggers_decided
    assert pipeline_trace.canonical() == sequential_trace.canonical()


def test_timeout_triggers_trace_the_timeout_verdict():
    tracer, engine = _run_traced(_sequential)
    timeout_decides = [s for s in tracer.spans
                       if s.stage == DECIDE and s.verdict == "timeout"]
    full_decides = [s for s in tracer.spans
                    if s.stage == DECIDE and s.verdict == "full-count"]
    assert timeout_decides, "starved triggers must decide by timeout"
    assert full_decides, "fed triggers must decide by full count"
    assert len(timeout_decides) + len(full_decides) == engine.triggers_decided


# ----------------------------------------------------------------------
# Export / reload
# ----------------------------------------------------------------------

def test_payload_roundtrip_preserves_canonical_encoding(tmp_path):
    tracer, _ = _run_traced(_sequential)
    path = str(tmp_path / "trace.json")
    dump_trace(tracer, path)
    reloaded = load_trace(path)
    assert reloaded.canonical() == tracer.canonical()
    assert len(reloaded) == len(tracer)
    assert set(reloaded.trigger_keys()) == set(tracer.trigger_keys())
    payload = json.loads(open(path).read())
    assert payload["format"] == "jury-trace"
    assert payload["span_count"] == len(tracer)


def test_from_payload_rejects_foreign_json():
    with pytest.raises(ValueError):
        Tracer.from_payload({"format": "not-a-trace"})
