"""Integration tests for the full JURY pipeline on a live cluster."""

import pytest

from repro.api import Jury
from repro.config import JuryConfig
from repro.openflow.actions import ActionOutput
from repro.openflow.match import Match


@pytest.fixture(scope="module")
def traffic_run():
    """One warmed-up JURY experiment with a little traffic, shared read-only."""
    exp = Jury.experiment(JuryConfig(kind="onos", n=5, k=4, switches=8, seed=21,
                           timeout_ms=250.0, with_northbound=True))
    exp.warmup()
    hosts = exp.topology.host_list()
    for i in range(6):
        exp.sim.schedule(i * 30.0, hosts[i % 8].open_connection,
                         hosts[(i + 3) % 8])
    exp.run(1500.0)
    return exp


def test_no_false_alarms_on_benign_traffic(traffic_run):
    assert traffic_run.validator.triggers_alarmed == 0
    assert traffic_run.validator.triggers_decided > 0


def test_secondaries_ran_shadow_executions(traffic_run):
    assert traffic_run.jury.total_shadow_triggers() > 0


def test_full_consensus_reached_for_flow_triggers(traffic_run):
    validator = traffic_run.validator
    full = [r for r in validator.results if not r.timed_out and r.external]
    assert full, "expected at least one full 2k+2 consensus"
    k = traffic_run.jury.k
    assert all(r.n_responses >= 2 * k + 2 for r in full)


def test_replication_respects_k():
    exp = Jury.experiment(JuryConfig(kind="onos", n=5, k=2, switches=4, seed=22, timeout_ms=200.0))
    exp.warmup()
    hosts = exp.topology.host_list()
    hosts[0].open_connection(hosts[2])
    exp.run(1000.0)
    # Each external trigger shadows on exactly k secondaries.
    k = exp.jury.k
    validator = exp.validator
    for result in validator.results:
        if result.external and not result.timed_out:
            assert result.n_responses == 2 * k + 2


def test_shadow_execution_causes_no_side_effects():
    exp = Jury.experiment(JuryConfig(kind="onos", n=3, k=2, switches=4, seed=23, timeout_ms=200.0))
    exp.warmup()
    hosts = exp.topology.host_list()
    hosts[0].open_connection(hosts[3])
    exp.run(1000.0)
    # Every switch rule was installed exactly once (no duplicates from
    # secondaries), and FLOW_MOD counts match the primary-only emission.
    switches = exp.topology.switches.values()
    total_switch_rules = sum(len(s.table) for s in switches)
    total_flow_mods = sum(s.flow_mods_received for s in switches)
    assert total_flow_mods == total_switch_rules


def test_rest_triggers_are_replicated_and_validated():
    exp = Jury.experiment(JuryConfig(kind="onos", n=5, k=4, switches=4, seed=24,
                           timeout_ms=250.0, with_northbound=True))
    exp.warmup()
    decided_before = exp.validator.triggers_decided
    match = Match.for_destination("aa:bb:cc:dd:ee:01")
    exp.northbound.add_flow("c1", 1, match, (ActionOutput(1),), priority=99)
    exp.run(1200.0)
    assert exp.validator.triggers_decided > decided_before
    assert exp.validator.triggers_alarmed == 0
    assert exp.topology.switches[1].table.find(match, 99) is not None


def test_rest_to_non_master_installs_via_remote_master():
    exp = Jury.experiment(JuryConfig(kind="onos", n=3, k=2, switches=4, seed=25,
                           timeout_ms=250.0, with_northbound=True))
    exp.warmup()
    # dpid 2 is mastered by c2; send the REST call to c1.
    match = Match.for_destination("aa:bb:cc:dd:ee:02")
    exp.northbound.add_flow("c1", 2, match, (ActionOutput(1),), priority=98)
    exp.run(1200.0)
    assert exp.topology.switches[2].table.find(match, 98) is not None
    assert exp.validator.triggers_alarmed == 0


def test_validator_counters_consistent(traffic_run):
    validator = traffic_run.validator
    assert validator.responses_received >= validator.triggers_decided
    assert validator.triggers_decided == len(validator.results)
    assert validator.triggers_alarmed == sum(
        1 for r in validator.results if r.alarmed)


def test_network_overhead_counters_populated(traffic_run):
    jury = traffic_run.jury
    assert jury.replication_counter.bytes > 0
    assert jury.validator_counter.bytes > 0


def test_odl_jury_round_trip():
    exp = Jury.experiment(JuryConfig(kind="odl", n=3, k=2, switches=4, seed=26,
                           timeout_ms=1200.0))
    exp.warmup()
    hosts = exp.topology.host_list()
    flow_id = hosts[0].open_connection(hosts[3])
    exp.run(3000.0)
    assert hosts[3].received_by_flow.get(flow_id) == 1
    assert exp.validator.triggers_decided > 0
    assert exp.validator.triggers_alarmed == 0
    # ODL replication is encapsulated: decapsulation samples were recorded.
    assert exp.jury.decapsulation_samples()


def test_onos_replication_not_encapsulated(traffic_run):
    assert traffic_run.jury.decapsulation_samples() == []


def test_deployment_rejects_bad_k():
    from repro.errors import ValidationError

    with pytest.raises(ValidationError):
        Jury.experiment(JuryConfig(kind="onos", n=3, k=5, switches=2, seed=1, timeout_ms=200.0))


def test_deployment_requires_wired_topology():
    from repro.controllers.onos import build_onos_cluster
    from repro.errors import ValidationError
    from repro.sim.simulator import Simulator

    sim = Simulator(seed=1)
    cluster, _ = build_onos_cluster(sim, n=3)
    with pytest.raises(ValidationError):
        Jury.build(JuryConfig(k=2, timeout_ms=200.0), cluster=cluster)
