"""Tests for OpenFlow match semantics and the field-prerequisite hierarchy."""

import pytest

from repro.errors import MatchFieldError
from repro.net.packet import EtherType, IpProto, arp_request, tcp_packet
from repro.openflow.match import Match


def tcp():
    return tcp_packet("aa", "bb", "10.0.0.1", "10.0.0.2", 1000, 80)


def test_empty_match_matches_everything():
    match = Match()
    assert match.matches(tcp(), in_port=5)
    assert match.matches(arp_request("x", "1.1.1.1", "2.2.2.2"))
    assert match.specificity() == 0


def test_exact_flow_match():
    packet = tcp()
    match = Match.for_flow(packet, in_port=3)
    assert match.matches(packet, in_port=3)
    assert not match.matches(packet, in_port=4)
    other = tcp_packet("aa", "bb", "10.0.0.1", "10.0.0.2", 1001, 80)
    assert not match.matches(other, in_port=3)


def test_destination_match():
    match = Match.for_destination("bb")
    assert match.matches(tcp(), in_port=1)
    assert not match.matches(
        tcp_packet("aa", "cc", "10.0.0.1", "10.0.0.2", 1, 2))


def test_wildcard_fields_ignored():
    match = Match(dl_type=int(EtherType.IPV4))
    assert match.matches(tcp())
    assert not match.matches(arp_request("x", "1.1.1.1", "2.2.2.2"))


def test_hierarchy_ok_for_full_flow_match():
    match = Match.for_flow(tcp())
    assert match.hierarchy_violations() == ()
    match.validate_hierarchy()  # no raise


def test_nw_fields_require_dl_type():
    match = Match(nw_src="10.0.0.1", nw_dst="10.0.0.2")
    assert set(match.hierarchy_violations()) == {"nw_src", "nw_dst"}
    with pytest.raises(MatchFieldError):
        match.validate_hierarchy()


def test_tp_fields_require_nw_proto():
    match = Match(dl_type=int(EtherType.IPV4), tp_dst=80)
    assert match.hierarchy_violations() == ("tp_dst",)


def test_tp_fields_ok_with_tcp_proto():
    match = Match(dl_type=int(EtherType.IPV4), nw_proto=int(IpProto.TCP), tp_dst=80)
    assert match.hierarchy_violations() == ()


def test_arp_dl_type_permits_nw_fields():
    match = Match(dl_type=int(EtherType.ARP), nw_src="10.0.0.1")
    assert match.hierarchy_violations() == ()


def test_strip_unsupported_fields_reproduces_of10_behaviour():
    bad = Match(nw_src="10.0.0.1", nw_dst="10.0.0.2", dl_dst="bb")
    stripped = bad.strip_unsupported_fields()
    assert stripped.nw_src is None
    assert stripped.nw_dst is None
    assert stripped.dl_dst == "bb"  # valid field preserved
    # The stripped match is broader: the switch/store divergence of the
    # "ODL incorrect FLOW_MOD" fault.
    assert stripped != bad
    assert stripped.hierarchy_violations() == ()


def test_strip_is_identity_for_valid_match():
    match = Match.for_flow(tcp())
    assert match.strip_unsupported_fields() is match


def test_canonical_roundtrip():
    match = Match.for_flow(tcp(), in_port=2)
    rebuilt = Match.from_canonical(match.canonical())
    assert rebuilt == match


def test_canonical_excludes_wildcards():
    match = Match(dl_dst="bb")
    assert match.canonical() == (("dl_dst", "bb"),)


def test_match_is_hashable_and_equal_by_value():
    a = Match.for_destination("xx")
    b = Match.for_destination("xx")
    assert a == b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1
