"""The metrics registry: instruments, determinism, and conservation.

The conservation properties tie the two observability views together: the
tracer's span ledger, the metrics counters, and the engines' own stats
must all agree on how many responses and decisions flowed through — even
when a tiny shard queue forces the overflow path.
"""

from __future__ import annotations

from repro.core.pipeline import ValidationPipeline
from repro.core.timeouts import StaticTimeout
from repro.core.validator import Validator
from repro.harness.bench import synthetic_validation_workload
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_pipeline,
    dump_metrics,
)
from repro.obs.trace import ACCEPT, ALARM, DECIDE, INGEST, LATE_DROP, Tracer
from repro.sim.simulator import Simulator

K = 2
TIMEOUT_MS = 100.0


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------

def test_counter_and_gauge_units():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    gauge = Gauge()
    gauge.set(3.0)
    gauge.max(1.0)
    assert gauge.value == 3.0
    gauge.max(7.0)
    assert gauge.value == 7.0


def test_histogram_percentiles_match_harness_math():
    from repro.harness.metrics import percentile
    histogram = Histogram()
    assert histogram.snapshot() == {"count": 0}
    samples = [float(v) for v in range(1, 101)]
    for value in samples:
        histogram.observe(value)
    assert histogram.count == 100
    assert histogram.percentile(0.5) == percentile(samples, 0.5)
    snapshot = histogram.snapshot()
    assert snapshot["min"] == 1.0 and snapshot["max"] == 100.0


def test_registry_get_or_create_identity_and_label_order():
    registry = MetricsRegistry()
    a = registry.counter("x_total", kind="cache", controller="c1")
    b = registry.counter("x_total", controller="c1", kind="cache")
    assert a is b  # label order never splits a child
    a.inc(3)
    assert registry.value("x_total", controller="c1", kind="cache") == 3
    registry.counter("x_total", kind="net").inc(2)
    assert registry.family_total("x_total") == 5
    assert registry.value("never_touched") == 0


def test_snapshot_is_deterministic_across_feed_order():
    first, second = MetricsRegistry(), MetricsRegistry()
    first.counter("a_total", x=1).inc()
    first.gauge("depth").set(2)
    second.gauge("depth").set(2)
    second.counter("a_total", x=1).inc()
    assert first.snapshot() == second.snapshot()
    assert first.to_json() == second.to_json()
    assert "a_total{x=1}" in first.snapshot()
    assert len(first.rows()) == 2


# ----------------------------------------------------------------------
# Conservation: spans == counters == engine stats
# ----------------------------------------------------------------------

def _run(make_engine, triggers=40, truncate_every=7):
    sim = Simulator(seed=0)
    tracer = Tracer()
    registry = MetricsRegistry()
    engine = make_engine(sim, tracer, registry)
    workload = synthetic_validation_workload(triggers, k=K, seed=5,
                                             fault_rate=0.2)
    fed = 0
    for index, responses in enumerate(workload):
        subset = (responses[: K + 1]
                  if index % truncate_every == 0 else responses)
        for response in subset:
            engine.ingest(response)
            fed += 1
    if hasattr(engine, "drain"):
        engine.drain()
    sim.run(until=10 * TIMEOUT_MS)
    return engine, tracer, registry, fed


def _check_ledger(engine, tracer, registry, fed):
    counts = tracer.stage_counts()
    # Every response fed produced exactly one ingest span and one counter
    # tick, whatever queue/overflow path it took inside the engine.
    assert counts.get(INGEST, 0) == fed
    assert registry.family_total("validator_responses_total") == fed
    assert engine.responses_received == fed
    # Every decision produced one decide span; alarms and accepts
    # partition the decided triggers.
    assert counts.get(DECIDE, 0) == engine.triggers_decided
    assert registry.family_total("validator_decisions_total") == \
        engine.triggers_decided
    assert counts.get(ACCEPT, 0) == \
        engine.triggers_decided - engine.triggers_alarmed
    assert counts.get(ALARM, 0) == len(engine.alarms)
    assert registry.family_total("validator_alarms_total") == \
        len(engine.alarms)
    assert counts.get(LATE_DROP, 0) == engine.late_responses
    assert registry.value("validator_late_responses_total") == \
        engine.late_responses


def test_sequential_conservation():
    engine, tracer, registry, fed = _run(
        lambda sim, tracer, registry: Validator(
            sim, K, timeout=StaticTimeout(TIMEOUT_MS),
            tracer=tracer, metrics=registry))
    assert engine.triggers_decided == 40
    _check_ledger(engine, tracer, registry, fed)


def test_pipeline_conservation_through_overflow():
    # A 2-slot queue forces the overflow ring on nearly every batch; the
    # ledger must still balance exactly.
    engine, tracer, registry, fed = _run(
        lambda sim, tracer, registry: ValidationPipeline(
            sim, K, shards=4, timeout=StaticTimeout(TIMEOUT_MS),
            queue_capacity=2, batch_max=2,
            tracer=tracer, metrics=registry))
    assert engine.triggers_decided == 40
    _check_ledger(engine, tracer, registry, fed)
    assert engine.stats.total("overflow_enqueued") > 0, \
        "queue_capacity=2 must exercise the overflow path"


def test_collect_pipeline_is_idempotent():
    engine, tracer, registry, fed = _run(
        lambda sim, tracer, registry: ValidationPipeline(
            sim, K, shards=2, timeout=StaticTimeout(TIMEOUT_MS),
            tracer=tracer, metrics=registry))
    collect_pipeline(registry, engine)
    first = registry.snapshot()
    collect_pipeline(registry, engine)  # scraping again must not double
    assert registry.snapshot() == first
    assert registry.value("pipeline_responses_routed_total") == fed
    decided = sum(
        registry.value("pipeline_shard_decided_total", shard=i)
        for i in range(2))
    assert decided == engine.triggers_decided


def test_detection_histogram_counts_decisions():
    engine, tracer, registry, fed = _run(
        lambda sim, tracer, registry: Validator(
            sim, K, timeout=StaticTimeout(TIMEOUT_MS),
            tracer=tracer, metrics=registry))
    histogram = registry.histogram("validator_detection_ms")
    assert histogram.count == engine.triggers_decided
    snapshot = registry.snapshot()["validator_detection_ms"]
    assert snapshot["value"]["count"] == engine.triggers_decided


# ----------------------------------------------------------------------
# Stable export encoding (label-set ordering, dump_metrics round-trip)
# ----------------------------------------------------------------------

def test_snapshot_renders_label_sets_in_sorted_order():
    registry = MetricsRegistry()
    # Kwargs order differs between the two series; the rendered keys must
    # not depend on it.
    registry.counter("checks_total", verdict="ok", check="sanity").inc()
    registry.counter("checks_total", check="policy", verdict="fail").inc()
    keys = [key for key in registry.snapshot() if key.startswith("checks")]
    assert keys == ["checks_total{check=policy,verdict=fail}",
                    "checks_total{check=sanity,verdict=ok}"]


def test_dump_metrics_is_stable_across_label_insertion_order(tmp_path):
    def build(flip):
        registry = MetricsRegistry()
        if flip:
            registry.counter("c_total", b="2", a="1").inc(3)
            registry.gauge("g", zone="x", rack="r").set(5.0)
        else:
            registry.counter("c_total", a="1", b="2").inc(3)
            registry.gauge("g", rack="r", zone="x").set(5.0)
        return registry

    first, second = tmp_path / "a.json", tmp_path / "b.json"
    dump_metrics(build(False), str(first))
    dump_metrics(build(True), str(second))
    assert first.read_text(encoding="utf-8") \
        == second.read_text(encoding="utf-8")


def test_instruments_iterates_sorted_with_kind_filter():
    registry = MetricsRegistry()
    registry.counter("b_total").inc()
    registry.counter("a_total", x="1").inc()
    registry.gauge("depth").set(1.0)
    registry.histogram("lat_ms").observe(2.0)
    everything = list(registry.instruments())
    names = [item[0] for item in everything]
    kinds = [item[3] for item in everything]
    assert names == ["a_total", "b_total", "depth", "lat_ms"]
    assert kinds == ["counter", "counter", "gauge", "histogram"]
    only_histograms = list(registry.instruments("histogram"))
    assert [item[0] for item in only_histograms] == ["lat_ms"]
