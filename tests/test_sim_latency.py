"""Tests for the latency models."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.latency import Exponential, Fixed, LogNormal, Shifted, Uniform


@pytest.fixture
def rng():
    return random.Random(99)


def test_fixed_is_deterministic(rng):
    model = Fixed(2.5)
    assert all(model.sample(rng) == 2.5 for _ in range(10))
    assert model.mean() == 2.5


def test_fixed_rejects_negative():
    with pytest.raises(SimulationError):
        Fixed(-1.0)


def test_uniform_bounds(rng):
    model = Uniform(1.0, 3.0)
    samples = [model.sample(rng) for _ in range(500)]
    assert all(1.0 <= s <= 3.0 for s in samples)
    assert model.mean() == 2.0


def test_uniform_rejects_inverted_range():
    with pytest.raises(SimulationError):
        Uniform(3.0, 1.0)
    with pytest.raises(SimulationError):
        Uniform(-1.0, 1.0)


def test_exponential_mean(rng):
    model = Exponential(4.0)
    samples = [model.sample(rng) for _ in range(20000)]
    assert model.mean() == 4.0
    assert abs(sum(samples) / len(samples) - 4.0) < 0.2
    assert all(s >= 0 for s in samples)


def test_exponential_rejects_nonpositive():
    with pytest.raises(SimulationError):
        Exponential(0.0)


def test_lognormal_median_and_tail(rng):
    model = LogNormal(median=10.0, sigma=0.8)
    samples = sorted(model.sample(rng) for _ in range(20000))
    median = samples[len(samples) // 2]
    assert abs(median - 10.0) < 1.0
    # Long tail: the 99th percentile is several times the median.
    p99 = samples[int(0.99 * len(samples))]
    assert p99 > 3 * median
    assert model.mean() > 10.0  # mean above median for log-normal


def test_lognormal_rejects_bad_params():
    with pytest.raises(SimulationError):
        LogNormal(median=0.0)
    with pytest.raises(SimulationError):
        LogNormal(median=1.0, sigma=0.0)


def test_shifted_adds_offset(rng):
    model = Shifted(5.0, Fixed(1.0))
    assert model.sample(rng) == 6.0
    assert model.mean() == 6.0


def test_shifted_rejects_negative_offset():
    with pytest.raises(SimulationError):
        Shifted(-0.1, Fixed(1.0))


def test_same_rng_state_same_samples():
    model = Uniform(0.0, 1.0)
    a = [model.sample(random.Random(5)) for _ in range(3)]
    b = [model.sample(random.Random(5)) for _ in range(3)]
    assert a == b
