"""P-rules: the policy static verifier and the analyze-policy CLI gate."""

import ast
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.project_index import (
    build_project_index,
    extract_module_facts,
)
from repro.analysis.registry import ModuleContext
from repro.cli import main
from repro.policy import (
    lint_builtin_policies,
    lint_policy_file,
    lint_policy_text,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "policies"
MINIPROJ = REPO_ROOT / "tests" / "fixtures" / "miniproj"


def miniproj_index():
    facts = []
    for path in sorted(MINIPROJ.rglob("*.py")):
        source = path.read_text()
        rel = str(path.relative_to(REPO_ROOT))
        facts.append(extract_module_facts(
            ModuleContext(rel, source, ast.parse(source))))
    return build_project_index(facts)


def rules_and_lines(findings):
    return [(f.rule_id, f.line) for f in findings]


# ----------------------------------------------------------------------
# The planted fixtures, with line-accurate anchors
# ----------------------------------------------------------------------

def test_clean_fixture_has_no_findings():
    assert lint_policy_file(str(FIXTURES / "clean.xml")) == []


def test_p601_contradiction_is_anchored_at_the_dead_clause():
    findings = lint_policy_file(str(FIXTURES / "contradiction.xml"))
    assert rules_and_lines(findings) == [("P601", 11)]
    assert "can never take effect" in findings[0].message


def test_p602_shadowed_clause_is_a_warning():
    findings = lint_policy_file(str(FIXTURES / "shadowed.xml"))
    assert rules_and_lines(findings) == [("P602", 8)]


def test_p603_unknown_cache_field_and_attribute():
    findings = lint_policy_file(str(FIXTURES / "unknown_field.xml"))
    assert [f.rule_id for f in findings] == ["P603", "P603", "P603"]
    assert [f.line for f in findings] == [7, 10, 13]
    by_line = {f.line: f.message for f in findings}
    assert "unknown cache 'LinkDB'" in by_line[7]
    assert "dl_vlan" in by_line[10]
    assert "nmae" in by_line[13] and "name" in by_line[13]


def test_p604_needs_an_index_and_fires_against_miniproj():
    path = str(FIXTURES / "unknown_trigger.xml")
    assert lint_policy_file(path) == []  # no index -> provenance unknown
    findings = lint_policy_file(path, index=miniproj_index())
    assert rules_and_lines(findings) == [("P604", 7)]
    assert "external" in findings[0].message
    assert "internal" in findings[0].message


# ----------------------------------------------------------------------
# Text-level behaviours: P001 anchoring, XML-comment suppressions
# ----------------------------------------------------------------------

def test_parse_error_reports_line_and_column():
    findings = lint_policy_text("<Policies>\n  <Policy allow='No'>\n")
    assert findings and findings[0].rule_id == "P001"
    assert findings[0].line >= 2


def test_xml_comment_suppression_silences_the_named_rule():
    shadowed = (FIXTURES / "shadowed.xml").read_text()
    lines = shadowed.splitlines()
    lines[7] = lines[7] + "  <!-- # jury: ignore[P602] -->"
    assert lint_policy_text("\n".join(lines)) == []


def test_suppression_for_another_rule_does_not_silence():
    shadowed = (FIXTURES / "shadowed.xml").read_text()
    lines = shadowed.splitlines()
    lines[7] = lines[7] + "  <!-- # jury: ignore[P601] -->"
    findings = lint_policy_text("\n".join(lines))
    assert [f.rule_id for f in findings] == ["P602"]


def test_contradiction_needs_differing_allow():
    # Same allow on both clauses downgrades to shadowing, not contradiction.
    text = textwrap.dedent("""\
        <Policies>
          <Policy allow="No" name="broad">
            <Cache name="FlowsDB" operation="*"/>
          </Policy>
          <Policy allow="No" name="narrow">
            <Cache name="FlowsDB" operation="delete"/>
          </Policy>
        </Policies>
    """)
    assert [f.rule_id for f in lint_policy_text(text)] == ["P602"]


def test_predicated_clauses_never_subsume():
    text = textwrap.dedent("""\
        <Policies>
          <Policy allow="No" name="broad">
            <Cache name="FlowsDB" operation="*"
                   entry="*dl_src=00:00:00:00:00:01*,*"/>
          </Policy>
          <Policy allow="Yes" name="narrow">
            <Cache name="FlowsDB" operation="delete"/>
          </Policy>
        </Policies>
    """)
    assert lint_policy_text(text) == []


# ----------------------------------------------------------------------
# Builtins and the shipped examples stay clean
# ----------------------------------------------------------------------

def test_builtin_policy_sets_lint_clean():
    assert lint_builtin_policies() == []


def test_shipped_example_policies_lint_clean():
    examples = sorted((REPO_ROOT / "examples" / "policies").glob("*.xml"))
    assert examples, "examples/policies/*.xml should exist"
    for path in examples:
        assert lint_policy_file(str(path)) == [], path.name


# ----------------------------------------------------------------------
# The analyze-policy CLI gate
# ----------------------------------------------------------------------

@pytest.fixture()
def repo_cwd(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)


def test_cli_exits_nonzero_on_each_planted_fixture(repo_cwd, capsys):
    for name in ("contradiction.xml", "shadowed.xml", "unknown_field.xml"):
        rc = main(["analyze-policy", f"tests/fixtures/policies/{name}",
                   "--project", "none"])
        capsys.readouterr()
        assert rc == 1, name


def test_cli_p604_uses_the_project_index(repo_cwd, capsys):
    rc = main(["analyze-policy", "tests/fixtures/policies/unknown_trigger.xml",
               "--project", "tests/fixtures/miniproj"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "unknown_trigger.xml:7:" in out and "P604" in out


def test_cli_clean_fixture_and_builtins_exit_zero(repo_cwd, capsys):
    assert main(["analyze-policy", "tests/fixtures/policies/clean.xml",
                 "--builtin", "--project", "none"]) == 0
    assert "OK" in capsys.readouterr().out


def test_cli_fail_on_error_lets_warnings_pass(repo_cwd, capsys):
    rc = main(["analyze-policy", "tests/fixtures/policies/shadowed.xml",
               "--project", "none", "--fail-on", "error"])
    capsys.readouterr()
    assert rc == 0  # P602 is warning-severity


def test_cli_json_format_carries_line_and_column(repo_cwd, capsys):
    rc = main(["analyze-policy", "tests/fixtures/policies/contradiction.xml",
               "--project", "none", "--format", "json"])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    (finding,) = payload["findings"]
    assert finding["rule"] == "P601"
    assert finding["line"] == 11 and finding["column"] == 3
