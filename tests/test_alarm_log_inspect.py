"""Tests for the alarm log and the inspection report."""

import io
import json

import pytest

from repro.core.alarm_log import AlarmLog
from repro.faults import UndesirableFlowModFault
from repro.faults.base import run_scenario
from repro.api import Jury
from repro.config import JuryConfig
from repro.harness.inspect import (
    controller_summary,
    jury_summary,
    render_report,
    store_convergence,
)


@pytest.fixture
def alarmed_experiment():
    experiment = Jury.experiment(JuryConfig(kind="onos", n=5, k=4, switches=8,
                                  seed=160, timeout_ms=250.0))
    stream = io.StringIO()
    log = AlarmLog(experiment.validator, stream=stream)
    experiment.warmup()
    result = run_scenario(experiment, UndesirableFlowModFault("c2"))
    assert result.detected
    return experiment, log, stream


def test_alarm_log_records(alarmed_experiment):
    experiment, log, stream = alarmed_experiment
    assert log.total >= 1
    record = log.records[-1]
    assert record.reason == "sanity_mismatch"
    assert record.offending_controller == "c2"
    assert record.time_ms > 0


def test_alarm_log_streams_jsonl(alarmed_experiment):
    experiment, log, stream = alarmed_experiment
    lines = [l for l in stream.getvalue().splitlines() if l]
    assert len(lines) == log.total
    parsed = json.loads(lines[-1])
    assert parsed["offending_controller"] == "c2"


def test_alarm_log_breakdowns(alarmed_experiment):
    experiment, log, stream = alarmed_experiment
    assert log.by_controller().get("c2", 0) >= 1
    assert log.by_reason().get("sanity_mismatch", 0) >= 1


def test_alarm_log_tail_and_jsonl(alarmed_experiment):
    experiment, log, stream = alarmed_experiment
    tail = log.tail(5)
    assert tail
    assert "sanity_mismatch" in tail[-1]
    jsonl = log.to_jsonl()
    assert json.loads(jsonl.splitlines()[-1])["reason"] == "sanity_mismatch"


def test_alarm_log_capacity_bounds():
    experiment = Jury.experiment(JuryConfig(kind="onos", n=3, k=2, switches=2, seed=161, timeout_ms=200.0))
    log = AlarmLog(experiment.validator, capacity=2)
    from repro.core.alarms import Alarm, AlarmReason

    for i in range(5):
        log._on_alarm(Alarm(("ext", i), AlarmReason.PRIMARY_OMISSION, "c1"))
    assert log.total == 5
    assert len(log.records) == 2


def test_alarm_log_chains_previous_hook():
    experiment = Jury.experiment(JuryConfig(kind="onos", n=3, k=2, switches=2, seed=162, timeout_ms=200.0))
    seen = []
    experiment.validator.on_alarm = seen.append
    log = AlarmLog(experiment.validator)
    from repro.core.alarms import Alarm, AlarmReason

    alarm = Alarm(("ext", 1), AlarmReason.PRIMARY_OMISSION, "c1")
    experiment.validator.on_alarm(alarm)
    assert seen == [alarm]
    assert log.total == 1


# ----------------------------------------------------------------------
# Inspection
# ----------------------------------------------------------------------

def test_controller_summary_fields(alarmed_experiment):
    experiment, log, stream = alarmed_experiment
    summary = controller_summary(experiment)
    assert len(summary) == 5
    ids = {row["id"] for row in summary}
    assert ids == {"c1", "c2", "c3", "c4", "c5"}
    assert all(row["alive"] for row in summary)
    assert sum(row["mastered_switches"] for row in summary) == 8


def test_store_convergence_after_quiesce(alarmed_experiment):
    experiment, log, stream = alarmed_experiment
    experiment.run(500.0)
    convergence = store_convergence(experiment)
    assert convergence["converged"]


def test_jury_summary(alarmed_experiment):
    experiment, log, stream = alarmed_experiment
    summary = jury_summary(experiment)
    assert summary["deployed"]
    assert summary["k"] == 4
    assert summary["triggers_alarmed"] >= 1


def test_jury_summary_vanilla():
    experiment = Jury.experiment(JuryConfig(kind="onos", n=2, switches=2, seed=163, k=None, timeout_ms=200.0))
    assert jury_summary(experiment) == {"deployed": False}


def test_render_report(alarmed_experiment):
    experiment, log, stream = alarmed_experiment
    report = render_report(experiment)
    assert "Controllers" in report
    assert "JURY: k=4" in report
    assert "Store:" in report
