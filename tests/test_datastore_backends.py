"""Tests for the Hazelcast-like and Infinispan-like consistency backends."""

from repro.datastore.caches import (
    FLOWSDB,
    edge_key,
    edge_value,
    flow_key,
    flow_value,
    host_key,
    host_value,
    switch_key,
    switch_value,
)
from repro.datastore.hazelcast import HazelcastCluster
from repro.datastore.infinispan import InfinispanCluster
from repro.openflow.actions import ActionOutput
from repro.openflow.match import Match
from repro.sim.simulator import Simulator


def test_hazelcast_write_is_cheap_regardless_of_cluster_size():
    sim = Simulator(seed=1)
    cluster = HazelcastCluster(sim)
    nodes = [cluster.create_node(f"c{i}") for i in range(7)]
    cost = nodes[0].put("X", "k", 1).cost_ms
    assert cost < 0.1


def test_hazelcast_is_eventually_consistent():
    sim = Simulator(seed=1)
    cluster = HazelcastCluster(sim)
    a = cluster.create_node("c1")
    b = cluster.create_node("c2")
    a.put("X", "k", 1)
    # Immediately after the write, the peer has not converged yet...
    assert b.get("X", "k") is None
    sim.run()
    # ...but it converges.
    assert b.get("X", "k") == 1


def test_infinispan_write_cost_scales_with_cluster_size():
    costs = {}
    for n in (1, 3, 7):
        sim = Simulator(seed=1)
        cluster = InfinispanCluster(sim)
        nodes = [cluster.create_node(f"c{i}") for i in range(n)]
        costs[n] = nodes[0].put("X", "k", 1).cost_ms
    assert costs[1] < costs[3] < costs[7]
    # Roughly linear: the n=7 cost is several times the n=1 cost.
    assert costs[7] > 4 * costs[1]


def test_infinispan_serializes_writes_cluster_wide():
    """Concurrent writes on different nodes queue on the global lock."""
    sim = Simulator(seed=1)
    cluster = InfinispanCluster(sim)
    a = cluster.create_node("c1")
    b = cluster.create_node("c2")
    cost_a = a.put("X", "ka", 1).cost_ms
    cost_b = b.put("X", "kb", 2).cost_ms  # same instant: must wait for a
    assert cost_b > cost_a


def test_infinispan_lock_frees_over_time():
    sim = Simulator(seed=1)
    cluster = InfinispanCluster(sim)
    a = cluster.create_node("c1")
    cluster.create_node("c2")
    first = a.put("X", "k1", 1).cost_ms
    sim.run(until=sim.now + 1000.0)
    second = a.put("X", "k2", 2).cost_ms
    # After the lock clears, the cost returns to the uncontended baseline.
    assert abs(second - first) < first


def test_hazelcast_flow_backup_station_is_shared_and_sized_by_n():
    sim = Simulator(seed=1)
    cluster = HazelcastCluster(sim)
    for i in range(7):
        cluster.create_node(f"c{i}")
    station = cluster.flow_backup_station()
    assert cluster.flow_backup_station() is station
    # Capacity in the ~5K/s range (Fig 4f saturation plateau).
    per_second = 1000.0 / station.service_time.mean()
    assert 4000 < per_second < 6000


def test_inter_controller_byte_accounting():
    sim = Simulator(seed=1)
    cluster = HazelcastCluster(sim)
    a = cluster.create_node("c1")
    cluster.create_node("c2")
    cluster.create_node("c3")
    before = cluster.counter.bytes
    a.put("X", "k", {"payload": 1})
    sim.run()
    # One write -> two peer deliveries counted.
    assert cluster.counter.bytes > before
    assert cluster.counter.messages == 2


def test_cache_key_value_helpers():
    match = Match.for_destination("bb")
    fk = flow_key(3, match, 50)
    assert fk[0] == "flow" and fk[1] == 3
    fv = flow_value(3, match, (ActionOutput(1),), 50)
    assert fv["state"] == "pending_add"
    assert fv["actions"] == (("output", 1),)

    ek = edge_key(1, 2, 3, 4)
    ev = edge_value(1, 2, 3, 4)
    assert ek == ("edge", 1, 2, 3, 4)
    assert ev["alive"] is True

    hk = host_key("aa")
    hv = host_value("aa", "10.0.0.1", 2, 3)
    assert hk == ("host", "aa")
    assert hv["dpid"] == 2

    sk = switch_key(9)
    sv = switch_value(9, (1, 2), "c1")
    assert sk == ("switch", 9)
    assert sv["master"] == "c1"


def test_in_order_delivery_per_origin():
    """Peers apply one origin's writes in write order (TCP-like)."""
    sim = Simulator(seed=4)
    cluster = HazelcastCluster(sim)
    a = cluster.create_node("c1")
    b = cluster.create_node("c2")
    applied = []
    b.add_listener(lambda n, e: applied.append(e.seq))
    for i in range(30):
        a.put("X", "k", i)
    sim.run()
    assert applied == sorted(applied)
