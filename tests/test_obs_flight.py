"""Flight recorder, head sampling, wall-clock profiling, trace diffing.

The PR-8 observability layer has four determinism contracts, all pinned
here:

* **Recorder determinism** — the flight recorder sees only simulated time
  and decision facts, so two replays of the same recorded stream produce
  byte-identical ``to_json`` dumps; dumps from a killed process worker
  survive the respawn→degrade ladder.
* **Sampling purity** — the head sampler gates observers only: alarm
  streams are byte-identical at any rate, and alarmed decisions always
  appear in the trace (the severity override).
* **Profiling purity** — wall-clock profiling lives in backend workers;
  the canonical simulated-time trace is byte-identical with profiling on
  or off, while ``backend_stage_wall_ms`` gains per-shard families.
* **Diff alignment** — ``diff_tracers`` is empty iff the canonical
  encodings are byte-identical, and pinpoints the first divergence
  otherwise (the ``jury-repro trace-diff`` contract, exit 0/1/2).
"""

from __future__ import annotations

import json

import pytest

from repro.core.alarms import canonical_alarm_stream
from repro.core.backends import ProcessesBackend
from repro.core.pipeline import ValidationPipeline
from repro.core.timeouts import StaticTimeout
from repro.core.validator import Validator
from repro.faults.injector import default_policy_engine
from repro.fuzz import DifferentialOracle
from repro.obs.diff import (
    TraceDiff,
    diff_payloads,
    diff_trace_files,
    diff_tracers,
    first_divergence_detail,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    STAGE_OPS,
    STAGE_WALL_MS,
    StageProfiler,
    merge_profile,
    profile_summary,
)
from repro.obs.recorder import (
    FLIGHT_FORMAT,
    FlightRecorder,
    dump_flight,
    load_flight,
    render_flight,
)
from repro.obs.sampling import HeadSampler, active_sampler
from repro.obs.trace import Tracer, dump_trace
from repro.workloads.recorder import replay_validation_stream


# ----------------------------------------------------------------------
# Head sampler: pure, stable, bounded
# ----------------------------------------------------------------------

def test_sampler_rejects_bad_rates():
    for bad in (0, -1, True, 2.0, "4"):
        with pytest.raises(ValueError, match="sampling rate"):
            HeadSampler(bad)


def test_sampler_rate_one_records_everything():
    sampler = HeadSampler(1)
    assert all(sampler.sampled(("ext", i)) for i in range(100))
    assert sampler.describe() == "off (record all)"


def test_sampler_is_a_pure_function_of_the_trigger_id():
    a, b = HeadSampler(8), HeadSampler(8)
    ids = [("ext", i) for i in range(500)] + [("pkt", i) for i in range(500)]
    decisions = [a.sampled(tau) for tau in ids]
    assert decisions == [b.sampled(tau) for tau in ids], \
        "two samplers at the same rate must agree on every trigger"
    assert decisions == [a.sampled(tau) for tau in ids], \
        "re-asking must never flip a decision"
    kept = sum(decisions)
    # CRC-32 buckets are uniform-ish: 1/8 of 1000 ids, generous bounds.
    assert 60 <= kept <= 190, f"1/8 sampling kept {kept}/1000"


def test_active_sampler_normalises_off_to_none():
    assert active_sampler(None) is None
    assert active_sampler(HeadSampler(1)) is None
    sampler = HeadSampler(4)
    assert active_sampler(sampler) is sampler


def test_sampler_memo_eviction_is_bounded_and_keeps_recent_decisions():
    """Regression for the long-run memo bug: overflow used to clear the
    whole memo, so a trigger still in flight re-hashed mid-lifecycle and
    a soak leaked one dict entry per trigger between clears. Eviction
    must (a) drop only the *oldest* half, so recently-inserted (in-flight)
    triggers keep their memoised decision across the sweep, and (b) keep
    the memo within ``_MEMO_LIMIT`` forever, without ever flipping a
    decision."""
    sampler = HeadSampler(8)
    limit = HeadSampler._MEMO_LIMIT
    # Fill the memo: old completed triggers first, in-flight ones last.
    for i in range(limit - 16):
        sampler.sampled(("pkt", ("done", i)))
    inflight = [("ext", ("live", i)) for i in range(16)]
    expected = {tau: sampler.sampled(tau) for tau in inflight}
    assert len(sampler._memo) == limit
    # The overflow insert sweeps the oldest half; the in-flight triggers
    # were inserted last, so they must survive with their decisions.
    sampler.sampled(("pkt", ("done", "overflow")))
    assert len(sampler._memo) == limit - limit // 2 + 1
    for tau in inflight:
        assert tau in sampler._memo, "recently-inserted trigger was evicted"
        assert sampler.sampled(tau) is expected[tau]
    assert ("pkt", ("done", 0)) not in sampler._memo, "oldest entry survived"
    # Long-run bound: 3x the limit of fresh ids never grows the memo past
    # the cap, and re-asking an evicted id still answers identically
    # (purity: eviction changes cost, never the decision).
    for i in range(3 * limit):
        sampler.sampled(("pkt", ("flood", i)))
        assert len(sampler._memo) <= limit, \
            f"memo grew past the bound after {i + 1} inserts"
    for tau in inflight:
        assert sampler.sampled(tau) is expected[tau]


# ----------------------------------------------------------------------
# Flight recorder: ring discipline and byte-stable dumps
# ----------------------------------------------------------------------

def test_recorder_ring_is_bounded_and_counts_everything():
    recorder = FlightRecorder(capacity=4)
    for i in range(10):
        recorder.record(float(i), "decision", ("ext", i), verdict="ok")
    assert len(recorder) == 4
    assert recorder.events_recorded == 10
    recorder.trigger("alarm", 9.0)
    dump = recorder.last_dump()
    assert [e["key"] for e in dump["events"]] == \
        [repr(("ext", i)) for i in (6, 7, 8, 9)], "ring must keep the tail"


def test_recorder_coalesces_same_instant_triggers():
    recorder = FlightRecorder()
    recorder.record(1.0, "decision", ("ext", 1), verdict="alarmed")
    first = recorder.trigger("alarm", 1.0)
    assert recorder.trigger("alarm", 1.0) is first, \
        "an alarm burst at one instant is one anomaly"
    assert recorder.dumps_triggered == 1
    recorder.trigger("alarm", 2.0)
    assert recorder.dumps_triggered == 2


def test_recorder_rejects_degenerate_capacity():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)
    with pytest.raises(ValueError):
        FlightRecorder(max_dumps=0)


def test_flight_payload_roundtrip_and_render(tmp_path):
    recorder = FlightRecorder(capacity=8)
    recorder.record(1.5, "decision", ("ext", 1), verdict="ok", n=3)
    recorder.record(2.5, "alarm", ("ext", 2), verdict="primary_omission")
    recorder.trigger("alarm", 2.5)
    metrics = MetricsRegistry()
    metrics.counter("validator_alarms_total").inc()
    path = tmp_path / "FLIGHT.json"
    dump_flight(recorder, str(path), now=3.0, metrics=metrics)
    payload = load_flight(str(path))
    assert payload["format"] == FLIGHT_FORMAT
    assert payload["exported_at"] == 3.0
    assert payload["events_recorded"] == 2
    assert len(payload["dumps"]) == 1
    assert payload["metrics"]["validator_alarms_total"]["value"] == 1
    human = render_flight(payload)
    assert "reason=alarm" in human
    assert "primary_omission" in human


def test_load_flight_rejects_non_flight_json(tmp_path):
    path = tmp_path / "not-flight.json"
    path.write_text(json.dumps({"format": "jury-trace"}))
    with pytest.raises(ValueError, match="jury-flight"):
        load_flight(str(path))


# ----------------------------------------------------------------------
# Stage profiler: worker-side aggregates, parent-side merge
# ----------------------------------------------------------------------

def test_profiler_aggregates_and_drains():
    profiler = StageProfiler()
    assert profiler.take() is None
    profiler.observe("batch", 0.002)
    profiler.observe("batch", 0.004)
    profiler.observe("wakeup", 0.001)
    delta = profiler.take()
    assert delta["batch"] == (2, pytest.approx(0.006), 0.002, 0.004)
    assert delta["wakeup"] == (1, 0.001, 0.001, 0.001)
    assert profiler.take() is None, "take drains"


def test_merge_profile_lands_in_labelled_families():
    metrics = MetricsRegistry()
    merge_profile(metrics, "threads", 2,
                  {"batch": (3, 0.006, 0.001, 0.003)})
    merge_profile(metrics, "threads", 2,
                  {"batch": (1, 0.002, 0.002, 0.002)})
    assert metrics.value(STAGE_OPS, backend="threads", shard=2,
                         stage="batch") == 4
    summary = profile_summary(metrics)
    key = "backend=threads,shard=2,stage=batch"
    assert summary[key]["count"] == 2  # one histogram sample per delta
    assert summary[key]["total_ms"] == pytest.approx(8.0)
    # None/empty profiles and a None registry are silent no-ops.
    merge_profile(metrics, "threads", 2, None)
    merge_profile(None, "threads", 2, {"batch": (1, 1.0, 1.0, 1.0)})


# ----------------------------------------------------------------------
# Integration: one recorded faulted scenario, replayed many ways
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def faulted_live(small_fuzz_corpus):
    """One faulted generated scenario, recorded live once."""
    spec = next(s for s in small_fuzz_corpus if s.faults)
    return DifferentialOracle().record(spec)


def _replay(live, shards=None, backend="serial", tracer=None, metrics=None,
            sampler=None, recorder=None, profile=False, arm=None):
    lookup = live.mastership.get

    def factory(sim):
        kwargs = dict(timeout=StaticTimeout(live.spec.timeout_ms),
                      policy_engine=default_policy_engine(),
                      mastership_lookup=lookup, tracer=tracer,
                      metrics=metrics, sampler=sampler, recorder=recorder)
        if shards is None:
            return Validator(sim, live.spec.k, **kwargs)
        engine = ValidationPipeline(sim, live.spec.k, shards=shards,
                                    backend=backend, profile=profile,
                                    **kwargs)
        if arm is not None:
            arm(engine.backend)
        return engine

    engine = replay_validation_stream(live.records, factory)
    close = getattr(engine, "close", None)
    if close is not None:
        close()
    return engine


def test_recorder_dumps_are_byte_identical_across_runs(faulted_live):
    dumps = []
    for _ in range(2):
        recorder = FlightRecorder()
        engine = _replay(faulted_live, recorder=recorder)
        assert engine.alarms, "the faulted scenario must alarm"
        assert recorder.dumps_triggered >= 1, "alarms must trigger dumps"
        dumps.append(recorder.to_json(now=123.0))
    assert dumps[0] == dumps[1], \
        "same scenario, same simulated clock => byte-identical flight dumps"


def test_recorder_sees_decisions_and_alarms(faulted_live):
    recorder = FlightRecorder(capacity=100_000)
    engine = _replay(faulted_live, recorder=recorder)
    payload = recorder.payload(now=faulted_live.ended_at)
    kinds = {event["kind"] for event in payload["ring"]}
    assert "decision" in kinds and "alarm" in kinds
    decisions = [e for e in payload["ring"] if e["kind"] == "decision"]
    assert len(decisions) == engine.triggers_decided
    alarmed = [e for e in decisions if e["verdict"] == "alarmed"]
    assert alarmed, "alarmed decisions are recorded with their verdict"


def test_recorder_survives_worker_death_and_degrade(faulted_live):
    expected = canonical_alarm_stream(_replay(faulted_live).alarms)
    recorder = FlightRecorder()
    backend = ProcessesBackend(worker_timeout_s=30.0)
    engine = _replay(faulted_live, shards=2, backend=backend,
                     recorder=recorder, arm=lambda b: b.inject_crashes(0, 2))
    assert canonical_alarm_stream(engine.alarms) == expected
    assert backend.degraded_shards == [0]
    reasons = [dump["reason"] for dump in recorder.dumps]
    assert "worker-death" in reasons
    assert "worker-degrade" in reasons
    lifecycle = [(event["verdict"], event["key"])
                 for dump in recorder.dumps for event in dump["events"]
                 if event["kind"] == "worker"]
    assert ("death", repr(("engine", 0))) in lifecycle
    assert ("degrade", repr(("engine", 0))) in lifecycle, \
        "the degrade dump must still hold the earlier death event"


def test_sampling_never_moves_the_alarm_stream(faulted_live):
    expected = canonical_alarm_stream(_replay(faulted_live).alarms)
    for shards, backend in ((None, "serial"), (2, "serial"), (4, "threads")):
        engine = _replay(faulted_live, shards=shards, backend=backend,
                         sampler=HeadSampler(16), metrics=MetricsRegistry(),
                         tracer=Tracer())
        label = f"shards={shards} backend={backend}"
        assert canonical_alarm_stream(engine.alarms) == expected, \
            f"{label}: sampling changed the alarm stream"


def test_sampled_traces_shrink_but_keep_every_alarm(faulted_live):
    full_tracer = Tracer()
    _replay(faulted_live, tracer=full_tracer)
    sampled_tracer = Tracer()
    engine = _replay(faulted_live, tracer=sampled_tracer,
                     sampler=HeadSampler(16))
    assert len(sampled_tracer) < len(full_tracer), \
        "1/16 sampling must drop spans"
    alarm_triggers = {alarm.trigger_id for alarm in engine.alarms}
    traced = {span.trigger_id for span in sampled_tracer.spans
              if span.stage == "alarm"}
    assert alarm_triggers <= traced, \
        "severity override: every alarmed trigger appears in the trace"


def test_sampled_traces_are_identical_across_engines(faulted_live):
    canonicals = set()
    for shards, backend in ((None, "serial"), (2, "serial"), (2, "threads")):
        tracer = Tracer()
        _replay(faulted_live, shards=shards, backend=backend,
                tracer=tracer, sampler=HeadSampler(4))
        canonicals.add(tracer.canonical())
    assert len(canonicals) == 1, \
        "the head decision is pure per-τ: sampled traces stay byte-identical"


@pytest.mark.parametrize("backend", ["threads", "processes"])
def test_profiling_populates_wall_metrics_without_touching_the_trace(
        faulted_live, backend):
    plain_tracer = Tracer()
    _replay(faulted_live, shards=2, backend=backend, tracer=plain_tracer)
    tracer = Tracer()
    metrics = MetricsRegistry()
    _replay(faulted_live, shards=2, backend=backend, tracer=tracer,
            metrics=metrics, profile=True)
    assert tracer.canonical() == plain_tracer.canonical(), \
        "wall-clock profiling must not move the simulated-time trace"
    summary = profile_summary(metrics)
    batch_keys = [key for key in summary
                  if f"backend={backend}" in key and "stage=batch" in key]
    assert batch_keys, f"no {STAGE_WALL_MS} families for {backend}"
    assert all(summary[key]["total_ms"] >= 0.0 for key in batch_keys)
    ops = metrics.value(STAGE_OPS, backend=backend, shard=0, stage="batch")
    assert ops >= 1, "shard 0 must report batch operations"


def test_serial_backend_ignores_profile_flag(faulted_live):
    metrics = MetricsRegistry()
    _replay(faulted_live, shards=2, backend="serial", metrics=metrics,
            profile=True)
    assert profile_summary(metrics) == {}, \
        "inline execution has no workers, so no wall-clock families"


# ----------------------------------------------------------------------
# Trace diffing: alignment, first divergence, file round-trip
# ----------------------------------------------------------------------

def _tracer_with(spans):
    tracer = Tracer()
    for at, tau, stage, kwargs in spans:
        tracer.emit(at, tau, stage, **kwargs)
    return tracer


def test_diff_identical_traces_is_empty(faulted_live):
    left, right = Tracer(), Tracer()
    _replay(faulted_live, tracer=left)
    _replay(faulted_live, shards=2, tracer=right)
    diff = diff_tracers(left, right)
    assert diff.identical
    assert diff.first_divergence is None
    assert diff.common == diff.left_spans == diff.right_spans
    assert first_divergence_detail(diff) == "no divergence"
    assert "identical" in diff.render()


def test_diff_pinpoints_changed_and_one_sided_spans():
    base = [(1.0, ("ext", 1), "ingest", {}),
            (2.0, ("ext", 1), "decide", {"verdict": "full-count"}),
            (3.0, ("ext", 2), "ingest", {})]
    left = _tracer_with(base)
    right = _tracer_with([
        base[0],
        (2.0, ("ext", 1), "decide", {"verdict": "timeout"}),  # changed
        base[2],
        (4.0, ("ext", 3), "ingest", {}),                      # right-only
    ])
    diff = diff_tracers(left, right)
    assert not diff.identical
    assert diff.common == 2
    assert [e.kind for e in diff.entries] == ["changed", "right-only"]
    first = diff.first_divergence
    assert (first.at, first.stage) == (2.0, "decide")
    assert "full-count" in first.left and "timeout" in first.right
    detail = first_divergence_detail(diff)
    assert "t=2.000" in detail and "stage=decide" in detail
    payload = diff.to_dict(limit=1)
    assert payload["divergent"] == 2 and payload["truncated"]


def test_diff_ignores_engine_plumbing_spans():
    left = _tracer_with([(1.0, ("ext", 1), "ingest", {})])
    right = _tracer_with([(1.0, ("ext", 1), "ingest", {}),
                          (2.0, ("engine", 0), "engine:degrade", {})])
    assert diff_tracers(left, right).identical, \
        "canonical comparisons exclude engine:* spans; so must the diff"


def test_diff_trace_files_roundtrip(tmp_path, faulted_live):
    tracer = Tracer()
    _replay(faulted_live, tracer=tracer)
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    dump_trace(tracer, str(a))
    dump_trace(tracer, str(b))
    assert diff_trace_files(str(a), str(b)).identical
    assert diff_payloads(tracer.to_payload(), tracer.to_payload()).identical


# ----------------------------------------------------------------------
# CLI: jury-repro trace-diff (exit 0 identical / 1 divergent / 2 usage)
# ----------------------------------------------------------------------

@pytest.fixture()
def trace_files(tmp_path, faulted_live):
    left, right = Tracer(), Tracer()
    _replay(faulted_live, tracer=left)
    _replay(faulted_live, tracer=right,
            sampler=HeadSampler(16))  # sampled => genuinely different trace
    a = tmp_path / "left.json"
    b = tmp_path / "right.json"
    dump_trace(left, str(a))
    dump_trace(right, str(b))
    return str(a), str(b)


def test_cli_trace_diff_self_is_empty_and_exits_zero(trace_files, capsys):
    from repro.cli import main
    a, _ = trace_files
    assert main(["trace-diff", a, a]) == 0
    assert "identical" in capsys.readouterr().out


def test_cli_trace_diff_reports_first_divergence(trace_files, capsys):
    from repro.cli import main
    a, b = trace_files
    assert main(["trace-diff", a, b, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["identical"] is False
    assert payload["first_divergence"]["kind"] in (
        "left-only", "right-only", "changed")
    assert payload["divergent"] >= 1


def test_cli_trace_diff_unreadable_file_is_usage_error(tmp_path, capsys):
    from repro.cli import main
    missing = str(tmp_path / "nope.json")
    assert main(["trace-diff", missing, missing]) == 2
    assert "trace-diff" in capsys.readouterr().err
