"""Tests for trigger contexts and taints."""

from repro.controllers.context import (
    Taint,
    TriggerContext,
    new_external_trigger_id,
)


def test_external_trigger_ids_unique():
    a = TriggerContext.external_trigger()
    b = TriggerContext.external_trigger()
    assert a.trigger_id != b.trigger_id
    assert a.trigger_id[0] == "ext"
    assert a.external and not a.shadow


def test_external_trigger_honors_preassigned_id():
    tau = new_external_trigger_id()
    ctx = TriggerContext.external_trigger(trigger_id=tau)
    assert ctx.trigger_id == tau


def test_internal_trigger_carries_controller_id():
    ctx = TriggerContext.internal_trigger("c3")
    assert ctx.trigger_id[0] == "int"
    assert ctx.trigger_id[1] == "c3"
    assert not ctx.external


def test_replica_context_is_shadow_and_tainted():
    taint = Taint(trigger_id=("ext", 7), primary_id="c1")
    ctx = TriggerContext.replica_of(taint, received_at=5.0)
    assert ctx.shadow
    assert ctx.tainted
    assert ctx.trigger_id == ("ext", 7)
    assert ctx.received_at == 5.0


def test_capture_and_combined_canonical():
    taint = Taint(trigger_id=("ext", 8), primary_id="c1")
    ctx = TriggerContext.replica_of(taint)
    ctx.capture_cache(("cache", "X", "k", "create", 1))
    ctx.capture_network(("flow_mod", 1, "add", (), (), 100))
    ctx.capture_network(("packet_out", 1, None, ()))
    cache_part, network_part = ctx.combined_canonical()
    assert len(cache_part) == 1
    assert len(network_part) == 2


def test_combined_canonical_order_insensitive():
    taint = Taint(trigger_id=("ext", 9), primary_id="c1")
    a = TriggerContext.replica_of(taint)
    b = TriggerContext.replica_of(taint)
    items = [("flow_mod", 2, "add", (), (), 1), ("packet_out", 1, None, ())]
    a.capture_network(items[0])
    a.capture_network(items[1])
    b.capture_network(items[1])
    b.capture_network(items[0])
    assert a.combined_canonical() == b.combined_canonical()


def test_taint_is_hashable_and_printable():
    taint = Taint(trigger_id=("ext", 1), primary_id="c1")
    assert {taint: 1}[taint] == 1
    assert "c1" in str(taint)


def test_pending_cost_accumulates():
    ctx = TriggerContext.external_trigger()
    assert ctx.pending_cost == 0.0
    ctx.pending_cost += 1.5
    ctx.pending_cost += 0.5
    assert ctx.pending_cost == 2.0
