"""Tests for control channels and byte accounting."""

from repro.net.channel import ByteCounter, ControlChannel
from repro.sim.latency import Fixed, Uniform
from repro.sim.simulator import Simulator


class Endpoint:
    def __init__(self):
        self.received = []

    def handle_control_message(self, channel, message):
        self.received.append(message)


class Sized:
    def __init__(self, size):
        self._size = size

    def wire_size(self):
        return self._size


def test_bidirectional_delivery():
    sim = Simulator()
    a, b = Endpoint(), Endpoint()
    chan = ControlChannel(sim, a, b, latency=Fixed(1.0))
    chan.send(a, "to-b")
    chan.send(b, "to-a")
    sim.run()
    assert b.received == ["to-b"]
    assert a.received == ["to-a"]


def test_in_order_delivery_under_jitter():
    sim = Simulator(seed=3)
    a, b = Endpoint(), Endpoint()
    chan = ControlChannel(sim, a, b, latency=Uniform(0.1, 5.0))
    for i in range(50):
        sim.schedule(i * 0.01, chan.send, a, i)
    sim.run()
    assert b.received == list(range(50))


def test_byte_counting():
    sim = Simulator()
    a, b = Endpoint(), Endpoint()
    shared = ByteCounter("shared")
    chan = ControlChannel(sim, a, b, counter=shared)
    chan.send(a, Sized(100))
    chan.send(a, Sized(50))
    sim.run()
    assert chan.counter.bytes == 150
    assert chan.counter.messages == 2
    assert shared.bytes == 150


def test_unsized_messages_use_default():
    sim = Simulator()
    a, b = Endpoint(), Endpoint()
    chan = ControlChannel(sim, a, b)
    chan.send(a, "plain")
    sim.run()
    assert chan.counter.bytes == 64


def test_mbps_conversion():
    counter = ByteCounter()
    counter.add(125_000)  # 1 Mbit
    assert abs(counter.mbps(1000.0) - 1.0) < 1e-9
    assert counter.mbps(0.0) == 0.0


def test_counter_reset():
    counter = ByteCounter()
    counter.add(10)
    counter.reset()
    assert counter.bytes == 0
    assert counter.messages == 0


def test_failed_channel_drops_messages():
    sim = Simulator()
    a, b = Endpoint(), Endpoint()
    chan = ControlChannel(sim, a, b, latency=Fixed(5.0))
    chan.send(a, "in-flight")
    chan.fail()
    chan.send(a, "after-fail")
    sim.run()
    assert b.received == []


def test_restore_resumes_delivery():
    sim = Simulator()
    a, b = Endpoint(), Endpoint()
    chan = ControlChannel(sim, a, b, latency=Fixed(1.0))
    chan.fail()
    chan.restore()
    chan.send(a, "ok")
    sim.run()
    assert b.received == ["ok"]


def test_other_endpoint():
    sim = Simulator()
    a, b = Endpoint(), Endpoint()
    chan = ControlChannel(sim, a, b)
    assert chan.other(a) is b
    assert chan.other(b) is a
