"""Tests for OpenFlow messages, canonical forms, and encapsulation."""

import random

import pytest

from repro.errors import OpenFlowError
from repro.net.packet import tcp_packet
from repro.openflow.actions import ActionDrop, ActionOutput, canonical_actions
from repro.openflow.constants import FlowModCommand
from repro.openflow.encap import (
    EncapStats,
    decapsulate_packet_in,
    encapsulate_packet_in,
)
from repro.openflow.match import Match
from repro.openflow.messages import (
    FeaturesReply,
    FlowMod,
    PacketIn,
    PacketOut,
    RestRequest,
    next_xid,
)


def test_xids_are_unique_and_monotonic():
    a, b = next_xid(), next_xid()
    assert b > a


def test_flow_mod_canonical_stable():
    match = Match.for_destination("bb")
    fm1 = FlowMod(dpid=3, match=match, actions=(ActionOutput(2),), priority=50)
    fm2 = FlowMod(dpid=3, match=match, actions=(ActionOutput(2),), priority=50)
    assert fm1.canonical() == fm2.canonical()
    assert fm1.xid != fm2.xid  # xid not part of canonical identity


def test_flow_mod_canonical_distinguishes_actions():
    match = Match.for_destination("bb")
    good = FlowMod(dpid=3, match=match, actions=(ActionOutput(2),))
    bad = FlowMod(dpid=3, match=match, actions=(ActionDrop(),))
    assert good.canonical() != bad.canonical()


def test_canonical_actions():
    assert canonical_actions((ActionOutput(4), ActionDrop())) == (
        ("output", 4), ("drop",))


def test_wire_sizes_positive_and_sensible():
    packet = tcp_packet("a", "b", "1.1.1.1", "2.2.2.2", 1, 2, size=74)
    pin = PacketIn(dpid=1, in_port=2, packet=packet)
    assert pin.wire_size() == 18 + 74
    fm = FlowMod(dpid=1, actions=(ActionOutput(1),))
    assert fm.wire_size() > 64
    fr = FeaturesReply(dpid=1, ports=(1, 2, 3))
    assert fr.wire_size() > 32


def test_packet_out_canonical_includes_buffer():
    po = PacketOut(dpid=2, buffer_id=9, actions=(ActionOutput(1),))
    assert po.canonical() == ("packet_out", 2, 9, (("output", 1),))


def test_rest_request_canonical():
    req = RestRequest("add_flow", {"dpid": 1})
    assert req.canonical()[0] == "rest"
    assert req.wire_size() == 256


def test_encap_decap_roundtrip():
    rng = random.Random(1)
    packet = tcp_packet("a", "b", "1.1.1.1", "2.2.2.2", 1, 2)
    inner = PacketIn(dpid=5, in_port=3, packet=packet, buffer_id=11)
    outer = encapsulate_packet_in(inner, ovs_dpid=99, ovs_port=1)
    assert outer.dpid == 99
    assert outer.wire_size() > inner.wire_size()
    recovered, cost = decapsulate_packet_in(outer, rng)
    assert recovered is inner
    assert cost > 0


def test_decap_rejects_plain_packet_in():
    rng = random.Random(1)
    packet = tcp_packet("a", "b", "1.1.1.1", "2.2.2.2", 1, 2)
    plain = PacketIn(dpid=5, in_port=3, packet=packet)
    with pytest.raises(OpenFlowError):
        decapsulate_packet_in(plain, rng)


def test_decap_cost_distribution_matches_fig4i():
    """80% of decapsulations under 150 µs (= 0.15 ms), §VII-B.2."""
    rng = random.Random(42)
    packet = tcp_packet("a", "b", "1.1.1.1", "2.2.2.2", 1, 2)
    inner = PacketIn(dpid=5, in_port=3, packet=packet)
    outer = encapsulate_packet_in(inner, ovs_dpid=99, ovs_port=1)
    costs = sorted(decapsulate_packet_in(outer, rng)[1] for _ in range(5000))
    p80 = costs[int(0.8 * len(costs))]
    assert p80 < 0.15
    assert costs[-1] < 2.0  # bounded tail


def test_encap_stats_record():
    stats = EncapStats()
    stats.record(0.1)
    stats.record(0.2)
    assert stats.count == 2
    assert abs(stats.total_ms - 0.3) < 1e-9
    assert stats.samples_ms == [0.1, 0.2]


def test_flow_mod_delete_command():
    fm = FlowMod(dpid=1, command=FlowModCommand.DELETE,
                 match=Match.for_destination("bb"))
    assert fm.canonical()[2] == "delete"
