"""Timeout and staleness edge cases: sequential vs. sharded equivalence.

The delicate race: a trigger's timer θτ expires while later responses for it
sit in a shard's arrival queue. The sequential validator would have ingested
those responses *before* the timer fired (they arrived earlier), so the
pipeline must ingest queued responses up to the deadline before letting the
timer classify the trigger — otherwise the two modes disagree on
``n_responses`` and potentially on the verdict. These tests pin the race
down with deterministic simulated clocks, at a positive flush interval
(classification equivalence) and at flush interval 0 (byte equivalence).
"""

from __future__ import annotations

from repro.core.alarms import AlarmReason, canonical_alarm_stream
from repro.core.pipeline import ValidationPipeline
from repro.core.responses import Response, ResponseKind
from repro.core.timeouts import StaticTimeout
from repro.core.validator import Validator
from repro.sim.simulator import Simulator

K = 3
FULL = 2 * K + 2


def response(tau, cid="c1", kind=ResponseKind.CACHE_UPDATE, entry=(),
             digest=(), origin="c1", hint=None, tainted=False):
    return Response(controller_id=cid, trigger_id=tau, kind=kind,
                    entry=entry, origin=origin if kind.value == "cache" else None,
                    primary_hint=hint, tainted=tainted, state_digest=digest)


def run_stream(events, make_validator, until=10_000.0):
    """Schedule (time, response) events on a fresh sim and run to the end."""
    sim = Simulator(seed=0)
    validator = make_validator(sim)
    for time_ms, item in events:
        sim.schedule_at(time_ms, validator.ingest, item)
    sim.run(until=until)
    return validator


def classification(validator):
    """Everything Algorithm 1 decides, minus wall positions in the stream."""
    return sorted(
        (repr(r.trigger_id), r.n_responses, r.external, r.timed_out, r.ok,
         tuple(a.reason.value for a in r.alarms))
        for r in validator.results)


def seq(timeout_ms):
    return lambda sim: Validator(sim, K, timeout=StaticTimeout(timeout_ms))


def pipe(timeout_ms, shards=4, **kwargs):
    return lambda sim: ValidationPipeline(
        sim, K, shards=shards, timeout=StaticTimeout(timeout_ms), **kwargs)


# ----------------------------------------------------------------------
# θτ expires while the batch is queued
# ----------------------------------------------------------------------

def _partial_stream():
    """Three triggers that will all decide on the timer (θ = 10 ms).

    τ1: responses at 0, 1, 2 and one at 8 — the 8 ms arrival is *queued*
        when a 5 ms flush interval batches it; the θ wakeup at 10 ms must
        ingest it before deciding (sequential sees 4 responses).
    τ2: a response at 11 ms arrives after θτ fired at 10 — late in both
        modes, never part of the decision.
    τ3: control — a full set decided on count, bracketing the timer cases.
    """
    t1, t2, t3 = ("ext", 101), ("ext", 202), ("ext", 303)
    events = [
        (0.0, response(t1, "c1")),
        (1.0, response(t1, "c2")),
        (2.0, response(t1, "c3")),
        (8.0, response(t1, "c4")),
        (0.0, response(t2, "c1")),
        (11.0, response(t2, "c2")),
    ]
    for i in range(FULL):
        events.append((3.0 + 0.25 * i, response(t3, f"c{i % 5}")))
    return sorted(events, key=lambda e: e[0])


def test_timer_during_queued_batch_classifies_identically():
    events = _partial_stream()
    sequential = run_stream(events, seq(10.0))
    for shards in (1, 2, 4):
        pipeline = run_stream(
            events, pipe(10.0, shards=shards, flush_interval_ms=5.0))
        assert classification(pipeline) == classification(sequential), \
            f"classification diverged at N={shards} with batching delay"
        assert pipeline.late_responses == sequential.late_responses == 1
        timed_out = [r for r in pipeline.results if r.timed_out]
        assert len(timed_out) == 2
        # τ1 decided with all four responses, including the queued one.
        by_tau = {repr(r.trigger_id): r for r in pipeline.results}
        assert by_tau["('ext', 101)"].n_responses == 4


def test_timer_decisions_byte_identical_at_flush_zero():
    events = _partial_stream()
    sequential = run_stream(events, seq(10.0))
    for shards in (1, 2, 4, 8):
        pipeline = run_stream(events, pipe(10.0, shards=shards))
        assert (canonical_alarm_stream(pipeline.alarms)
                == canonical_alarm_stream(sequential.alarms))
        assert ([(repr(r.trigger_id), r.decided_at, r.n_responses,
                  r.timed_out)
                 for r in pipeline.ordered_results()]
                == sorted(((repr(r.trigger_id), r.decided_at, r.n_responses,
                            r.timed_out) for r in sequential.results),
                          key=lambda x: (x[1], x[0])))


def test_timer_fires_at_the_exact_deadline():
    tau = ("ext", 404)
    events = [(0.0, response(tau, "c1")), (3.0, response(tau, "c2"))]
    sequential = run_stream(events, seq(10.0))
    pipeline = run_stream(events, pipe(10.0, flush_interval_ms=5.0))
    assert sequential.results[0].decided_at == 10.0
    assert pipeline.results[0].decided_at == 10.0
    assert pipeline.results[0].timed_out


# ----------------------------------------------------------------------
# Staleness monitoring across shards
# ----------------------------------------------------------------------

def _stale_stream():
    """Two responders whose digest progress diverges beyond the threshold.

    Triggers land on different shards (distinct ids), so the staleness
    monitor only stays equivalent if shards decide against the merged Ψid
    view — a per-shard-only view would never see the frontier.
    """
    ahead = (("c1", 100),)
    behind = (("c2", 1),)
    events = []
    for i, at in enumerate((0.0, 100.0, 2000.0)):
        tau = ("ext", 500 + i)
        events.append((at, response(tau, "c1", digest=ahead)))
        events.append((at + 1.0, response(tau, "c2", digest=behind)))
    return events


def configure_staleness(make):
    def factory(sim):
        validator = make(sim)
        validator.staleness_threshold = 50
        validator.staleness_cooldown_ms = 1000.0
        return validator
    return factory


def test_staleness_alarms_and_cooldown_match_sequential():
    events = _stale_stream()
    sequential = run_stream(events, configure_staleness(seq(10.0)))
    stale_seq = [a for a in sequential.alarms
                 if a.reason == AlarmReason.STALE_REPLICA]
    # First trigger alarms, second is inside the 1000 ms cooldown, third
    # (at 2000 ms) alarms again.
    assert len(stale_seq) == 2
    assert {a.offending_controller for a in stale_seq} == {"c2"}
    for shards in (1, 2, 4, 8):
        pipeline = run_stream(
            events, configure_staleness(pipe(10.0, shards=shards)))
        assert (canonical_alarm_stream(pipeline.alarms)
                == canonical_alarm_stream(sequential.alarms)), \
            f"staleness stream diverged at N={shards}"


def test_stale_replica_cooldown_suppresses_across_shards():
    events = _stale_stream()
    pipeline = run_stream(events, configure_staleness(pipe(10.0, shards=8)))
    stale = [a for a in pipeline.alarms
             if a.reason == AlarmReason.STALE_REPLICA]
    assert len(stale) == 2
    # The suppressed middle trigger proves the cooldown stamp lives in the
    # merged view: its trigger hashed to a different shard than the first.
    taus = {a.trigger_id for a in stale}
    assert ("ext", 501) not in taus
