"""X-rules: interprocedural findings anchored at the entry point."""

import ast
import textwrap

from repro.analysis.project_index import (
    build_project_index,
    extract_module_facts,
)
from repro.analysis.registry import ModuleContext, project_rules
from repro.analysis.rules_xmodule import (
    AlarmStreamDeterminismRule,
    ObserverPurityRule,
    SimulatedTimeDisciplineRule,
)


def index_for(*modules):
    facts = []
    for path, source in modules:
        source = textwrap.dedent(source)
        facts.append(extract_module_facts(
            ModuleContext(path, source, ast.parse(source))))
    return build_project_index(facts)


def run(rule, idx):
    return list(rule.run_project(idx))


def test_all_three_x_rules_are_registered():
    ids = {r.rule_id for r in project_rules()}
    assert {"X501", "X502", "X503"} <= ids


# ----------------------------------------------------------------------
# X501 — observer purity, transitively
# ----------------------------------------------------------------------

def test_x501_direct_mutation_in_observer():
    idx = index_for(("src/repro/obs/probe.py", """
        def observe(engine, alarm):
            engine.alarms.append(alarm)
    """))
    findings = run(ObserverPurityRule(), idx)
    assert len(findings) == 1
    f = findings[0]
    assert f.rule_id == "X501"
    assert f.path == "src/repro/obs/probe.py"
    assert f.symbol == "observe"
    assert "directly" in f.message


def test_x501_two_hop_mutation_is_anchored_at_the_entry():
    idx = index_for(
        ("src/repro/obs/probe.py", """
            from repro.obs.helpers import stamp

            def observe(engine, alarm):
                stamp(engine, alarm)
        """),
        ("src/repro/obs/helpers.py", """
            def stamp(engine, alarm):
                engine.decisions.append(alarm)
        """),
    )
    findings = run(ObserverPurityRule(), idx)
    # One finding per offending (entry, reached) pair: the entry `observe`
    # plus `stamp` itself (a public observer function too).
    anchored = [f for f in findings if f.symbol == "observe"]
    assert len(anchored) == 1
    f = anchored[0]
    assert f.path == "src/repro/obs/probe.py"
    assert "via observe -> stamp" in f.message
    assert "helpers.py:3" in f.message  # offending site named in message


def test_x501_ignores_pure_observers_and_non_observer_modules():
    idx = index_for(
        ("src/repro/obs/probe.py", """
            def observe(engine, alarm):
                return (alarm.reason, alarm.detail)
        """),
        ("src/repro/core/engine.py", """
            def mutate(engine, alarm):
                engine.alarms.append(alarm)
        """),
    )
    assert run(ObserverPurityRule(), idx) == []


# ----------------------------------------------------------------------
# Suppression anchoring (the satellite contract)
# ----------------------------------------------------------------------

def test_suppression_on_the_entry_def_line_silences_x501():
    idx = index_for(
        ("src/repro/obs/probe.py", """
            from repro.obs.helpers import stamp

            def observe(engine, alarm):  # jury: ignore[X501]
                stamp(engine, alarm)
        """),
        ("src/repro/obs/helpers.py", """
            def _stamp_impl(engine, alarm):
                engine.decisions.append(alarm)

            def stamp(engine, alarm):  # jury: ignore[X501]
                _stamp_impl(engine, alarm)
        """),
    )
    assert run(ObserverPurityRule(), idx) == []


def test_suppression_on_the_callee_line_does_not_silence_the_caller():
    # The contract is the caller's: a suppression inside the shared helper
    # must not hide the interprocedural finding reported at the entry.
    idx = index_for(
        ("src/repro/obs/probe.py", """
            from repro.obs.helpers import stamp

            def observe(engine, alarm):
                stamp(engine, alarm)
        """),
        ("src/repro/obs/helpers.py", """
            def stamp(engine, alarm):  # jury: ignore[X501]
                engine.decisions.append(alarm)  # jury: ignore
        """),
    )
    findings = run(ObserverPurityRule(), idx)
    assert [f.symbol for f in findings] == ["observe"]


# ----------------------------------------------------------------------
# X502 — simulated-time discipline on validator hot paths
# ----------------------------------------------------------------------

def test_x502_wall_clock_reached_from_hot_path():
    idx = index_for(
        ("src/repro/core/validator.py", """
            from repro.util.clock import stamp

            def validate(action):
                return stamp()
        """),
        ("src/repro/util/clock.py", """
            import time

            def stamp():
                return time.time()
        """),
    )
    findings = run(SimulatedTimeDisciplineRule(), idx)
    assert [f.rule_id for f in findings] == ["X502"]
    assert findings[0].symbol == "validate"


def test_x502_flags_global_rng_too():
    idx = index_for(("src/repro/core/consensus.py", """
        import random

        def pick(replicas):
            return replicas[random.randrange(len(replicas))]
    """))
    findings = run(SimulatedTimeDisciplineRule(), idx)
    assert [f.rule_id for f in findings] == ["X502"]


# ----------------------------------------------------------------------
# X503 — alarm-stream determinism (set iteration on pipeline paths)
# ----------------------------------------------------------------------

def test_x503_set_iteration_reachable_from_pipeline():
    idx = index_for(
        ("src/repro/core/pipeline.py", """
            from repro.core.merge import merge_ids

            def drain(batches):
                return merge_ids(batches)
        """),
        ("src/repro/core/merge.py", """
            def merge_ids(batches):
                seen = set()
                for batch in batches:
                    seen |= batch.ids
                out = []
                for item in seen:
                    out.append(item)
                return out
        """),
    )
    findings = run(AlarmStreamDeterminismRule(), idx)
    assert [f.rule_id for f in findings] == ["X503"]
    assert findings[0].symbol == "drain"
    assert "via drain -> merge_ids" in findings[0].message
