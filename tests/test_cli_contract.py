"""The CLI's uniform contract, pinned across every subcommand.

Three invariants (see the ``repro.cli`` module docstring):

1. every subcommand's handler returns a
   :class:`~repro.harness.reporting.CommandResult` whose ``data`` payload
   is JSON-serializable — so ``--format json`` always prints valid JSON;
2. the exit-code contract is uniform: 0 ok, 1 findings-or-failure,
   2 usage/config error (the fuzzer's documented exception: a surviving
   counterexample is a broken repo invariant and exits 2, pinned in
   ``test_fuzz_cli.py``);
3. usage errors — unknown names, bad ``--config`` files — exit 2 with the
   message on stderr, never a traceback.

Each command runs ONCE (parse → handler), then both render paths are
checked off the same result, so the suite stays affordable even though it
walks the whole command surface.
"""

from __future__ import annotations

import io
import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.harness.reporting import CommandResult, render_result

REPO_ROOT = Path(__file__).resolve().parents[1]
POLICY_CLEAN = str(REPO_ROOT / "tests" / "fixtures" / "policies" / "clean.xml")

_SMALL = ["--nodes", "3", "-k", "2", "--switches", "4",
          "--rate", "500", "--duration", "300", "--seed", "3"]

CLEAN_PY = textwrap.dedent("""
    def handler(sim):
        return sim.now
""")

DIRTY_PY = textwrap.dedent("""
    import time

    def handler(seen, channel):
        seen.add(id(channel))
        return time.time()
""")


def _commands(tmp_path: Path):
    """Every subcommand with a small, deterministic invocation."""
    clean = tmp_path / "clean.py"
    clean.write_text(CLEAN_PY)
    out = lambda name: str(tmp_path / name)  # noqa: E731
    return {
        "validate": ["validate"] + _SMALL,
        "faults": ["faults", "crash", "--nodes", "5", "-k", "4",
                   "--switches", "6", "--seed", "4"],
        "throughput": ["throughput", "--cluster-sizes", "1",
                       "--switches", "4", "--rate", "500",
                       "--duration", "300", "--seed", "5"],
        "detection": ["detection"] + _SMALL,
        "trace": ["trace"] + _SMALL,
        "metrics": ["metrics"] + _SMALL,
        "diagnose": ["diagnose", "--fault", "link-failure", "--nodes", "5",
                     "-k", "4", "--switches", "6", "--seed", "4"],
        "health": ["health"] + _SMALL,
        "fuzz": ["fuzz", "--seed", "8", "--runs", "1", "--no-shrink"],
        "list-faults": ["list-faults"],
        "analyze": ["analyze", str(clean)],
        "analyze-policy": ["analyze-policy", POLICY_CLEAN],
        "bench validator": ["bench", "validator", "--triggers", "1500",
                            "--output", out("bench_validator.json")],
        "bench validator --backend": [
            "bench", "validator", "--backend", "processes",
            "--triggers", "1500", "--output", out("bench_backends.json")],
        # Timing gates are load-sensitive; the contract cares about CLI
        # plumbing, so only the deterministic gates (alarm streams, span
        # conservation) stay armed here. CI arms the real thresholds.
        "bench obs": ["bench", "obs", "--triggers", "1500", "--reps", "1",
                      "--max-off-delta-pct", "1e9",
                      "--max-sampled-overhead-pct", "1e9",
                      "--output", out("bench_obs.json")],
        "bench analyze": ["bench", "analyze", str(clean), "--jobs", "2",
                          "--reps", "1", "--min-warm-speedup", "0",
                          "--output", out("bench_analysis.json")],
    }


@pytest.fixture(scope="module")
def contract_results(tmp_path_factory):
    """Run every subcommand once; later tests assert off the shared results."""
    tmp_path = tmp_path_factory.mktemp("cli-contract")
    parser = build_parser()
    results = {}
    for name, argv in _commands(tmp_path).items():
        args = parser.parse_args(argv)
        results[name] = args.fn(args)
    return results


def _command_names():
    # Names only — the fixture owns the tmp_path-dependent argv.
    return list(_commands(Path("/tmp")).keys())


@pytest.mark.parametrize("name", _command_names())
def test_every_command_returns_a_command_result(contract_results, name):
    result = contract_results[name]
    assert isinstance(result, CommandResult), \
        f"{name} returned {type(result).__name__}"
    assert result.command, f"{name} left CommandResult.command empty"
    assert result.exit_code in (0, 1, 2), \
        f"{name} exited {result.exit_code}, outside the 0/1/2 contract"


@pytest.mark.parametrize("name", _command_names())
def test_every_command_succeeds_on_its_happy_path(contract_results, name):
    result = contract_results[name]
    assert result.exit_code == 0, \
        f"{name} failed its smoke invocation: {result.errors}"


@pytest.mark.parametrize("name", _command_names())
def test_json_format_prints_valid_json(contract_results, name):
    result = contract_results[name]
    out, err = io.StringIO(), io.StringIO()
    code = render_result(result, fmt="json", out=out, err=err)
    assert code == result.exit_code
    payload = json.loads(out.getvalue())
    assert isinstance(payload, dict), f"{name} JSON payload is not an object"


@pytest.mark.parametrize("name", _command_names())
def test_human_format_renders_without_error(contract_results, name):
    result = contract_results[name]
    out, err = io.StringIO(), io.StringIO()
    code = render_result(result, fmt="human", out=out, err=err)
    assert code == result.exit_code
    # prom-capable commands aside, every success prints something readable.
    assert out.getvalue().strip() or result.data == {}


# ----------------------------------------------------------------------
# Exit 1: findings-or-failure
# ----------------------------------------------------------------------

def test_findings_exit_1(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY_PY)
    assert main(["analyze", "--fail-on", "error", str(dirty)]) == 1
    capsys.readouterr()


# ----------------------------------------------------------------------
# Exit 2: usage/config errors, message on stderr, no traceback
# ----------------------------------------------------------------------

def _bad_config_missing(tmp_path):
    return ["validate", "--config", str(tmp_path / "missing.json")]


def _bad_config_unknown_key(tmp_path):
    path = tmp_path / "typo.json"
    path.write_text(json.dumps({"k": 2, "pipline": 4}))
    return ["validate", "--config", str(path)]


def _bad_config_invalid_json(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    return ["validate", "--config", str(path)]


@pytest.mark.parametrize("make_argv,needle", [
    (lambda _: ["faults", "no-such-fault"], "unknown fault"),
    (lambda _: ["diagnose", "--fault", "no-such-fault"], "unknown fault"),
    (lambda _: ["analyze", "no_such_dir_zzz"], ""),
    (_bad_config_missing, "--config"),
    (_bad_config_unknown_key, "did you mean 'pipeline'"),
    (_bad_config_invalid_json, "invalid JSON"),
], ids=["unknown-fault", "unknown-diagnose-fault", "missing-analyze-path",
        "config-missing-file", "config-unknown-key", "config-invalid-json"])
def test_usage_errors_exit_2_with_stderr_message(tmp_path, capsys,
                                                 make_argv, needle):
    code = main(make_argv(tmp_path))
    captured = capsys.readouterr()
    assert code == 2
    assert needle in captured.err
    assert "Traceback" not in captured.err
