"""Whole-experiment determinism: the property everything else rests on.

Same seed ⇒ byte-identical outcomes, across the full stack (topology,
cluster, JURY, workload). This is what makes one-shot benchmark runs
reproducible measurements and shadow execution a meaningful reference.
"""

from repro.api import Jury
from repro.config import JuryConfig
from repro.workloads.traffic import TrafficDriver


def run_fingerprint(seed):
    experiment = Jury.experiment(JuryConfig(kind="onos", n=5, k=4, switches=8,
                                  seed=seed, timeout_ms=250.0))
    experiment.warmup()
    driver = TrafficDriver(experiment.sim, experiment.topology,
                           packet_in_rate_per_s=1200.0, duration_ms=600.0)
    driver.start()
    experiment.run(1200.0)
    validator = experiment.validator
    switches = experiment.topology.switches.values()
    return (
        validator.triggers_decided,
        validator.triggers_alarmed,
        validator.responses_received,
        round(sum(r.detection_ms for r in validator.results), 6),
        tuple(sorted((s.dpid, len(s.table), s.packet_ins_sent)
                     for s in switches)),
        driver.connections_opened,
        experiment.store.counter.bytes,
    )


def test_same_seed_identical_run():
    assert run_fingerprint(777) == run_fingerprint(777)


def test_different_seed_different_run():
    assert run_fingerprint(777) != run_fingerprint(778)


def test_replica_stores_converge_identically():
    experiment = Jury.experiment(JuryConfig(kind="onos", n=5, k=4, switches=8,
                                  seed=779, timeout_ms=200.0))
    experiment.warmup()
    hosts = experiment.topology.host_list()
    for i in range(5):
        hosts[i].open_connection(hosts[(i + 4) % 8])
    experiment.run(2000.0)
    # After quiescing, all replicas hold byte-identical cache contents.
    contents = []
    for controller in experiment.cluster.controllers.values():
        snapshot = {cache: tuple(sorted(entries.items(), key=repr))
                    for cache, entries in controller.store.caches.items()}
        contents.append(repr(sorted(snapshot.items())))
    assert len(set(contents)) == 1
