"""Tests for the packet model."""

from repro.net.packet import (
    ETH_BROADCAST,
    EtherType,
    IpProto,
    LldpPayload,
    arp_reply,
    arp_request,
    lldp_probe,
    tcp_packet,
)


def test_arp_request_is_broadcast():
    packet = arp_request("aa:aa", "10.0.0.1", "10.0.0.2")
    assert packet.is_arp
    assert packet.is_broadcast
    assert packet.dst_mac == ETH_BROADCAST
    assert packet.src_ip == "10.0.0.1"
    assert packet.dst_ip == "10.0.0.2"


def test_arp_reply_is_unicast():
    packet = arp_reply("bb:bb", "10.0.0.2", "aa:aa", "10.0.0.1")
    assert packet.is_arp
    assert not packet.is_broadcast
    assert packet.dst_mac == "aa:aa"


def test_tcp_packet_fields():
    packet = tcp_packet("aa", "bb", "10.0.0.1", "10.0.0.2", 1234, 80)
    assert packet.eth_type == EtherType.IPV4
    assert packet.ip_proto == IpProto.TCP
    assert packet.src_port == 1234
    assert packet.dst_port == 80
    assert not packet.is_arp
    assert not packet.is_lldp


def test_lldp_probe_carries_origin():
    packet = lldp_probe(7, 3, controller_id="c2")
    assert packet.is_lldp
    payload = packet.payload
    assert isinstance(payload, LldpPayload)
    assert payload.src_dpid == 7
    assert payload.src_port == 3
    assert payload.controller_id == "c2"


def test_packets_are_immutable():
    packet = arp_request("aa", "10.0.0.1", "10.0.0.2")
    try:
        packet.src_mac = "bb"
        raised = False
    except AttributeError:
        raised = True
    assert raised


def test_with_payload_creates_copy():
    packet = tcp_packet("aa", "bb", "1.1.1.1", "2.2.2.2", 1, 2)
    wrapped = packet.with_payload("inner", size=128)
    assert wrapped.payload == "inner"
    assert wrapped.size == 128
    assert packet.payload is None  # original untouched


def test_summary_formats():
    assert "ARP" in arp_request("a", "1.1.1.1", "2.2.2.2").summary()
    assert "LLDP" in lldp_probe(1, 1).summary()
    assert "TCP" in tcp_packet("a", "b", "1.1.1.1", "2.2.2.2", 5, 6).summary()


def test_flow_id_tracking():
    packet = tcp_packet("a", "b", "1.1.1.1", "2.2.2.2", 5, 6, flow_id=42)
    assert packet.flow_id == 42
