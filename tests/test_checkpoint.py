"""Crash recovery (repro.core.checkpoint): envelope, WAL, round trips, soak.

The headline property mirrors the differential suites' currency: restore
from a checkpoint plus a WAL-tail replay must reproduce the uninterrupted
run's canonical alarm stream *byte for byte* (``flush_interval_ms=0``
regime, ``docs/recovery.md``). The workload here is the soak harness's
indexed stream — a pure function of the trigger index — so cut points can
land anywhere and the remainder is always recomputable.
"""

from __future__ import annotations

import os

import pytest

from repro.config import JuryConfig
from repro.core.alarms import canonical_alarm_stream
from repro.core.checkpoint import (
    Checkpoint,
    WriteAheadLog,
    replay_wal,
    restore_engine,
    run_with_recovery,
    wal_last_ingest_time,
    wal_tail,
)
from repro.core.pipeline import ValidationPipeline
from repro.core.timeouts import StaticTimeout
from repro.core.validator import Validator
from repro.errors import CheckpointError
from repro.harness.soak import soak_stream, soak_trigger
from repro.sim.simulator import Simulator

K = 3
TIMEOUT_MS = 250.0
SPACING_MS = 5.0
SETTLE_MS = 5_000.0


def _stream(triggers=120, seed=1):
    return soak_stream(triggers, K, seed, SPACING_MS)


def _make_validator(sim):
    return Validator(sim, K, timeout=StaticTimeout(TIMEOUT_MS))


def _make_pipeline(shards, backend="serial"):
    def make(sim):
        return ValidationPipeline(sim, K, shards=shards,
                                  timeout=StaticTimeout(TIMEOUT_MS),
                                  backend=backend)
    return make


def _run(make, records, until=None):
    """Uninterrupted reference run over ``records``."""
    sim = Simulator(seed=0)
    engine = make(sim)
    for record in records:
        sim.schedule_at(record.time_ms, engine.ingest, record.response)
    sim.run(until=(records[-1].time_ms + SETTLE_MS if until is None else until))
    drain = getattr(engine, "drain", None)
    if drain is not None:
        drain()
    return engine


def _close(engine):
    close = getattr(engine, "close", None)
    if close is not None:
        close()


# ----------------------------------------------------------------------
# Checkpoint envelope: versioned, digest-stamped, tamper-evident
# ----------------------------------------------------------------------

def test_envelope_build_state_round_trip():
    state = {"psi": {"c1": (1, 2)}, "alarms": [], "counters": (3, 2, 0, 0)}
    checkpoint = Checkpoint.build({"engine": "validator", "k": 3}, state)
    assert checkpoint.state() == state
    assert len(checkpoint.sha256) == 64
    clone = Checkpoint.from_json(checkpoint.to_json())
    assert clone.state() == state
    assert clone.sha256 == checkpoint.sha256
    assert clone.meta == checkpoint.meta


def test_envelope_detects_tampered_body():
    checkpoint = Checkpoint.build({}, {"x": 1})
    checkpoint.body = checkpoint.body[:-1] + b"\x00"
    with pytest.raises(CheckpointError, match="digest mismatch"):
        checkpoint.state()
    payload = Checkpoint.build({}, {"x": 1}).to_json()
    payload["sha256"] = "0" * 64
    with pytest.raises(CheckpointError, match="digest mismatch"):
        Checkpoint.from_json(payload)


def test_envelope_rejects_foreign_payloads():
    with pytest.raises(CheckpointError, match="not a jury-checkpoint"):
        Checkpoint.from_json({"format": "jury-flight"})
    good = Checkpoint.build({}, {}).to_json()
    good["version"] = 99
    with pytest.raises(CheckpointError, match="version"):
        Checkpoint.from_json(good)
    bad_body = Checkpoint.build({}, {}).to_json()
    bad_body["body"] = "not base64!!!"
    with pytest.raises(CheckpointError, match="unreadable"):
        Checkpoint.from_json(bad_body)


def test_envelope_save_load_file(tmp_path):
    checkpoint = Checkpoint.build({"engine": "validator"}, {"n": 42})
    path = tmp_path / "cp.json"
    checkpoint.save(str(path))
    assert not os.path.exists(str(path) + ".tmp"), "atomic rename leftovers"
    loaded = Checkpoint.load(str(path))
    assert loaded.sha256 == checkpoint.sha256
    assert loaded.state() == {"n": 42}
    with pytest.raises(CheckpointError, match="cannot load"):
        Checkpoint.load(str(tmp_path / "missing.json"))


# ----------------------------------------------------------------------
# Write-ahead log: durability discipline and the marker-position contract
# ----------------------------------------------------------------------

def test_wal_file_round_trip(tmp_path):
    path = str(tmp_path / "wal.bin")
    with WriteAheadLog(path) as wal:
        wal.append_ingest(1.0, "r1")
        wal.append_checkpoint("a" * 64)
        wal.append_ingest(2.0, "r2")
        wal.append_decision(2.5, ("ext", 0), 0)
    records = WriteAheadLog.read(path)
    assert [r[0] for r in records] == \
        ["ingest", "checkpoint", "ingest", "decision"]
    assert wal_last_ingest_time(records) == 2.0
    assert wal_tail(records, "a" * 64)[0][2] == "r2"


def test_wal_truncated_tail_is_dropped_not_misparsed(tmp_path):
    path = str(tmp_path / "wal.bin")
    with WriteAheadLog(path) as wal:
        wal.append_ingest(1.0, "whole")
        wal.append_ingest(2.0, "torn-by-the-crash")
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size - 3)  # cut the last record mid-pickle
    records = WriteAheadLog.read(path)
    assert len(records) == 1 and records[0][2] == "whole"


def test_wal_tail_is_position_based_not_time_based():
    # Two ingests at the *same instant* as the checkpoint: the one
    # appended before the marker is subsumed by the snapshot, the one
    # after must replay. A timestamp cut would replay both or neither.
    wal = WriteAheadLog()
    wal.append_ingest(5.0, "before")
    wal.append_checkpoint("c" * 64)
    wal.append_ingest(5.0, "after")
    tail = wal_tail(wal.records(), "c" * 64)
    assert [r[2] for r in tail] == ["after"]
    with pytest.raises(CheckpointError, match="no checkpoint marker"):
        wal_tail(wal.records(), "d" * 64)


def test_wal_tail_uses_newest_matching_marker():
    # The same digest can be checkpointed twice (idle engine): recovery
    # anchors on the *last* marker so the replayed tail is minimal.
    wal = WriteAheadLog()
    wal.append_checkpoint("e" * 64)
    wal.append_ingest(1.0, "old")
    wal.append_checkpoint("e" * 64)
    wal.append_ingest(2.0, "new")
    assert [r[2] for r in wal_tail(wal.records(), "e" * 64)] == ["new"]


def test_replay_wal_schedules_only_ingests():
    sim = Simulator(seed=0)
    seen = []

    class _Engine:
        def __init__(self):
            self.sim = sim

        def ingest(self, response):
            seen.append((sim.now, response))

    wal = WriteAheadLog()
    wal.append_ingest(3.0, "a")
    wal.append_decision(3.5, ("ext", 0), 0)
    wal.append_ingest(7.0, "b")
    count, last = replay_wal(_Engine(), wal.records())
    assert (count, last) == (2, 7.0)
    sim.run(until=10.0)
    assert seen == [(3.0, "a"), (7.0, "b")]


# ----------------------------------------------------------------------
# Round-trip property: restore(checkpoint(s)) is byte-identical
# ----------------------------------------------------------------------

@pytest.mark.parametrize("label,make", [
    ("validator", _make_validator),
    ("pipeline-N2", _make_pipeline(2)),
    ("pipeline-N4-threads", _make_pipeline(4, backend="threads")),
])
@pytest.mark.parametrize("cut", (0.25, 0.5, 0.75))
def test_restore_resumes_byte_identical(label, make, cut):
    """Checkpoint mid-stream, restore a fresh twin, feed it the remainder:
    the twin's settled alarm stream matches the uninterrupted run's."""
    records = _stream()
    reference = _run(make, records)
    expected = canonical_alarm_stream(reference.alarms)
    assert expected, "workload must alarm for the comparison to bite"
    _close(reference)

    cut_index = int(len(records) * cut)
    cut_time = records[cut_index].time_ms
    sim = Simulator(seed=0)
    engine = make(sim)
    for record in records[:cut_index + 1]:
        sim.schedule_at(record.time_ms, engine.ingest, record.response)
    sim.run(until=cut_time)
    checkpoint = engine.checkpoint()
    _close(engine)

    sim2 = Simulator(seed=0)
    twin = make(sim2)
    twin.restore(checkpoint)
    assert twin.sim.now == cut_time
    for record in records[cut_index + 1:]:
        sim2.schedule_at(record.time_ms, twin.ingest, record.response)
    sim2.run(until=records[-1].time_ms + SETTLE_MS)
    drain = getattr(twin, "drain", None)
    if drain is not None:
        drain()
    assert canonical_alarm_stream(twin.alarms) == expected, \
        f"{label} diverged after a restore at {cut:.0%}"
    assert twin.triggers_decided == reference.triggers_decided
    assert twin.responses_received == reference.responses_received
    _close(twin)


def test_immediate_restore_re_checkpoints_to_the_same_state():
    """checkpoint → restore → checkpoint is a fixed point: the twin's
    snapshot captures byte-identical state per section — pending records,
    Ψ, heaps and counters included. (The whole-body digest is deliberately
    not compared: pickle memoization encodes object-identity sharing
    *across* sections, and a string interned in the original process may
    be two equal objects in the twin — a representation detail, not
    state.)"""
    import pickle

    records = _stream(triggers=60)
    for make in (_make_validator, _make_pipeline(2)):
        cut = records[len(records) // 2].time_ms
        sim = Simulator(seed=0)
        engine = make(sim)
        for record in records:
            if record.time_ms <= cut:
                sim.schedule_at(record.time_ms, engine.ingest,
                                record.response)
        sim.run(until=cut)
        checkpoint = engine.checkpoint()
        _close(engine)
        sim2 = Simulator(seed=0)
        twin = make(sim2)
        twin.restore(checkpoint)
        again = twin.checkpoint()
        assert again.meta == checkpoint.meta
        state, twin_state = checkpoint.state(), again.state()
        assert state.keys() == twin_state.keys()
        for key in state:
            assert pickle.dumps(state[key], 5) == \
                pickle.dumps(twin_state[key], 5), f"{key} drifted"
        _close(twin)


def test_restore_rejects_mismatched_or_dirty_targets():
    records = _stream(triggers=30)
    engine = _run(_make_validator, records)
    checkpoint = engine.checkpoint()

    # Engine-kind and shape mismatches fail loud, not silently diverge.
    pipeline = ValidationPipeline(Simulator(seed=0), K, shards=2,
                                  timeout=StaticTimeout(TIMEOUT_MS))
    with pytest.raises(CheckpointError, match="engine"):
        pipeline.restore(checkpoint)
    wrong_k = Validator(Simulator(seed=0), K + 1,
                        timeout=StaticTimeout(TIMEOUT_MS))
    with pytest.raises(CheckpointError, match="k="):
        wrong_k.restore(checkpoint)

    # A used engine is not a restore target.
    with pytest.raises(CheckpointError, match="fresh"):
        engine.restore(checkpoint)

    # A simulator already past the checkpoint instant cannot rewind.
    late_sim = Simulator(seed=0)
    late_sim.run(until=checkpoint.meta["sim_now"] + 1.0)
    late = Validator(late_sim, K, timeout=StaticTimeout(TIMEOUT_MS))
    with pytest.raises(CheckpointError, match="past"):
        late.restore(checkpoint)


def test_checkpoint_is_backend_portable():
    """A snapshot harvested from process workers restores into a serial
    twin (and vice versa): shard payloads are plain dicts, not frames."""
    records = _stream(triggers=80)
    reference = _run(_make_pipeline(2), records)
    expected = canonical_alarm_stream(reference.alarms)

    cut_index = len(records) // 2
    cut_time = records[cut_index].time_ms
    sim = Simulator(seed=0)
    engine = _make_pipeline(2, backend="processes")(sim)
    for record in records[:cut_index + 1]:
        sim.schedule_at(record.time_ms, engine.ingest, record.response)
    sim.run(until=cut_time)
    checkpoint = engine.checkpoint()
    _close(engine)

    twin = restore_engine(checkpoint, backend="serial")
    assert isinstance(twin, ValidationPipeline)
    for record in records[cut_index + 1:]:
        twin.sim.schedule_at(record.time_ms, twin.ingest, record.response)
    twin.sim.run(until=records[-1].time_ms + SETTLE_MS)
    twin.drain()
    assert canonical_alarm_stream(twin.alarms) == expected


# ----------------------------------------------------------------------
# Auto-checkpointing (checkpoint_every) and the config/deployment wiring
# ----------------------------------------------------------------------

def test_auto_checkpoint_fires_and_newest_snapshot_restores():
    records = _stream(triggers=100)
    taken = []
    sim = Simulator(seed=0)
    engine = ValidationPipeline(sim, K, shards=2,
                                timeout=StaticTimeout(TIMEOUT_MS),
                                checkpoint_every=25,
                                on_checkpoint=taken.append)
    wal = WriteAheadLog()
    engine.wal = wal
    for record in records:
        sim.schedule_at(record.time_ms, engine.ingest, record.response)
    sim.run(until=records[-1].time_ms + SETTLE_MS)
    engine.drain()
    expected = canonical_alarm_stream(engine.alarms)
    assert len(taken) >= 3, "100 decided triggers at every-25 must snapshot"
    decided = [cp.meta["triggers_decided"] for cp in taken]
    assert decided == sorted(decided)
    # Each snapshot left its marker in the WAL, newest last.
    markers = [r[1] for r in wal.records() if r[0] == "checkpoint"]
    assert markers == [cp.sha256 for cp in taken]
    # The newest snapshot alone already carries the full alarm history
    # (nothing was pending at quiescence).
    twin = restore_engine(taken[-1])
    assert canonical_alarm_stream(twin.alarms) == expected


def test_config_checkpoint_every_validation_and_deployment_wiring():
    with pytest.raises(Exception):
        JuryConfig(kind="onos", n=3, k=2, checkpoint_every=0)
    with pytest.raises(Exception):
        JuryConfig(kind="onos", n=3, k=2, checkpoint_every=True)
    config = JuryConfig(kind="onos", n=3, k=2, switches=4, seed=3,
                        timeout_ms=200.0, policies=("default",),
                        checkpoint_every=5)
    assert config.describe()["checkpoint_every"] == 5
    assert JuryConfig.from_dict(config.to_dict()).checkpoint_every == 5

    from repro.api import Jury
    from repro.workloads.traffic import TrafficDriver
    experiment = Jury.experiment(config)
    experiment.warmup()
    deployment = experiment.jury
    driver = TrafficDriver(experiment.sim, experiment.topology,
                           packet_in_rate_per_s=300.0, duration_ms=200.0)
    driver.start()
    experiment.run(200.0 + 4 * 200.0)
    assert deployment.validator.triggers_decided >= 5
    newest = deployment.last_checkpoint
    assert newest is not None, "deployment must keep the newest snapshot"
    assert newest.meta["engine"] == "validator"
    # The kept snapshot is a live restore point, not just bookkeeping.
    twin = restore_engine(newest)
    assert twin.triggers_decided == newest.meta["triggers_decided"]


# ----------------------------------------------------------------------
# Kill/recover through run_with_recovery on the indexed workload
# ----------------------------------------------------------------------

@pytest.mark.parametrize("shards", (None, 1, 2, 4, 8))
def test_run_with_recovery_matches_uninterrupted(shards):
    records = _stream(triggers=90, seed=4)
    make = _make_validator if shards is None else _make_pipeline(shards)
    expected = canonical_alarm_stream(_run(make, records).alarms)
    for kill_fraction in (0.2, 0.6):
        kill_index = int(len(records) * kill_fraction)
        recovered = run_with_recovery(records, make, kill_index,
                                      checkpoint_every=10,
                                      settle_ms=SETTLE_MS)
        label = f"N={shards} kill@{kill_fraction:.0%}"
        assert canonical_alarm_stream(recovered.alarms) == expected, \
            f"{label}: recovery diverged"
        _close(recovered)


def test_run_with_recovery_kill_before_first_checkpoint():
    """A kill inside the first interval restores from the t=0 baseline
    snapshot and replays the whole WAL."""
    records = _stream(triggers=40, seed=2)
    expected = canonical_alarm_stream(_run(_make_validator, records).alarms)
    recovered = run_with_recovery(records, _make_validator, kill_index=3,
                                  checkpoint_every=1_000_000,
                                  settle_ms=SETTLE_MS)
    assert canonical_alarm_stream(recovered.alarms) == expected


# ----------------------------------------------------------------------
# Soak workload purity (what makes the parent's resume recomputable)
# ----------------------------------------------------------------------

def test_soak_workload_is_a_pure_function_of_the_index():
    a = soak_trigger(17, K, seed=0, spacing_ms=SPACING_MS)
    b = soak_trigger(17, K, seed=0, spacing_ms=SPACING_MS)
    assert [(r.time_ms, r.response) for r in a] == \
        [(r.time_ms, r.response) for r in b]
    # A different seed redraws flows/faults.
    c = soak_trigger(17, K, seed=99, spacing_ms=SPACING_MS)
    assert [r.response for r in c] != [r.response for r in a]
    # The flat stream is the concatenation of the per-index triggers.
    stream = soak_stream(5, K, 0, SPACING_MS)
    flat = [r for i in range(5)
            for r in soak_trigger(i, K, 0, SPACING_MS)]
    assert [(r.time_ms, r.response) for r in stream] == \
        [(r.time_ms, r.response) for r in flat]


def test_soak_timestamps_are_globally_distinct_and_ordered():
    stream = soak_stream(30, K, 0, SPACING_MS)
    times = [r.time_ms for r in stream]
    assert times == sorted(times)
    assert len(set(times)) == len(times), \
        "distinct timestamps are what make the resume boundary exact"


def test_soak_workload_plants_faults():
    # FAULT_STRIDE guarantees ~2% faulted triggers; make sure the default
    # soak actually exercises the alarm path.
    engine = _run(_make_validator, _stream(triggers=120, seed=0))
    assert engine.triggers_alarmed > 0


# ----------------------------------------------------------------------
# The soak harness end-to-end (a real SIGKILL, scaled down for CI)
# ----------------------------------------------------------------------

def test_run_soak_kill_and_recover(tmp_path):
    from repro.harness.soak import run_soak

    payload = run_soak(duration_s=2.0, kill_at_s=1.0, checkpoint_every=20,
                       rate_per_s=50.0, k=K, max_rss_mb=512.0,
                       workdir=str(tmp_path))
    assert payload["ok"], payload["failures"]
    assert payload["worker_exitcode"] == -9
    assert payload["alarm_streams_identical"] is True
    assert payload["recovered"]["decided"] == payload["reference"]["decided"]
    assert payload["worker_peak_rss_kb"] <= 512 * 1024
    # The artifacts a post-mortem needs are on disk.
    assert (tmp_path / "CHECKPOINT_sample.json").exists()
    assert (tmp_path / "soak-wal.bin").exists()


def test_run_soak_rejects_out_of_range_kill(tmp_path):
    from repro.harness.soak import run_soak

    with pytest.raises(CheckpointError, match="kill-at"):
        run_soak(duration_s=2.0, kill_at_s=5.0, workdir=str(tmp_path))


def test_soak_cli_round_trip(tmp_path):
    from repro.cli import main

    sample = tmp_path / "CHECKPOINT_out.json"
    code = main(["soak", "--duration", "2", "--kill-at", "1",
                 "--rate", "50", "--checkpoint-every", "20",
                 "--workdir", str(tmp_path / "work"),
                 "--checkpoint-output", str(sample)])
    assert code == 0
    # The uploaded sample is a loadable, digest-verified checkpoint.
    checkpoint = Checkpoint.load(str(sample))
    assert checkpoint.meta["engine"] == "validator"
    assert main(["soak", "--duration", "2", "--kill-at", "9"]) == 2


# ----------------------------------------------------------------------
# Fuzz-corpus streams through the recovery path
# ----------------------------------------------------------------------

def test_fuzz_corpus_replays_through_restored_pipeline(small_fuzz_corpus):
    """Recorded fuzz scenarios survive a mid-stream kill + restore at
    N ∈ {2, 4}: the recovered stream matches the sequential replay."""
    from repro.faults.injector import default_policy_engine
    from repro.fuzz import DifferentialOracle
    from repro.workloads.recorder import replay_validation_stream

    oracle = DifferentialOracle()
    faulted = next(s for s in small_fuzz_corpus if s.faults)
    clean = next(s for s in small_fuzz_corpus if not s.faults)
    for spec in (faulted, clean):
        live = oracle.record(spec)
        assert live.records, f"seed {spec.seed} recorded nothing"
        lookup = live.mastership.get
        sequential = replay_validation_stream(
            live.records, lambda sim: Validator(
                sim, spec.k, timeout=StaticTimeout(spec.timeout_ms),
                policy_engine=default_policy_engine(),
                mastership_lookup=lookup))
        expected = canonical_alarm_stream(sequential.alarms)
        for shards in (2, 4):
            def make(sim):
                return ValidationPipeline(
                    sim, spec.k, shards=shards,
                    timeout=StaticTimeout(spec.timeout_ms),
                    policy_engine=default_policy_engine(),
                    mastership_lookup=lookup)

            recovered = run_with_recovery(
                live.records, make, kill_index=len(live.records) // 3,
                checkpoint_every=8)
            assert canonical_alarm_stream(recovered.alarms) == expected, \
                f"seed {spec.seed} diverged through recovery at N={shards}"
            _close(recovered)
