"""Unit tests for the Prometheus/JSONL exporters and the snapshot sink."""

import json

from repro.obs.export import (
    SnapshotSink,
    escape_label_value,
    health_jsonl,
    lint_prometheus_text,
    metrics_jsonl,
    prometheus_text,
)
from repro.obs.health import ReplicaHealthTracker, SloMonitor
from repro.obs.metrics import MetricsRegistry


def _registry():
    registry = MetricsRegistry()
    registry.counter("validator_responses_total", kind="cache").inc(7)
    registry.counter("validator_responses_total", kind="network").inc(3)
    registry.gauge("pipeline_queue_depth", shard="0").set(12.0)
    for value in (1.0, 2.0, 10.0):
        registry.histogram("validator_detection_ms").observe(value)
    return registry


# ----------------------------------------------------------------------
# Prometheus rendering
# ----------------------------------------------------------------------

def test_counter_and_gauge_series():
    text = prometheus_text(registry=_registry())
    assert "# TYPE validator_responses_total counter" in text
    assert 'validator_responses_total{kind="cache"} 7' in text
    assert "# TYPE pipeline_queue_depth gauge" in text
    assert 'pipeline_queue_depth{shard="0"} 12' in text


def test_histograms_render_as_summaries_with_sum_and_count():
    text = prometheus_text(registry=_registry())
    assert "# TYPE validator_detection_ms summary" in text
    assert 'validator_detection_ms{quantile="0.5"}' in text
    assert 'validator_detection_ms{quantile="0.95"}' in text
    assert "validator_detection_ms_sum 13" in text
    assert "validator_detection_ms_count 3" in text


def test_type_header_appears_once_per_family():
    text = prometheus_text(registry=_registry())
    assert text.count("# TYPE validator_responses_total counter") == 1


def test_health_and_slo_families():
    tracker = ReplicaHealthTracker()
    tracker.record_response(10.0, "c1", lag_ms=2.0)
    reports = tracker.evaluate(500.0)
    registry = _registry()
    monitor = SloMonitor()
    statuses = monitor.evaluate(registry, 500.0)
    text = prometheus_text(registry=registry, health_reports=reports,
                           slo_statuses=statuses)
    assert 'jury_replica_health_score{replica="c1"}' in text
    assert 'jury_replica_suspected{replica="c1"} 0' in text
    assert 'jury_slo_ok{rule="late-drop-rate"} 1' in text
    assert 'jury_slo_threshold{rule="detection-latency-p95"} 500' in text


def test_label_escaping():
    assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
    registry = MetricsRegistry()
    registry.counter("weird_total", detail='say "hi"\n').inc()
    text = prometheus_text(registry=registry)
    assert 'detail="say \\"hi\\"\\n"' in text
    assert lint_prometheus_text(text) == []


def test_generated_documents_always_lint_clean():
    tracker = ReplicaHealthTracker()
    tracker.record_response(1.0, "c1", lag_ms=1.0)
    monitor = SloMonitor()
    registry = _registry()
    text = prometheus_text(registry=registry,
                           health_reports=tracker.evaluate(100.0),
                           slo_statuses=monitor.evaluate(registry, 100.0))
    assert lint_prometheus_text(text) == []


def test_every_family_gets_a_help_line_before_its_type():
    text = prometheus_text(registry=_registry())
    lines = text.splitlines()
    for index, line in enumerate(lines):
        if line.startswith("# TYPE "):
            family = line.split()[2]
            assert lines[index - 1].startswith(f"# HELP {family} "), \
                f"{family}: TYPE must be preceded by its HELP"
    assert "# HELP validator_responses_total Responses" in text
    # Families without curated help still get the generic fallback.
    registry = MetricsRegistry()
    registry.counter("never_documented_total").inc()
    assert ("# HELP never_documented_total JURY reproduction metric."
            in prometheus_text(registry=registry))


def _profiled_registry():
    from repro.obs.profile import merge_profile
    registry = MetricsRegistry()
    merge_profile(registry, "threads", 0, {"batch": (3, 0.0004, 0.0001,
                                                     0.0002)})
    merge_profile(registry, "threads", 0, {"batch": (2, 0.3, 0.1, 0.2)})
    return registry


def test_backend_stage_wall_ms_renders_as_a_real_histogram():
    text = prometheus_text(registry=_profiled_registry())
    assert "# TYPE backend_stage_wall_ms histogram" in text
    # Cumulative buckets: the 0.4 ms delta is <= 0.5, the 300 ms one only
    # <= 500; +Inf mirrors _count.
    assert ('backend_stage_wall_ms_bucket{backend="threads",le="0.5",'
            'shard="0",stage="batch"} 1') in text
    assert ('backend_stage_wall_ms_bucket{backend="threads",le="500",'
            'shard="0",stage="batch"} 2') in text
    assert ('backend_stage_wall_ms_bucket{backend="threads",le="+Inf",'
            'shard="0",stage="batch"} 2') in text
    assert ('backend_stage_wall_ms_count{backend="threads",shard="0",'
            'stage="batch"} 2') in text
    assert "backend_stage_wall_ms_sum" in text
    assert ("# HELP backend_stage_operations_total"
            in text)
    assert lint_prometheus_text(text) == []


# ----------------------------------------------------------------------
# The line-format linter itself
# ----------------------------------------------------------------------

def test_lint_accepts_minimal_valid_document():
    text = ("# TYPE a_total counter\n"
            "a_total 1\n"
            'a_total{x="y"} 2.5\n')
    assert lint_prometheus_text(text) == []


def test_lint_flags_undeclared_family():
    errors = lint_prometheus_text("mystery_metric 1\n")
    assert any("undeclared" in error for error in errors)


def test_lint_flags_duplicate_series():
    text = ("# TYPE a_total counter\n"
            "a_total 1\n"
            "a_total 2\n")
    assert any("duplicate" in error for error in lint_prometheus_text(text))


def test_lint_flags_malformed_sample_and_unknown_type():
    assert lint_prometheus_text("# TYPE a wibble\n") != []
    assert lint_prometheus_text("# TYPE a_total counter\n!!bad line\n") != []


def test_lint_flags_type_after_samples():
    text = ("# TYPE a_total counter\n"
            "a_total 1\n"
            "# TYPE a_total counter\n")
    assert lint_prometheus_text(text) != []


def test_lint_flags_help_violations():
    assert any("malformed HELP" in error
               for error in lint_prometheus_text("# HELP a_total\n"))
    duplicate = ("# HELP a_total one\n"
                 "# HELP a_total two\n"
                 "# TYPE a_total counter\n"
                 "a_total 1\n")
    assert any("duplicate HELP" in error
               for error in lint_prometheus_text(duplicate))
    late = ("# TYPE a_total counter\n"
            "a_total 1\n"
            "# HELP a_total too late\n")
    assert any("HELP for 'a_total' after samples" in error
               for error in lint_prometheus_text(late))


def _histogram_doc(samples):
    return "# TYPE h histogram\n" + "\n".join(samples) + "\n"


def test_lint_accepts_well_formed_histogram():
    text = _histogram_doc(['h_bucket{le="1"} 1',
                           'h_bucket{le="+Inf"} 2',
                           "h_sum 3.5",
                           "h_count 2"])
    assert lint_prometheus_text(text) == []


def test_lint_enforces_histogram_bucket_discipline():
    cases = (
        (["h_bucket 1", 'h_bucket{le="+Inf"} 1', "h_count 1"],
         "without an le label"),
        (['h_bucket{le="2"} 1', 'h_bucket{le="1"} 1',
          'h_bucket{le="+Inf"} 1', "h_count 1"],
         "out of order"),
        (['h_bucket{le="1"} 3', 'h_bucket{le="2"} 1',
          'h_bucket{le="+Inf"} 3', "h_count 3"],
         "not cumulative"),
        (['h_bucket{le="1"} 1', "h_count 1"], "missing +Inf"),
        (['h_bucket{le="1"} 1', 'h_bucket{le="+Inf"} 2', "h_count 3"],
         "+Inf bucket 2.0 != _count 3.0"),
    )
    for samples, expected in cases:
        errors = lint_prometheus_text(_histogram_doc(samples))
        assert any(expected in error for error in errors), \
            f"{samples}: expected {expected!r}, got {errors}"


# ----------------------------------------------------------------------
# JSONL exporters
# ----------------------------------------------------------------------

def test_metrics_jsonl_record_parses_and_is_stable():
    first = metrics_jsonl(_registry(), 250.0)
    record = json.loads(first)
    assert record["kind"] == "metrics" and record["time_ms"] == 250.0
    assert any("validator_responses_total" in key
               for key in record["metrics"])
    assert metrics_jsonl(_registry(), 250.0) == first


def test_health_jsonl_carries_reports_and_slo():
    tracker = ReplicaHealthTracker()
    tracker.record_response(1.0, "c1", lag_ms=1.0)
    monitor = SloMonitor()
    registry = _registry()
    record = json.loads(health_jsonl(
        tracker.evaluate(100.0),
        slo_statuses=monitor.evaluate(registry, 100.0), now=100.0))
    assert record["kind"] == "health"
    assert list(record["replicas"]) == ["c1"]
    assert {s["name"] for s in record["slo"]} \
        == {"detection-latency-p95", "ingest-overflow-rate", "late-drop-rate"}
    # SLO statuses are optional (standalone health tracker, no registry).
    bare = json.loads(health_jsonl(tracker.evaluate(100.0), now=100.0))
    assert bare["slo"] == []


# ----------------------------------------------------------------------
# SnapshotSink
# ----------------------------------------------------------------------

def test_sink_records_once_per_boundary():
    sink = SnapshotSink(100.0, registry=_registry())
    sink.observe(10.0)      # below the first boundary: nothing
    assert sink.records == []
    sink.observe(105.0)     # crosses 100
    sink.observe(107.0)     # same interval: no new record
    sink.observe(350.0)     # idle gap: one record at the first uncrossed
    assert [r["boundary_ms"] for r in sink.records] == [100.0, 200.0]
    sink.observe(360.0)     # 400 not yet crossed
    assert len(sink.records) == 2


def test_sink_jsonl_round_trip(tmp_path):
    tracker = ReplicaHealthTracker()
    tracker.record_response(5.0, "c1", lag_ms=1.0)
    sink = SnapshotSink(50.0, registry=_registry(), health=tracker)
    sink.observe(60.0)
    sink.observe(120.0)
    path = tmp_path / "snapshots.jsonl"
    sink.dump(str(path))
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 2
    for line in lines:
        record = json.loads(line)
        assert record["kind"] == "snapshot"
        assert "metrics" in record and "health" in record
