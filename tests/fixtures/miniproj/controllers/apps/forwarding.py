"""Fixture app: a controller that only ever mints internal triggers.

Used by the P604 tests — a policy constraining External triggers is dead
configuration against this project.
"""


class TimerApp:
    def __init__(self, ctx):
        self.ctx = ctx

    def on_timer(self):
        tau = self.ctx.internal_trigger("timer")
        self.ctx.cache_write("FlowsDB", ("flow", 1), {"state": "added"},
                             trigger=tau)
