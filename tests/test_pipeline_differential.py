"""Differential equivalence: sequential validator vs. sharded pipeline.

The pipeline's contract (docs/pipeline.md) is that at flush interval 0 it is
*byte-identical* to the sequential validator: same decisions, same alarms,
same timestamps, for any response stream. These tests record real validator
input streams from live experiments — benign seeded traffic and fault
injections covering T1/T2/T3 from Table 1 — and replay each identical
stream through the sequential :class:`Validator` and through
:class:`ValidationPipeline` at N ∈ {1, 2, 4, 8}, asserting the canonical
alarm streams compare equal byte for byte.

Recording (not re-running) is load-bearing: trigger ids come from
process-global counters, so two live runs never produce comparable ids —
only replays of one recorded stream do.
"""

from __future__ import annotations

import pytest

from repro.core.alarms import canonical_alarm_stream
from repro.core.pipeline import ValidationPipeline
from repro.core.timeouts import StaticTimeout
from repro.core.validator import Validator
from repro.faults.base import run_scenario
from repro.faults.injector import default_policy_engine
from repro.faults.synthetic import (
    FaultyProactiveFault,
    LinkFailureFault,
    UndesirableFlowModFault,
)
from repro import Jury, JuryConfig, Tracer
from repro.workloads.recorder import ValidatorStreamRecorder, replay_validation_stream
from repro.workloads.traffic import TrafficDriver

K = 4
TIMEOUT_MS = 250.0
SHARD_COUNTS = (1, 2, 4, 8)
BACKENDS = ("serial", "threads", "processes")
BENIGN_SEEDS = (11, 23, 47)


def _build(seed: int):
    experiment = Jury.experiment(JuryConfig(
        kind="onos", n=5, k=K, switches=8, seed=seed,
        timeout_ms=TIMEOUT_MS, policies=("default",),
        with_northbound=True))
    experiment.warmup()
    return experiment


def _mastership_snapshot(experiment):
    cluster = experiment.cluster
    return {dpid: cluster.master_of(dpid) for dpid in cluster.proxies}


def _record_benign(seed: int):
    experiment = _build(seed)
    recorder = ValidatorStreamRecorder(experiment.jury)
    driver = TrafficDriver(experiment.sim, experiment.topology,
                           packet_in_rate_per_s=400.0, duration_ms=400.0)
    driver.start()
    experiment.run(400.0 + 4 * TIMEOUT_MS)
    return recorder.records, _mastership_snapshot(experiment)


def _record_fault(seed: int, scenario):
    experiment = _build(seed)
    recorder = ValidatorStreamRecorder(experiment.jury)
    result = run_scenario(experiment, scenario)
    assert result.detected, f"{scenario.name} must be detected live"
    return recorder.records, _mastership_snapshot(experiment)


@pytest.fixture(scope="module")
def workloads():
    """Recorded validator input streams: 3 benign seeds + T1/T2/T3 faults."""
    recorded = {}
    for seed in BENIGN_SEEDS:
        recorded[f"benign-{seed}"] = _record_benign(seed)
    recorded["fault-t1"] = _record_fault(
        91, LinkFailureFault(1, 2))
    recorded["fault-t2"] = _record_fault(
        92, UndesirableFlowModFault("c2"))
    recorded["fault-t3"] = _record_fault(
        93, FaultyProactiveFault("c3"))
    return recorded


def _replay(records, mastership, make):
    lookup = mastership.get

    def factory(sim):
        return make(sim, lookup)

    return replay_validation_stream(records, factory)


def _sequential(records, mastership):
    return _replay(records, mastership, lambda sim, lookup: Validator(
        sim, K, timeout=StaticTimeout(TIMEOUT_MS),
        policy_engine=default_policy_engine(), mastership_lookup=lookup))


def _pipeline(records, mastership, shards, backend="serial"):
    engine = _replay(records, mastership, lambda sim, lookup: ValidationPipeline(
        sim, K, shards=shards, timeout=StaticTimeout(TIMEOUT_MS),
        policy_engine=default_policy_engine(), mastership_lookup=lookup,
        backend=backend))
    engine.close()
    return engine


def _result_fingerprint(validator):
    return sorted(
        (repr(r.trigger_id), r.decided_at, r.n_responses, r.external,
         r.timed_out, r.ok, len(r.alarms))
        for r in validator.results)


def _names(workloads):
    return sorted(workloads)


# ----------------------------------------------------------------------
# The recording rig itself
# ----------------------------------------------------------------------

def test_recordings_are_non_trivial(workloads):
    for name, (records, _) in workloads.items():
        assert len(records) > 0, f"{name} recorded nothing"
        times = [r.time_ms for r in records]
        assert times == sorted(times), f"{name} timestamps must be ordered"


def test_replay_is_deterministic(workloads):
    records, mastership = workloads["benign-11"]
    first = _sequential(records, mastership)
    second = _sequential(records, mastership)
    assert (canonical_alarm_stream(first.alarms)
            == canonical_alarm_stream(second.alarms))
    assert _result_fingerprint(first) == _result_fingerprint(second)
    assert first.triggers_decided == second.triggers_decided


# ----------------------------------------------------------------------
# The headline equivalence assertions
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", BENIGN_SEEDS)
def test_benign_streams_byte_identical(workloads, seed):
    records, mastership = workloads[f"benign-{seed}"]
    sequential = _sequential(records, mastership)
    assert sequential.triggers_decided > 20, "workload too small to mean much"
    expected = canonical_alarm_stream(sequential.alarms)
    for shards in SHARD_COUNTS:
        pipeline = _pipeline(records, mastership, shards)
        assert canonical_alarm_stream(pipeline.alarms) == expected, \
            f"alarm stream diverged at N={shards}"
        assert _result_fingerprint(pipeline) == _result_fingerprint(sequential)
        assert pipeline.triggers_decided == sequential.triggers_decided
        assert pipeline.responses_received == sequential.responses_received
        assert pipeline.late_responses == sequential.late_responses


@pytest.mark.parametrize("name,reason", [
    ("fault-t1", "consensus_mismatch"),
    ("fault-t2", "sanity_mismatch"),
    ("fault-t3", "policy_violation"),
])
def test_fault_streams_byte_identical(workloads, name, reason):
    records, mastership = workloads[name]
    sequential = _sequential(records, mastership)
    reasons = {a.reason.value for a in sequential.alarms}
    assert reason in reasons, \
        f"replayed {name} lost its {reason} alarm ({reasons})"
    expected = canonical_alarm_stream(sequential.alarms)
    assert expected, "fault workload must alarm"
    for shards in SHARD_COUNTS:
        pipeline = _pipeline(records, mastership, shards)
        assert canonical_alarm_stream(pipeline.alarms) == expected, \
            f"alarm stream diverged at N={shards} on {name}"
        assert _result_fingerprint(pipeline) == _result_fingerprint(sequential)


def _sequential_traced(records, mastership, tracer):
    return _replay(records, mastership, lambda sim, lookup: Validator(
        sim, K, timeout=StaticTimeout(TIMEOUT_MS),
        policy_engine=default_policy_engine(), mastership_lookup=lookup,
        tracer=tracer))


def _pipeline_traced(records, mastership, shards, tracer, backend="serial"):
    engine = _replay(records, mastership, lambda sim, lookup: ValidationPipeline(
        sim, K, shards=shards, timeout=StaticTimeout(TIMEOUT_MS),
        policy_engine=default_policy_engine(), mastership_lookup=lookup,
        tracer=tracer, backend=backend))
    engine.close()
    return engine


def test_tracing_on_keeps_alarm_streams_byte_identical(workloads):
    """The differential contract must survive tracing being enabled —
    tracers are read-only observers, at every shard count."""
    for name in ("benign-11", "fault-t1", "fault-t2", "fault-t3"):
        records, mastership = workloads[name]
        baseline = _sequential(records, mastership)
        expected = canonical_alarm_stream(baseline.alarms)
        seq_tracer = Tracer()
        traced = _sequential_traced(records, mastership, seq_tracer)
        assert canonical_alarm_stream(traced.alarms) == expected, \
            f"tracing changed the sequential alarm stream on {name}"
        assert _result_fingerprint(traced) == _result_fingerprint(baseline)
        for shards in SHARD_COUNTS:
            tracer = Tracer()
            pipeline = _pipeline_traced(records, mastership, shards, tracer)
            assert canonical_alarm_stream(pipeline.alarms) == expected, \
                f"alarm stream diverged at N={shards} with tracing on ({name})"


def test_traces_are_engine_and_shard_count_independent(workloads):
    """Same recorded stream → byte-identical canonical trace, whether it
    runs through the sequential validator or the pipeline at any N."""
    for name in ("benign-11", "fault-t2"):
        records, mastership = workloads[name]
        seq_tracer = Tracer()
        _sequential_traced(records, mastership, seq_tracer)
        expected = seq_tracer.canonical()
        assert expected, "traced replay must produce spans"
        for shards in SHARD_COUNTS:
            tracer = Tracer()
            _pipeline_traced(records, mastership, shards, tracer)
            assert tracer.canonical() == expected, \
                f"trace diverged at N={shards} on {name}"


# ----------------------------------------------------------------------
# Execution backends (repro.core.backends): the same contract, per backend
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_alarm_streams_byte_identical(workloads, backend):
    """Every execution backend preserves the differential contract: the
    pipeline stays byte-identical to the sequential validator at every
    shard count, whether shards run inline, on threads, or in worker
    processes."""
    for name in ("benign-11", "fault-t1", "fault-t2", "fault-t3"):
        records, mastership = workloads[name]
        sequential = _sequential(records, mastership)
        expected = canonical_alarm_stream(sequential.alarms)
        for shards in SHARD_COUNTS:
            pipeline = _pipeline(records, mastership, shards, backend=backend)
            assert canonical_alarm_stream(pipeline.alarms) == expected, \
                f"{backend} diverged at N={shards} on {name}"
            assert _result_fingerprint(pipeline) == \
                _result_fingerprint(sequential)
            assert pipeline.triggers_decided == sequential.triggers_decided
            assert pipeline.responses_received == \
                sequential.responses_received
            assert pipeline.late_responses == sequential.late_responses


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_traces_byte_identical(workloads, backend):
    """Canonical traces are backend- and shard-count-independent: engine
    plumbing spans (``engine:*``) are excluded from ``canonical()`` by
    design, so the validation story reads the same everywhere."""
    for name in ("benign-11", "fault-t2"):
        records, mastership = workloads[name]
        seq_tracer = Tracer()
        _sequential_traced(records, mastership, seq_tracer)
        expected = seq_tracer.canonical()
        assert expected, "traced replay must produce spans"
        for shards in SHARD_COUNTS:
            tracer = Tracer()
            _pipeline_traced(records, mastership, shards, tracer,
                             backend=backend)
            assert tracer.canonical() == expected, \
                f"{backend} trace diverged at N={shards} on {name}"


def _full_stack(records, mastership, shards=None):
    """Replay with the whole observability stack attached."""
    from repro.obs.diagnose import AlarmForensics
    from repro.obs.health import ReplicaHealthTracker
    from repro.obs.metrics import MetricsRegistry

    forensics = AlarmForensics()
    health = ReplicaHealthTracker()
    registry = MetricsRegistry()

    def make(sim, lookup):
        kwargs = dict(timeout=StaticTimeout(TIMEOUT_MS),
                      policy_engine=default_policy_engine(),
                      mastership_lookup=lookup, metrics=registry,
                      forensics=forensics, health=health)
        if shards is None:
            return Validator(sim, K, **kwargs)
        return ValidationPipeline(sim, K, shards=shards, **kwargs)

    engine = _replay(records, mastership, make)
    return engine, forensics, health, registry


def test_forensics_and_health_keep_alarm_streams_byte_identical(workloads):
    """Diagnosis + health enabled must not move a single alarm byte."""
    for name in ("benign-11", "fault-t1", "fault-t2", "fault-t3"):
        records, mastership = workloads[name]
        expected = canonical_alarm_stream(
            _sequential(records, mastership).alarms)
        engine, _, _, _ = _full_stack(records, mastership)
        assert canonical_alarm_stream(engine.alarms) == expected, \
            f"forensics/health changed the sequential alarm stream on {name}"
        for shards in SHARD_COUNTS:
            engine, _, _, _ = _full_stack(records, mastership, shards=shards)
            assert canonical_alarm_stream(engine.alarms) == expected, \
                (f"alarm stream diverged at N={shards} with the full "
                 f"stack on ({name})")


def test_explanations_are_engine_and_shard_count_independent(workloads):
    """Same stream → byte-identical diagnosis payload at any shard count."""
    import json

    from repro.obs.diagnose import export_explanations

    for name in ("fault-t1", "fault-t2", "fault-t3"):
        records, mastership = workloads[name]
        _, forensics, _, _ = _full_stack(records, mastership)
        expected = json.dumps(export_explanations(forensics.explanations()),
                              sort_keys=True)
        assert forensics.alarm_count > 0, f"{name} must explain something"
        for shards in SHARD_COUNTS:
            _, forensics, _, _ = _full_stack(records, mastership,
                                             shards=shards)
            actual = json.dumps(export_explanations(forensics.explanations()),
                                sort_keys=True)
            assert actual == expected, \
                f"explanations diverged at N={shards} on {name}"


def test_health_and_exports_are_shard_count_independent(workloads):
    """Health reports, SLO statuses, and the Prometheus document all match
    between the sequential validator and the pipeline at every N."""
    from repro.obs.export import lint_prometheus_text, prometheus_text
    from repro.obs.health import SloMonitor

    for name in ("benign-11", "fault-t1"):
        records, mastership = workloads[name]
        horizon = max(r.time_ms for r in records) + 4 * TIMEOUT_MS

        def render(engine_tuple):
            _, _, health, registry = engine_tuple
            reports = health.evaluate(horizon)
            statuses = SloMonitor().evaluate(registry, horizon)
            # No collect_pipeline scrape: per-shard queue series are the
            # one legitimately engine-shaped family.
            return reports, prometheus_text(registry=registry,
                                            health_reports=reports,
                                            slo_statuses=statuses)

        expected_reports, expected_text = render(
            _full_stack(records, mastership))
        assert expected_reports, "health must have seen replicas"
        assert lint_prometheus_text(expected_text) == []
        for shards in SHARD_COUNTS:
            reports, text = render(
                _full_stack(records, mastership, shards=shards))
            assert reports == expected_reports, \
                f"health reports diverged at N={shards} on {name}"
            assert text == expected_text, \
                f"prometheus export diverged at N={shards} on {name}"


def test_pipeline_stats_account_for_every_response(workloads):
    records, mastership = workloads["benign-11"]
    pipeline = _pipeline(records, mastership, 4)
    stats = pipeline.stats
    assert stats.responses_routed == len(records)
    assert stats.total("enqueued") == stats.responses_routed
    # Replay runs to quiescence: everything enqueued was processed.
    assert stats.total("processed") == stats.total("enqueued")
    assert stats.total("decided") == pipeline.triggers_decided


# ----------------------------------------------------------------------
# Generator-drawn workloads (the fuzzer's scenarios through this rig)
# ----------------------------------------------------------------------

def test_fuzz_generated_workloads_byte_identical(small_fuzz_corpus):
    """The differential contract holds on fuzz-generated scenarios too:
    record each generated spec live, then assert sequential == pipeline at
    every shard count — and that the replay reproduces the live stream."""
    from repro.fuzz import DifferentialOracle

    oracle = DifferentialOracle()
    faulted = next(s for s in small_fuzz_corpus if s.faults)
    clean = next(s for s in small_fuzz_corpus if not s.faults)
    for spec in (faulted, clean):
        live = oracle.record(spec)
        assert live.records, f"seed {spec.seed} recorded nothing"
        lookup = live.mastership.get

        def sequential_factory(sim):
            return Validator(
                sim, spec.k, timeout=StaticTimeout(spec.timeout_ms),
                policy_engine=default_policy_engine(),
                mastership_lookup=lookup)

        sequential = replay_validation_stream(live.records,
                                              sequential_factory)
        expected = canonical_alarm_stream(sequential.alarms)
        assert expected == live.alarm_stream, \
            f"replay lost the live alarm stream on seed {spec.seed}"
        for shards in SHARD_COUNTS:
            def pipeline_factory(sim):
                return ValidationPipeline(
                    sim, spec.k, shards=shards,
                    timeout=StaticTimeout(spec.timeout_ms),
                    policy_engine=default_policy_engine(),
                    mastership_lookup=lookup)

            pipeline = replay_validation_stream(live.records,
                                                pipeline_factory)
            assert canonical_alarm_stream(pipeline.alarms) == expected, \
                f"seed {spec.seed} diverged at N={shards}"
            assert pipeline.triggers_decided == sequential.triggers_decided


# ----------------------------------------------------------------------
# Crash recovery: kill at every checkpoint interval, stream never moves
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name", ["benign-11", "fault-t1"])
@pytest.mark.parametrize("shards", (None,) + SHARD_COUNTS,
                         ids=lambda s: "seq" if s is None else f"N{s}")
def test_kill_and_recover_at_every_interval(workloads, name, shards):
    """Sweep the kill point across checkpoint-interval boundaries: for
    each quarter of the stream, crash there, restore the newest snapshot,
    replay the WAL tail + remainder, and demand the uninterrupted stream
    byte for byte. Covers kills landing exactly on an interval edge, just
    after a snapshot, and deep inside an interval, for the sequential
    validator and every shard count."""
    from repro.core.checkpoint import run_with_recovery

    records, mastership = workloads[name]
    lookup = mastership.get
    if shards is None:
        expected_engine = _sequential(records, mastership)

        def make(sim):
            return Validator(
                sim, K, timeout=StaticTimeout(TIMEOUT_MS),
                policy_engine=default_policy_engine(),
                mastership_lookup=lookup)
    else:
        expected_engine = _pipeline(records, mastership, shards)

        def make(sim):
            return ValidationPipeline(
                sim, K, shards=shards, timeout=StaticTimeout(TIMEOUT_MS),
                policy_engine=default_policy_engine(),
                mastership_lookup=lookup)

    expected = canonical_alarm_stream(expected_engine.alarms)
    quarter = max(1, len(records) // 4)
    for kill_index in (quarter, 2 * quarter, 3 * quarter):
        recovered = run_with_recovery(records, make, kill_index,
                                      checkpoint_every=quarter)
        got = canonical_alarm_stream(recovered.alarms)
        assert got == expected, \
            f"{name} N={shards}: recovery diverged at kill={kill_index}"
        assert recovered.triggers_decided == expected_engine.triggers_decided
        if hasattr(recovered, "close"):
            recovered.close()
