"""Tests for the paper's §VIII future-work extensions implemented here:
declared non-determinism, adaptive timeouts in deployment, Active-Passive HA.
"""


from repro.controllers.base import ControllerApp
from repro.controllers.cluster import ControllerCluster, HaMode
from repro.controllers.onos import build_onos_cluster
from repro.core.timeouts import AdaptiveTimeout
from repro.datastore.caches import ARPDB
from repro.api import Jury
from repro.config import JuryConfig
from repro.net.topology import linear_topology
from repro.sim.simulator import Simulator


class CoinFlipApp(ControllerApp):
    """A deliberately non-deterministic app that declares itself as such."""

    name = "coinflip"

    def handle_packet_in(self, message, ctx):
        packet = message.packet
        if packet is None or not packet.is_arp:
            return False
        ctx.non_deterministic = True  # §VIII: the app identifies itself
        # Each replica writes its own (random) token.
        token = self.controller._rng.random()
        self.controller.cache_write(ARPDB, ("coin", packet.src_mac),
                                    {"token": token}, ctx=ctx)
        return True


def test_declared_non_determinism_suppresses_alarms():
    exp = Jury.experiment(JuryConfig(kind="onos", n=5, k=4, switches=4, seed=140,
                           timeout_ms=250.0))
    for controller in exp.cluster.controllers.values():
        controller.apps.insert(0, CoinFlipApp(controller))
    exp.warmup(arp=False)
    hosts = exp.topology.host_list()
    hosts[0].send_arp_request(hosts[1].ip)
    exp.run(1500.0)
    validator = exp.validator
    assert validator.triggers_decided > 0
    # Replicas wrote *different* tokens than the primary, but the declared
    # non-determinism stops the majority comparison.
    assert validator.triggers_alarmed == 0


def test_undeclared_non_determinism_with_collisions_can_alarm():
    """Without the declaration and with only 2 identical-but-wrong replicas,
    majority voting applies (the paper's acknowledged limitation)."""
    from repro.core.responses import Response, ResponseKind
    from repro.core.consensus import evaluate_consensus

    cache = (("cache", "ArpDB", ("coin",), "create", (("token", 1),)),)
    other = (("cache", "ArpDB", ("coin",), "create", (("token", 2),)),)
    responses = [
        Response("c1", ("ext", 1), ResponseKind.CACHE_UPDATE, cache,
                 state_digest=(1,), origin="c1"),
        Response("c2", ("ext", 1), ResponseKind.REPLICA_RESULT,
                 (other, ()), tainted=True, state_digest=(1,)),
        Response("c3", ("ext", 1), ResponseKind.REPLICA_RESULT,
                 (other, ()), tainted=True, state_digest=(1,)),
    ]
    outcome = evaluate_consensus(responses, k=2, external=True)
    assert not outcome.ok  # false positive the paper accepts as unavoidable


def test_adaptive_timeout_deployment_integration():
    exp = Jury.experiment(JuryConfig(kind="onos", n=5, k=4, switches=4, seed=141, timeout_ms=200.0))
    exp.jury.validator.timeout = AdaptiveTimeout(initial_ms=200.0, window=100)
    exp.warmup()
    hosts = exp.topology.host_list()
    for i in range(8):
        exp.sim.schedule(i * 25.0, hosts[i % 4].open_connection,
                         hosts[(i + 2) % 4])
    exp.run(2000.0)
    timeout = exp.jury.validator.timeout
    assert len(timeout.window) > 10
    assert timeout.current() != 200.0  # adapted to observed latencies


def test_active_passive_mode_single_active():
    sim = Simulator(seed=142)
    topo = linear_topology(sim, 4)
    cluster = ControllerCluster(sim, ha_mode=HaMode.ACTIVE_PASSIVE)
    reference, store = build_onos_cluster(sim, n=3)
    for controller in reference.controllers.values():
        controller.cluster = None
        cluster.add_controller(controller)
    cluster.connect_topology(topo)
    cluster.start()
    sim.run(until=2500.0)
    assert all(master == "c1" for master in cluster.mastership.values())
    # Failover promotes a passive replica for every switch.
    cluster.crash("c1")
    assert all(master == "c2" for master in cluster.mastership.values())
