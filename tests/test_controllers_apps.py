"""Tests for controller applications: topology discovery, host tracking,
reactive and proactive forwarding."""

import pytest

from repro.controllers.odl import build_odl_cluster
from repro.controllers.onos import build_onos_cluster
from repro.controllers.profile import odl_profile
from repro.datastore.caches import EDGESDB, FLOWSDB, HOSTSDB
from repro.net.topology import linear_topology
from repro.openflow.constants import FlowState
from repro.sim.simulator import Simulator


def settled_onos(n_switches=4, n=3, seed=9):
    sim = Simulator(seed=seed)
    topo = linear_topology(sim, n_switches)
    cluster, store = build_onos_cluster(sim, n=n)
    cluster.connect_topology(topo)
    cluster.start()
    sim.run(until=2500.0)
    return sim, topo, cluster


def learn_hosts(sim, topo):
    hosts = topo.host_list()
    for index, host in enumerate(hosts):
        target = hosts[(index + 1) % len(hosts)]
        sim.schedule(index * 2.0, host.send_arp_request, target.ip)
    sim.run(until=sim.now + 2 * len(hosts) + 500.0)


# ----------------------------------------------------------------------
# Topology discovery
# ----------------------------------------------------------------------

def test_lldp_discovers_all_links():
    sim, topo, cluster = settled_onos()
    c1 = cluster.controller("c1")
    graph = c1.app("topology").topology_graph()
    truth = topo.switch_graph()
    assert ({frozenset(e) for e in graph.edges()}
            == {frozenset(e) for e in truth.edges()})


def test_topology_view_converges_across_replicas():
    sim, topo, cluster = settled_onos()
    graphs = [{frozenset(e) for e in c.app("topology").topology_graph().edges()}
              for c in cluster.controllers.values()]
    assert all(g == graphs[0] for g in graphs)


def test_next_hop_follows_chain():
    sim, topo, cluster = settled_onos()
    app = cluster.controller("c1").app("topology")
    # In a chain 1-2-3-4, next hop from 1 to 4 is toward 2.
    port = app.next_hop_port(1, 4)
    assert port is not None
    graph = app.topology_graph()
    assert graph[1][2]["ports"][1] == port


def test_next_hop_unknown_destination():
    sim, topo, cluster = settled_onos()
    app = cluster.controller("c1").app("topology")
    assert app.next_hop_port(1, 99) is None


def test_liveness_marks_dead_link():
    sim, topo, cluster = settled_onos()
    topo.fail_link(2, 3)
    # Wait for three missed LLDP rounds plus a liveness sweep.
    sim.run(until=sim.now + 8000.0)
    c1 = cluster.controller("c1")
    edges = c1.store.entries(EDGESDB)
    dead = [v for v in edges.values()
            if {v["src"][0], v["dst"][0]} == {2, 3} and not v["alive"]]
    assert dead


def test_graph_cache_invalidated_on_change():
    sim, topo, cluster = settled_onos()
    app = cluster.controller("c1").app("topology")
    graph_before = app.topology_graph()
    assert app.topology_graph() is graph_before  # cached
    topo.fail_link(1, 2)
    sim.run(until=sim.now + 8000.0)
    assert app.topology_graph() is not graph_before


def test_spanning_tree_is_loop_free():
    sim, topo, cluster = settled_onos(n_switches=4)
    app = cluster.controller("c1").app("topology")
    total_tree_ports = sum(len(app.spanning_tree_ports(d)) for d in topo.switches)
    # Tree over 4 nodes: 3 edges = 6 port endpoints.
    assert total_tree_ports == 6


# ----------------------------------------------------------------------
# Host tracking
# ----------------------------------------------------------------------

def test_hosts_learned_at_edge_ports_only():
    sim, topo, cluster = settled_onos()
    learn_hosts(sim, topo)
    c1 = cluster.controller("c1")
    hosts = c1.store.entries(HOSTSDB)
    assert len(hosts) == 4
    for host in topo.host_list():
        dpid, port = topo.host_location(host)
        entry = hosts[("host", host.mac)]
        assert (entry["dpid"], entry["port"]) == (dpid, port)


def test_rearp_does_not_rewrite_cache():
    sim, topo, cluster = settled_onos()
    learn_hosts(sim, topo)
    c1 = cluster.controller("c1")
    writes_before = c1.store.writes
    topo.hosts["h1"].send_arp_request(topo.hosts["h2"].ip)
    sim.run(until=sim.now + 300.0)
    # Host locations unchanged: no HostsDB writes (LLDP edges may still
    # rewrite, so compare HostsDB contents instead of write counters).
    assert len(c1.store.entries(HOSTSDB)) == 4


def test_arp_reaches_target_and_reply_returns():
    sim, topo, cluster = settled_onos()
    learn_hosts(sim, topo)
    h1 = topo.hosts["h1"]
    replies_before = len(h1.received)
    h1.send_arp_request(topo.hosts["h4"].ip)
    sim.run(until=sim.now + 500.0)
    assert len(h1.received) > replies_before  # got the ARP reply


# ----------------------------------------------------------------------
# Reactive forwarding
# ----------------------------------------------------------------------

def test_end_to_end_delivery_installs_flows():
    sim, topo, cluster = settled_onos()
    learn_hosts(sim, topo)
    h1, h4 = topo.hosts["h1"], topo.hosts["h4"]
    flow_id = h1.open_connection(h4)
    sim.run(until=sim.now + 1000.0)
    assert h4.received_by_flow.get(flow_id) == 1
    # A rule on every path switch.
    for dpid in (1, 2, 3, 4):
        assert len(topo.switches[dpid].table) >= 1


def test_second_connection_also_delivered():
    sim, topo, cluster = settled_onos()
    learn_hosts(sim, topo)
    h1, h4 = topo.hosts["h1"], topo.hosts["h4"]
    h1.open_connection(h4)
    sim.run(until=sim.now + 800.0)
    flow_id = h1.open_connection(h4)
    sim.run(until=sim.now + 800.0)
    assert h4.received_by_flow.get(flow_id) == 1


def test_flow_rules_promoted_to_added():
    sim, topo, cluster = settled_onos()
    learn_hosts(sim, topo)
    h1, h2 = topo.hosts["h1"], topo.hosts["h2"]
    h1.open_connection(h2)
    sim.run(until=sim.now + 1000.0)
    c1 = cluster.controller("c1")
    states = {v["state"] for v in c1.store.entries(FLOWSDB).values()}
    assert FlowState.ADDED.value in states
    assert FlowState.PENDING_ADD.value not in states


def test_unknown_destination_floods():
    sim, topo, cluster = settled_onos()
    learn_hosts(sim, topo)
    h1 = topo.hosts["h1"]
    from repro.net.packet import tcp_packet

    # A destination MAC no controller knows.
    h1.send(tcp_packet(h1.mac, "de:ad:be:ef:00:01", h1.ip, "10.9.9.9", 1, 2))
    sim.run(until=sim.now + 500.0)
    forwarding = cluster.controller("c1").app("forwarding")
    assert forwarding.floods >= 1


def test_remote_flow_install_via_cache():
    """A flow written by a non-master is emitted by the remote master."""
    sim, topo, cluster = settled_onos()
    learn_hosts(sim, topo)
    c1 = cluster.controller("c1")
    target_dpid = 2  # mastered by c2
    from repro.openflow.actions import ActionOutput
    from repro.openflow.match import Match

    match = Match.for_destination("11:22:33:44:55:66")
    c1.run_internal(
        "remote-install",
        lambda ctx: c1.app("forwarding").install_flow(
            target_dpid, match, (ActionOutput(1),), ctx, priority=90))
    sim.run(until=sim.now + 500.0)
    installed = topo.switches[target_dpid].table.find(match, 90)
    assert installed is not None
    c2 = cluster.controller("c2")
    assert c2.flow_mods_sent >= 1


def test_rest_delete_flow_removes_rule():
    sim, topo, cluster = settled_onos()
    learn_hosts(sim, topo)
    from repro.controllers.northbound import NorthboundApi
    from repro.openflow.actions import ActionOutput
    from repro.openflow.match import Match

    api = NorthboundApi(cluster)
    match = Match.for_destination("77:88:99:aa:bb:cc")
    api.add_flow("c1", 1, match, (ActionOutput(1),), priority=70)
    sim.run(until=sim.now + 300.0)
    assert topo.switches[1].table.find(match, 70) is not None
    api.delete_flow("c1", 1, match, priority=70)
    sim.run(until=sim.now + 300.0)
    assert topo.switches[1].table.find(match, 70) is None


# ----------------------------------------------------------------------
# Proactive forwarding (vanilla ODL)
# ----------------------------------------------------------------------

def test_proactive_odl_installs_dst_rules_on_discovery():
    sim = Simulator(seed=9)
    topo = linear_topology(sim, 4)
    cluster, _ = build_odl_cluster(sim, n=1,
                                   profile=odl_profile(proactive=True))
    cluster.connect_topology(topo)
    cluster.start()
    sim.run(until=2500.0)
    learn_hosts(sim, topo)
    sim.run(until=sim.now + 2000.0)
    # Destination-based rules exist on switches toward each host.
    total_rules = sum(len(s.table) for s in topo.switches.values())
    assert total_rules >= 4


def test_proactive_odl_data_traffic_avoids_packet_ins():
    sim = Simulator(seed=9)
    topo = linear_topology(sim, 4)
    cluster, _ = build_odl_cluster(sim, n=1,
                                   profile=odl_profile(proactive=True))
    cluster.connect_topology(topo)
    cluster.start()
    sim.run(until=2500.0)
    learn_hosts(sim, topo)
    sim.run(until=sim.now + 2000.0)
    controller = cluster.controller("c1")
    pins_before = controller.packet_ins_received
    h1, h4 = topo.hosts["h1"], topo.hosts["h4"]
    flow_id = h1.open_connection(h4)
    sim.run(until=sim.now + 500.0)
    assert h4.received_by_flow.get(flow_id) == 1
    # "The controller does not get any PACKET_IN events" (footnote 3) —
    # aside from periodic LLDP probes.
    data_pins = controller.packet_ins_received - pins_before
    lldp_pins = sum(
        1 for s in topo.switches.values() if s.packet_ins_sent) * 3
    assert data_pins <= lldp_pins
