"""Additional consensus/sanity edge cases beyond the core unit tests."""

from repro.core.alarms import AlarmReason
from repro.core.consensus import evaluate_consensus, sanity_check
from repro.core.responses import Response, ResponseKind


CACHE = (("cache", "FlowsDB", ("flow", 2, (), 100), "create",
          (("actions", (("output", 1),)), ("command", "add"), ("dpid", 2),
           ("match", ()), ("priority", 100), ("state", "pending_add"))),)
NET = (("flow_mod", 2, "add", (), (("output", 1),), 100),)


def response(cid, kind, entry, **kwargs):
    defaults = dict(trigger_id=("ext", 1), state_digest=(("c1", 1),))
    defaults.update(kwargs)
    return Response(cid, defaults.pop("trigger_id"), kind, entry, **defaults)


def test_remote_master_network_write_not_held_against_primary():
    """REST via a non-master: the remote master's FLOW_MOD merges into the
    sanity view but is excluded from the replica comparison."""
    responses = [
        response("c1", ResponseKind.CACHE_UPDATE, CACHE, origin="c1"),
        response("c2", ResponseKind.NETWORK_WRITE, NET),  # remote master
        response("c3", ResponseKind.REPLICA_RESULT, (CACHE, ()),
                 tainted=True, primary_hint="c1"),
        response("c4", ResponseKind.REPLICA_RESULT, (CACHE, ()),
                 tainted=True, primary_hint="c1"),
    ]
    outcome = evaluate_consensus(responses, k=2, external=True)
    assert outcome.ok
    assert outcome.primary_id == "c1"
    # Full network entry still available for the sanity check.
    assert outcome.primary_network_entry == NET
    assert sanity_check(outcome.primary_cache_entry,
                        outcome.primary_network_entry, "c1").ok


def test_network_bundles_from_multiple_responses_merge():
    net_a = (("flow_mod", 2, "add", (), (("output", 1),), 100),)
    net_b = (("packet_out", 2, 5, (("output", 1),)),)
    responses = [
        response("c1", ResponseKind.NETWORK_WRITE, net_a),
        response("c1", ResponseKind.NETWORK_WRITE, net_b),
        response("c1", ResponseKind.CACHE_UPDATE, CACHE, origin="c1"),
    ]
    outcome = evaluate_consensus(responses, k=0, external=True)
    assert set(outcome.primary_network_entry) == set(net_a) | set(net_b)


def test_majority_tie_is_inconclusive_not_alarmed():
    other = ((("cache", "X", "k", "create", 1),), ())
    responses = [
        response("c1", ResponseKind.CACHE_UPDATE, CACHE, origin="c1"),
        response("c2", ResponseKind.REPLICA_RESULT, (CACHE, ()),
                 tainted=True, primary_hint="c1"),
        response("c3", ResponseKind.REPLICA_RESULT, (CACHE, ()),
                 tainted=True, primary_hint="c1"),
        response("c4", ResponseKind.REPLICA_RESULT, other,
                 tainted=True, primary_hint="c1"),
        response("c5", ResponseKind.REPLICA_RESULT, other,
                 tainted=True, primary_hint="c1"),
    ]
    outcome = evaluate_consensus(responses, k=4, external=True)
    assert outcome.ok  # 2-2 split: no majority, avert the alarm


def test_declared_non_determinism_beats_identical_wrong_replicas():
    wrong = ((("cache", "X", "k", "create", 99),), ())
    responses = [
        response("c1", ResponseKind.CACHE_UPDATE, CACHE, origin="c1"),
        response("c2", ResponseKind.REPLICA_RESULT, wrong, tainted=True,
                 primary_hint="c1", declared_non_deterministic=True),
        response("c3", ResponseKind.REPLICA_RESULT, wrong, tainted=True,
                 primary_hint="c1", declared_non_deterministic=True),
    ]
    outcome = evaluate_consensus(responses, k=2, external=True)
    assert outcome.ok
    assert outcome.non_deterministic


def test_state_aware_off_compares_everything():
    lagging = ((), ())
    responses = [
        response("c1", ResponseKind.CACHE_UPDATE, CACHE, origin="c1",
                 state_digest=(("c1", 5),)),
        response("c1", ResponseKind.NETWORK_WRITE, NET,
                 state_digest=(("c1", 5),)),
        response("c2", ResponseKind.REPLICA_RESULT, lagging, tainted=True,
                 primary_hint="c1", state_digest=(("c1", 1),)),
        response("c3", ResponseKind.REPLICA_RESULT, lagging, tainted=True,
                 primary_hint="c1", state_digest=(("c1", 1),)),
    ]
    aware = evaluate_consensus(responses, k=2, external=True,
                               state_aware=True)
    assert aware.ok  # different views: inconclusive
    naive = evaluate_consensus(responses, k=2, external=True,
                               state_aware=False)
    assert not naive.ok  # naive majority: false positive
    assert naive.reason == AlarmReason.CONSENSUS_MISMATCH


def test_sanity_multiple_promised_flow_mods():
    cache2 = CACHE + (
        ("cache", "FlowsDB", ("flow", 3, (), 100), "create",
         (("actions", (("output", 2),)), ("command", "add"), ("dpid", 3),
          ("match", ()), ("priority", 100), ("state", "pending_add"))),)
    net2 = NET + (("flow_mod", 3, "add", (), (("output", 2),), 100),)
    assert sanity_check(cache2, net2, "c1").ok
    # One of the two missing -> mismatch.
    assert not sanity_check(cache2, NET, "c1").ok


def test_sanity_tolerates_non_flow_cache_writes():
    host_write = (("cache", "HostsDB", ("host", "aa"), "create",
                   (("dpid", 1), ("ip", "10.0.0.1"))),)
    assert sanity_check(host_write, (), "c1").ok
