"""Tests for the fault driver's suite runner and report aggregation."""

from repro.faults import (
    FaultyProactiveFault,
    UndesirableFlowModFault,
)
from repro.faults.injector import DriverReport, FaultDriver, default_policy_engine
from repro.api import Jury
from repro.config import JuryConfig


def factory(seed):
    return Jury.experiment(JuryConfig(kind="onos", n=5, k=4, switches=8, seed=seed,
                            timeout_ms=250.0,
                            policy_engine=default_policy_engine(),
                            with_northbound=True))


def test_run_suite_reports_per_scenario():
    driver = FaultDriver(factory)
    reports = driver.run_suite(
        [lambda: UndesirableFlowModFault("c2"),
         lambda: FaultyProactiveFault("c3")],
        repetitions=2)
    assert len(reports) == 2
    assert {r.scenario for r in reports} == {
        "synthetic-undesirable-flow-mod", "synthetic-faulty-proactive"}
    for report in reports:
        assert report.runs == 2
        assert report.detection_rate == 1.0


def test_suite_uses_distinct_seeds_per_scenario():
    """Different scenarios in one suite run on independently seeded clusters."""
    seeds_seen = []

    def tracking_factory(seed):
        seeds_seen.append(seed)
        return factory(seed)

    driver = FaultDriver(tracking_factory)
    driver.run_suite([lambda: UndesirableFlowModFault("c2"),
                      lambda: FaultyProactiveFault("c3")], repetitions=1)
    assert len(seeds_seen) == 2
    assert len(set(seeds_seen)) == 2


def test_report_properties_empty():
    report = DriverReport(scenario="x", runs=0, detected=0)
    assert report.detection_rate == 0.0
    assert report.max_detection_ms is None


def test_default_policy_engine_contents():
    engine = default_policy_engine()
    names = {policy.name for policy in engine.policies}
    assert "flow-match-hierarchy" in names
    assert "stranded-pending-add" in names
    assert any("no-internal" in name for name in names)
