"""H-rules: hygiene (mutable defaults, excepts, unused imports) + suppressions."""

import textwrap

from repro.analysis import Analyzer, Severity


def _findings(source, path="src/example.py"):
    return Analyzer().analyze_source(textwrap.dedent(source), path=path)


def _rules(source, path="src/example.py"):
    return [f.rule_id for f in _findings(source, path)]


# ----------------------------------------------------------------------
# H401 — mutable defaults
# ----------------------------------------------------------------------

def test_h401_flags_literal_and_call_defaults():
    src = """
    def a(x=[]):
        return x

    def b(y=dict()):
        return y
    """
    assert _rules(src).count("H401") == 2


def test_h401_is_error_severity():
    findings = [f for f in _findings("def a(x=[]): return x")
                if f.rule_id == "H401"]
    assert findings and findings[0].severity is Severity.ERROR


def test_h401_allows_none_and_immutable_defaults():
    src = """
    def a(x=None, y=(), z=5, name="s"):
        return x, y, z, name
    """
    assert "H401" not in _rules(src)


# ----------------------------------------------------------------------
# H402/H403/H404 — except hygiene
# ----------------------------------------------------------------------

def test_h402_flags_bare_except():
    src = """
    def f():
        try:
            work()
        except:
            return None
    """
    assert "H402" in _rules(src)


def test_h403_flags_pass_only_handler():
    src = """
    def f():
        try:
            work()
        except ValueError:
            pass
    """
    assert "H403" in _rules(src)


def test_h403_allows_handled_exceptions():
    src = """
    def f(log):
        try:
            work()
        except ValueError as exc:
            log.warning("work failed: %s", exc)
    """
    assert "H403" not in _rules(src)


def test_h404_flags_broad_except_without_reraise():
    src = """
    def f():
        try:
            work()
        except Exception:
            return -1
    """
    assert "H404" in _rules(src)


def test_h404_allows_reraise():
    src = """
    def f(log):
        try:
            work()
        except Exception:
            log()
            raise
    """
    assert "H404" not in _rules(src)


# ----------------------------------------------------------------------
# H405 — unused imports
# ----------------------------------------------------------------------

def test_h405_flags_unused_import():
    src = """
    import os
    from typing import List

    def f():
        return os.getcwd()
    """
    assert _rules(src) == ["H405"]  # List unused, os used


def test_h405_counts_string_annotations_as_usage():
    src = """
    from typing import List

    def f(xs: "List[int]"):
        return xs
    """
    assert "H405" not in _rules(src)


def test_h405_exempts_init_files():
    src = "from repro.core.validator import Validator\n"
    assert _rules(src, path="src/repro/__init__.py") == []


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------

def test_inline_suppression_by_rule_id():
    src = """
    def f():
        try:
            work()
        except ValueError:  # jury: ignore[H403] — drop is the modeled fault
            pass
    """
    assert "H403" not in _rules(src)


def test_blanket_suppression():
    src = """
    def f():
        try:
            work()
        except:  # jury: ignore
            pass
    """
    assert _rules(src) == []


def test_suppression_of_one_rule_keeps_others():
    src = """
    def f():
        try:
            work()
        except:  # jury: ignore[H403]
            pass
    """
    rules = _rules(src)
    assert "H403" not in rules and "H402" in rules


def test_suppression_is_line_scoped():
    src = """
    def f():
        try:
            work()  # jury: ignore[H402]
        except:
            pass
    """
    assert "H402" in _rules(src)


# ----------------------------------------------------------------------
# H406 — observer purity (no observer mutation from decision paths)
# ----------------------------------------------------------------------

def test_h406_flags_container_mutation_through_observer():
    src = """
    class Validator:
        def _decide(self, span):
            self.tracer.spans.append(span)
    """
    assert "H406" in _rules(src)


def test_h406_flags_assignment_into_observer_state():
    src = """
    class Validator:
        def _decide(self):
            self.metrics.tables = {}
            tracer.counts["late"] = 1
    """
    assert _rules(src).count("H406") == 2


def test_h406_allows_binding_and_hook_calls():
    src = """
    class Validator:
        def __init__(self, tracer=None, health=None):
            self.tracer = tracer
            self.health = health

        def ingest(self, response, now):
            if self.health is not None:
                self.health.record_response(now, response.controller_id)
            if self.tracer is not None:
                self.tracer.emit(now, "ingest")
    """
    assert "H406" not in _rules(src)


def test_h406_ignores_unrelated_names_and_deep_attributes():
    src = """
    def f(report):
        report.summary.metrics_like.append(1)  # not an observer root
        buckets = {}
        buckets.setdefault("a", []).append(2)
    """
    assert "H406" not in _rules(src)


def test_h406_exempts_obs_modules():
    src = """
    class Tracer:
        def emit(self, span):
            tracer = self
            tracer.spans.append(span)
    """
    assert "H406" not in _rules(src, path="src/repro/obs/trace.py")


def test_h406_is_suppressible():
    src = """
    class V:
        def f(self, span):
            self.tracer.spans.append(span)  # jury: ignore[H406]
    """
    assert "H406" not in _rules(src)
