"""ProjectIndex: fact extraction, call resolution, reachability, thawing."""

import ast
import textwrap

from repro.analysis.project_index import (
    GLOBAL_RNG,
    SET_ITERATION,
    STATE_MUTATION,
    WALL_CLOCK,
    ModuleFacts,
    build_project_index,
    extract_module_facts,
    module_name_for,
)
from repro.analysis.registry import ModuleContext


def facts_for(path, source):
    source = textwrap.dedent(source)
    return extract_module_facts(ModuleContext(path, source,
                                              ast.parse(source)))


def index_for(*modules):
    return build_project_index(facts_for(p, s) for p, s in modules)


# ----------------------------------------------------------------------
# Module naming and fact extraction
# ----------------------------------------------------------------------

def test_module_name_strips_src_layout():
    assert module_name_for("src/repro/obs/diagnose.py") == \
        "repro.obs.diagnose"
    assert module_name_for("src/repro/core/__init__.py") == "repro.core"
    assert module_name_for("tools/helper.py") == "tools.helper"


def test_effects_are_recorded_with_positions():
    facts = facts_for("src/pkg/mod.py", """
        import time
        import random

        def stamp(engine):
            engine.alarms.append(1)
            for item in {1, 2}:
                pass
            random.random()
            return time.time()
    """)
    fn = facts.functions[0]
    kinds = {e.kind for e in fn.effects}
    assert kinds == {STATE_MUTATION, SET_ITERATION, GLOBAL_RNG, WALL_CLOCK}
    wall = next(e for e in fn.effects if e.kind == WALL_CLOCK)
    assert wall.line == 10  # positions survive extraction


def test_locally_minted_containers_are_not_mutations():
    facts = facts_for("src/pkg/mod.py", """
        def collect(engine):
            alarms = []
            alarms.append(1)
            seen = set(engine.ids)
            seen.add(2)
            return alarms, seen
    """)
    fn = facts.functions[0]
    assert [e for e in fn.effects if e.kind == STATE_MUTATION] == []


def test_borrowed_names_still_count_as_mutations():
    facts = facts_for("src/pkg/mod.py", """
        def stamp(result):
            for alarm in result.alarms:
                alarm.responses.append("x")
    """)
    fn = facts.functions[0]
    assert any(e.kind == STATE_MUTATION for e in fn.effects)


def test_emitted_trigger_kinds():
    idx = index_for(("src/pkg/app.py", """
        class App:
            def tick(self, ctx):
                ctx.internal_trigger("timer")
    """))
    assert idx.emitted_trigger_kinds() == {"internal"}


# ----------------------------------------------------------------------
# Call resolution and reachability
# ----------------------------------------------------------------------

def test_cross_module_call_resolves_through_imports():
    idx = index_for(
        ("src/pkg/a.py", """
            from pkg.b import helper

            def entry():
                return helper()
        """),
        ("src/pkg/b.py", """
            import time

            def helper():
                return time.time()
        """),
    )
    reach = idx.reachable_from("pkg.a.entry")
    assert "pkg.b.helper" in reach


def test_two_hop_reachability_records_call_path():
    idx = index_for(
        ("src/pkg/a.py", """
            from pkg.b import middle

            def entry():
                middle()
        """),
        ("src/pkg/b.py", """
            from pkg.c import leaf

            def middle():
                leaf()
        """),
        ("src/pkg/c.py", """
            import time

            def leaf():
                time.time()
        """),
    )
    reach = idx.reachable_from("pkg.a.entry")
    assert reach["pkg.c.leaf"] == [
        "pkg.a.entry", "pkg.b.middle", "pkg.c.leaf"]


def test_self_method_calls_resolve_within_class():
    idx = index_for(("src/pkg/a.py", """
        class Probe:
            def outer(self):
                self.inner()

            def inner(self):
                import random
                random.random()
    """))
    reach = idx.reachable_from("pkg.a.Probe.outer")
    assert "pkg.a.Probe.inner" in reach


# ----------------------------------------------------------------------
# Serialization (cache thaw path) and suppressions
# ----------------------------------------------------------------------

def test_module_facts_round_trip_through_dict():
    facts = facts_for("src/pkg/mod.py", """
        import time

        def f(engine):  # jury: ignore[X501]
            engine.log.append(time.time())
    """)
    thawed = ModuleFacts.from_dict(facts.to_dict())
    assert thawed.to_dict() == facts.to_dict()
    idx = build_project_index([thawed])
    assert idx.function("pkg.mod.f") is not None


def test_is_suppressed_honours_rule_id_and_wildcard():
    facts = facts_for("src/pkg/mod.py", """
        def f():  # jury: ignore[X501]
            pass

        def g():  # jury: ignore
            pass

        def h():
            pass
    """)
    idx = build_project_index([facts])
    mod = facts
    lines = {fn.qualname: fn.lineno for fn in mod.functions}
    assert idx.is_suppressed(mod, "X501", lines["f"])
    assert not idx.is_suppressed(mod, "X502", lines["f"])
    assert idx.is_suppressed(mod, "X502", lines["g"])
    assert not idx.is_suppressed(mod, "X501", lines["h"])
