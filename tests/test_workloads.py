"""Tests for the workload generators."""

import pytest

from repro.errors import WorkloadError
from repro.api import Jury
from repro.config import JuryConfig
from repro.workloads.cbench import CbenchDriver
from repro.workloads.tcpreplay import TcpReplayDriver
from repro.workloads.traces import ALL_TRACES, LBNL, SMIA, UNIV, TraceReplayDriver
from repro.workloads.traffic import TrafficDriver, mean_fabric_path_length


def warm(kind="onos", n=3, switches=8, seed=31, k=None):
    exp = Jury.experiment(JuryConfig(kind=kind, n=n, k=k, switches=switches, seed=seed, timeout_ms=200.0))
    exp.warmup()
    return exp


def test_mean_fabric_path_length_linear():
    exp = warm(switches=4)
    # Chain of 4: average over pairs of (hops+1) switches.
    value = mean_fabric_path_length(exp.topology)
    assert 2.0 < value < 4.0


def test_driver_hits_target_rate_roughly():
    exp = warm(switches=8)
    driver = TrafficDriver(exp.sim, exp.topology,
                           packet_in_rate_per_s=2000, duration_ms=1000)
    driver.start()
    exp.begin_window()
    exp.run(1000)
    measured = exp.throughput().packet_in_rate_per_s
    assert 1200 < measured < 3000  # within ~50% of target


def test_driver_stops_at_duration():
    exp = warm(switches=4)
    driver = TrafficDriver(exp.sim, exp.topology,
                           packet_in_rate_per_s=500, duration_ms=300)
    driver.start()
    exp.run(300)
    opened = driver.connections_opened
    exp.run(1000)
    assert driver.connections_opened == opened


def test_driver_arp_fraction_mixes_triggers():
    exp = warm(switches=8)
    driver = TrafficDriver(exp.sim, exp.topology, packet_in_rate_per_s=2000,
                           duration_ms=800, arp_fraction=0.5)
    driver.start()
    exp.run(1000)
    assert driver.arps_sent > 0
    assert driver.connections_opened > 0
    ratio = driver.arps_sent / (driver.arps_sent + driver.connections_opened)
    assert 0.3 < ratio < 0.7


def test_flow_mod_ratio_below_one_with_arp_mix():
    exp = warm(switches=8)
    driver = TrafficDriver(exp.sim, exp.topology, packet_in_rate_per_s=2000,
                           duration_ms=1000, arp_fraction=0.3)
    driver.start()
    exp.begin_window()
    exp.run(1200)
    point = exp.throughput()
    assert point.flow_mods < point.packet_ins


def test_invalid_parameters_rejected():
    exp = warm(switches=4)
    with pytest.raises(WorkloadError):
        TrafficDriver(exp.sim, exp.topology, packet_in_rate_per_s=0,
                      duration_ms=100)
    with pytest.raises(WorkloadError):
        TrafficDriver(exp.sim, exp.topology, packet_in_rate_per_s=100,
                      duration_ms=0)
    with pytest.raises(WorkloadError):
        TrafficDriver(exp.sim, exp.topology, packet_in_rate_per_s=100,
                      duration_ms=100, arp_fraction=1.5)


def test_link_churn_fails_and_restores_links():
    exp = warm(switches=8)
    driver = TrafficDriver(exp.sim, exp.topology, packet_in_rate_per_s=500,
                           duration_ms=2000, link_churn_rate_per_s=20.0)
    driver.start()
    exp.run(2500)
    # All links restored by the end (restore scheduled <=200 ms after fail).
    assert all(l.up for l in exp.topology.links)


def test_tcpreplay_defaults_to_ten_seconds():
    exp = warm(switches=4)
    driver = TcpReplayDriver(exp.sim, exp.topology, packet_in_rate_per_s=100)
    assert driver.duration_ms == 10000.0


def test_cbench_overwhelms_and_collapses():
    exp = Jury.experiment(JuryConfig(kind="onos", n=1, switches=2, seed=32,
                           profile_overrides=(("collapse_threshold", 500),), k=None, timeout_ms=200.0))
    exp.warmup()
    controller = exp.cluster.controller("c1")
    driver = CbenchDriver(exp.sim, controller, burst_size=400,
                          burst_gap_ms=3.0, duration_ms=8000.0,
                          sample_interval_ms=500.0)
    driver.start()
    exp.run(9000.0)
    rates = [s.flow_mod_rate_per_s for s in driver.samples]
    assert max(rates) > 0  # produced FLOW_MODs initially
    assert rates[-1] == 0.0  # and collapsed to zero
    assert controller.pipeline.stats.stalled_drops > 0


def test_cbench_seeds_hosts_so_flow_mods_flow():
    exp = Jury.experiment(JuryConfig(kind="onos", n=1, switches=2, seed=33, k=None, timeout_ms=200.0))
    exp.warmup()
    controller = exp.cluster.controller("c1")
    driver = CbenchDriver(exp.sim, controller, burst_size=10,
                          burst_gap_ms=100.0, duration_ms=500.0)
    driver.start()
    exp.run(1000.0)
    assert controller.flow_mods_sent > 0


def test_trace_profiles_have_increasing_intensity():
    assert LBNL.packet_in_rate_per_s < UNIV.packet_in_rate_per_s
    assert UNIV.packet_in_rate_per_s < SMIA.packet_in_rate_per_s
    assert LBNL.burstiness < SMIA.burstiness
    assert len(ALL_TRACES) == 3


def test_trace_replay_modulates_rate():
    exp = warm(switches=8)
    driver = TraceReplayDriver(exp.sim, exp.topology, SMIA, duration_ms=1000)
    assert driver._modulate(0.0) == pytest.approx(1.0)
    values = [driver._modulate(t) for t in range(0, 800, 50)]
    assert max(values) > 1.5
    assert min(values) < 0.5


def test_trace_replay_generates_traffic():
    exp = warm(switches=8)
    driver = TraceReplayDriver(exp.sim, exp.topology, LBNL, duration_ms=500)
    driver.start()
    exp.begin_window()
    exp.run(600)
    assert exp.throughput().packet_ins > 0
