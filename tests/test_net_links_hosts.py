"""Tests for data links and hosts."""

from repro.net.hosts import Host
from repro.net.links import Link
from repro.net.packet import arp_request, lldp_probe, tcp_packet
from repro.sim.latency import Fixed
from repro.sim.simulator import Simulator


class Sink:
    def __init__(self):
        self.received = []

    def receive_packet(self, packet, port):
        self.received.append((packet, port))


def test_link_delivers_to_opposite_end():
    sim = Simulator()
    a, b = Sink(), Sink()
    link = Link(sim, a, 1, b, 2, latency=Fixed(0.5))
    packet = tcp_packet("x", "y", "1.1.1.1", "2.2.2.2", 1, 2)
    link.transmit(a, packet)
    sim.run()
    assert b.received == [(packet, 2)]
    assert a.received == []


def test_link_counts_bytes():
    sim = Simulator()
    a, b = Sink(), Sink()
    link = Link(sim, a, 1, b, 2)
    link.transmit(a, tcp_packet("x", "y", "1.1.1.1", "2.2.2.2", 1, 2, size=100))
    sim.run()
    assert link.counter.bytes == 100


def test_failed_link_drops_packets():
    sim = Simulator()
    a, b = Sink(), Sink()
    link = Link(sim, a, 1, b, 2, latency=Fixed(1.0))
    link.transmit(a, tcp_packet("x", "y", "1.1.1.1", "2.2.2.2", 1, 2))
    link.fail()
    sim.run()
    assert b.received == []
    link.restore()
    link.transmit(a, tcp_packet("x", "y", "1.1.1.1", "2.2.2.2", 1, 3))
    sim.run()
    assert len(b.received) == 1


def test_endpoint_for():
    sim = Simulator()
    a, b = Sink(), Sink()
    link = Link(sim, a, 3, b, 9)
    assert link.endpoint_for(a) == 3
    assert link.endpoint_for(b) == 9


def make_host_pair(sim):
    h1 = Host(sim, "h1", "aa:01", "10.0.0.1")
    h2 = Host(sim, "h2", "aa:02", "10.0.0.2")
    link = Link(sim, h1, 1, h2, 1)
    h1.attach(link)
    h2.attach(link)
    return h1, h2


def test_host_replies_to_arp_for_own_ip():
    sim = Simulator()
    h1, h2 = make_host_pair(sim)
    h1.send(arp_request(h1.mac, h1.ip, h2.ip))
    sim.run()
    # h2 answered; h1 received the unicast reply.
    assert len(h1.received) == 1
    reply = h1.received[0]
    assert reply.src_mac == h2.mac
    assert reply.dst_mac == h1.mac


def test_host_ignores_arp_for_other_ip():
    sim = Simulator()
    h1, h2 = make_host_pair(sim)
    h1.send(arp_request(h1.mac, h1.ip, "10.0.0.99"))
    sim.run()
    assert h1.received == []
    # The request was delivered to h2 but not answered; h2 recorded it.
    assert len(h2.received) == 1


def test_open_connection_uses_unique_ports():
    sim = Simulator()
    h1, h2 = make_host_pair(sim)
    h1.open_connection(h2)
    h1.open_connection(h2)
    sim.run()
    ports = {p.src_port for p in h2.received}
    assert len(ports) == 2


def test_received_by_flow_tracking():
    sim = Simulator()
    h1, h2 = make_host_pair(sim)
    flow_id = h1.open_connection(h2)
    sim.run()
    assert h2.received_by_flow[flow_id] == 1


def test_unattached_host_send_is_safe():
    sim = Simulator()
    host = Host(sim, "h", "aa", "10.0.0.1")
    host.send(arp_request(host.mac, host.ip, "10.0.0.2"))  # no crash
    assert host.sent == 0
