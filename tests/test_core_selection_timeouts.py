"""Tests for deterministic secondary selection and timeout policies."""

import pytest

from repro.core.selection import designated_secondaries
from repro.core.timeouts import AdaptiveTimeout, StaticTimeout

IDS = [f"c{i}" for i in range(1, 8)]


def test_selection_is_deterministic():
    a = designated_secondaries(("ext", 5), IDS, 3, exclude=("c1",))
    b = designated_secondaries(("ext", 5), IDS, 3, exclude=("c1",))
    assert a == b


def test_selection_varies_with_trigger():
    picks = {tuple(designated_secondaries(("ext", i), IDS, 3, exclude=("c1",)))
             for i in range(50)}
    assert len(picks) > 5  # pseudo-random across triggers


def test_selection_excludes_primary():
    for i in range(30):
        chosen = designated_secondaries(("ext", i), IDS, 4, exclude=("c3",))
        assert "c3" not in chosen
        assert len(chosen) == 4


def test_selection_respects_k():
    assert designated_secondaries(("ext", 1), IDS, 0) == []
    assert len(designated_secondaries(("ext", 1), IDS, 100, exclude=("c1",))) == 6


def test_selection_uniformish_coverage():
    counts = {cid: 0 for cid in IDS if cid != "c1"}
    for i in range(600):
        for cid in designated_secondaries(("ext", i), IDS, 2, exclude=("c1",)):
            counts[cid] += 1
    # Each of 6 candidates chosen ~200 times; allow generous slack.
    assert all(120 < c < 280 for c in counts.values())


def test_selection_salt_changes_choice():
    a = designated_secondaries(("ext", 1), IDS, 3, salt="a")
    b_differs = any(
        designated_secondaries(("ext", i), IDS, 3, salt="a")
        != designated_secondaries(("ext", i), IDS, 3, salt="b")
        for i in range(20))
    assert b_differs


def test_static_timeout():
    timeout = StaticTimeout(129.0)
    assert timeout.current() == 129.0
    timeout.observe(500.0)  # no effect
    assert timeout.current() == 129.0


def test_adaptive_timeout_warms_up_then_tracks():
    timeout = AdaptiveTimeout(initial_ms=100.0, window=50, quantile=0.95,
                              margin=1.5)
    assert timeout.current() == 100.0  # too few observations
    for value in range(1, 41):
        timeout.observe(float(value))
    current = timeout.current()
    # 95th percentile of 1..40 is ~38; margin 1.5 -> ~57.
    assert 50.0 < current < 65.0


def test_adaptive_timeout_clamps():
    timeout = AdaptiveTimeout(initial_ms=100.0, floor_ms=20.0, ceiling_ms=200.0)
    for _ in range(20):
        timeout.observe(1.0)
    assert timeout.current() == 20.0
    for _ in range(200):
        timeout.observe(10_000.0)
    assert timeout.current() == 200.0


def test_adaptive_timeout_rejects_bad_quantile():
    with pytest.raises(ValueError):
        AdaptiveTimeout(quantile=1.5)


def test_adaptive_timeout_window_slides():
    timeout = AdaptiveTimeout(initial_ms=100.0, window=10, margin=1.0)
    for _ in range(10):
        timeout.observe(1000.0)
    high = timeout.current()
    for _ in range(10):
        timeout.observe(10.0)
    low = timeout.current()
    assert low < high
