"""Tests for the soft switch datapath and control plane."""

from repro.net.links import Link
from repro.net.packet import tcp_packet
from repro.net.switch import SoftSwitch
from repro.openflow.actions import ActionDrop, ActionFlood, ActionOutput
from repro.openflow.constants import FlowModCommand
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    Hello,
    PacketIn,
    PacketOut,
)
from repro.sim.simulator import Simulator


class Sink:
    def __init__(self):
        self.received = []

    def receive_packet(self, packet, port):
        self.received.append((packet, port))


class FakeChannel:
    """Captures messages the switch sends to its controller."""

    def __init__(self):
        self.sent = []

    def send(self, sender, message):
        self.sent.append(message)


def build_switch(sim, ports=2):
    switch = SoftSwitch(sim, dpid=1)
    sinks = []
    for port in range(1, ports + 1):
        sink = Sink()
        link = Link(sim, switch, port, sink, 1)
        switch.attach_port(port, link)
        sinks.append(sink)
    channel = FakeChannel()
    switch.connect_control(channel)
    return switch, sinks, channel


def tcp(sport=1):
    return tcp_packet("aa", "bb", "10.0.0.1", "10.0.0.2", sport, 80)


def test_table_miss_punts_with_buffer():
    sim = Simulator()
    switch, sinks, channel = build_switch(sim)
    switch.receive_packet(tcp(), port=1)
    assert switch.packet_ins_sent == 1
    message = channel.sent[0]
    assert isinstance(message, PacketIn)
    assert message.dpid == 1
    assert message.in_port == 1
    assert message.buffer_id is not None


def test_flow_mod_install_then_forward():
    sim = Simulator()
    switch, sinks, channel = build_switch(sim)
    packet = tcp()
    switch.handle_control_message(channel, FlowMod(
        dpid=1, match=Match.for_flow(packet, in_port=1),
        actions=(ActionOutput(2),)))
    switch.receive_packet(packet, port=1)
    sim.run()
    assert sinks[1].received  # delivered out port 2
    assert switch.packet_ins_sent == 0
    assert switch.packets_forwarded == 1


def test_packet_out_releases_buffered_packet():
    sim = Simulator()
    switch, sinks, channel = build_switch(sim)
    switch.receive_packet(tcp(), port=1)
    buffer_id = channel.sent[0].buffer_id
    switch.handle_control_message(channel, PacketOut(
        dpid=1, buffer_id=buffer_id, in_port=1, actions=(ActionOutput(2),)))
    sim.run()
    assert len(sinks[1].received) == 1
    assert switch.packet_outs_received == 1


def test_packet_out_with_explicit_packet():
    sim = Simulator()
    switch, sinks, channel = build_switch(sim)
    switch.handle_control_message(channel, PacketOut(
        dpid=1, packet=tcp(), actions=(ActionOutput(1),)))
    sim.run()
    assert len(sinks[0].received) == 1


def test_flood_excludes_ingress_port():
    sim = Simulator()
    switch, sinks, channel = build_switch(sim, ports=3)
    switch.handle_control_message(channel, FlowMod(
        dpid=1, match=Match(), actions=(ActionFlood(),), priority=1))
    switch.receive_packet(tcp(), port=1)
    sim.run()
    assert sinks[0].received == []
    assert len(sinks[1].received) == 1
    assert len(sinks[2].received) == 1


def test_drop_action_counts_drop():
    sim = Simulator()
    switch, sinks, channel = build_switch(sim)
    switch.handle_control_message(channel, FlowMod(
        dpid=1, match=Match(), actions=(ActionDrop(),), priority=1))
    switch.receive_packet(tcp(), port=1)
    sim.run()
    assert switch.packets_dropped == 1
    assert all(not s.received for s in sinks)


def test_of10_silent_field_strip_on_install():
    sim = Simulator()
    switch, sinks, channel = build_switch(sim)
    bad = Match(nw_src="10.0.0.1", nw_dst="10.0.0.2")
    switch.handle_control_message(channel, FlowMod(
        dpid=1, match=bad, actions=(ActionOutput(2),)))
    assert switch.stripped_flow_mods == 1
    assert len(switch.table) == 1
    # The installed rule is broader than requested: any packet matches.
    installed = switch.table.lookup(tcp(), in_port=1)
    assert installed is not None


def test_strict_switch_rejects_bad_match():
    sim = Simulator()
    switch = SoftSwitch(sim, dpid=2, of10_silent_field_strip=False)
    channel = FakeChannel()
    switch.connect_control(channel)
    bad = Match(nw_src="10.0.0.1")
    switch.handle_control_message(channel, FlowMod(dpid=2, match=bad, actions=()))
    assert switch.rejected_flow_mods == 1
    assert len(switch.table) == 0


def test_flow_mod_delete():
    sim = Simulator()
    switch, sinks, channel = build_switch(sim)
    packet = tcp()
    match = Match.for_flow(packet, in_port=1)
    switch.handle_control_message(channel, FlowMod(
        dpid=1, match=match, actions=(ActionOutput(2),)))
    switch.handle_control_message(channel, FlowMod(
        dpid=1, command=FlowModCommand.DELETE, match=match))
    assert len(switch.table) == 0


def test_handshake_replies():
    sim = Simulator()
    switch, sinks, channel = build_switch(sim)
    switch.handle_control_message(channel, Hello())
    switch.handle_control_message(channel, FeaturesRequest(xid=7))
    switch.handle_control_message(channel, EchoRequest(xid=8))
    switch.handle_control_message(channel, BarrierRequest(xid=9))
    kinds = [type(m) for m in channel.sent]
    assert kinds == [Hello, FeaturesReply, EchoReply, BarrierReply]
    features = channel.sent[1]
    assert features.dpid == 1
    assert features.ports == (1, 2)
    assert features.xid == 7


def test_no_controller_drops_miss():
    sim = Simulator()
    switch = SoftSwitch(sim, dpid=3)
    switch.receive_packet(tcp(), port=1)
    assert switch.packets_dropped == 1


def test_installed_flow_canonicals():
    sim = Simulator()
    switch, sinks, channel = build_switch(sim)
    match = Match.for_destination("bb")
    switch.handle_control_message(channel, FlowMod(
        dpid=1, match=match, actions=(ActionOutput(2),), priority=9))
    canonicals = switch.installed_flow_canonicals()
    assert (match.canonical(), (("output", 2),), 9) in canonicals
