"""Self-application: ``src/repro`` must stay clean under its own analyzer.

This is the tier-1 gate the CI workflow enforces with
``jury-repro analyze --fail-on error src/``: zero error-severity findings
anywhere, and zero findings of any severity beyond the checked-in baseline.
"""

from pathlib import Path

import pytest

from repro.analysis import Analyzer, Baseline, Severity
from repro.analysis.baseline import DEFAULT_BASELINE_PATH

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture()
def repo_cwd(monkeypatch):
    # Finding paths (and therefore baseline fingerprints) are cwd-relative;
    # the checked-in baseline was written from the repo root.
    monkeypatch.chdir(REPO_ROOT)


def test_src_repro_has_no_error_findings(repo_cwd):
    report = Analyzer().analyze_paths(["src/repro"])
    errors = [f for f in report.findings if f.severity >= Severity.ERROR]
    assert errors == [], "\n".join(f.render() for f in errors)


def test_src_repro_is_clean_modulo_checked_in_baseline(repo_cwd):
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_PATH)
    report = Analyzer().analyze_paths(["src/repro"], baseline=baseline)
    assert report.findings == [], "\n".join(
        f.render() for f in report.findings)


def test_checked_in_baseline_has_no_stale_entries(repo_cwd):
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_PATH)
    report = Analyzer().analyze_paths(["src/repro"], baseline=baseline)
    assert report.stale_baseline == []


def test_baseline_contains_only_warnings(repo_cwd):
    # Errors may never be baselined away — the gate fails them outright.
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_PATH)
    report = Analyzer().analyze_paths(["src/repro"], baseline=baseline)
    assert all(f.severity < Severity.ERROR for f in report.baselined)


def test_all_six_rule_families_are_wired(repo_cwd):
    from repro.analysis.registry import rule_catalog
    families = {rule.rule_id[0] for rule in Analyzer().rules}
    assert {"D", "T", "S", "H"} <= families  # per-module phase
    catalog = {cls.rule_id[0] for cls in rule_catalog()}
    assert {"D", "T", "S", "H", "X", "P"} <= catalog


def test_src_repro_is_x_rule_clean(repo_cwd):
    # The interprocedural rules hold for the engine's own tree: observers
    # stay pure, hot paths stay on simulated time, pipeline output stays
    # ordered. These are never baselined.
    report = Analyzer().analyze_paths(["src/repro"])
    cross = [f for f in report.findings if f.rule_id.startswith("X")]
    assert cross == [], "\n".join(f.render() for f in cross)


def test_tests_directory_parses_clean_of_errors(repo_cwd):
    # The test tree is held to error-level hygiene too (no bare excepts,
    # no mutable defaults); warnings are fine there.
    report = Analyzer().analyze_paths(["tests"])
    errors = [f for f in report.findings if f.severity >= Severity.ERROR]
    assert errors == [], "\n".join(f.render() for f in errors)
