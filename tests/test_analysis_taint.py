"""T-rules: handler code must externalize through the interception layer."""

import textwrap

from repro.analysis import Analyzer

APP_PATH = "src/repro/controllers/apps/example.py"


def _rules(source, path=APP_PATH):
    findings = Analyzer().analyze_source(textwrap.dedent(source), path=path)
    return [f.rule_id for f in findings]


# ----------------------------------------------------------------------
# T201 — raw datastore mutation
# ----------------------------------------------------------------------

def test_t201_flags_direct_store_put_in_app_module():
    src = """
    class BadApp:
        def handle_packet_in(self, message, ctx):
            self.controller.store.put("HostsDB", "k", "v")
            return True
    """
    assert "T201" in _rules(src)


def test_t201_flags_store_delete():
    src = """
    class BadApp:
        def handle_rest(self, request, ctx):
            self.controller.store.delete("FlowsDB", "k")
            return True
    """
    assert "T201" in _rules(src)


def test_t201_allows_interception_layer_writes():
    src = """
    class GoodApp:
        def handle_packet_in(self, message, ctx):
            self.controller.cache_write("HostsDB", "k", "v", ctx=ctx)
            return True
    """
    assert "T201" not in _rules(src)


def test_t201_allows_store_reads():
    src = """
    class GoodApp:
        def handle_packet_in(self, message, ctx):
            return self.controller.store.get("HostsDB", "k") is not None
    """
    assert "T201" not in _rules(src)


def test_t201_applies_to_controllerapp_subclasses_outside_apps_dir():
    src = """
    class Custom(ControllerApp):
        def handle_packet_in(self, message, ctx):
            self.controller.store.put("HostsDB", "k", "v")
            return True
    """
    assert "T201" in _rules(src, path="src/repro/extensions/custom.py")


def test_t201_ignores_non_app_code():
    # The datastore backends themselves legitimately call store.put.
    src = """
    class Replicassst:
        def apply(self, store):
            store.put("HostsDB", "k", "v")
    """
    assert "T201" not in _rules(src, path="src/repro/datastore/backend.py")


# ----------------------------------------------------------------------
# T202 — raw transmits
# ----------------------------------------------------------------------

def test_t202_flags_direct_channel_send():
    src = """
    class BadApp:
        def handle_packet_in(self, message, ctx):
            channel = self.controller.channel_for(message.dpid)
            channel.send(self, message)
            return True
    """
    assert "T202" in _rules(src)


def test_t202_flags_transmit_bypass():
    src = """
    class BadApp:
        def handle_packet_in(self, message, ctx):
            self.controller._transmit(message, ctx)
            return True
    """
    assert "T202" in _rules(src)


def test_t202_flags_egress_submit():
    src = """
    class BadApp:
        def handle_packet_in(self, message, ctx):
            self.controller.egress.submit((message, ctx), self._send)
            return True
    """
    assert "T202" in _rules(src)


def test_t202_allows_send_flow_mod_and_packet_out():
    src = """
    class GoodApp:
        def handle_packet_in(self, message, ctx):
            self.controller.cache_write("FlowsDB", "k", "v", ctx=ctx)
            self.controller.send_flow_mod(message, ctx)
            self.controller.send_packet_out(message, ctx)
            return True
    """
    assert "T202" not in _rules(src)


def test_shipped_apps_are_taint_clean():
    report = Analyzer().analyze_paths(["src/repro/controllers/apps"])
    taint = [f for f in report.findings if f.family == "T"]
    assert taint == []
