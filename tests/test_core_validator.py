"""Tests for the validator: Algorithm 1's counting, timers, and decisions."""

import pytest

from repro.core.responses import Response, ResponseKind
from repro.core.timeouts import StaticTimeout
from repro.core.validator import Validator
from repro.sim.simulator import Simulator


CACHE = (("cache", "FlowsDB", ("flow", 1, (), 100), "create",
          (("actions", (("output", 2),)), ("command", "add"), ("dpid", 1),
           ("match", ()), ("priority", 100), ("state", "pending_add"))),)
NET = (("flow_mod", 1, "add", (), (("output", 2),), 100),)
COMBINED = (CACHE, NET)


def full_response_set(tau=("ext", 1), k=2, primary="c1",
                      secondaries=("c2", "c3")):
    """The 2k+2 responses of a healthy external trigger."""
    responses = [
        Response(primary, tau, ResponseKind.NETWORK_WRITE, NET,
                 state_digest=(1,), trigger_received_at=0.0),
        Response(primary, tau, ResponseKind.CACHE_UPDATE, CACHE,
                 state_digest=(1,), origin=primary),
    ]
    for sid in secondaries:
        responses.append(Response(sid, tau, ResponseKind.CACHE_UPDATE, CACHE,
                                  state_digest=(1,), origin=primary))
        responses.append(Response(sid, tau, ResponseKind.REPLICA_RESULT,
                                  COMBINED, tainted=True, state_digest=(1,),
                                  primary_hint=primary,
                                  trigger_received_at=0.0))
    return responses


def test_external_trigger_decides_at_full_count():
    sim = Simulator()
    validator = Validator(sim, k=2, timeout=StaticTimeout(100.0))
    for response in full_response_set():
        validator.ingest(response)
    assert validator.triggers_decided == 1
    result = validator.results[0]
    assert result.ok
    assert result.external
    assert not result.timed_out
    assert result.n_responses == 6  # 2k+2


def test_external_classification_by_taint():
    sim = Simulator()
    validator = Validator(sim, k=2, timeout=StaticTimeout(10.0))
    tau = ("ext", 5)
    validator.ingest(Response("c2", tau, ResponseKind.REPLICA_RESULT,
                              ((), ()), tainted=True, primary_hint="c1"))
    sim.run()
    assert validator.results[0].external


def test_internal_trigger_decides_on_timer():
    sim = Simulator()
    validator = Validator(sim, k=2, timeout=StaticTimeout(50.0))
    tau = ("int", "c1", 9)
    for cid in ("c1", "c2", "c3"):
        validator.ingest(Response(cid, tau, ResponseKind.CACHE_UPDATE, CACHE,
                                  origin="c1"))
    assert validator.triggers_decided == 0  # k+1 < 2k+2: waits for the timer
    validator.ingest(Response("c1", tau, ResponseKind.NETWORK_WRITE, NET))
    sim.run()
    result = validator.results[0]
    assert result.timed_out
    assert not result.external  # k+2 responses, no taint
    assert result.ok


def test_internal_t2_missing_network_write_alarms():
    sim = Simulator()
    validator = Validator(sim, k=2, timeout=StaticTimeout(50.0))
    tau = ("int", "c1", 10)
    for cid in ("c1", "c2", "c3"):
        validator.ingest(Response(cid, tau, ResponseKind.CACHE_UPDATE, CACHE,
                                  origin="c1"))
    sim.run()
    result = validator.results[0]
    assert not result.ok
    assert result.alarms[0].reason.value == "sanity_mismatch"


def test_primary_omission_alarm_on_timeout():
    sim = Simulator()
    validator = Validator(sim, k=2, timeout=StaticTimeout(50.0))
    tau = ("ext", 2)
    for sid in ("c2", "c3"):
        validator.ingest(Response(sid, tau, ResponseKind.REPLICA_RESULT,
                                  COMBINED, tainted=True, primary_hint="c1",
                                  state_digest=(1,)))
    sim.run()
    result = validator.results[0]
    assert not result.ok
    alarm = result.alarms[0]
    assert alarm.reason.value == "primary_omission"
    assert alarm.offending_controller == "c1"


def test_late_response_after_decision_is_ignored():
    sim = Simulator()
    validator = Validator(sim, k=2, timeout=StaticTimeout(10.0))
    tau = ("ext", 3)
    validator.ingest(Response("c2", tau, ResponseKind.REPLICA_RESULT,
                              ((), ()), tainted=True))
    sim.run()  # timer fires, decision made
    decided = validator.triggers_decided
    validator.ingest(Response("c3", tau, ResponseKind.REPLICA_RESULT,
                              ((), ()), tainted=True))
    assert validator.triggers_decided == decided


def test_detection_time_uses_trigger_receipt():
    sim = Simulator()
    validator = Validator(sim, k=2, timeout=StaticTimeout(1000.0))
    sim.schedule(40.0, lambda: [validator.ingest(r)
                                for r in full_response_set(tau=("ext", 7))])
    sim.run()
    result = validator.results[0]
    # Responses carried trigger_received_at=0; decided at t=40.
    assert abs(result.detection_ms - 40.0) < 1e-9


def test_controller_state_maintained():
    sim = Simulator()
    validator = Validator(sim, k=2, timeout=StaticTimeout(10.0))
    validator.ingest(Response("c1", ("ext", 8), ResponseKind.CACHE_UPDATE,
                              CACHE, origin="c1"))
    assert validator.state["c1"].cache_updates == 1
    assert validator.state["c1"].last_entry == CACHE
    sim.run()


def test_policy_engine_invoked():
    from repro.policy import PolicyEngine, no_internal_cache_changes

    sim = Simulator()
    engine = PolicyEngine([no_internal_cache_changes("FlowsDB")])
    validator = Validator(sim, k=2, timeout=StaticTimeout(30.0),
                          policy_engine=engine)
    tau = ("int", "c1", 11)
    for cid in ("c1", "c2", "c3"):
        validator.ingest(Response(cid, tau, ResponseKind.CACHE_UPDATE, CACHE,
                                  origin="c1"))
    validator.ingest(Response("c1", tau, ResponseKind.NETWORK_WRITE, NET))
    sim.run()
    result = validator.results[0]
    assert not result.ok
    assert any(a.reason.value == "policy_violation" for a in result.alarms)


def test_on_alarm_callback():
    sim = Simulator()
    validator = Validator(sim, k=1, timeout=StaticTimeout(10.0))
    seen = []
    validator.on_alarm = seen.append
    validator.ingest(Response("c2", ("ext", 12), ResponseKind.REPLICA_RESULT,
                              COMBINED, tainted=True, primary_hint="c1"))
    sim.run()
    assert len(seen) == 1


def test_false_positive_rate():
    sim = Simulator()
    validator = Validator(sim, k=2, timeout=StaticTimeout(10.0))
    for i in range(4):
        for response in full_response_set(tau=("ext", 100 + i)):
            validator.ingest(response)
    assert validator.false_positive_rate() == 0.0
    # one alarmed trigger
    validator.ingest(Response("c2", ("ext", 999), ResponseKind.REPLICA_RESULT,
                              COMBINED, tainted=True, primary_hint="c1"))
    validator.ingest(Response("c3", ("ext", 999), ResponseKind.REPLICA_RESULT,
                              COMBINED, tainted=True, primary_hint="c1"))
    sim.run()
    assert validator.false_positive_rate() == pytest.approx(1.0 / 5.0)


def test_keep_results_flag():
    sim = Simulator()
    validator = Validator(sim, k=2, timeout=StaticTimeout(10.0),
                          keep_results=False)
    for response in full_response_set():
        validator.ingest(response)
    assert validator.triggers_decided == 1
    assert validator.results == []


def test_pending_count():
    sim = Simulator()
    validator = Validator(sim, k=2, timeout=StaticTimeout(10.0))
    validator.ingest(Response("c2", ("ext", 1), ResponseKind.REPLICA_RESULT,
                              ((), ()), tainted=True))
    assert validator.pending_count == 1
    sim.run()
    assert validator.pending_count == 0


def test_late_response_cannot_reopen_decided_trigger():
    """Regression: a promise-held FLOW_MOD emerging after the decision must
    be dropped — re-opening the trigger would judge it alone and raise a
    spurious 'unjustified FLOW_MOD' sanity alarm."""
    sim = Simulator()
    validator = Validator(sim, k=2, timeout=StaticTimeout(10.0))
    tau = ("ext", 400)
    validator.ingest(Response("c2", tau, ResponseKind.REPLICA_RESULT,
                              ((), ()), tainted=True))
    sim.run()  # decision on the timer
    decided = validator.triggers_decided
    # The primary's FLOW_MOD bundle arrives late.
    validator.ingest(Response("c1", tau, ResponseKind.NETWORK_WRITE, NET))
    sim.run()  # no new timer may decide this tau again
    assert validator.triggers_decided == decided
    assert validator.late_responses == 1
    assert validator.pending_count == 0
    assert not validator.alarms
