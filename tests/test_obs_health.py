"""Unit tests for replica health scoring, hysteresis, and SLO rules."""

import pytest

from repro.obs.health import (
    ReplicaHealthTracker,
    SloMonitor,
    SloRule,
    default_slo_rules,
)
from repro.obs.metrics import MetricsRegistry


class _FakeResponse:
    def __init__(self, cid):
        self.controller_id = cid


class _FakeAlarm:
    def __init__(self, offender):
        self.offending_controller = offender


def _decision(tracker, now, responders, offenders=(), timed_out=False):
    tracker.record_decision(
        now, [_FakeResponse(c) for c in responders],
        [_FakeAlarm(c) for c in offenders], timed_out)


# ----------------------------------------------------------------------
# Scoring
# ----------------------------------------------------------------------

def test_quiet_replica_scores_near_zero():
    tracker = ReplicaHealthTracker(window_ms=1000.0, interval_ms=250.0)
    for at in range(0, 1000, 50):
        tracker.record_response(float(at), "c1", lag_ms=5.0)
        _decision(tracker, float(at) + 1.0, ["c1"])
    report = tracker.evaluate(1000.0)["c1"]
    assert report.score < 0.05
    assert report.disagreement_rate == 0.0
    assert not report.suspected


def test_offender_drives_disagreement_rate_and_score():
    tracker = ReplicaHealthTracker(window_ms=1000.0, interval_ms=250.0)
    for at in range(0, 2000, 50):
        tracker.record_response(float(at), "c1", lag_ms=5.0)
        tracker.record_response(float(at), "c2", lag_ms=5.0)
        _decision(tracker, float(at) + 1.0, ["c1", "c2"], offenders=["c2"])
    reports = tracker.evaluate(2000.0)
    assert reports["c2"].disagreement_rate == 1.0
    assert reports["c2"].score > reports["c1"].score
    assert reports["c2"].suspected and not reports["c1"].suspected


def test_timeout_misses_only_count_known_replicas():
    """A replica is only expected on a timed-out trigger after it has been
    seen responding at least once before the decision."""
    tracker = ReplicaHealthTracker(window_ms=1000.0, interval_ms=250.0)
    tracker.record_response(10.0, "c1", lag_ms=1.0)
    # c2 first appears *after* this timed-out decision: not expected there.
    _decision(tracker, 100.0, ["c1"], timed_out=True)
    tracker.record_response(150.0, "c2", lag_ms=1.0)
    _decision(tracker, 200.0, ["c1"], timed_out=True)
    reports = tracker.evaluate(250.0)
    assert reports["c2"].timeout_miss_rate == pytest.approx(1.0)
    assert reports["c2"].decisions >= 0
    # c2 was expected on one timeout (at 200), not two.
    assert reports["c1"].timeout_miss_rate == 0.0


def test_lag_term_saturates_at_budget():
    tracker = ReplicaHealthTracker(window_ms=1000.0, interval_ms=250.0,
                                   lag_budget_ms=100.0)
    for at in range(0, 1000, 20):
        tracker.record_response(float(at), "slow", lag_ms=10_000.0)
    report = tracker.evaluate(1000.0)["slow"]
    # Weights (0.5, 0.3, 0.2): a saturated lag term alone contributes 0.2.
    assert report.score == pytest.approx(0.2)
    assert report.lag_p95_ms == pytest.approx(10_000.0)


# ----------------------------------------------------------------------
# Order independence (the pipeline-equivalence property, in miniature)
# ----------------------------------------------------------------------

def test_evaluation_is_arrival_order_independent():
    events = [(float(at), cid, 1.0 + (at % 7))
              for at in range(0, 1500, 30) for cid in ("c1", "c2", "c3")]
    forward = ReplicaHealthTracker()
    backward = ReplicaHealthTracker()
    for at, cid, lag in events:
        forward.record_response(at, cid, lag_ms=lag)
    for at, cid, lag in reversed(events):
        backward.record_response(at, cid, lag_ms=lag)
    _decision(forward, 700.0, ["c1", "c2", "c3"], offenders=["c3"])
    _decision(backward, 700.0, ["c1", "c2", "c3"], offenders=["c3"])
    assert forward.evaluate(1500.0) == backward.evaluate(1500.0)


def test_empty_windows_evaluate_to_zero_lag_not_a_crash():
    """Long-run guard: a replica that goes silent leaves later windows with
    no lag samples. Every ``percentile`` call site must be gated on a
    non-empty window (``percentile([])`` raises by contract), so a soak
    that outlives its traffic still evaluates — with zero lag terms."""
    tracker = ReplicaHealthTracker(window_ms=1000.0, interval_ms=250.0)
    tracker.record_response(10.0, "c1", lag_ms=4.0)
    _decision(tracker, 11.0, ["c1"])
    # c2 is known only as a decision participant: it never reported a lag.
    _decision(tracker, 12.0, ["c1", "c2"])
    reports = tracker.evaluate(20_000.0)  # 19 windows past the last event
    assert set(reports) == {"c1", "c2"}
    for report in reports.values():
        assert report.lag_p95_ms == 0.0
        assert not report.suspected


# ----------------------------------------------------------------------
# Hysteresis
# ----------------------------------------------------------------------

def _tracker_with_score_sequence(scores, interval_ms=100.0):
    """Drive the hysteresis with a synthetic per-window offender pattern."""
    tracker = ReplicaHealthTracker(
        window_ms=interval_ms, interval_ms=interval_ms,
        suspect_threshold=0.5, clear_threshold=0.2,
        suspect_after=2, clear_after=2)
    for index, bad in enumerate(scores):
        at = index * interval_ms + interval_ms / 2.0
        offenders = ["c1"] if bad else []
        _decision(tracker, at, ["c1"], offenders=offenders)
    return tracker, (len(scores)) * interval_ms


def test_single_bad_window_does_not_flag():
    tracker, horizon = _tracker_with_score_sequence([0, 1, 0, 0])
    assert tracker.suspected(horizon) == []


def test_consecutive_bad_windows_flag_and_flag_sticks():
    tracker, horizon = _tracker_with_score_sequence([1, 1, 1, 0])
    # suspect_after=2 consecutive >=0.5 windows flips the flag; the single
    # clean window after is below clear_after, so the flag holds.
    report = tracker.evaluate(horizon)["c1"]
    assert report.suspected
    assert report.suspected_since is not None


def test_flag_clears_after_clear_streak():
    tracker, horizon = _tracker_with_score_sequence([1, 1, 0, 0, 0])
    assert tracker.suspected(horizon) == []


def test_no_flapping_under_alternation():
    """Alternating good/bad windows never build a streak: no flapping."""
    tracker, horizon = _tracker_with_score_sequence([1, 0] * 6)
    assert tracker.suspected(horizon) == []


def test_snapshot_shape():
    tracker = ReplicaHealthTracker()
    tracker.record_response(10.0, "c1", lag_ms=2.0)
    snapshot = tracker.snapshot(500.0)
    assert set(snapshot) == {"time_ms", "window_ms", "replicas"}
    assert list(snapshot["replicas"]) == ["c1"]
    report = snapshot["replicas"]["c1"]
    assert {"controller_id", "score", "suspected"} <= set(report)


# ----------------------------------------------------------------------
# SLO rules
# ----------------------------------------------------------------------

def test_default_rule_catalog_names():
    names = [rule.name for rule in default_slo_rules()]
    assert names == ["detection-latency-p95", "ingest-overflow-rate",
                     "late-drop-rate"]


def test_slo_histogram_p95_rule():
    registry = MetricsRegistry()
    for value in range(100):
        registry.histogram("validator_detection_ms").observe(float(value))
    monitor = SloMonitor()
    statuses = {s.name: s for s in monitor.evaluate(registry, 1000.0)}
    status = statuses["detection-latency-p95"]
    assert 90.0 <= status.value <= 99.0
    assert status.ok


def test_slo_ratio_rule_breaches():
    registry = MetricsRegistry()
    registry.counter("validator_responses_total", kind="cache").inc(100)
    registry.counter("validator_late_responses_total").inc(10)
    monitor = SloMonitor()
    statuses = {s.name: s for s in monitor.evaluate(registry, 1000.0)}
    status = statuses["late-drop-rate"]
    assert status.value == pytest.approx(0.1)
    assert not status.ok
    assert [b.name for b in monitor.breached(registry, 1001.0)] \
        == ["late-drop-rate"]


def test_slo_ratio_rule_empty_denominator_is_zero():
    monitor = SloMonitor()
    statuses = monitor.evaluate(MetricsRegistry(), 0.0)
    assert all(s.ok for s in statuses)
    assert all(s.value == 0.0 for s in statuses)


def test_slo_unknown_kind_raises():
    monitor = SloMonitor(rules=(SloRule(
        name="x", description="", kind="bogus", threshold=1.0),))
    with pytest.raises(ValueError):
        monitor.evaluate(MetricsRegistry(), 0.0)


def test_slo_history_accumulates():
    monitor = SloMonitor()
    registry = MetricsRegistry()
    monitor.evaluate(registry, 100.0)
    monitor.evaluate(registry, 200.0)
    assert [at for at, _ in monitor.history] == [100.0, 200.0]
