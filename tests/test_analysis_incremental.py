"""Incremental analysis: cache correctness, parallel runs, determinism."""

import json
import os
import textwrap

import pytest

from repro.analysis import AnalysisCache, Analyzer
from repro.analysis.cache import analyzer_fingerprint, content_hash
from repro.analysis.engine import discover_files
from repro.cli import main

DIRTY = textwrap.dedent("""
    import time

    def handler(seen, channel):
        seen.add(id(channel))
        return time.time()
""")

CLEAN = textwrap.dedent("""
    def handler(sim):
        return sim.now
""")


@pytest.fixture()
def tree(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "dirty.py").write_text(DIRTY)
    (tmp_path / "clean.py").write_text(CLEAN)
    return tmp_path


def report_json(report):
    return json.dumps([f.to_dict() for f in report.findings], sort_keys=True)


# ----------------------------------------------------------------------
# Cache correctness
# ----------------------------------------------------------------------

def test_warm_run_serves_hits_and_identical_findings(tree):
    cache = AnalysisCache(str(tree / "cache.json"))
    cold = Analyzer().analyze_paths(["."], cache=cache)
    cache.write()

    warm_cache = AnalysisCache.load(str(tree / "cache.json"))
    warm = Analyzer().analyze_paths(["."], cache=warm_cache)
    assert warm.cache_hits == 2
    assert report_json(warm) == report_json(cold)


def test_edited_file_misses_while_others_hit(tree):
    cache = AnalysisCache(str(tree / "cache.json"))
    Analyzer().analyze_paths(["."], cache=cache)
    cache.write()

    (tree / "clean.py").write_text(CLEAN + "\nX = 1\n")
    warm_cache = AnalysisCache.load(str(tree / "cache.json"))
    report = Analyzer().analyze_paths(["."], cache=warm_cache)
    assert report.cache_hits == 1  # dirty.py unchanged, clean.py re-analyzed


def test_corrupt_cache_file_is_ignored(tree):
    (tree / "cache.json").write_text("{not json")
    cache = AnalysisCache.load(str(tree / "cache.json"))
    report = Analyzer().analyze_paths(["."], cache=cache)
    assert report.cache_hits == 0
    assert {f.rule_id for f in report.findings} >= {"D101"}


def test_analyzer_fingerprint_mismatch_invalidates_whole_cache(tree):
    cache = AnalysisCache(str(tree / "cache.json"))
    Analyzer().analyze_paths(["."], cache=cache)
    cache.write()

    raw = json.loads((tree / "cache.json").read_text())
    assert raw["analyzer"] == analyzer_fingerprint()
    raw["analyzer"] = "0" * 40  # an older analyzer wrote this cache
    (tree / "cache.json").write_text(json.dumps(raw))
    stale = AnalysisCache.load(str(tree / "cache.json"))
    report = Analyzer().analyze_paths(["."], cache=stale)
    assert report.cache_hits == 0


def test_cache_get_is_keyed_by_content_hash(tree):
    cache = AnalysisCache(str(tree / "cache.json"))
    Analyzer().analyze_paths(["."], cache=cache)
    assert cache.get("dirty.py", content_hash(DIRTY)) is not None
    assert cache.get("dirty.py", content_hash(DIRTY + "# edit\n")) is None


# ----------------------------------------------------------------------
# Parallel runs agree with serial runs
# ----------------------------------------------------------------------

def test_parallel_report_matches_serial_report(tree):
    serial = Analyzer().analyze_paths(["."], jobs=1)
    parallel = Analyzer().analyze_paths(["."], jobs=2)
    assert report_json(parallel) == report_json(serial)


# ----------------------------------------------------------------------
# Deterministic discovery (the satellite contract)
# ----------------------------------------------------------------------

def test_discover_files_is_sorted_and_unique(tree):
    (tree / "sub").mkdir()
    (tree / "sub" / "b.py").write_text("\n")
    (tree / "sub" / "a.py").write_text("\n")
    found = discover_files([".", "."])
    assert found == sorted(found)
    assert len(found) == len(set(found))


def test_discover_files_survives_symlink_cycles(tree):
    (tree / "sub").mkdir()
    (tree / "sub" / "mod.py").write_text("\n")
    try:
        os.symlink(tree, tree / "sub" / "loop")
    except OSError:
        pytest.skip("symlinks unavailable")
    found = discover_files(["."])
    names = [os.path.basename(p) for p in found]
    assert names.count("mod.py") == 1


def test_two_runs_emit_byte_identical_json_reports(tree, capsys):
    # The full CLI JSON report (findings, summary, ordering) must be
    # reproducible run-to-run, warm or cold.
    main(["analyze", "--format", "json", "."])
    first = capsys.readouterr().out
    main(["analyze", "--format", "json", "."])  # warm: served from cache
    second = capsys.readouterr().out
    assert first == second

    main(["analyze", "--format", "json", "--no-cache", "--jobs", "2", "."])
    third = capsys.readouterr().out
    assert first == third


# ----------------------------------------------------------------------
# CLI knobs
# ----------------------------------------------------------------------

def test_cli_writes_and_reuses_the_default_cache(tree, capsys):
    main(["analyze", "."])
    capsys.readouterr()
    assert (tree / ".jury-analysis-cache.json").exists()
    main(["analyze", "."])
    assert "2 cached" in capsys.readouterr().out


def test_cli_no_cache_skips_the_cache_file(tree, capsys):
    main(["analyze", "--no-cache", "."])
    capsys.readouterr()
    assert not (tree / ".jury-analysis-cache.json").exists()
