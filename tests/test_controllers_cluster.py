"""Tests for the cluster manager: mastership, wiring, crash/failover."""

import pytest

from repro.controllers.cluster import ControllerCluster, HaMode
from repro.controllers.odl import build_odl_cluster
from repro.controllers.onos import build_onos_cluster
from repro.errors import ClusterError
from repro.net.topology import linear_topology
from repro.sim.simulator import Simulator


def test_round_robin_mastership():
    sim = Simulator(seed=1)
    topo = linear_topology(sim, 6)
    cluster, _ = build_onos_cluster(sim, n=3)
    cluster.connect_topology(topo)
    masters = [cluster.master_of(d) for d in sorted(topo.switches)]
    assert masters == ["c1", "c2", "c3", "c1", "c2", "c3"]


def test_any_controller_one_master_connects_all(onos3):
    cluster, _ = onos3
    for controller in cluster.controllers.values():
        assert len(controller.connected_switches) == 4


def test_single_controller_mode_connects_only_master():
    sim = Simulator(seed=1)
    topo = linear_topology(sim, 4)
    cluster, _ = build_odl_cluster(sim, n=2)
    cluster.connect_topology(topo)
    cluster.start()
    sim.run(until=2000.0)
    c1 = cluster.controller("c1")
    c2 = cluster.controller("c2")
    assert c1.connected_switches == {1, 3}
    assert c2.connected_switches == {2, 4}


def test_crash_fails_over_mastership():
    sim = Simulator(seed=1)
    topo = linear_topology(sim, 4)
    cluster, _ = build_onos_cluster(sim, n=2)
    cluster.connect_topology(topo)
    assert cluster.master_of(1) == "c1"
    cluster.crash("c1")
    assert cluster.master_of(1) == "c2"
    assert cluster.proxy_of(1).primary_id == "c2"


def test_undetected_crash_keeps_mastership():
    """alive=False without cluster.crash(): the window JURY detects in."""
    sim = Simulator(seed=1)
    topo = linear_topology(sim, 2)
    cluster, _ = build_onos_cluster(sim, n=2)
    cluster.connect_topology(topo)
    cluster.controller("c1").alive = False
    assert cluster.master_of(1) == "c1"


def test_set_master_updates_proxy():
    sim = Simulator(seed=1)
    topo = linear_topology(sim, 2)
    cluster, _ = build_onos_cluster(sim, n=2)
    cluster.connect_topology(topo)
    cluster.set_master(1, "c2")
    assert cluster.master_of(1) == "c2"
    assert cluster.proxy_of(1).primary_id == "c2"


def test_set_master_unknown_controller_rejected():
    sim = Simulator(seed=1)
    cluster, _ = build_onos_cluster(sim, n=2)
    with pytest.raises(ClusterError):
        cluster.set_master(1, "c99")


def test_duplicate_controller_rejected():
    sim = Simulator(seed=1)
    cluster, store = build_onos_cluster(sim, n=2)
    from repro.controllers.onos import OnosController

    node = store.create_node("cx")
    dup = OnosController(sim, "c1", node)
    with pytest.raises(ClusterError):
        cluster.add_controller(dup)


def test_connect_topology_requires_controllers():
    sim = Simulator(seed=1)
    cluster = ControllerCluster(sim)
    with pytest.raises(ClusterError):
        cluster.connect_topology(linear_topology(sim, 2))


def test_election_id_registry():
    sim = Simulator(seed=1)
    cluster, _ = build_onos_cluster(sim, n=3)
    assert cluster.election_id_of("c2") == 2
    cluster.announce_election_id("c2", 42)
    assert cluster.election_id_of("c2") == 42


def test_reboot_announces_to_registry():
    sim = Simulator(seed=1)
    cluster, _ = build_onos_cluster(sim, n=2)
    controller = cluster.controller("c2")
    controller.crash()
    controller.reboot(election_id=0)
    assert cluster.election_id_of("c2") == 0


def test_wire_switch_at_runtime():
    sim = Simulator(seed=1)
    topo = linear_topology(sim, 2)
    cluster, _ = build_onos_cluster(sim, n=2)
    cluster.connect_topology(topo)
    cluster.start()
    sim.run(until=1000.0)
    new_switch = topo.add_switch(50)
    cluster.wire_switch(new_switch, master="c2")
    sim.run(until=2000.0)
    assert 50 in cluster.controller("c2").connected_switches
    assert cluster.master_of(50) == "c2"


def test_mastership_beacons_add_store_traffic(onos3):
    cluster, store = onos3
    before = store.counter.bytes
    cluster.sim.run(until=cluster.sim.now + 500.0)
    assert store.counter.bytes > before


def test_unknown_controller_lookup_raises():
    sim = Simulator(seed=1)
    cluster, _ = build_onos_cluster(sim, n=1)
    with pytest.raises(ClusterError):
        cluster.controller("c9")
    with pytest.raises(ClusterError):
        cluster.proxy_of(99)
