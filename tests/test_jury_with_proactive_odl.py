"""JURY over *vanilla* (proactive) ODL: multi-write trigger aggregation.

A single host-discovery ARP makes proactive ODL write HostsDB plus one
FlowsDB rule per mastered switch — several cache writes and FLOW_MODs for
ONE external trigger. JURY's module aggregates them into single responses
per replica, so Algorithm 1's counting still holds and benign proactive
provisioning does not alarm.
"""

import pytest

from repro.controllers.odl import build_odl_cluster
from repro.controllers.profile import odl_profile
from repro.api import Jury
from repro.config import JuryConfig
from repro.net.topology import linear_topology
from repro.sim.simulator import Simulator


@pytest.fixture
def proactive_jury():
    sim = Simulator(seed=170)
    topo = linear_topology(sim, 4)
    cluster, store = build_odl_cluster(sim, n=3,
                                       profile=odl_profile(proactive=True))
    cluster.connect_topology(topo)
    jury = Jury.build(JuryConfig(k=2, timeout_ms=1500.0), cluster=cluster)
    cluster.start()
    sim.run(until=3000.0)
    return sim, topo, cluster, jury


def test_host_discovery_validates_cleanly(proactive_jury):
    sim, topo, cluster, jury = proactive_jury
    hosts = topo.host_list()
    hosts[0].send_arp_request(hosts[2].ip)
    sim.run(until=sim.now + 4000.0)
    validator = jury.validator
    assert validator.triggers_decided > 0
    assert validator.triggers_alarmed == 0


def test_multi_write_trigger_aggregated_into_single_responses(proactive_jury):
    sim, topo, cluster, jury = proactive_jury
    hosts = topo.host_list()
    hosts[0].send_arp_request(hosts[2].ip)
    sim.run(until=sim.now + 4000.0)
    # Find a full-consensus external trigger: even with several cache
    # writes, it must count exactly 2k+2 responses.
    k = jury.k
    full = [r for r in jury.validator.results
            if r.external and not r.timed_out]
    assert full
    assert all(r.n_responses == 2 * k + 2 for r in full)


def test_proactive_rules_install_and_forward(proactive_jury):
    sim, topo, cluster, jury = proactive_jury
    hosts = topo.host_list()
    for index, host in enumerate(hosts):
        sim.schedule(index * 10.0, host.send_arp_request,
                     hosts[(index + 1) % 4].ip)
    sim.run(until=sim.now + 6000.0)
    flow_id = hosts[0].open_connection(hosts[3])
    sim.run(until=sim.now + 2000.0)
    assert hosts[3].received_by_flow.get(flow_id) == 1
    assert jury.validator.triggers_alarmed == 0
