"""Tests for the OVS replicating proxy."""

from repro.net.channel import ControlChannel
from repro.net.ovs import ReplicatingProxy
from repro.net.packet import tcp_packet
from repro.net.switch import SoftSwitch
from repro.openflow.messages import FeaturesReply, FlowMod, Hello, PacketIn
from repro.sim.latency import Fixed
from repro.sim.simulator import Simulator


class Endpoint:
    def __init__(self):
        self.received = []

    def handle_control_message(self, channel, message):
        self.received.append(message)


def build_proxy(sim, controllers=("c1", "c2", "c3"), primary="c1"):
    switch = SoftSwitch(sim, dpid=1)
    proxy = ReplicatingProxy(sim, switch, primary_id=primary)
    switch_end = Endpoint()
    switch_channel = ControlChannel(sim, switch_end, proxy, latency=Fixed(0.1))
    proxy.connect_switch(switch_channel)
    ends = {}
    for cid in controllers:
        end = Endpoint()
        channel = ControlChannel(sim, proxy, end, latency=Fixed(0.1))
        proxy.connect_controller(cid, channel)
        ends[cid] = end
    return proxy, switch_end, switch_channel, ends


def packet_in():
    return PacketIn(dpid=1, in_port=1,
                    packet=tcp_packet("a", "b", "1.1.1.1", "2.2.2.2", 1, 2))


def test_packet_in_goes_to_primary_only():
    sim = Simulator()
    proxy, switch_end, switch_channel, ends = build_proxy(sim)
    switch_channel.send(switch_end, packet_in())
    sim.run()
    assert len(ends["c1"].received) == 1
    assert ends["c2"].received == []
    assert ends["c3"].received == []
    assert proxy.forwarded_to_primary == 1


def test_handshake_replies_broadcast():
    sim = Simulator()
    proxy, switch_end, switch_channel, ends = build_proxy(sim)
    switch_channel.send(switch_end, Hello())
    switch_channel.send(switch_end, FeaturesReply(dpid=1, ports=(1,)))
    sim.run()
    for end in ends.values():
        kinds = [type(m) for m in end.received]
        assert kinds == [Hello, FeaturesReply]


def test_controller_to_switch_forwarded():
    sim = Simulator()
    proxy, switch_end, switch_channel, ends = build_proxy(sim)
    # A controller sends a FLOW_MOD down its channel to the proxy.
    c2_channel = proxy.controller_channels["c2"]
    c2_channel.send(ends["c2"], FlowMod(dpid=1))
    sim.run()
    assert len(switch_end.received) == 1
    assert proxy.forwarded_to_switch == 1


def test_switch_to_controller_hook_fires():
    sim = Simulator()
    proxy, switch_end, switch_channel, ends = build_proxy(sim)
    seen = []
    proxy.on_switch_to_controller = seen.append
    message = packet_in()
    switch_channel.send(switch_end, message)
    sim.run()
    assert seen == [message]


def test_controller_to_switch_hook_identifies_sender():
    sim = Simulator()
    proxy, switch_end, switch_channel, ends = build_proxy(sim)
    seen = []
    proxy.on_controller_to_switch = lambda sender, msg: seen.append(sender)
    proxy.controller_channels["c3"].send(ends["c3"], FlowMod(dpid=1))
    sim.run()
    assert seen == ["c3"]


def test_set_primary_redirects():
    sim = Simulator()
    proxy, switch_end, switch_channel, ends = build_proxy(sim)
    proxy.set_primary("c2")
    switch_channel.send(switch_end, packet_in())
    sim.run()
    assert len(ends["c2"].received) == 1
    assert ends["c1"].received == []


def test_send_to_controller_by_id():
    sim = Simulator()
    proxy, switch_end, switch_channel, ends = build_proxy(sim)
    assert proxy.send_to_controller("c2", FlowMod(dpid=1))
    assert not proxy.send_to_controller("c99", FlowMod(dpid=1))
    sim.run()
    assert len(ends["c2"].received) == 1
