"""Tests for the command-line interface."""

import pytest

from repro.cli import FAULTS, build_parser, main


def test_list_faults(capsys):
    assert main(["list-faults"]) == 0
    out = capsys.readouterr().out
    assert "crash" in out
    assert "odl-flow-mod-drop" in out
    for name in FAULTS:
        assert name in out


def test_validate_command(capsys):
    code = main(["validate", "--nodes", "3", "-k", "2", "--switches", "4",
                 "--rate", "500", "--duration", "400", "--seed", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "triggers validated" in out
    assert "false-positive rate" in out


def test_faults_command_detects(capsys):
    code = main(["faults", "crash", "--nodes", "5", "-k", "4",
                 "--switches", "6", "--seed", "4"])
    out = capsys.readouterr().out
    assert code == 0
    assert "YES" in out
    assert "primary_omission" in out


def test_faults_command_unknown_name(capsys):
    code = main(["faults", "no-such-fault"])
    assert code == 2
    assert "unknown fault" in capsys.readouterr().err


def test_throughput_command(capsys):
    code = main(["throughput", "--cluster-sizes", "1", "2",
                 "--switches", "6", "--rate", "800", "--duration", "400",
                 "--seed", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "n=1" in out and "n=2" in out


def test_detection_command_renders_cdf(capsys):
    code = main(["detection", "--nodes", "3", "-k", "2", "--switches", "4",
                 "--rate", "600", "--duration", "500", "--seed", "6"])
    out = capsys.readouterr().out
    assert code == 0
    assert "p95=" in out
    assert "k=2" in out  # CDF legend


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
