"""Tests for the command-line interface."""

import pytest

from repro.cli import FAULTS, build_parser, main


def test_list_faults(capsys):
    assert main(["list-faults"]) == 0
    out = capsys.readouterr().out
    assert "crash" in out
    assert "odl-flow-mod-drop" in out
    for name in FAULTS:
        assert name in out


def test_validate_command(capsys):
    code = main(["validate", "--nodes", "3", "-k", "2", "--switches", "4",
                 "--rate", "500", "--duration", "400", "--seed", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "triggers validated" in out
    assert "false-positive rate" in out


def test_faults_command_detects(capsys):
    code = main(["faults", "crash", "--nodes", "5", "-k", "4",
                 "--switches", "6", "--seed", "4"])
    out = capsys.readouterr().out
    assert code == 0
    assert "YES" in out
    assert "primary_omission" in out


def test_faults_command_unknown_name(capsys):
    code = main(["faults", "no-such-fault"])
    assert code == 2
    assert "unknown fault" in capsys.readouterr().err


def test_throughput_command(capsys):
    code = main(["throughput", "--cluster-sizes", "1", "2",
                 "--switches", "6", "--rate", "800", "--duration", "400",
                 "--seed", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "n=1" in out and "n=2" in out


def test_detection_command_renders_cdf(capsys):
    code = main(["detection", "--nodes", "3", "-k", "2", "--switches", "4",
                 "--rate", "600", "--duration", "500", "--seed", "6"])
    out = capsys.readouterr().out
    assert code == 0
    assert "p95=" in out
    assert "k=2" in out  # CDF legend


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


# ----------------------------------------------------------------------
# Observability commands: trace / metrics / diagnose / health
# ----------------------------------------------------------------------

_SMALL = ["--nodes", "3", "-k", "2", "--switches", "4",
          "--rate", "500", "--duration", "300", "--seed", "3"]


def test_trace_unknown_trigger_exits_nonzero(capsys):
    code = main(["trace", "ext:999999"] + _SMALL)
    assert code == 2
    assert "no traced trigger" in capsys.readouterr().err


def test_metrics_prom_format_lints_clean(capsys):
    from repro.obs.export import lint_prometheus_text
    code = main(["metrics", "--format", "prom"] + _SMALL)
    out = capsys.readouterr().out
    assert code == 0
    assert "# TYPE validator_responses_total counter" in out
    assert ("# HELP validator_responses_total "
            "Responses ingested by the validator.") in out
    # Every declared family carries a HELP line right before its TYPE.
    lines = out.strip("\n").splitlines()
    for index, line in enumerate(lines):
        if line.startswith("# TYPE "):
            family = line.split()[2]
            assert lines[index - 1].startswith(f"# HELP {family} ")
    assert lint_prometheus_text(out.strip("\n") + "\n") == []


def test_diagnose_live_fault_names_class(capsys):
    import json
    code = main(["diagnose", "--fault", "link-failure", "--nodes", "5",
                 "-k", "4", "--switches", "6", "--seed", "4",
                 "--format", "json"])
    out = capsys.readouterr().out
    assert code == 0
    payload = json.loads(out)
    assert payload["alarm_count"] > 0
    classes = {alarm["fault_class"] for alarm in payload["alarms"]}
    assert classes == {"T1"}


def test_diagnose_unknown_alarm_exits_nonzero(capsys):
    code = main(["diagnose", "ZZZZ", "--fault", "link-failure",
                 "--nodes", "5", "-k", "4", "--switches", "6",
                 "--seed", "4"])
    assert code == 2
    assert "no alarm matches" in capsys.readouterr().err


def test_diagnose_unknown_fault_exits_nonzero(capsys):
    code = main(["diagnose", "--fault", "no-such-fault"])
    assert code == 2
    assert "unknown fault" in capsys.readouterr().err


def test_diagnose_offline_round_trip(tmp_path, capsys):
    import json
    log = tmp_path / "alarms.jsonl"
    code = main(["diagnose", "--fault", "link-failure", "--nodes", "5",
                 "-k", "4", "--switches", "6", "--seed", "4",
                 "--record-alarm-log", str(log), "--format", "json"])
    live = json.loads(capsys.readouterr().out)
    assert code == 0 and log.exists()
    code = main(["diagnose", "--alarm-log", str(log), "--format", "json"])
    offline = json.loads(capsys.readouterr().out)
    assert code == 0
    assert offline["alarm_count"] == live["alarm_count"]
    assert [a["fault_class"] for a in offline["alarms"]] \
        == [a["fault_class"] for a in live["alarms"]]


def test_diagnose_missing_alarm_log_exits_nonzero(tmp_path, capsys):
    code = main(["diagnose", "--alarm-log", str(tmp_path / "missing.jsonl")])
    assert code == 2
    assert "diagnose" in capsys.readouterr().err


def test_diagnose_flight_output_then_attach(tmp_path, capsys):
    import json
    flight = tmp_path / "FLIGHT.json"
    fault_args = ["diagnose", "--fault", "link-failure", "--nodes", "5",
                  "-k", "4", "--switches", "6", "--seed", "4"]
    code = main(fault_args + ["--flight-output", str(flight)])
    capsys.readouterr()
    assert code == 0 and flight.exists()
    payload = json.loads(flight.read_text())
    assert payload["format"] == "jury-flight"
    assert payload["events_recorded"] > 0
    assert any(dump["reason"] == "alarm" for dump in payload["dumps"]), \
        "the fault's alarms must have triggered a dump"
    # Attach the dump to a fresh diagnosis, human and JSON.
    code = main(fault_args + ["--flight", str(flight), "--format", "json"])
    attached = json.loads(capsys.readouterr().out)
    assert code == 0
    assert attached["flight"]["events_recorded"] \
        == payload["events_recorded"]
    code = main(fault_args + ["--flight", str(flight)])
    assert code == 0
    assert "flight recorder:" in capsys.readouterr().out


def test_bench_obs_baseline_gate(tmp_path):
    import argparse
    import json

    from repro.cli import _bench_obs_baseline_errors

    baseline = tmp_path / "BENCH_observability.json"
    baseline.write_text(json.dumps({"full_overhead_pct": 300.0}))
    args = argparse.Namespace(baseline=str(baseline),
                              max_full_regression_pct=10.0)
    ok_payload = {"full_overhead_pct": 320.0}
    assert _bench_obs_baseline_errors(args, ok_payload) == []
    assert ok_payload["baseline_full_overhead_pct"] == 300.0
    bad_payload = {"full_overhead_pct": 345.0}
    errors = _bench_obs_baseline_errors(args, bad_payload)
    assert len(errors) == 1 and "regressed more than 10%" in errors[0]
    # Unreadable / shapeless baselines fail loudly, not silently.
    args.baseline = str(tmp_path / "missing.json")
    assert _bench_obs_baseline_errors(args, {"full_overhead_pct": 1.0})
    empty = tmp_path / "empty.json"
    empty.write_text("{}")
    args.baseline = str(empty)
    assert any("no full_overhead_pct" in error for error in
               _bench_obs_baseline_errors(args, {"full_overhead_pct": 1.0}))


def test_diagnose_flight_flag_misuse_is_usage_error(tmp_path, capsys):
    code = main(["diagnose", "--flight", str(tmp_path / "missing.json")])
    assert code == 2
    capsys.readouterr()
    log = tmp_path / "alarms.jsonl"
    log.write_text("")
    code = main(["diagnose", "--alarm-log", str(log),
                 "--flight-output", str(tmp_path / "f.json")])
    assert code == 2
    assert "cannot be combined" in capsys.readouterr().err


def test_health_human_and_json(capsys):
    import json
    code = main(["health"] + _SMALL)
    out = capsys.readouterr().out
    assert code == 0
    assert "replica health" in out
    assert "slo" in out.lower()
    code = main(["health", "--format", "json"] + _SMALL)
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["replicas"]
    assert {report["controller_id"] for report in
            payload["replicas"].values()} == set(payload["replicas"])


def test_health_prom_format_lints_clean(capsys):
    from repro.obs.export import lint_prometheus_text
    code = main(["health", "--format", "prom"] + _SMALL)
    out = capsys.readouterr().out
    assert code == 0
    assert "jury_replica_health_score" in out
    assert "jury_slo_ok" in out
    assert lint_prometheus_text(out.strip("\n") + "\n") == []


def test_health_jsonl_output(tmp_path, capsys):
    import json
    path = tmp_path / "health.jsonl"
    code = main(["health", "--output", str(path)] + _SMALL)
    capsys.readouterr()
    assert code == 0
    record = json.loads(path.read_text(encoding="utf-8").splitlines()[0])
    assert record["kind"] == "health"
    assert record["replicas"]
