"""Execution backends (repro.core.backends): resolution, frame transport,
worker-death recovery, and the backend-matrix differential contract.

The headline property — byte-identical alarm streams across ``serial``,
``threads`` and ``processes`` — is asserted twice: on curated recorded
workloads in ``test_pipeline_differential.py`` and here on fuzz-generated
scenarios from the shared corpus fixture. This file also pins the process
backend's failure discipline: one worker death is absorbed by
respawn+replay (``backend_worker_restarts_total``); a second death during
recovery degrades the shard to in-parent inline execution
(``backend_degraded_total`` + an ``engine:degrade`` span) — and in both
cases the alarm stream does not move a byte.

Deliberately NOT asserted: ``timer_wakeups`` equality across backends —
frame batching can coalesce a stale θτ wakeup the serial path would have
taken, without observable effect on decisions or alarms.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.alarms import canonical_alarm_stream
from repro.core.backends import (
    BACKEND_NAMES,
    BatchFrame,
    ExecutionBackend,
    ProcessesBackend,
    SerialBackend,
    ThreadsBackend,
    VerdictFrame,
    resolve_backend,
)
from repro.core.backends.frames import EV_LATE
from repro.core.pipeline import ValidationPipeline
from repro.core.responses import Response, ResponseKind
from repro.core.timeouts import StaticTimeout
from repro.core.validator import Validator
from repro.faults.injector import default_policy_engine
from repro.fuzz import DifferentialOracle
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import ENGINE_DEGRADE, Tracer
from repro.workloads.recorder import replay_validation_stream


# ----------------------------------------------------------------------
# Resolution: one construction point for every consumer
# ----------------------------------------------------------------------

def test_resolve_backend_names_and_instances():
    assert set(BACKEND_NAMES) == {"serial", "threads", "processes"}
    assert isinstance(resolve_backend(None), SerialBackend)
    assert isinstance(resolve_backend("serial"), SerialBackend)
    assert isinstance(resolve_backend("threads"), ThreadsBackend)
    assert isinstance(resolve_backend("processes"), ProcessesBackend)
    preconfigured = ProcessesBackend(worker_timeout_s=1.0)
    assert resolve_backend(preconfigured) is preconfigured
    with pytest.raises(ValueError, match="unknown execution backend"):
        resolve_backend("gpu")
    with pytest.raises(ValueError, match="unknown execution backend"):
        resolve_backend(42)


def test_serial_is_inline_frame_backends_are_not():
    assert SerialBackend.inline
    assert not ThreadsBackend.inline
    assert not ProcessesBackend.inline
    assert issubclass(ThreadsBackend, ExecutionBackend)
    assert issubclass(ProcessesBackend, ExecutionBackend)


def test_frame_backends_reject_adaptive_timeouts():
    from repro.core.timeouts import AdaptiveTimeout
    from repro.sim.simulator import Simulator

    with pytest.raises(ValueError, match="StaticTimeout"):
        ValidationPipeline(Simulator(seed=1), 2, shards=2,
                           timeout=AdaptiveTimeout(initial_ms=100.0),
                           backend="threads")


# ----------------------------------------------------------------------
# Frame pickling: what the process backend actually ships
# ----------------------------------------------------------------------

def _sample_response():
    return Response(
        controller_id="c1", trigger_id=("pkt", 7), kind=ResponseKind.NETWORK_WRITE,
        entry=("flow_mod", 3, ("out", 2)), tainted=True,
        state_digest=(11, 22, 33), sent_at=120.5, trigger_received_at=119.0,
        origin="c2", primary_hint="c1", declared_non_deterministic=True)


def test_batch_frame_pickle_round_trip():
    response = _sample_response()
    frame = BatchFrame(shard=1, seq=9, now=123.25,
                       items=((120.5, response),), drained=True,
                       wakeup=False, want_snapshot=True)
    clone = pickle.loads(pickle.dumps(frame))
    assert clone == frame
    # Response's compact positional __reduce__ preserves every field.
    restored = clone.items[0][1]
    assert restored == response
    assert restored.state_digest == (11, 22, 33)
    assert restored.declared_non_deterministic


def test_verdict_frame_pickle_round_trip():
    verdict = VerdictFrame(
        shard=1, seq=9,
        events=((EV_LATE, ("pkt", 7), "c3"),),
        stats_delta={"processed": 4, "decided": 2},
        next_deadline=370.5, open_records=3, snapshot=b"core-state")
    clone = pickle.loads(pickle.dumps(verdict))
    assert clone == verdict


# ----------------------------------------------------------------------
# Backend matrix over the fuzz corpus
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def recorded_runs(small_fuzz_corpus):
    """One faulted + one clean generated scenario, recorded live once."""
    oracle = DifferentialOracle()
    faulted = next(s for s in small_fuzz_corpus if s.faults)
    clean = next(s for s in small_fuzz_corpus if not s.faults)
    return [oracle.record(spec) for spec in (faulted, clean)]


def _sequential(live):
    lookup = live.mastership.get

    def factory(sim):
        return Validator(
            sim, live.spec.k, timeout=StaticTimeout(live.spec.timeout_ms),
            policy_engine=default_policy_engine(), mastership_lookup=lookup)

    return replay_validation_stream(live.records, factory)


def _pipeline(live, shards, backend="serial", metrics=None, tracer=None,
              arm=None):
    """Replay ``live`` through a pipeline; ``arm(backend)`` runs post-spawn."""
    lookup = live.mastership.get

    def factory(sim):
        engine = ValidationPipeline(
            sim, live.spec.k, shards=shards,
            timeout=StaticTimeout(live.spec.timeout_ms),
            policy_engine=default_policy_engine(), mastership_lookup=lookup,
            metrics=metrics, tracer=tracer, backend=backend)
        if arm is not None:
            arm(engine.backend)
        return engine

    engine = replay_validation_stream(live.records, factory)
    engine.close()
    return engine


def test_backend_matrix_on_fuzz_corpus(recorded_runs):
    for live in recorded_runs:
        sequential = _sequential(live)
        expected = canonical_alarm_stream(sequential.alarms)
        assert expected == live.alarm_stream, \
            f"replay lost the live stream on seed {live.spec.seed}"
        for backend in BACKEND_NAMES:
            for shards in (1, 2, 4, 8):
                engine = _pipeline(live, shards, backend=backend)
                label = f"seed {live.spec.seed} {backend} N={shards}"
                assert canonical_alarm_stream(engine.alarms) == expected, \
                    f"{label}: alarm stream diverged"
                assert engine.triggers_decided == \
                    sequential.triggers_decided, label
                assert engine.responses_received == \
                    sequential.responses_received, label
                assert engine.late_responses == \
                    sequential.late_responses, label


# ----------------------------------------------------------------------
# Worker death: retry once, then degrade — stream never moves
# ----------------------------------------------------------------------

def test_worker_crash_respawns_and_stream_is_identical(recorded_runs):
    live = recorded_runs[0]
    expected = canonical_alarm_stream(_sequential(live).alarms)
    metrics = MetricsRegistry()
    backend = ProcessesBackend(worker_timeout_s=30.0)
    engine = _pipeline(live, 2, backend=backend, metrics=metrics,
                       arm=lambda b: b.inject_crashes(0, 1))
    assert canonical_alarm_stream(engine.alarms) == expected, \
        "alarm stream moved across a worker restart"
    assert metrics.value("backend_worker_deaths_total",
                         backend="processes") == 1
    assert metrics.value("backend_worker_restarts_total",
                         backend="processes") == 1
    assert metrics.value("backend_degraded_total", backend="processes") == 0
    assert backend.degraded_shards == []


def test_double_crash_degrades_shard_and_stream_is_identical(recorded_runs):
    live = recorded_runs[0]
    sequential = _sequential(live)
    expected = canonical_alarm_stream(sequential.alarms)
    seq_tracer = Tracer()
    metrics = MetricsRegistry()
    tracer = Tracer()
    backend = ProcessesBackend(worker_timeout_s=30.0)
    engine = _pipeline(live, 2, backend=backend, metrics=metrics,
                       tracer=tracer, arm=lambda b: b.inject_crashes(0, 2))
    assert canonical_alarm_stream(engine.alarms) == expected, \
        "alarm stream moved across a shard degrade"
    assert engine.triggers_decided == sequential.triggers_decided
    assert backend.degraded_shards == [0]
    assert metrics.value("backend_degraded_total", backend="processes") == 1
    assert metrics.value("backend_worker_restarts_total",
                         backend="processes") == 0
    degrade_spans = [s for s in tracer.spans if s.stage == ENGINE_DEGRADE]
    assert len(degrade_spans) == 1
    assert degrade_spans[0].trigger_id == ("engine", 0)
    # Canonical traces exclude engine plumbing: still byte-identical.
    lookup = live.mastership.get
    replay_validation_stream(live.records, lambda sim: Validator(
        sim, live.spec.k, timeout=StaticTimeout(live.spec.timeout_ms),
        policy_engine=default_policy_engine(), mastership_lookup=lookup,
        tracer=seq_tracer))
    assert tracer.canonical() == seq_tracer.canonical()


def test_close_is_idempotent_and_results_stay_readable(recorded_runs):
    live = recorded_runs[1]
    engine = _pipeline(live, 2, backend="processes")  # closed by helper
    engine.close()  # second close is a no-op
    assert engine.triggers_decided > 0
    assert isinstance(canonical_alarm_stream(engine.alarms), bytes)


# ----------------------------------------------------------------------
# close() discipline: idempotent, attach-free safe, dead-worker safe
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backend_cls",
                         [SerialBackend, ThreadsBackend, ProcessesBackend])
def test_close_before_attach_is_a_no_op(backend_cls):
    # A backend constructed but never attached to a pipeline (e.g. a
    # config error between resolve_backend and spawn) has no workers to
    # reap; close() — twice — must not raise.
    backend = backend_cls()
    backend.close()
    backend.close()


def test_close_after_worker_death_does_not_raise(recorded_runs):
    """Double-close with the worker processes already gone: the pipes are
    dead, but close() must swallow that, not raise on send."""
    live = recorded_runs[1]
    backend = ProcessesBackend(worker_timeout_s=30.0)
    engine = _pipeline(live, 2, backend=backend)  # helper closed it once
    for worker in backend._workers:
        if worker.proc is not None:
            worker.proc.kill()
            worker.proc.join()
    backend._closed = False  # re-run the full shutdown path on corpses
    backend.close()
    backend.close()
    assert isinstance(canonical_alarm_stream(engine.alarms), bytes)


@pytest.mark.parametrize("backend_name", ["threads", "processes"])
def test_closed_backend_refuses_checkpoint_and_restore(recorded_runs,
                                                       backend_name):
    from repro.errors import CheckpointError

    live = recorded_runs[1]
    engine = _pipeline(live, 2, backend=backend_name)  # closed by helper
    with pytest.raises(CheckpointError, match="closed"):
        engine.checkpoint()
    checkpoint_src = _pipeline(live, 2, backend="serial")
    checkpoint = checkpoint_src.checkpoint()
    from repro.sim.simulator import Simulator
    fresh = ValidationPipeline(
        Simulator(seed=0), live.spec.k, shards=2,
        timeout=StaticTimeout(live.spec.timeout_ms), backend=backend_name)
    fresh.close()
    with pytest.raises(CheckpointError, match="closed"):
        fresh.restore(checkpoint)


# ----------------------------------------------------------------------
# Checkpoint interplay: a killed worker rehydrates from the restored
# snapshot, not from frame 0
# ----------------------------------------------------------------------

def test_worker_crash_after_restore_rehydrates_from_snapshot(recorded_runs):
    """Restore pushes the checkpointed core to each worker *and* resets
    the piggyback basis, so a post-restore worker death replays only the
    frames since the restore — and the stream still matches."""
    live = recorded_runs[0]
    expected = canonical_alarm_stream(_sequential(live).alarms)

    cut = len(live.records) // 2
    from repro.sim.simulator import Simulator

    def make(sim, backend="serial", metrics=None):
        return ValidationPipeline(
            sim, live.spec.k, shards=2,
            timeout=StaticTimeout(live.spec.timeout_ms),
            policy_engine=default_policy_engine(),
            mastership_lookup=live.mastership.get,
            metrics=metrics, backend=backend)

    sim = Simulator(seed=0)
    engine = make(sim)
    for record in live.records[:cut]:
        sim.schedule_at(record.time_ms, engine.ingest, record.response)
    sim.run(until=live.records[cut - 1].time_ms)
    checkpoint = engine.checkpoint()

    metrics = MetricsRegistry()
    backend = ProcessesBackend(worker_timeout_s=30.0)
    sim2 = Simulator(seed=0)
    twin = make(sim2, backend=backend, metrics=metrics)
    twin.restore(checkpoint)
    backend.inject_crashes(0, 1)  # die on the first post-restore frame
    last = checkpoint.meta["sim_now"]
    for record in live.records[cut:]:
        sim2.schedule_at(record.time_ms, twin.ingest, record.response)
        last = max(last, record.time_ms)
    sim2.run(until=last + 4 * live.spec.timeout_ms)
    twin.drain()
    twin.close()
    assert canonical_alarm_stream(twin.alarms) == expected, \
        "stream moved across restore + worker death"
    assert metrics.value("backend_worker_restarts_total",
                         backend="processes") == 1
    assert metrics.value("backend_degraded_total", backend="processes") == 0
