"""T1/T2/T3 classification: injected faults vs. diagnosed fault class.

Drives one fault from each family of the catalog through a live deployment
with forensics enabled and asserts the attached
:class:`~repro.obs.diagnose.AlarmExplanation` infers the taxonomy class the
scenario injects. Two catalog entries are detected by a *different*
mechanism than the family they model (documented below); for those the
assertion pins the mechanism-implied class so a silent change in detection
path fails loudly.
"""

import pytest

from repro import Jury, JuryConfig
from repro.faults import (
    FaultyProactiveFault,
    FlowInstantiationFailureFault,
    LinkFailureFault,
    PendingAddFault,
    StoreDesyncFault,
    UndesirableFlowModFault,
)
from repro.faults.base import run_scenario


def _run(scenario, kind="onos"):
    experiment = Jury.experiment(JuryConfig(
        kind=kind, n=5, k=4, switches=8, seed=7, timeout_ms=250.0,
        policies=("default",), with_northbound=True, diagnose=True))
    experiment.warmup()
    result = run_scenario(experiment, scenario)
    assert result.detected, f"{scenario.name} must be detected"
    alarm = result.matching_alarms[0]
    explanation = experiment.jury.forensics.explanation_for(alarm)
    assert explanation is not None, \
        "forensics must record an explanation for every alarm"
    return alarm, explanation, experiment


@pytest.mark.parametrize("make,kind", [
    (lambda: LinkFailureFault(1, 2), "onos"),          # T1: wrong response
    (lambda: StoreDesyncFault("c2"), "onos"),          # T1: desynced replica
    (lambda: UndesirableFlowModFault("c2"), "onos"),   # T2: cache/net split
    (lambda: FaultyProactiveFault("c3"), "onos"),      # T3: agreed-but-wrong
])
def test_explanation_matches_injected_class(make, kind):
    scenario = make()
    alarm, explanation, _ = _run(scenario, kind=kind)
    assert explanation.fault_class == scenario.fault_class.value, \
        (f"{scenario.name}: injected {scenario.fault_class.value}, "
         f"diagnosed {explanation.fault_class} "
         f"(via {alarm.reason.value})")


@pytest.mark.parametrize("make,kind,detected_as", [
    # Declares T2 (stranded pending_add state) but is *caught* by the
    # stranded-pending-add policy rule, so the mechanism-implied class is T3.
    (lambda: PendingAddFault(4), "onos", "T3"),
    # Declares T2 but the dropped installation surfaces as a consensus
    # deviation from the replica majority first: mechanism-implied T1.
    (lambda: FlowInstantiationFailureFault("c1"), "odl", "T1"),
])
def test_mechanism_mismatch_faults_pin_detected_class(make, kind, detected_as):
    scenario = make()
    alarm, explanation, _ = _run(scenario, kind=kind)
    assert explanation.fault_class == detected_as, \
        (f"{scenario.name}: detection mechanism {alarm.reason.value} "
         f"implies {detected_as}, diagnosed {explanation.fault_class}")


def test_explanation_names_the_faulty_replica():
    _, explanation, _ = _run(UndesirableFlowModFault("c2"))
    assert explanation.offending_controller == "c2"
    assert "c2" in explanation.dissenting_replicas


def test_diagnose_payload_covers_every_alarm():
    scenario = LinkFailureFault(1, 2)
    alarm, _, experiment = _run(scenario)
    payload = experiment.jury.diagnose_payload()
    assert payload["alarm_count"] == len(experiment.jury.alarms)
    ids = [entry["id"] for entry in payload["alarms"]]
    assert ids == sorted(ids) and len(set(ids)) == len(ids)
    assert any(entry["trigger_id"] == repr(alarm.trigger_id)
               for entry in payload["alarms"])
