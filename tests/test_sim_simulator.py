"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.simulator import Simulator


def test_schedule_and_run_in_order():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(9.0, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 9.0


def test_equal_timestamps_fire_fifo():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.schedule(3.0, fired.append, label)
    sim.run()
    assert fired == list("abcde")


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(10.0, fired.append, 2)
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0  # clock advanced to the window edge
    sim.run()
    assert fired == [1, 2]


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_cancel_prevents_execution():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    assert handle.cancelled
    sim.run()
    assert fired == []


def test_cancel_twice_is_noop():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled


def test_schedule_in_past_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_events_can_schedule_more_events():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 1)
    sim.run()
    assert fired == [1, 2, 3, 4, 5]
    assert sim.now == 4.0


def test_step_fires_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert not sim.step()


def test_max_events_bound():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_pending_counts_uncancelled():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    handle = sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert sim.pending == 1


def test_same_seed_same_trace():
    def trace(seed):
        sim = Simulator(seed=seed)
        values = []
        for i in range(20):
            sim.schedule(sim.rng.uniform(0, 100), values.append, i)
        sim.run()
        return values

    assert trace(7) == trace(7)
    assert trace(7) != trace(8)


def test_fork_rng_streams_are_independent_and_stable():
    sim_a = Simulator(seed=3)
    sim_b = Simulator(seed=3)
    assert sim_a.fork_rng("x").random() == sim_b.fork_rng("x").random()
    assert sim_a.fork_rng("x").random() != sim_a.fork_rng("y").random()


def test_not_reentrant():
    sim = Simulator()

    def nested():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, nested)
    sim.run()


def test_events_fired_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_fired == 4
