"""Tests for the Mininet-like builder and ASCII figure rendering."""

import pytest

from repro.errors import TopologyError
from repro.harness.figures import ascii_cdf, ascii_series
from repro.net.mininet import MininetBuilder, single_topology, tree_topology
from repro.sim.simulator import Simulator


def test_builder_constructs_custom_topology():
    sim = Simulator(seed=1)
    net = MininetBuilder(sim)
    s1, s2 = net.switch(), net.switch()
    h1, h2 = net.host(), net.host()
    net.link(s1, s2)
    net.link(h1, s1)
    net.link(h2, s2)
    topo = net.build()
    assert len(topo.switches) == 2
    assert len(topo.hosts) == 2
    assert topo.switch_graph().has_edge(s1.dpid, s2.dpid)


def test_builder_auto_names_hosts():
    net = MininetBuilder(Simulator())
    s = net.switch()
    h1, h2 = net.host(), net.host()
    assert h1.name == "h1"
    assert h2.name == "h2"
    net.link(h1, s)
    net.link(h2, s)
    net.build()


def test_builder_rejects_unattached_host():
    net = MininetBuilder(Simulator())
    net.host()
    with pytest.raises(TopologyError):
        net.build()


def test_builder_closed_after_build():
    net = MininetBuilder(Simulator())
    net.switch()
    net.build()
    with pytest.raises(TopologyError):
        net.switch()


def test_single_topology():
    topo = single_topology(Simulator(), hosts=4)
    assert len(topo.switches) == 1
    assert len(topo.hosts) == 4


def test_tree_topology():
    topo = tree_topology(Simulator(), depth=2, fanout=2)
    # depth-2 binary tree: 1 + 2 switches, 4 leaf hosts.
    assert len(topo.switches) == 3
    assert len(topo.hosts) == 4
    import networkx as nx

    assert nx.is_tree(topo.switch_graph())


def test_tree_topology_validates_params():
    with pytest.raises(TopologyError):
        tree_topology(Simulator(), depth=0)


def test_tree_topology_forwarding_end_to_end():
    from repro.controllers.onos import build_onos_cluster

    sim = Simulator(seed=9)
    topo = tree_topology(sim, depth=2, fanout=2)
    cluster, _ = build_onos_cluster(sim, n=2)
    cluster.connect_topology(topo)
    cluster.start()
    sim.run(until=2500.0)
    hosts = topo.host_list()
    hosts[0].send_arp_request(hosts[-1].ip)
    sim.run(until=sim.now + 500.0)
    flow_id = hosts[0].open_connection(hosts[-1])
    sim.run(until=sim.now + 1000.0)
    assert hosts[-1].received_by_flow.get(flow_id) == 1


# ----------------------------------------------------------------------
# Figures
# ----------------------------------------------------------------------

def test_ascii_cdf_renders_series():
    text = ascii_cdf({"a": [1, 2, 3, 4, 5], "b": [10, 20, 30]})
    assert "1.0 |" in text
    assert "o=a" in text
    assert "x=b" in text
    assert "30" in text  # x-axis max


def test_ascii_cdf_empty():
    assert ascii_cdf({}) == "(no samples)"
    assert ascii_cdf({"a": []}) == "(no samples)"


def test_ascii_series_renders():
    text = ascii_series([(0, 0), (50, 100), (100, 50)],
                        x_label="rate", y_label="fmods")
    assert "o" in text
    assert "rate" in text
    assert "fmods" in text


def test_ascii_series_empty():
    assert ascii_series([]) == "(no points)"
