"""Failure-injection robustness: the system under churn, crashes, loss.

These tests exercise ungraceful conditions — mid-traffic link failures,
controller crash + failover, channel loss, store-node removal — and assert
the system degrades cleanly (no exceptions, no stuck state, bounded FPs).
"""


from repro.api import Jury
from repro.config import JuryConfig
from repro.workloads.traffic import TrafficDriver


def warm(k=None, n=5, switches=8, seed=101, timeout_ms=250.0):
    experiment = Jury.experiment(JuryConfig(kind="onos", n=n, k=k, switches=switches,
                                  seed=seed, timeout_ms=timeout_ms))
    experiment.warmup()
    return experiment


def test_link_failure_mid_traffic_recovers():
    experiment = warm()
    topo = experiment.topology
    driver = TrafficDriver(experiment.sim, topo, packet_in_rate_per_s=800.0,
                           duration_ms=1500.0)
    driver.start()
    experiment.run(300.0)
    topo.fail_link(4, 5)
    experiment.run(8000.0)  # liveness notices; graphs reroute... (chain: split)
    # The chain is partitioned: traffic within each side still works.
    h1, h2 = topo.hosts["h1"], topo.hosts["h3"]
    flow_id = h1.open_connection(h2)
    experiment.run(800.0)
    assert h2.received_by_flow.get(flow_id) == 1
    topo.restore_link(4, 5)
    experiment.run(3000.0)
    h8 = topo.hosts["h8"]
    flow_id = h1.open_connection(h8)
    experiment.run(1500.0)
    assert h8.received_by_flow.get(flow_id) == 1


def test_controller_crash_with_failover_restores_forwarding():
    experiment = warm()
    cluster = experiment.cluster
    topo = experiment.topology
    cluster.crash("c1")  # detected crash: mastership fails over
    for dpid, master in cluster.mastership.items():
        assert master != "c1"
    experiment.run(500.0)
    h2, h7 = topo.hosts["h2"], topo.hosts["h7"]
    flow_id = h2.open_connection(h7)
    experiment.run(1500.0)
    assert h7.received_by_flow.get(flow_id) == 1


def test_jury_survives_secondary_crash():
    """A dead secondary stops responding; validation continues via timer."""
    experiment = warm(k=3)
    experiment.cluster.controller("c4").alive = False
    hosts = experiment.topology.host_list()
    hosts[0].open_connection(hosts[5])
    experiment.run(1500.0)
    validator = experiment.validator
    assert validator.triggers_decided > 0
    # No consensus alarms from the missing secondary alone.
    from repro.core.alarms import AlarmReason

    assert all(a.reason != AlarmReason.CONSENSUS_MISMATCH
               for a in validator.alarms)


def test_control_channel_loss_is_survivable():
    experiment = warm()
    proxy = experiment.cluster.proxy_of(3)
    proxy.controller_channels["c3"].fail()  # s3 loses its master channel
    hosts = experiment.topology.host_list()
    hosts[0].open_connection(hosts[7])
    experiment.run(1500.0)  # no exception; other switches keep working
    assert experiment.cluster.controller("c1").alive


def test_store_node_removal_mid_run():
    experiment = warm()
    experiment.store.remove_node("c5")
    hosts = experiment.topology.host_list()
    flow_id = hosts[0].open_connection(hosts[3])
    experiment.run(1500.0)
    assert hosts[3].received_by_flow.get(flow_id) == 1


def test_validator_pending_drains_after_quiet_period():
    experiment = warm(k=3)
    hosts = experiment.topology.host_list()
    for i in range(4):
        hosts[i].open_connection(hosts[(i + 2) % 8])
    experiment.run(2500.0)  # all timers expired by now
    assert experiment.validator.pending_count == 0


def test_rapid_churn_does_not_wedge_discovery():
    experiment = warm()
    topo = experiment.topology
    for _ in range(5):
        topo.fail_link(2, 3)
        experiment.run(50.0)
        topo.restore_link(2, 3)
        experiment.run(50.0)
    experiment.run(5000.0)
    graph = experiment.cluster.controller("c1").app("topology").topology_graph()
    assert graph.has_edge(2, 3)


def test_jury_follows_mastership_failover():
    """After a detected crash + failover, triggers validate cleanly with
    the new primary (proxies and replicators repointed)."""
    experiment = warm(k=3, n=5, seed=105)
    cluster = experiment.cluster
    cluster.crash("c1")
    experiment.run(300.0)
    decided_before = experiment.validator.triggers_decided
    alarmed_before = experiment.validator.triggers_alarmed
    hosts = experiment.topology.host_list()
    hosts[1].open_connection(hosts[6])
    experiment.run(1500.0)
    assert experiment.validator.triggers_decided > decided_before
    assert experiment.validator.triggers_alarmed == alarmed_before
