"""Unit tests for consensus evaluation and the sanity check."""

from repro.core.alarms import AlarmReason
from repro.core.consensus import evaluate_consensus, sanity_check
from repro.core.responses import Response, ResponseKind


def replica(cid, entry, digest=(1,), primary="c1"):
    return Response(controller_id=cid, trigger_id=("ext", 1),
                    kind=ResponseKind.REPLICA_RESULT, entry=entry,
                    tainted=True, state_digest=digest, primary_hint=primary)


def cache_relay(cid, entry, origin="c1", digest=(1,)):
    return Response(controller_id=cid, trigger_id=("ext", 1),
                    kind=ResponseKind.CACHE_UPDATE, entry=entry,
                    state_digest=digest, origin=origin)


def network(cid, entry, digest=(1,)):
    return Response(controller_id=cid, trigger_id=("ext", 1),
                    kind=ResponseKind.NETWORK_WRITE, entry=entry,
                    state_digest=digest)


CACHE = (("cache", "FlowsDB", ("flow", 1), "create", (("state", "pending_add"),)),)
NET = (("flow_mod", 1, "add", (), (), 100),)
COMBINED = (CACHE, NET)


def test_agreement_passes():
    responses = [
        network("c1", NET),
        cache_relay("c1", CACHE),
        cache_relay("c2", CACHE),
        replica("c2", COMBINED),
        replica("c3", COMBINED),
    ]
    outcome = evaluate_consensus(responses, k=2, external=True)
    assert outcome.ok
    assert outcome.primary_id == "c1"
    assert outcome.compared_replicas == 2


def test_primary_deviation_flagged():
    bad_combined = (CACHE, (("flow_mod", 1, "add", (), (("drop",),), 100),))
    responses = [
        network("c1", bad_combined[1]),
        cache_relay("c1", CACHE),
        replica("c2", COMBINED),
        replica("c3", COMBINED),
    ]
    outcome = evaluate_consensus(responses, k=2, external=True)
    assert not outcome.ok
    assert outcome.reason == AlarmReason.CONSENSUS_MISMATCH
    assert outcome.offending == "c1"


def test_primary_omission_detected_with_majority_replicas():
    responses = [replica("c2", COMBINED), replica("c3", COMBINED)]
    outcome = evaluate_consensus(responses, k=2, external=True)
    assert not outcome.ok
    assert outcome.reason == AlarmReason.PRIMARY_OMISSION
    assert outcome.offending == "c1"  # from the taint hint


def test_empty_everywhere_is_benign():
    responses = [replica("c2", ((), ())), replica("c3", ((), ()))]
    outcome = evaluate_consensus(responses, k=2, external=True)
    assert outcome.ok


def test_single_lagging_replica_does_not_trigger_omission():
    """One of k=4 replicas externalized; the rest saw nothing to do."""
    responses = [
        replica("c2", COMBINED),
        replica("c3", ((), ())),
        replica("c4", ((), ())),
    ]
    outcome = evaluate_consensus(responses, k=4, external=True)
    assert outcome.ok


def test_state_aware_grouping_averts_false_positive():
    """Replicas in a different state than the primary are not compared."""
    responses = [
        network("c1", NET, digest=(1,)),
        cache_relay("c1", CACHE, digest=(1,)),
        replica("c2", ((), ()), digest=(2,)),  # lagging view, divergent output
        replica("c3", ((), ()), digest=(2,)),
    ]
    outcome = evaluate_consensus(responses, k=2, external=True)
    assert outcome.ok
    assert outcome.compared_replicas == 0


def test_non_determinism_all_distinct_is_ok():
    responses = [
        network("c1", NET),
        cache_relay("c1", CACHE),
        replica("c2", (CACHE, (("packet_out", 1, 1, ()),))),
        replica("c3", (CACHE, (("packet_out", 1, 2, ()),))),
    ]
    outcome = evaluate_consensus(responses, k=2, external=True)
    assert outcome.ok
    assert outcome.non_deterministic


def test_corrupted_cache_relay_blamed():
    corrupt = (("cache", "FlowsDB", ("flow", 1), "create", (("state", "bogus"),)),)
    responses = [
        cache_relay("c1", CACHE, origin="c1"),
        cache_relay("c2", CACHE, origin="c1"),
        cache_relay("c3", corrupt, origin="c1"),
        replica("c2", COMBINED),
        replica("c3", COMBINED),
        network("c1", NET),
    ]
    outcome = evaluate_consensus(responses, k=2, external=True)
    assert not outcome.ok
    assert outcome.reason == AlarmReason.CONSENSUS_MISMATCH
    assert outcome.offending == "c3"


def test_internal_trigger_relay_agreement():
    responses = [
        cache_relay("c1", CACHE, origin="c1"),
        cache_relay("c2", CACHE, origin="c1"),
        cache_relay("c3", CACHE, origin="c1"),
    ]
    outcome = evaluate_consensus(responses, k=2, external=False)
    assert outcome.ok
    assert outcome.primary_id == "c1"
    assert outcome.primary_cache_entry == CACHE


def test_k_zero_degenerates_gracefully():
    responses = [network("c1", NET), cache_relay("c1", CACHE)]
    outcome = evaluate_consensus(responses, k=0, external=True)
    assert outcome.ok


# ----------------------------------------------------------------------
# Sanity check
# ----------------------------------------------------------------------

def flow_cache_entry(dpid=1, state="pending_add", actions=(("output", 2),),
                     op="create", attempts=None):
    fields = [("actions", actions), ("command", "add"),
              ("dpid", dpid), ("match", ()), ("priority", 100),
              ("state", state)]
    if attempts is not None:
        fields.append(("attempts", attempts))
    return (("cache", "FlowsDB", ("flow", dpid, (), 100), op,
             tuple(sorted(fields))),)


def test_sanity_passes_when_flow_mod_present():
    cache = flow_cache_entry()
    net = (("flow_mod", 1, "add", (), (("output", 2),), 100),)
    assert sanity_check(cache, net, "c1").ok


def test_sanity_flags_missing_flow_mod():
    cache = flow_cache_entry()
    outcome = sanity_check(cache, (), "c1")
    assert not outcome.ok
    assert outcome.reason == AlarmReason.SANITY_MISMATCH
    assert outcome.offending == "c1"


def test_sanity_flags_mismatched_actions():
    cache = flow_cache_entry(actions=(("output", 2),))
    net = (("flow_mod", 1, "add", (), (("drop",),), 100),)
    outcome = sanity_check(cache, net, "c1")
    assert not outcome.ok


def test_sanity_flags_unjustified_flow_mod():
    net = (("flow_mod", 1, "add", (), (("output", 2),), 100),)
    outcome = sanity_check((), net, "c1")
    assert not outcome.ok
    assert "no matching cache" in outcome.detail


def test_sanity_ignores_packet_outs():
    net = (("packet_out", 1, 5, (("output", 2),)),)
    assert sanity_check((), net, "c1").ok


def test_sanity_ignores_reconciliation_updates():
    added = flow_cache_entry(state="added", op="update")
    assert sanity_check(added, (), "c1").ok
    stranded = flow_cache_entry(state="pending_add", op="update", attempts=2)
    assert sanity_check(stranded, (), "c1").ok


def test_sanity_delete_requires_delete_flow_mod():
    cache = (("cache", "FlowsDB", ("flow", 1, (), 100), "delete", None),)
    assert not sanity_check(cache, (), "c1").ok
    net = (("flow_mod", 1, "delete", (), (), 100),)
    assert sanity_check(cache, net, "c1").ok


def test_sanity_empty_everything_is_ok():
    assert sanity_check((), (), None).ok
