"""End-to-end integration on the three-tier (physical-testbed) fabric.

The paper's hardware testbed is a 14-switch three-tier design; these tests
exercise discovery, redundant-path forwarding, failover, and JURY validation
on that topology.
"""

import pytest

from repro.api import Jury
from repro.config import JuryConfig
from repro.workloads.traffic import TrafficDriver


@pytest.fixture(scope="module")
def tiered():
    experiment = Jury.experiment(JuryConfig(kind="onos", n=7, k=4, seed=91,
                                  topology="three_tier", timeout_ms=300.0))
    experiment.warmup(discovery_ms=3500.0)
    return experiment


def test_discovery_finds_the_full_fabric(tiered):
    c1 = tiered.cluster.controller("c1")
    graph = c1.app("topology").topology_graph()
    truth = tiered.topology.switch_graph()
    assert ({frozenset(e) for e in graph.edges()}
            == {frozenset(e) for e in truth.edges()})


def test_cross_pod_delivery(tiered):
    hosts = tiered.topology.host_list()
    src, dst = hosts[0], hosts[-1]  # different edge switches
    flow_id = src.open_connection(dst)
    tiered.run(1500.0)
    assert dst.received_by_flow.get(flow_id) == 1


def test_forwarding_survives_aggregate_failure(tiered):
    """Redundant paths: kill one aggregate's links, traffic still flows."""
    topo = tiered.topology
    # Aggregates are dpids 3..6 (cores 1..2, edges 7..14).
    agg = 3
    for link in list(topo.links):
        ends = {getattr(link.node_a, "dpid", None),
                getattr(link.node_b, "dpid", None)}
        if agg in ends:
            link.fail()
    # Let liveness mark the dead links and the views converge.
    tiered.run(9000.0)
    hosts = topo.host_list()
    src, dst = hosts[1], hosts[-2]
    flow_id = src.open_connection(dst)
    tiered.run(2000.0)
    assert dst.received_by_flow.get(flow_id) == 1


def test_validation_remains_clean_under_three_tier_traffic():
    experiment = Jury.experiment(JuryConfig(kind="onos", n=7, k=4, seed=92,
                                  topology="three_tier", timeout_ms=300.0))
    experiment.warmup(discovery_ms=3500.0)
    driver = TrafficDriver(experiment.sim, experiment.topology,
                           packet_in_rate_per_s=1000.0, duration_ms=800.0)
    driver.start()
    experiment.run(1400.0)
    validator = experiment.validator
    assert validator.triggers_decided > 0
    assert validator.false_positive_rate() < 0.01
