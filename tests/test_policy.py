"""Tests for the policy language, engine, parser, and builtin policies."""

import pytest

from repro.errors import PolicyError
from repro.policy.builtin import (
    match_hierarchy_policy,
    no_internal_cache_changes,
    stranded_flow_policy,
)
from repro.policy.engine import PolicyEngine, extract_writes
from repro.policy.language import Policy, PolicyWrite
from repro.policy.parser import parse_policies


def write(cache="EdgesDB", key=("edge", 1, 1, 2, 1), op="update",
          value=None, controller="c1", external=False, destination="local"):
    return PolicyWrite(cache=cache, key=key, op=op, value=value or {},
                       controller=controller, external=external,
                       destination=destination)


# ----------------------------------------------------------------------
# Language
# ----------------------------------------------------------------------

def test_wildcard_policy_matches_everything():
    policy = Policy()
    assert policy.matches(write())
    assert policy.matches(write(cache="FlowsDB", external=True))


def test_controller_directive():
    policy = Policy(controller="c2")
    assert not policy.matches(write(controller="c1"))
    assert policy.matches(write(controller="c2"))


def test_trigger_directive():
    internal_only = Policy(trigger="internal")
    assert internal_only.matches(write(external=False))
    assert not internal_only.matches(write(external=True))


def test_cache_and_operation_directives():
    policy = Policy(cache="FlowsDB", operation="delete")
    assert policy.matches(write(cache="FlowsDB", op="delete"))
    assert not policy.matches(write(cache="FlowsDB", op="create"))
    assert not policy.matches(write(cache="EdgesDB", op="delete"))


def test_destination_directive():
    policy = Policy(destination="remote")
    assert policy.matches(write(destination="remote"))
    assert not policy.matches(write(destination="local"))
    assert not policy.matches(write(destination="network"))


def test_entry_pattern():
    policy = Policy(entry="*edge*")
    assert policy.matches(write(key=("edge", 1, 1, 2, 1)))
    assert not policy.matches(write(key=("flow", 1)))


def test_entry_predicate():
    policy = Policy(entry_predicate=lambda w: w.value.get("alive") is False)
    assert policy.matches(write(value={"alive": False}))
    assert not policy.matches(write(value={"alive": True}))


def test_invalid_directives_rejected():
    with pytest.raises(PolicyError):
        Policy(trigger="sometimes")
    with pytest.raises(PolicyError):
        Policy(destination="everywhere")
    with pytest.raises(PolicyError):
        Policy(operation="upsert")


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------

def test_engine_first_match_semantics():
    engine = PolicyEngine([
        Policy(allow=True, controller="c1", cache="EdgesDB"),   # whitelist c1
        Policy(allow=False, cache="EdgesDB"),                    # deny others
    ])
    assert engine.check_writes([write(controller="c1")]) == []
    violations = engine.check_writes([write(controller="c2")])
    assert len(violations) == 1
    assert violations[0].write.controller == "c2"


def test_engine_non_matching_writes_allowed():
    engine = PolicyEngine([Policy(allow=False, cache="FlowsDB")])
    assert engine.check_writes([write(cache="HostsDB")]) == []


def test_engine_counts_checks():
    engine = PolicyEngine([Policy()])
    engine.check_writes([write(), write()])
    assert engine.checks_performed == 2


def test_extract_writes_parses_canonicals():
    cache_entry = (
        ("cache", "FlowsDB", ("flow", 2, (), 100), "create",
         (("dpid", 2), ("state", "pending_add"))),
    )
    writes = extract_writes(cache_entry, controller="c1", external=True,
                            mastership_lookup=lambda dpid: "c1")
    assert len(writes) == 1
    parsed = writes[0]
    assert parsed.cache == "FlowsDB"
    assert parsed.op == "create"
    assert parsed.value["state"] == "pending_add"
    assert parsed.destination == "local"


def test_extract_writes_remote_destination():
    cache_entry = (("cache", "FlowsDB", ("flow", 2, (), 100), "create", ()),)
    writes = extract_writes(cache_entry, controller="c1", external=False,
                            mastership_lookup=lambda dpid: "c9")
    assert writes[0].destination == "remote"


def test_extract_writes_without_mastership():
    cache_entry = (("cache", "HostsDB", ("host", "aa"), "create", ()),)
    writes = extract_writes(cache_entry, controller="c1", external=True)
    assert writes[0].destination == "network"


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

FIG3 = """
<Policy allow="No">
  <Controller id="*"/>
  <Action type="Internal"/>
  <Cache name="EdgesDB" entry="*,*" operation="*"/>
  <Destination value="*"/>
</Policy>
"""


def test_parse_fig3_policy():
    policies = parse_policies(FIG3)
    assert len(policies) == 1
    policy = policies[0]
    assert not policy.allow
    assert policy.trigger == "internal"
    assert policy.cache == "EdgesDB"
    assert policy.matches(write(cache="EdgesDB", external=False))
    assert not policy.matches(write(cache="EdgesDB", external=True))


def test_parse_policies_list():
    text = f"<Policies>{FIG3}{FIG3}</Policies>"
    assert len(parse_policies(text)) == 2


def test_parse_defaults_to_wildcards():
    policies = parse_policies('<Policy allow="No"/>')
    assert policies[0].cache == "*"
    assert policies[0].controller == "*"


def test_parse_allow_yes():
    policies = parse_policies('<Policy allow="Yes"><Cache name="X"/></Policy>')
    assert policies[0].allow


def test_parse_rejects_malformed():
    with pytest.raises(PolicyError):
        parse_policies("<Policy")
    with pytest.raises(PolicyError):
        parse_policies("<Wrong/>")
    with pytest.raises(PolicyError):
        parse_policies('<Policy allow="No"><Bogus/></Policy>')
    with pytest.raises(PolicyError):
        parse_policies('<Policy allow="maybe"/>')


# ----------------------------------------------------------------------
# Builtin policies
# ----------------------------------------------------------------------

def test_no_internal_cache_changes_matches_fig3():
    policy = no_internal_cache_changes("EdgesDB")
    assert policy.matches(write(cache="EdgesDB", external=False))
    assert not policy.matches(write(cache="EdgesDB", external=True))
    assert not policy.matches(write(cache="FlowsDB", external=False))


def test_match_hierarchy_policy_flags_bad_match():
    policy = match_hierarchy_policy()
    bad = write(cache="FlowsDB",
                value={"match": (("nw_src", "10.0.0.1"),)})
    good = write(cache="FlowsDB",
                 value={"match": (("dl_dst", "aa"),)})
    assert policy.matches(bad)
    assert not policy.matches(good)
    assert not policy.matches(write(cache="FlowsDB", value={}))


def test_stranded_flow_policy():
    policy = stranded_flow_policy(max_attempts=2)
    stranded = write(cache="FlowsDB",
                     value={"state": "pending_add", "attempts": 2})
    fresh = write(cache="FlowsDB", value={"state": "pending_add"})
    added = write(cache="FlowsDB", value={"state": "added", "attempts": 5})
    assert policy.matches(stranded)
    assert not policy.matches(fresh)
    assert not policy.matches(added)


def test_engine_scales_linearly_structure():
    """10x the policies means ~10x the match work (no index shortcuts)."""
    small = PolicyEngine([Policy(cache=f"C{i}") for i in range(10)])
    large = PolicyEngine([Policy(cache=f"C{i}") for i in range(100)])
    w = write(cache="nomatch")
    small.check_writes([w])
    large.check_writes([w])
    assert len(large) == 10 * len(small)
