"""Public-API hygiene: exports resolve, docstrings exist, version sane."""

import importlib
import inspect

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.net",
    "repro.openflow",
    "repro.datastore",
    "repro.controllers",
    "repro.core",
    "repro.policy",
    "repro.faults",
    "repro.workloads",
    "repro.harness",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports_and_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", [p for p in PACKAGES if p != "repro"])
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{name} exports nothing"
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", [p for p in PACKAGES if p != "repro"])
def test_exported_classes_and_functions_documented(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{name}.{symbol} lacks a docstring"


def test_repro_public_exports_resolve_lazily():
    for symbol in ("Jury", "JuryConfig", "JuryDeployment", "Validator",
                   "ValidationPipeline", "Response", "Alarm", "AlarmReason",
                   "ValidationResult", "Tracer", "MetricsRegistry"):
        assert symbol in repro.__all__
        obj = getattr(repro, symbol)
        assert obj is not None, f"repro.{symbol} resolved to None"
        if inspect.isclass(obj):
            assert obj.__doc__, f"repro.{symbol} lacks a docstring"
    assert "Jury" in dir(repro)
    with pytest.raises(AttributeError):
        repro.not_an_export


def test_version_metadata():
    assert repro.__version__ == "1.0.0"
    assert "DSN 2016" in repro.__paper__


def test_submodules_have_docstrings():
    for name in ("repro.core.validator", "repro.core.consensus",
                 "repro.core.module", "repro.core.replicator",
                 "repro.controllers.base", "repro.datastore.store",
                 "repro.net.switch", "repro.openflow.match",
                 "repro.policy.engine", "repro.workloads.traffic",
                 "repro.harness.experiment", "repro.cli",
                 "repro.openflow.wire", "repro.workloads.recorder"):
        module = importlib.import_module(name)
        assert module.__doc__ and len(module.__doc__) > 40, name
