"""The ``jury-repro analyze`` CLI: formats, exit codes, baseline round-trip."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]

DIRTY = textwrap.dedent("""
    import time

    def handler(seen, channel):
        seen.add(id(channel))
        return time.time()
""")

CLEAN = textwrap.dedent("""
    def handler(sim):
        return sim.now
""")


@pytest.fixture()
def tree(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "dirty.py").write_text(DIRTY)
    (tmp_path / "clean.py").write_text(CLEAN)
    return tmp_path


def test_clean_file_exits_zero(tree, capsys):
    assert main(["analyze", "clean.py"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out and "OK" in out


def test_error_findings_fail_the_gate(tree, capsys):
    assert main(["analyze", "--fail-on", "error", "dirty.py"]) == 1
    out = capsys.readouterr().out
    assert "D101" in out and "D103" in out
    assert "dirty.py:5" in out  # file:line anchor


def test_human_report_names_all_four_families(tree, capsys):
    main(["analyze", "clean.py"])
    out = capsys.readouterr().out
    for token in ("D/determinism", "T/taint-safety", "S/sanity pairing",
                  "H/hygiene"):
        assert token in out


def test_json_format(tree, capsys):
    assert main(["analyze", "--format", "json", "dirty.py"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["failed"] is True
    rules = {f["rule"] for f in payload["findings"]}
    assert {"D101", "D103"} <= rules
    families = {r["family"] for r in payload["rules"]}
    assert {"D", "T", "S", "H"} <= families
    d101 = next(f for f in payload["findings"] if f["rule"] == "D101")
    assert d101["path"] == "dirty.py" and d101["line"] == 6


def test_fail_on_warning_tightens_the_gate(tree, capsys):
    (Path("warn.py")).write_text("from typing import List\n")
    assert main(["analyze", "--fail-on", "error", "warn.py"]) == 0
    capsys.readouterr()
    assert main(["analyze", "--fail-on", "warning", "warn.py"]) == 1


def test_write_baseline_then_gate_passes(tree, capsys):
    assert main(["analyze", "--write-baseline", "--fail-on", "warning",
                 "dirty.py"]) == 0
    assert Path("analysis-baseline.json").exists()
    capsys.readouterr()
    # Same findings are now suppressed; even --fail-on warning passes.
    assert main(["analyze", "--baseline", "--fail-on", "warning",
                 "dirty.py"]) == 0
    out = capsys.readouterr().out
    assert "suppressed by the baseline" in out


def test_missing_baseline_is_a_usage_error(tree, capsys):
    assert main(["analyze", "--baseline", "nope.json", "dirty.py"]) == 2


def test_missing_path_is_a_usage_error(tree, capsys):
    assert main(["analyze", "no_such_dir"]) == 2


def test_no_paths_is_a_usage_error(tree, capsys):
    assert main(["analyze"]) == 2


def test_list_rules(tree, capsys):
    assert main(["analyze", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("D101", "D102", "D103", "D104", "D105",
                    "T201", "T202", "S301", "S302",
                    "H401", "H402", "H403", "H404", "H405"):
        assert rule_id in out


def test_gate_command_on_shipped_tree():
    # The exact invocation CI runs, executed from the repo root.
    import os

    cwd = os.getcwd()
    os.chdir(REPO_ROOT)
    try:
        assert main(["analyze", "--fail-on", "error",
                     "--baseline", "analysis-baseline.json",
                     "src/repro"]) == 0
    finally:
        os.chdir(cwd)
