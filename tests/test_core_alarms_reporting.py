"""Tests for alarm records, validation results, and miscellaneous plumbing."""

import pytest

from repro.core.alarms import Alarm, AlarmReason, ValidationResult
from repro.errors import (
    CacheLockError,
    ClusterError,
    ControllerError,
    DatastoreError,
    MatchFieldError,
    OpenFlowError,
    PolicyError,
    ReproError,
    SimulationError,
    TopologyError,
    ValidationError,
    WorkloadError,
)


def test_alarm_string_contains_attribution():
    alarm = Alarm(trigger_id=("ext", 3), reason=AlarmReason.PRIMARY_OMISSION,
                  offending_controller="c2", detail="late")
    text = str(alarm)
    assert "c2" in text
    assert "primary_omission" in text
    assert "('ext', 3)" in text


def test_alarm_without_offender():
    alarm = Alarm(trigger_id=("int", "c1", 1),
                  reason=AlarmReason.POLICY_VIOLATION,
                  offending_controller=None)
    assert "<unknown>" in str(alarm)


def test_validation_result_alarmed_property():
    ok = ValidationResult(trigger_id=("ext", 1), ok=True, external=True,
                          decided_at=1.0, n_responses=6)
    assert not ok.alarmed
    bad = ValidationResult(trigger_id=("ext", 2), ok=False, external=True,
                           decided_at=1.0, n_responses=5,
                           alarms=[Alarm(("ext", 2),
                                         AlarmReason.SANITY_MISMATCH, "c1")])
    assert bad.alarmed


def test_error_hierarchy():
    """Every library error is catchable as ReproError at API boundaries."""
    for exc_type in (SimulationError, TopologyError, OpenFlowError,
                     MatchFieldError, DatastoreError, CacheLockError,
                     ControllerError, ClusterError, ValidationError,
                     PolicyError, WorkloadError):
        assert issubclass(exc_type, ReproError)
    assert issubclass(MatchFieldError, OpenFlowError)
    assert issubclass(CacheLockError, DatastoreError)
    assert issubclass(ClusterError, ControllerError)


def test_alarm_reasons_enumerate_detection_mechanisms():
    values = {reason.value for reason in AlarmReason}
    assert values == {"primary_omission", "consensus_mismatch",
                      "sanity_mismatch", "policy_violation",
                      "stale_replica"}
