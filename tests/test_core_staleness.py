"""Unit tests for the validator's staleness (out-of-sync replica) monitor."""

from repro.core.alarms import AlarmReason
from repro.core.responses import Response, ResponseKind
from repro.core.timeouts import StaticTimeout
from repro.core.validator import Validator, _digest_progress
from repro.sim.simulator import Simulator


def digest(total):
    return (("c1", total),)


def replica(cid, progress, tau):
    return Response(cid, tau, ResponseKind.REPLICA_RESULT, ((), ()),
                    tainted=True, state_digest=digest(progress),
                    primary_hint="c1")


def test_digest_progress_parsing():
    assert _digest_progress((("c1", 3), ("c2", 4))) == 7
    assert _digest_progress(()) is None
    assert _digest_progress((1,)) is None  # malformed


def test_stale_replica_flagged():
    sim = Simulator()
    validator = Validator(sim, k=2, timeout=StaticTimeout(10.0))
    validator.staleness_threshold = 50
    tau = ("ext", 1)
    validator.ingest(replica("c2", 500, tau))
    validator.ingest(replica("c3", 10, tau))  # 490 writes behind
    sim.run()
    stale = [a for a in validator.alarms
             if a.reason == AlarmReason.STALE_REPLICA]
    assert len(stale) == 1
    assert stale[0].offending_controller == "c3"


def test_small_lag_not_flagged():
    sim = Simulator()
    validator = Validator(sim, k=2, timeout=StaticTimeout(10.0))
    validator.staleness_threshold = 50
    tau = ("ext", 2)
    validator.ingest(replica("c2", 500, tau))
    validator.ingest(replica("c3", 470, tau))  # within threshold
    sim.run()
    assert not any(a.reason == AlarmReason.STALE_REPLICA
                   for a in validator.alarms)


def test_staleness_monitor_disabled():
    sim = Simulator()
    validator = Validator(sim, k=2, timeout=StaticTimeout(10.0))
    validator.staleness_threshold = None
    tau = ("ext", 3)
    validator.ingest(replica("c2", 500, tau))
    validator.ingest(replica("c3", 1, tau))
    sim.run()
    assert not any(a.reason == AlarmReason.STALE_REPLICA
                   for a in validator.alarms)


def test_stale_alarms_rate_limited():
    sim = Simulator()
    validator = Validator(sim, k=2, timeout=StaticTimeout(10.0))
    validator.staleness_threshold = 50
    validator.staleness_cooldown_ms = 1000.0
    for i in range(5):
        tau = ("ext", 100 + i)
        validator.ingest(replica("c2", 500, tau))
        validator.ingest(replica("c3", 10, tau))
    sim.run()
    stale = [a for a in validator.alarms
             if a.reason == AlarmReason.STALE_REPLICA]
    assert len(stale) == 1  # cooldown suppresses repeats


def test_progress_is_monotonic_per_controller():
    sim = Simulator()
    validator = Validator(sim, k=2, timeout=StaticTimeout(10.0))
    tau = ("ext", 200)
    validator.ingest(replica("c2", 500, tau))
    # An older (lower) digest from the same node must not regress its state.
    validator.ingest(Response("c2", ("ext", 201), ResponseKind.REPLICA_RESULT,
                              ((), ()), tainted=True,
                              state_digest=digest(100), primary_hint="c1"))
    assert validator.state["c2"].digest_progress == 500
    sim.run()
