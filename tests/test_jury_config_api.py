"""The redesigned construction API: JuryConfig, Jury.build, Jury.experiment.

Covers config immutability/validation, the declarative from_dict/to_dict
round-trip, the single build entry point (with and without a
caller-supplied cluster), the deployment facade methods, and the removed
legacy seams — ``build_experiment`` / ``JuryDeployment(cluster, k=...)``
keywords must fail immediately with the replacement spelled out.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import Jury, JuryConfig, JuryDeployment, MetricsRegistry, Tracer
from repro.config import POLICY_SETS, register_policy_set
from repro.core.pipeline import ValidationPipeline
from repro.core.validator import Validator
from repro.errors import ValidationError
from repro.harness.experiment import Experiment, build_experiment

N = 5
K = N - 1  # full-pool secondary selection: live runs become comparable


# ----------------------------------------------------------------------
# The config object
# ----------------------------------------------------------------------

def test_config_is_frozen():
    config = JuryConfig(k=2)
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.k = 3
    changed = config.replace(k=3, trace=True)
    assert (changed.k, changed.trace) == (3, True)
    assert (config.k, config.trace) == (2, False)


def test_config_validation():
    with pytest.raises(ValidationError):
        JuryConfig(k=-1)
    with pytest.raises(ValidationError):
        JuryConfig(pipeline=0)
    with pytest.raises(ValidationError):
        JuryConfig(policies=("no-such-set",))
    JuryConfig(k=None)  # vanilla-cluster configs are valid


def test_effective_timeout_follows_controller_kind():
    assert JuryConfig(kind="onos").effective_timeout_ms == 250.0
    assert JuryConfig(kind="odl").effective_timeout_ms == 1200.0
    assert JuryConfig(kind="odl", timeout_ms=90.0).effective_timeout_ms == 90.0


def test_named_policy_sets_resolve_lazily():
    assert "default" in POLICY_SETS
    engine = JuryConfig(policies=("default",)).build_policy_engine()
    assert engine is not None and engine.policies
    register_policy_set("test-empty", lambda: engine)
    try:
        merged = JuryConfig(
            policies=("default", "test-empty")).build_policy_engine()
        assert len(merged.policies) == 2 * len(engine.policies)
    finally:
        POLICY_SETS.pop("test-empty")


def test_observability_builders_follow_flags():
    off = JuryConfig()
    assert off.build_tracer() is None and off.build_metrics() is None
    on = JuryConfig(trace=True, metrics=True)
    assert isinstance(on.build_tracer(), Tracer)
    assert isinstance(on.build_metrics(), MetricsRegistry)
    description = on.describe()
    assert description["trace"] and description["metrics"]


def test_sampling_and_flight_config():
    from repro.obs.recorder import FlightRecorder
    from repro.obs.sampling import HeadSampler

    off = JuryConfig()
    assert off.build_sampler() is None, "obs_sample=1 means record all"
    assert off.build_flight_recorder() is None

    on = JuryConfig(obs_sample=16, flight=True, flight_capacity=32,
                    wall_profile=True)
    sampler = on.build_sampler()
    assert isinstance(sampler, HeadSampler) and sampler.rate == 16
    recorder = on.build_flight_recorder()
    assert isinstance(recorder, FlightRecorder)
    assert recorder.capacity == 32
    description = on.describe()
    assert description["obs_sample"] == 16
    assert description["flight"] and description["wall_profile"]

    for bad in ({"obs_sample": 0}, {"obs_sample": True},
                {"obs_sample": 2.5}, {"flight_capacity": 0},
                {"flight_capacity": False}):
        with pytest.raises(ValidationError):
            JuryConfig(**bad)

    payload = on.replace(k=2).to_dict()
    import json
    rebuilt = JuryConfig.from_dict(json.loads(json.dumps(payload)))
    assert rebuilt == on.replace(k=2)


def test_flight_and_sampler_wire_through_the_deployment():
    jury = Jury.build(JuryConfig(k=K, n=N, switches=6, seed=25,
                                 obs_sample=8, flight=True, metrics=True))
    assert jury.sampler is not None and jury.sampler.rate == 8
    assert jury.recorder is not None
    assert jury.validator.recorder is jury.recorder
    assert jury.validator.sampler is jury.sampler
    payload = jury.flight_payload()
    assert payload["format"] == "jury-flight"
    plain = Jury.build(JuryConfig(k=K, n=N, switches=6, seed=26))
    assert plain.recorder is None and plain.sampler is None
    with pytest.raises(ValidationError):
        plain.flight_payload()


# ----------------------------------------------------------------------
# Jury.build / Jury.experiment
# ----------------------------------------------------------------------

def test_build_hosts_a_full_testbed():
    jury = Jury.build(JuryConfig(k=K, n=N, switches=6, seed=21))
    assert isinstance(jury, JuryDeployment)
    assert isinstance(jury.experiment, Experiment)
    assert jury.experiment.jury is jury
    assert isinstance(jury.validator, Validator)
    assert jury.detection_times() == []
    assert jury.false_positive_rate() == 0.0


def test_build_onto_an_existing_cluster_selects_engine():
    exp = Jury.experiment(JuryConfig(k=None, n=N, switches=6, seed=22))
    jury = Jury.build(JuryConfig(k=K, pipeline=4), cluster=exp.cluster)
    assert isinstance(jury.validator, ValidationPipeline)
    assert jury.validator.shards == 4
    assert jury.config.pipeline == 4


def test_build_rejects_non_config_and_vanilla():
    with pytest.raises(ValidationError):
        Jury.build({"k": 2})
    with pytest.raises(ValidationError):
        Jury.build(JuryConfig(k=None))


def test_build_wires_observability_through_the_stack():
    jury = Jury.build(JuryConfig(k=K, n=N, switches=6, seed=23,
                                 trace=True, metrics=True))
    assert isinstance(jury.tracer, Tracer)
    assert jury.validator.tracer is jury.tracer
    for replicator in jury.replicators.values():
        assert replicator.tracer is jury.tracer
    snapshot = jury.metrics_snapshot()
    assert "pipeline_shards" not in snapshot  # sequential engine
    off = Jury.build(JuryConfig(k=K, n=N, switches=6, seed=24))
    assert off.tracer is None and off.metrics is None
    with pytest.raises(ValidationError):
        off.trace_payload()
    with pytest.raises(ValidationError):
        off.metrics_snapshot()


# ----------------------------------------------------------------------
# Declarative round-trip: from_dict / to_dict
# ----------------------------------------------------------------------

def test_config_dict_round_trip():
    config = JuryConfig(k=4, n=5, switches=6, seed=9, timeout_ms=250.0,
                        pipeline=2, backend="threads",
                        policies=("default",), trace=True,
                        profile_overrides=(("collapse_threshold", 500),))
    payload = config.to_dict()
    assert payload["policies"] == ["default"]  # JSON-able lists
    assert payload["profile_overrides"] == [["collapse_threshold", 500]]
    import json
    rebuilt = JuryConfig.from_dict(json.loads(json.dumps(payload)))
    assert rebuilt == config


def test_from_dict_rejects_unknown_keys_with_did_you_mean():
    with pytest.raises(ValidationError, match="did you mean 'pipeline'"):
        JuryConfig.from_dict({"k": 2, "pipline": 4})
    with pytest.raises(ValidationError, match="unknown config key"):
        JuryConfig.from_dict({"k": 2, "zzzzqq": 1})
    with pytest.raises(ValidationError, match="mapping"):
        JuryConfig.from_dict([("k", 2)])


def test_dict_paths_reject_live_object_fields():
    from repro.core.timeouts import StaticTimeout
    with pytest.raises(ValidationError, match="timeout"):
        JuryConfig(timeout=StaticTimeout(100.0)).to_dict()
    with pytest.raises(ValidationError, match="live object"):
        JuryConfig.from_dict({"k": 2, "policy_engine": object()})
    # None-valued object fields round-trip fine.
    assert JuryConfig.from_dict({"timeout": None}).timeout is None


def test_backend_field_is_validated():
    assert JuryConfig(pipeline=2, backend="processes").backend == "processes"
    with pytest.raises(ValidationError, match="unknown backend"):
        JuryConfig(pipeline=2, backend="gpu")
    with pytest.raises(ValidationError, match="requires pipeline"):
        JuryConfig(backend="threads")
    from repro.core.timeouts import AdaptiveTimeout
    with pytest.raises(ValidationError, match="static"):
        JuryConfig(pipeline=2, backend="threads",
                   timeout=AdaptiveTimeout(initial_ms=100.0))


# ----------------------------------------------------------------------
# Removed legacy seams: one-line errors naming the replacement
# ----------------------------------------------------------------------

def test_build_experiment_raises_naming_replacement():
    with pytest.raises(ValidationError, match="Jury.experiment"):
        build_experiment(kind="onos", n=N, k=K, switches=6,
                         seed=31, timeout_ms=250.0)


def test_deployment_kwargs_raise_naming_replacement():
    exp = Jury.experiment(JuryConfig(k=None, n=N, switches=6, seed=32))
    with pytest.raises(ValidationError, match="Jury.build"):
        JuryDeployment(exp.cluster, k=K, timeout_ms=250.0)
    with pytest.raises(ValidationError, match="Jury.build"):
        JuryDeployment(exp.cluster)
