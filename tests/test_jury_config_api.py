"""The redesigned construction API: JuryConfig, Jury.build, and the shims.

Covers config immutability/validation, the single build entry point (with
and without a caller-supplied cluster), the deployment facade methods, and
behavioural equivalence of the deprecated ``build_experiment`` /
``JuryDeployment(cluster, k=...)`` keyword seams with the config path.

Equivalence runs use ``k = n - 1``: designated-secondary selection then
degenerates to the full pool, so live runs are comparable even though
trigger ids come from process-global counters (same trick as
test_determinism.py).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import Jury, JuryConfig, JuryDeployment, MetricsRegistry, Tracer
from repro.config import POLICY_SETS, register_policy_set
from repro.core.pipeline import ValidationPipeline
from repro.core.validator import Validator
from repro.errors import ValidationError
from repro.harness.experiment import Experiment, build_experiment
from repro.workloads.traffic import TrafficDriver

N = 5
K = N - 1  # full-pool secondary selection: live runs become comparable


# ----------------------------------------------------------------------
# The config object
# ----------------------------------------------------------------------

def test_config_is_frozen():
    config = JuryConfig(k=2)
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.k = 3
    changed = config.replace(k=3, trace=True)
    assert (changed.k, changed.trace) == (3, True)
    assert (config.k, config.trace) == (2, False)


def test_config_validation():
    with pytest.raises(ValidationError):
        JuryConfig(k=-1)
    with pytest.raises(ValidationError):
        JuryConfig(pipeline=0)
    with pytest.raises(ValidationError):
        JuryConfig(policies=("no-such-set",))
    JuryConfig(k=None)  # vanilla-cluster configs are valid


def test_effective_timeout_follows_controller_kind():
    assert JuryConfig(kind="onos").effective_timeout_ms == 250.0
    assert JuryConfig(kind="odl").effective_timeout_ms == 1200.0
    assert JuryConfig(kind="odl", timeout_ms=90.0).effective_timeout_ms == 90.0


def test_named_policy_sets_resolve_lazily():
    assert "default" in POLICY_SETS
    engine = JuryConfig(policies=("default",)).build_policy_engine()
    assert engine is not None and engine.policies
    register_policy_set("test-empty", lambda: engine)
    try:
        merged = JuryConfig(
            policies=("default", "test-empty")).build_policy_engine()
        assert len(merged.policies) == 2 * len(engine.policies)
    finally:
        POLICY_SETS.pop("test-empty")


def test_observability_builders_follow_flags():
    off = JuryConfig()
    assert off.build_tracer() is None and off.build_metrics() is None
    on = JuryConfig(trace=True, metrics=True)
    assert isinstance(on.build_tracer(), Tracer)
    assert isinstance(on.build_metrics(), MetricsRegistry)
    description = on.describe()
    assert description["trace"] and description["metrics"]


# ----------------------------------------------------------------------
# Jury.build / Jury.experiment
# ----------------------------------------------------------------------

def test_build_hosts_a_full_testbed():
    jury = Jury.build(JuryConfig(k=K, n=N, switches=6, seed=21))
    assert isinstance(jury, JuryDeployment)
    assert isinstance(jury.experiment, Experiment)
    assert jury.experiment.jury is jury
    assert isinstance(jury.validator, Validator)
    assert jury.detection_times() == []
    assert jury.false_positive_rate() == 0.0


def test_build_onto_an_existing_cluster_selects_engine():
    exp = Jury.experiment(JuryConfig(k=None, n=N, switches=6, seed=22))
    jury = Jury.build(JuryConfig(k=K, pipeline=4), cluster=exp.cluster)
    assert isinstance(jury.validator, ValidationPipeline)
    assert jury.validator.shards == 4
    assert jury.config.pipeline == 4


def test_build_rejects_non_config_and_vanilla():
    with pytest.raises(ValidationError):
        Jury.build({"k": 2})
    with pytest.raises(ValidationError):
        Jury.build(JuryConfig(k=None))


def test_build_wires_observability_through_the_stack():
    jury = Jury.build(JuryConfig(k=K, n=N, switches=6, seed=23,
                                 trace=True, metrics=True))
    assert isinstance(jury.tracer, Tracer)
    assert jury.validator.tracer is jury.tracer
    for replicator in jury.replicators.values():
        assert replicator.tracer is jury.tracer
    snapshot = jury.metrics_snapshot()
    assert "pipeline_shards" not in snapshot  # sequential engine
    off = Jury.build(JuryConfig(k=K, n=N, switches=6, seed=24))
    assert off.tracer is None and off.metrics is None
    with pytest.raises(ValidationError):
        off.trace_payload()
    with pytest.raises(ValidationError):
        off.metrics_snapshot()


# ----------------------------------------------------------------------
# Deprecated shims: same behaviour, plus the warning
# ----------------------------------------------------------------------

def _fingerprint(experiment):
    validator = experiment.validator
    return (
        validator.triggers_decided,
        validator.triggers_alarmed,
        validator.responses_received,
        round(sum(r.detection_ms for r in validator.results), 6),
        tuple(sorted(a.reason.value for a in validator.alarms)),
    )


def _drive(experiment):
    experiment.warmup()
    driver = TrafficDriver(experiment.sim, experiment.topology,
                           packet_in_rate_per_s=800.0, duration_ms=400.0)
    driver.start()
    experiment.run(1000.0)
    return _fingerprint(experiment)


def test_build_experiment_shim_matches_config_path():
    with pytest.warns(DeprecationWarning):
        legacy = build_experiment(kind="onos", n=N, k=K, switches=6,
                                  seed=31, timeout_ms=250.0)
    modern = Jury.experiment(JuryConfig(kind="onos", n=N, k=K, switches=6,
                                        seed=31, timeout_ms=250.0))
    assert _drive(legacy) == _drive(modern)


def test_deployment_kwarg_shim_matches_config_path():
    legacy_exp = Jury.experiment(JuryConfig(k=None, n=N, switches=6, seed=32))
    with pytest.warns(DeprecationWarning):
        legacy = JuryDeployment(legacy_exp.cluster, k=K, timeout_ms=250.0)
    assert legacy.config.k == K
    assert legacy.config.effective_timeout_ms == 250.0
    modern_exp = Jury.experiment(JuryConfig(k=None, n=N, switches=6, seed=32))
    modern = Jury.build(JuryConfig(k=K, timeout_ms=250.0),
                        cluster=modern_exp.cluster)
    assert type(legacy.validator) is type(modern.validator)
    assert legacy.validator.timeout.current() == modern.validator.timeout.current()
    assert legacy.k == modern.k == K


def test_deployment_requires_k_or_config():
    exp = Jury.experiment(JuryConfig(k=None, n=N, switches=6, seed=33))
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValidationError):
            JuryDeployment(exp.cluster)
