"""Tests for the northbound REST API."""

import pytest

from repro.controllers.northbound import NorthboundApi
from repro.controllers.onos import build_onos_cluster
from repro.errors import ClusterError
from repro.net.topology import linear_topology
from repro.openflow.actions import ActionOutput
from repro.openflow.match import Match
from repro.sim.simulator import Simulator


@pytest.fixture
def api_cluster():
    sim = Simulator(seed=14)
    topo = linear_topology(sim, 3)
    cluster, _ = build_onos_cluster(sim, n=3)
    cluster.connect_topology(topo)
    cluster.start()
    sim.run(until=2500.0)
    return NorthboundApi(cluster), cluster, topo, sim


def test_add_flow_installs_on_master(api_cluster):
    api, cluster, topo, sim = api_cluster
    match = Match.for_destination("11:11:11:11:11:11")
    api.add_flow("c1", 1, match, (ActionOutput(1),), priority=60)
    sim.run(until=sim.now + 300.0)
    assert topo.switches[1].table.find(match, 60) is not None


def test_add_flow_via_non_master_reaches_remote_switch(api_cluster):
    api, cluster, topo, sim = api_cluster
    match = Match.for_destination("22:22:22:22:22:22")
    # dpid 2 is mastered by c2; call via c3.
    api.add_flow("c3", 2, match, (ActionOutput(1),), priority=61)
    sim.run(until=sim.now + 300.0)
    assert topo.switches[2].table.find(match, 61) is not None


def test_delete_flow(api_cluster):
    api, cluster, topo, sim = api_cluster
    match = Match.for_destination("33:33:33:33:33:33")
    api.add_flow("c1", 1, match, (ActionOutput(1),), priority=62)
    sim.run(until=sim.now + 300.0)
    api.delete_flow("c1", 1, match, priority=62)
    sim.run(until=sim.now + 300.0)
    assert topo.switches[1].table.find(match, 62) is None


def test_rest_request_counter(api_cluster):
    api, cluster, topo, sim = api_cluster
    match = Match.for_destination("44:44:44:44:44:44")
    api.add_flow("c1", 1, match, (ActionOutput(1),))
    sim.run(until=sim.now + 300.0)
    assert api.requests_sent == 1
    assert cluster.controller("c1").rest_requests == 1


def test_unknown_controller_rejected(api_cluster):
    api, cluster, topo, sim = api_cluster
    with pytest.raises(ClusterError):
        api.add_flow("c9", 1, Match(), ())


def test_requests_have_latency(api_cluster):
    api, cluster, topo, sim = api_cluster
    match = Match.for_destination("55:55:55:55:55:55")
    api.add_flow("c1", 1, match, (ActionOutput(1),))
    # Immediately after the call the controller has not yet seen it.
    assert cluster.controller("c1").rest_requests == 0
    sim.run(until=sim.now + 300.0)
    assert cluster.controller("c1").rest_requests == 1
