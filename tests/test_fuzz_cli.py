"""``jury-repro fuzz``: smoke, exit-code contract, and cross-process
seed stability.

Exit codes mirror analyze/diagnose: 0 for a clean campaign (or a fully
matching corpus replay), 2 both for usage errors and for surviving
counterexamples — with the shrunk repro printed so the seed can be
replayed by hand.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import cli
from repro.fuzz import CorpusEntry, ScenarioSpec, save_entry
from repro.fuzz.scenario import FaultSpec


def run_cli(argv, capsys):
    code = cli.main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


# ----------------------------------------------------------------------
# Campaign mode
# ----------------------------------------------------------------------

def test_fuzz_smoke_clean_campaign(capsys):
    code, out, err = run_cli(["fuzz", "--runs", "2", "--seed", "8",
                              "--verbose"], capsys)
    assert code == 0
    assert "2/2 scenarios from seed 8: 0 counterexample(s)" in out
    assert "seed 8: ok" in out and "seed 9: ok" in out
    assert err == ""


def test_fuzz_json_payload_carries_digests(capsys):
    code, out, _ = run_cli(["fuzz", "--runs", "1", "--seed", "9",
                            "--format", "json"], capsys)
    assert code == 0
    payload = json.loads(out)
    assert payload["command"] == "fuzz" and payload["mode"] == "campaign"
    assert payload["ok"] is True
    (run,) = payload["runs"]
    assert run["seed"] == 9
    assert len(run["spec_digest"]) == 64
    assert len(run["alarm_digest"]) == 64
    assert len(run["trace_digest"]) == 64


def test_fuzz_counterexample_exits_2_and_prints_shrunk_repro(
        monkeypatch, capsys, tmp_path):
    """The headline contract: a surviving counterexample → exit 2, with the
    minimized spec printed (and saved when --save-failing is given)."""
    from repro.fuzz import runner as runner_module

    plant = ScenarioSpec(
        seed=11, n=3, k=0, switches=4, timeout_ms=200.0,
        faults=(FaultSpec(name="response-corruption",
                          params=(("faulty_controller", "c1"),)),))

    class PlantedGen:
        def spec(self, seed):
            return plant.replace(seed=seed)

    monkeypatch.setattr(runner_module, "ScenarioGen", PlantedGen)
    code, out, err = run_cli(
        ["fuzz", "--runs", "1", "--seed", "11", "--shrink-budget", "12",
         "--save-failing", str(tmp_path)], capsys)
    assert code == 2
    assert "counterexample seed 11: FAULT_UNDETECTED" in out
    assert "minimized:" in out and "repro    :" in out
    assert "surviving counterexample at seed 11" in err
    saved = tmp_path / "fuzz-seed-11.json"
    assert saved.is_file()
    entry = json.loads(saved.read_text())
    assert entry["expect"]["violations"] == ["FAULT_UNDETECTED"]
    assert entry["spec"]["k"] == 0


def test_fuzz_no_shrink_reports_original_spec(monkeypatch, capsys):
    from repro.fuzz import runner as runner_module

    plant = ScenarioSpec(
        seed=11, n=3, k=0, switches=4, timeout_ms=200.0,
        faults=(FaultSpec(name="response-corruption",
                          params=(("faulty_controller", "c1"),)),))

    class PlantedGen:
        def spec(self, seed):
            return plant.replace(seed=seed)

    monkeypatch.setattr(runner_module, "ScenarioGen", PlantedGen)
    code, out, _ = run_cli(["fuzz", "--runs", "1", "--seed", "11",
                            "--no-shrink"], capsys)
    assert code == 2
    # Unshrunk: the minimized line shows the original n=3/sw=4 shape.
    assert "minimized: seed=11 onos n=3 k=0 sw=4" in out


def test_fuzz_runs_must_be_positive(capsys):
    code, _, err = run_cli(["fuzz", "--runs", "0"], capsys)
    assert code == 2
    assert "--runs must be >= 1" in err


# ----------------------------------------------------------------------
# Corpus replay mode
# ----------------------------------------------------------------------

def test_fuzz_replay_of_the_repo_corpus_is_clean(capsys):
    code, out, err = run_cli(["fuzz", "--replay"], capsys)
    assert code == 0
    assert "k0-response-corruption-evades" in out
    assert err == ""


def test_fuzz_replay_empty_corpus_is_a_usage_error(tmp_path, capsys):
    code, _, err = run_cli(["fuzz", "--replay", "--corpus", str(tmp_path)],
                           capsys)
    assert code == 2
    assert "no corpus entries" in err


def test_fuzz_replay_mismatch_exits_2(tmp_path, capsys):
    # An entry that *expects* a violation signature a healthy spec won't
    # produce: replay must flag the mismatch and exit 2.
    stale = CorpusEntry(
        name="stale-expectation",
        spec=ScenarioSpec(seed=9, n=4, k=2, switches=4, timeout_ms=150.0),
        expect=("ENGINE_DIVERGENCE",),
        notes="synthetic: expectation no longer reproduces")
    save_entry(stale, tmp_path)
    code, out, err = run_cli(["fuzz", "--replay", "--corpus",
                              str(tmp_path)], capsys)
    assert code == 2
    assert "MISMATCH" in out
    assert "update or retire" in err


# ----------------------------------------------------------------------
# Cross-process seed stability (the determinism satellite)
# ----------------------------------------------------------------------

def _fuzz_json_in_fresh_process(seed: int) -> dict:
    env = dict(os.environ)
    root = Path(__file__).resolve().parent.parent
    env["PYTHONPATH"] = str(root / "src")
    env.setdefault("PYTHONHASHSEED", "random")  # stability must not need it
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "fuzz", "--runs", "1",
         "--seed", str(seed), "--format", "json"],
        capture_output=True, text=True, env=env, cwd=root, timeout=600)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


@pytest.mark.parametrize("seed", [9])
def test_same_seed_is_byte_stable_across_processes(seed):
    """Two fresh interpreters, same seed → identical generated scenario,
    identical canonical alarm stream, identical canonical trace encoding.
    Guards against wall-clock reads, set-iteration order, and unseeded
    RNG sneaking into the scenario or validation paths."""
    first = _fuzz_json_in_fresh_process(seed)["runs"][0]
    second = _fuzz_json_in_fresh_process(seed)["runs"][0]
    assert first["spec_digest"] == second["spec_digest"]
    assert first["alarm_digest"] == second["alarm_digest"]
    assert first["trace_digest"] == second["trace_digest"]
