"""The example scripts run end-to-end and their internal assertions hold.

Examples are user-facing documentation; breaking them silently would be
worse than a failing unit test. Each example asserts its own claims, so a
clean exit is the contract.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart_example(capsys):
    out = run_example("quickstart.py", capsys)
    assert "no false alarms" in out
    assert "triggers validated" in out


def test_policy_enforcement_example(capsys):
    out = run_example("policy_enforcement.py", capsys)
    assert "Policy enforcement results" in out
    assert "no alarms" in out


@pytest.mark.slow
def test_fault_detection_demo_example(capsys):
    out = run_example("fault_detection_demo.py", capsys)
    assert "15/15 faults detected" in out


@pytest.mark.slow
def test_record_replay_example(capsys):
    out = run_example("record_replay.py", capsys)
    assert "isolates the fault cleanly" in out


@pytest.mark.slow
def test_adaptive_timeouts_example(capsys):
    out = run_example("adaptive_timeouts.py", capsys)
    assert "adaptive timeouts quell" in out
