"""Unit tests for alarm forensics: diffs, explanations, export, offline."""

import json

import pytest

from repro.core.alarm_log import AlarmLog, dump_alarm_log
from repro.core.alarms import AlarmReason, canonical_alarm_stream
from repro.faults.base import run_scenario
from repro.faults.synthetic import LinkFailureFault
from repro.obs.diagnose import (
    CHECK_BY_REASON,
    FAULT_CLASS_BY_REASON,
    FieldDiff,
    diff_entries,
    explanation_id,
    explanations_from_files,
    export_explanations,
    find_explanation,
    render_explanations,
)
from repro.obs.trace import dump_trace
from repro import Jury, JuryConfig


def _cache(db, key, op, **fields):
    return ("cache", db, key, op, tuple(sorted(fields.items())))


def _flow_mod(dpid, command, match, actions, priority):
    return ("flow_mod", dpid, command, match, actions, priority)


# ----------------------------------------------------------------------
# diff_entries
# ----------------------------------------------------------------------

def test_diff_entries_reports_changed_fields():
    expected = (_cache("FlowsDB", ("flow", 1), "create", state="added"),)
    actual = (_cache("FlowsDB", ("flow", 1), "create", state="pending_add"),)
    diffs = diff_entries(expected, actual)
    assert len(diffs) == 1
    diff = diffs[0]
    assert diff.kind == "changed" and diff.field == "state"
    assert diff.expected == "'added'" and diff.actual == "'pending_add'"


def test_diff_entries_reports_missing_and_unexpected():
    expected = (_flow_mod(1, "add", ("ip", 1), (("output", 2),), 100),)
    actual = (_flow_mod(2, "add", ("ip", 9), (("output", 3),), 50),)
    kinds = sorted(d.kind for d in diff_entries(expected, actual))
    assert kinds == ["missing", "unexpected"]


def test_diff_entries_same_flow_different_actions_is_field_change():
    expected = (_flow_mod(1, "add", ("ip", 1), (("output", 2),), 100),)
    actual = (_flow_mod(1, "add", ("ip", 1), (("drop", 0),), 100),)
    diffs = diff_entries(expected, actual)
    assert [d.field for d in diffs] == ["actions"]


def test_diff_entries_is_deterministic_and_empty_on_equal():
    entries = (_cache("A", 1, "update", x=1), _cache("B", 2, "delete", y=2))
    assert diff_entries(entries, entries) == ()
    reversed_order = tuple(reversed(entries))
    assert diff_entries(entries, reversed_order) == ()


def test_field_diff_render_forms():
    assert FieldDiff(kind="missing", key="k").render().startswith("- k")
    assert FieldDiff(kind="unexpected", key="k").render().startswith("+ k")
    changed = FieldDiff(kind="changed", key="k", field="f",
                        expected="1", actual="2").render()
    assert "expected 1 got 2" in changed


# ----------------------------------------------------------------------
# Live forensics on a real fault
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def fault_run():
    experiment = Jury.experiment(JuryConfig(
        kind="onos", n=5, k=4, switches=8, seed=5, timeout_ms=250.0,
        policies=("default",), with_northbound=True, diagnose=True))
    experiment.warmup()
    log = AlarmLog(experiment.validator)
    result = run_scenario(experiment, LinkFailureFault(1, 2))
    assert result.detected
    return experiment, log


def test_every_alarm_gets_an_explanation(fault_run):
    experiment, _ = fault_run
    alarms = experiment.jury.alarms
    forensics = experiment.jury.forensics
    assert alarms
    for alarm in alarms:
        explanation = forensics.explanation_for(alarm)
        assert explanation is not None
        assert explanation.trigger_id == repr(alarm.trigger_id)
        assert explanation.reason == alarm.reason.value
        assert explanation.failed_check == CHECK_BY_REASON[alarm.reason]
        assert (explanation.fault_class
                == FAULT_CLASS_BY_REASON[alarm.reason])


def test_consensus_explanations_carry_field_diffs(fault_run):
    experiment, _ = fault_run
    forensics = experiment.jury.forensics
    consensus = [forensics.explanation_for(a) for a in experiment.jury.alarms
                 if a.reason is AlarmReason.CONSENSUS_MISMATCH]
    assert consensus, "link failure must raise consensus alarms"
    assert any(e.cache_diffs or e.network_diffs for e in consensus), \
        "at least one consensus explanation must pin the diverging entries"
    for explanation in consensus:
        assert explanation.offending_controller
        assert explanation.offending_controller \
            in explanation.dissenting_replicas


def test_forensics_never_mutates_alarm_objects(fault_run):
    """Observer purity (X501): forensics must leave alarms untouched.

    Pins the fix for the cross-module analyzer's true positive — forensics
    used to stamp ``alarm.explanation`` on validator-owned alarm objects.
    """
    import dataclasses

    experiment, _ = fault_run
    field_names = {f.name for f in dataclasses.fields(
        type(experiment.jury.alarms[0]))}
    assert "explanation" not in field_names
    for alarm in experiment.jury.alarms:
        assert not hasattr(alarm, "explanation")
    stream = canonical_alarm_stream(experiment.jury.alarms)
    assert b"explanation" not in stream
    assert b"AlarmExplanation" not in stream


def test_export_ids_and_json_round_trip(fault_run):
    experiment, _ = fault_run
    explanations = experiment.jury.forensics.explanations()
    payload = export_explanations(explanations)
    assert payload["format"] == "jury-diagnose"
    assert payload["alarm_count"] == len(explanations)
    assert [e["id"] for e in payload["alarms"]] \
        == [explanation_id(i) for i in range(len(explanations))]
    # JSON-serializable without custom encoders, stable under re-dump.
    first = json.dumps(payload, sort_keys=True)
    assert json.dumps(json.loads(first), sort_keys=True) == first


def test_find_explanation_by_id_shorthand_and_substring(fault_run):
    experiment, _ = fault_run
    explanations = experiment.jury.forensics.explanations()
    assert find_explanation(explanations, "a0001")[0] == "A0001"
    trigger = explanations[0].trigger_id
    assert find_explanation(explanations, trigger)[1] is explanations[0]
    assert find_explanation(explanations, "no-such-alarm") is None
    assert find_explanation(explanations, "") is None


def test_render_explanations_is_deterministic(fault_run):
    experiment, _ = fault_run
    explanations = experiment.jury.forensics.explanations()
    text = render_explanations(explanations)
    assert text == render_explanations(explanations)
    assert "A0001" in text and "fault class" in text
    assert render_explanations([]) == "no alarms — nothing to diagnose"


# ----------------------------------------------------------------------
# Offline reconstruction
# ----------------------------------------------------------------------

def test_offline_reconstruction_matches_live_verdicts(fault_run, tmp_path):
    experiment, log = fault_run
    alarm_path = tmp_path / "alarms.jsonl"
    dump_alarm_log(log, str(alarm_path))
    offline = explanations_from_files(str(alarm_path))
    live = experiment.jury.forensics.explanations()
    assert len(offline) == len(live)
    for off, lv in zip(offline, live):
        assert off.source == "offline"
        assert (off.trigger_id, off.reason, off.failed_check,
                off.fault_class, off.offending_controller) \
            == (lv.trigger_id, lv.reason, lv.failed_check,
                lv.fault_class, lv.offending_controller)


def test_offline_with_trace_recovers_externality(tmp_path):
    experiment = Jury.experiment(JuryConfig(
        kind="onos", n=5, k=4, switches=8, seed=6, timeout_ms=250.0,
        policies=("default",), with_northbound=True,
        diagnose=True, trace=True))
    experiment.warmup()
    log = AlarmLog(experiment.validator)
    result = run_scenario(experiment, LinkFailureFault(1, 2))
    assert result.detected
    alarm_path = tmp_path / "alarms.jsonl"
    trace_path = tmp_path / "trace.json"
    dump_alarm_log(log, str(alarm_path))
    dump_trace(experiment.jury.tracer, str(trace_path))
    offline = explanations_from_files(str(alarm_path),
                                      trace_path=str(trace_path))
    live = experiment.jury.forensics.explanations()
    assert [o.external for o in offline] == [l.external for l in live]


def test_offline_rejects_malformed_alarm_log(tmp_path):
    bad = tmp_path / "alarms.jsonl"
    bad.write_text('{"time_ms": 1.0}\n', encoding="utf-8")
    with pytest.raises(ValueError):
        explanations_from_files(str(bad))
    garbage = tmp_path / "garbage.jsonl"
    garbage.write_text("not json\n", encoding="utf-8")
    with pytest.raises(ValueError):
        explanations_from_files(str(garbage))
