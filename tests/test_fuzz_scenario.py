"""Generator determinism, spec serialization, and the fuzz-fault catalog."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.fuzz.scenario import (
    FUZZ_FAULTS,
    FaultSpec,
    ScenarioGen,
    ScenarioSpec,
    TrafficSpec,
    _clamp_fault_params,
    build_fault_scenario,
)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------

def test_same_seed_same_spec(scenario_gen):
    for seed in (0, 1, 7, 41, 9999):
        first = scenario_gen.spec(seed)
        second = ScenarioGen().spec(seed)
        assert first == second
        assert first.digest() == second.digest()
        assert first.canonical_json() == second.canonical_json()


def test_different_seeds_differ(scenario_gen):
    digests = {scenario_gen.spec(seed).digest() for seed in range(30)}
    # A little collision slack: distinct seeds may draw the same shape.
    assert len(digests) > 20


def test_specs_batch_matches_individual_draws(scenario_gen):
    batch = scenario_gen.specs(7, 5)
    assert [s.seed for s in batch] == [7, 8, 9, 10, 11]
    assert batch == [scenario_gen.spec(7 + i) for i in range(5)]


def test_generator_stays_inside_the_guaranteed_envelope(scenario_gen):
    """Generated scenarios must only use configurations in which JURY's
    detection guarantees hold — k >= 2 and catalog faults with min_k <= k —
    otherwise clean-run fuzzing would report false counterexamples."""
    for seed in range(60):
        spec = scenario_gen.spec(seed)
        assert 2 <= spec.k <= spec.n - 1
        assert spec.switches >= 4
        for fault in spec.faults:
            assert FUZZ_FAULTS[fault.name].min_k <= spec.k


def test_generator_produces_both_flavors(scenario_gen):
    specs = [scenario_gen.spec(seed) for seed in range(40)]
    assert any(s.faults for s in specs), "no faulted scenarios in 40 draws"
    assert any(not s.faults for s in specs), "no clean scenarios in 40 draws"


def test_small_fuzz_corpus_fixture_pins_its_flavors(small_fuzz_corpus):
    # The shared fixture promises both flavors; suites depend on that.
    by_seed = {spec.seed: spec for spec in small_fuzz_corpus}
    assert set(by_seed) == {7, 8, 9, 10}
    assert by_seed[7].faults and by_seed[10].faults
    assert not by_seed[8].faults and not by_seed[9].faults


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------

def test_spec_roundtrips_through_dict(scenario_gen):
    for seed in range(12):
        spec = scenario_gen.spec(seed)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec


def test_canonical_json_is_key_sorted_and_tight():
    spec = ScenarioSpec(seed=1, n=3, k=2, switches=4, timeout_ms=200.0)
    text = spec.canonical_json()
    assert ": " not in text and ", " not in text
    assert text.index('"k"') < text.index('"kind"') < text.index('"n"')


def test_unsupported_format_rejected():
    spec = ScenarioSpec(seed=1, n=3, k=2, switches=4, timeout_ms=200.0)
    payload = spec.to_dict()
    payload["format"] = 99
    with pytest.raises(ValidationError):
        ScenarioSpec.from_dict(payload)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kwargs", [
    {"n": 1},
    {"k": 3, "n": 3},
    {"k": -1},
    {"switches": 1},
    {"timeout_ms": 0.0},
    {"faults": (FaultSpec(name="no-such-fault"),)},
])
def test_invalid_specs_rejected(kwargs):
    base = {"seed": 1, "n": 3, "k": 2, "switches": 4, "timeout_ms": 200.0}
    base.update(kwargs)
    with pytest.raises(ValidationError):
        ScenarioSpec(**base)


# ----------------------------------------------------------------------
# The fault catalog
# ----------------------------------------------------------------------

def test_every_catalog_fault_builds_a_scenario(scenario_gen):
    import random

    spec = ScenarioSpec(seed=1, n=5, k=4, switches=8, timeout_ms=200.0)
    rng = random.Random("catalog")
    for name, entry in sorted(FUZZ_FAULTS.items()):
        fault = FaultSpec(name=name, params=entry.draw_params(rng, spec))
        scenario = build_fault_scenario(fault)
        assert hasattr(scenario, "inject") and hasattr(scenario, "trigger")


def test_clamp_refits_dpids_after_topology_shrink():
    fault = FaultSpec(name="link-failure",
                      params=(("dpid_a", 7), ("dpid_b", 8)))
    small = ScenarioSpec(seed=1, n=3, k=2, switches=3, timeout_ms=200.0,
                         faults=(fault,))
    refit = _clamp_fault_params(fault, small)
    params = refit.param_dict()
    assert params["dpid_a"] == 2 and params["dpid_b"] == 3


def test_clamp_refits_controller_after_cluster_shrink():
    fault = FaultSpec(name="crash", params=(("faulty_controller", "c5"),))
    small = ScenarioSpec(seed=1, n=2, k=1, switches=4, timeout_ms=200.0,
                         faults=(fault,))
    refit = _clamp_fault_params(fault, small)
    assert refit.param_dict()["faulty_controller"] == "c2"


def test_clamp_leaves_valid_params_alone():
    fault = FaultSpec(name="link-failure",
                      params=(("dpid_a", 1), ("dpid_b", 2)))
    spec = ScenarioSpec(seed=1, n=3, k=2, switches=4, timeout_ms=200.0,
                        faults=(fault,))
    assert _clamp_fault_params(fault, spec) is fault


def test_traffic_spec_roundtrip():
    traffic = TrafficSpec(rate_per_s=250.0, duration_ms=90.0,
                          arp_fraction=0.3, host_join_rate_per_s=2.0)
    assert TrafficSpec.from_dict(traffic.to_dict()) == traffic
