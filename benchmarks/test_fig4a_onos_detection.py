"""Fig 4a — ONOS detection-time CDFs for k secondary / m faulty controllers.

Paper: with n=7 at a peak PACKET_IN rate of ~5.5K/s, detection time grows
with k (more responses needed for consensus) and with m (faulty replicas
slow the majority); 95th percentiles ≈97 ms (k=6, m=0) and ≈129 ms
(k=6, m=2). Reproduction targets: the ordering k=2 < k=4 < k=6 < (k=6, m=2)
and 95th percentiles within a factor of ~2 of the paper's.
"""

from conftest import onos_detection_run, run_once

from repro.harness.metrics import cdf_points
from repro.harness.reporting import format_table

RATE = 8000.0  # requested; measures ~5.5K PACKET_IN/s cluster-wide

CONFIGS = [
    ("k=2, m=0", 2, ()),
    ("k=4, m=0", 4, ()),
    ("k=6, m=0", 6, ()),
    ("k=6, m=2", 6, ("c6", "c7")),
]


def test_fig4a_onos_detection_cdfs(benchmark):
    def run():
        rows = []
        p95s = {}
        for label, k, slow in CONFIGS:
            experiment = onos_detection_run(k=k, rate=RATE,
                                            slow_controllers=slow,
                                            duration_ms=900.0)
            stats = experiment.detection_stats()
            rows.append([label, stats.count, f"{stats.median:.0f}",
                         f"{stats.p95:.0f}", f"{stats.p99:.0f}"])
            p95s[label] = stats.p95
            cdf = cdf_points(stats.samples, points=10)
            series = "  ".join(f"{x:.0f}ms@{y:.2f}" for x, y in cdf)
            print(f"\nCDF {label}: {series}")
        print()
        print(format_table(
            "Fig 4a — ONOS detection times (ms), n=7, ~5.5K PACKET_IN/s",
            ["config", "samples", "median", "p95", "p99"], rows))
        return p95s

    p95s = run_once(benchmark, run)
    # Shape assertions: detection grows from k=2 to k=6 and with m=2.
    # (k=4 sits between them on average but is not asserted strictly —
    # one-shot runs at saturating load are noisy.)
    assert p95s["k=2, m=0"] < p95s["k=6, m=0"]
    assert p95s["k=2, m=0"] < p95s["k=4, m=0"]
    assert p95s["k=6, m=2"] > p95s["k=6, m=0"]
    # Magnitude: within a factor of ~2 of the paper's 97 ms / 129 ms.
    assert 45 < p95s["k=6, m=0"] < 200
    assert 60 < p95s["k=6, m=2"] < 300
