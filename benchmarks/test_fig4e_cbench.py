"""Fig 4e — Cbench PACKET_IN bursts overwhelm ONOS.

Paper: Cbench in throughput mode "quickly throttles each controller,
causing the cumulative FLOW_MOD throughput to plummet to zero" — TCP
zero-window at the controller, transmission-window-full at the switch.
The reproduction drives blocking bursts into a collapse-enabled pipeline
and prints the PACKET_IN / FLOW_MOD time series: bursty input, output that
rises and then falls to zero. This is why the paper (and this repo's
throughput figures) use tcpreplay instead.
"""

from conftest import run_once

from repro.api import Jury
from repro.config import JuryConfig
from repro.harness.reporting import format_table
from repro.workloads.cbench import CbenchDriver


def test_fig4e_cbench_overwhelms_onos(benchmark):
    def run():
        experiment = Jury.experiment(JuryConfig(
            kind="onos", n=1, switches=2, seed=32,
            profile_overrides=(("collapse_threshold", 800),), k=None, timeout_ms=200.0))
        experiment.warmup()
        controller = experiment.cluster.controller("c1")
        driver = CbenchDriver(experiment.sim, controller,
                              burst_size=300, burst_gap_ms=4.0,
                              duration_ms=8000.0, sample_interval_ms=500.0)
        driver.start()
        experiment.run(9000.0)
        rows = [[f"{s.time_ms:.0f}", f"{s.packet_in_rate_per_s:.0f}",
                 f"{s.flow_mod_rate_per_s:.0f}"] for s in driver.samples]
        print()
        print(format_table(
            "Fig 4e — Cbench bursts vs FLOW_MOD output (collapse to zero)",
            ["t (ms)", "PACKET_IN/s", "FLOW_MOD/s"], rows))
        return driver.samples, controller

    samples, controller = run_once(benchmark, run)
    flow_rates = [s.flow_mod_rate_per_s for s in samples]
    pin_rates = [s.packet_in_rate_per_s for s in samples]
    # Bursty input far exceeds the service capacity...
    assert max(pin_rates) > 20_000
    # ...the controller produced FLOW_MODs initially...
    assert max(flow_rates) > 0
    # ...and output collapsed to zero rather than plateauing.
    assert flow_rates[-1] == 0.0
    assert controller.pipeline.stats.stalled_drops > 0
