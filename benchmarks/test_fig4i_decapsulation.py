"""Fig 4i — ODL decapsulation overhead for replicated PACKET_INs.

Paper: replicated messages reach ODL secondaries doubly encapsulated
(§VI-A); stripping them costs <150 µs for 80% of packets across all
PACKET_IN rates, and the custom forwarding module adds <1 ms at the 95th
percentile over vanilla ODL's.

Two parts: (1) a pure-computation microbenchmark of the decapsulation
routine itself (pytest-benchmark statistics), and (2) the end-to-end CDF
collected from a live JURY-on-ODL run at several rates.
"""

from conftest import run_once

from repro.api import Jury
from repro.config import JuryConfig
from repro.harness.metrics import percentile
from repro.harness.reporting import format_table
from repro.workloads.traffic import TrafficDriver

RATES = (100.0, 300.0, 500.0)


def collect_samples(rate: float, seed: int):
    experiment = Jury.experiment(JuryConfig(kind="odl", n=7, k=6, switches=24,
                                  seed=seed, timeout_ms=1500.0,
                                  keep_results=False))
    experiment.warmup()
    driver = TrafficDriver(experiment.sim, experiment.topology,
                           packet_in_rate_per_s=rate, duration_ms=1500.0)
    driver.start()
    experiment.run(2500.0)
    return experiment.jury.decapsulation_samples()


def test_fig4i_decapsulation_cdf(benchmark):
    def run():
        rows = []
        per_rate = {}
        for index, rate in enumerate(RATES):
            samples = collect_samples(rate, seed=70 + index)
            p80 = percentile(samples, 0.80)
            p95 = percentile(samples, 0.95)
            per_rate[rate] = (samples, p80)
            rows.append([f"{rate:.0f}/s", len(samples),
                         f"{1000 * p80:.0f}", f"{1000 * p95:.0f}"])
        print()
        print(format_table(
            "Fig 4i — decapsulation overhead at ODL secondaries "
            "(paper: 80% < 150 us)",
            ["PACKET_IN rate", "samples", "p80 (us)", "p95 (us)"], rows))
        return per_rate

    per_rate = run_once(benchmark, run)
    for rate, (samples, p80) in per_rate.items():
        assert len(samples) > 50, f"too few samples at {rate}"
        # 80% of packets decapsulate in under 150 µs at every rate.
        assert p80 < 0.150, f"p80={1000 * p80:.0f}us at {rate}/s"


def test_decapsulation_microbench(benchmark):
    """Wall-clock cost of the decapsulation routine itself."""
    import random

    from repro.net.packet import tcp_packet
    from repro.openflow.encap import decapsulate_packet_in, encapsulate_packet_in
    from repro.openflow.messages import PacketIn

    rng = random.Random(1)
    inner = PacketIn(dpid=5, in_port=3,
                     packet=tcp_packet("a", "b", "1.1.1.1", "2.2.2.2", 1, 2))
    outer = encapsulate_packet_in(inner, ovs_dpid=99, ovs_port=1)
    result = benchmark(lambda: decapsulate_packet_in(outer, rng))
    assert result[0] is inner
