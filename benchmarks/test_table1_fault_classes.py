"""Table 1 — the three classes of faulty controller actions, all validated.

Paper: T1 (reactive; wrong C and/or N) validated via consensus on replicated
execution; T2 (proactive; C and N inconsistent) via the network/cache sanity
check; T3 (proactive; C = N but wrong) only via administrator policies
(marked 3* in the table). The benchmark injects one representative fault of
each class into an n=7, k=6 cluster and prints the validation matrix.
"""

from conftest import run_once

from repro.faults import (
    FaultyProactiveFault,
    LinkFailureFault,
    UndesirableFlowModFault,
)
from repro.faults.base import run_scenario
from repro.faults.injector import default_policy_engine
from repro.api import Jury
from repro.config import JuryConfig
from repro.harness.reporting import format_table

CLASSES = [
    ("T1", "reactive", "either C, or N, or both",
     lambda: LinkFailureFault(1, 2)),
    ("T2", "proactive", "C or N, or both but C != N",
     lambda: UndesirableFlowModFault("c2")),
    ("T3", "proactive", "both C and N where C = N",
     lambda: FaultyProactiveFault("c3")),
]


def build(seed, with_policies=True):
    experiment = Jury.experiment(JuryConfig(
        kind="onos", n=7, k=6, switches=12, seed=seed, timeout_ms=250.0,
        policy_engine=default_policy_engine() if with_policies else None,
        with_northbound=True))
    experiment.warmup()
    return experiment


def test_table1_fault_class_validation(benchmark):
    def run():
        rows = []
        outcomes = {}
        for index, (klass, nature, action, factory) in enumerate(CLASSES):
            result = run_scenario(build(seed=55 + index), factory())
            detected = "yes" if result.detected else "NO"
            mechanism = (result.matching_alarms[0].reason.value
                         if result.matching_alarms else "-")
            suffix = "*" if klass == "T3" else ""
            rows.append([klass, nature, action, detected + suffix, mechanism])
            outcomes[klass] = result.detected
        # The 3* footnote: T3 validation requires policies.
        no_policy = run_scenario(build(seed=58, with_policies=False),
                                 FaultyProactiveFault("c3"))
        outcomes["T3-without-policies"] = no_policy.detected
        print()
        print(format_table(
            "Table 1 — classes of faulty controller actions "
            "(* = requires policies)",
            ["class", "nature", "faulty action", "validated", "mechanism"],
            rows))
        print("\nT3 without policies detected:",
              outcomes["T3-without-policies"],
              "(the paper's 3*: only possible via policies)")
        return outcomes

    outcomes = run_once(benchmark, run)
    assert outcomes["T1"] and outcomes["T2"] and outcomes["T3"]
    assert not outcomes["T3-without-policies"]
