"""Ablations of JURY's design choices (DESIGN.md §5).

1. **State-aware consensus** — disable the §IV-C snapshot grouping and
   measure false positives under eventual-consistency churn: the grouping
   is what keeps benign transient asynchrony from alarming.
2. **Adaptive timeouts** (§VIII future work) — compare false timeout alarms
   under a too-tight static timeout vs the adaptive policy.
3. **Replication factor** — detection coverage vs JURY network overhead as
   k grows: the practicality trade-off behind "k randomly chosen".
"""

from conftest import run_once

from repro.core.timeouts import AdaptiveTimeout
from repro.api import Jury
from repro.config import JuryConfig
from repro.harness.reporting import format_table
from repro.workloads.traffic import TrafficDriver


def churny_run(seed, state_aware=True, timeout=None, timeout_ms=250.0, k=6):
    experiment = Jury.experiment(JuryConfig(kind="onos", n=7, k=k, switches=24,
                                  seed=seed, timeout_ms=timeout_ms,
                                  state_aware=state_aware))
    if timeout is not None:
        experiment.validator.timeout = timeout
    experiment.warmup()
    driver = TrafficDriver(experiment.sim, experiment.topology,
                           packet_in_rate_per_s=4000.0, duration_ms=1200.0,
                           host_join_rate_per_s=10.0,
                           link_churn_rate_per_s=2.0)
    driver.start()
    experiment.begin_window()
    experiment.run(1800.0)
    return experiment


def test_ablation_state_aware_consensus(benchmark):
    def run():
        with_grouping = churny_run(seed=130, state_aware=True)
        without_grouping = churny_run(seed=130, state_aware=False)
        fp_on = with_grouping.validator.false_positive_rate()
        fp_off = without_grouping.validator.false_positive_rate()
        print(f"\nState-aware consensus: FP {100 * fp_on:.2f}% with "
              f"snapshot grouping vs {100 * fp_off:.2f}% without")
        return fp_on, fp_off

    fp_on, fp_off = run_once(benchmark, run)
    # The grouping keeps benign churn quiet; naive majority does not.
    assert fp_on < 0.01
    assert fp_off > 2 * fp_on


def test_ablation_adaptive_timeout(benchmark):
    def run():
        tight = churny_run(seed=131, timeout_ms=30.0)  # too strict (§VIII)
        adaptive = churny_run(seed=131, timeout=AdaptiveTimeout(
            initial_ms=30.0, window=200, quantile=0.95, margin=1.4))
        fp_tight = tight.validator.false_positive_rate()
        fp_adaptive = adaptive.validator.false_positive_rate()
        print(f"\nTimeouts under churn: static 30 ms -> "
              f"{100 * fp_tight:.2f}% FP; adaptive -> "
              f"{100 * fp_adaptive:.2f}% FP "
              f"(final timeout {adaptive.validator.timeout.current():.0f} ms)")
        return fp_tight, fp_adaptive

    fp_tight, fp_adaptive = run_once(benchmark, run)
    # "A lower timeout can raise numerous false alarms" (§VIII); the
    # adaptive policy tracks the latency trend and quells them.
    assert fp_tight > 0.01
    assert fp_adaptive < fp_tight / 3


def test_ablation_replication_factor(benchmark):
    def run():
        rows = []
        results = {}
        for k in (1, 2, 4, 6):
            experiment = churny_run(seed=132, k=k)
            overheads = experiment.overhead_mbps()
            jury_mbps = overheads["replication"] + overheads["validator"]
            stats = experiment.detection_stats()
            results[k] = (jury_mbps, stats.p95)
            rows.append([f"k={k}", f"{jury_mbps:.1f}",
                         f"{stats.median:.0f}", f"{stats.p95:.0f}"])
        print()
        print(format_table(
            "Ablation — replication factor: overhead vs detection latency",
            ["config", "JURY Mbps", "median det ms", "p95 det ms"], rows))
        return results

    results = run_once(benchmark, run)
    # Overhead grows with k; latency grows with k. Both are the price of
    # stronger majorities.
    assert results[1][0] < results[6][0]
    assert results[1][1] < results[6][1] * 1.5
