"""Fig 4c — ODL detection-time CDFs for k secondary / m faulty controllers.

Paper: ~500 ms (k=6, m=0) and ~700 ms (k=6, m=2) at ~500 PACKET_IN/s —
significantly higher than ONOS "because ONOS is much more responsive than
ODL even when the controller's FLOW_MOD generation pipeline saturates".
Reproduction targets: ordering in k and m, ODL ≫ ONOS, magnitudes within a
factor of ~2.
"""

from conftest import odl_detection_run, onos_detection_run, run_once

from repro.harness.reporting import format_table

RATE = 500.0

CONFIGS = [
    ("k=2, m=0", 2, ()),
    ("k=4, m=0", 4, ()),
    ("k=6, m=0", 6, ()),
    ("k=6, m=2", 6, ("c6", "c7")),
]


def test_fig4c_odl_detection_cdfs(benchmark):
    def run():
        rows = []
        p95s = {}
        for label, k, slow in CONFIGS:
            experiment = odl_detection_run(k=k, rate=RATE,
                                           slow_controllers=slow)
            stats = experiment.detection_stats()
            rows.append([label, stats.count, f"{stats.median:.0f}",
                         f"{stats.p95:.0f}"])
            p95s[label] = stats.p95
        print()
        print(format_table(
            "Fig 4c — ODL detection times (ms), n=7, ~500 PACKET_IN/s",
            ["config", "samples", "median", "p95"], rows))
        # The ONOS/ODL gap the paper highlights:
        onos = onos_detection_run(k=6, rate=RATE, duration_ms=2500.0)
        onos_p95 = onos.detection_stats().p95
        print(f"\nONOS p95 at the same rate: {onos_p95:.0f} ms "
              f"(ODL/ONOS ratio {p95s['k=6, m=0'] / max(onos_p95, 1e-9):.1f}x)")
        return p95s, onos_p95

    p95s, onos_p95 = run_once(benchmark, run)
    assert p95s["k=2, m=0"] < p95s["k=6, m=0"]
    assert p95s["k=6, m=2"] > p95s["k=6, m=0"]
    # Magnitudes: paper ~500/~700 ms; accept a factor of ~2.
    assert 250 < p95s["k=6, m=0"] < 1000
    assert 350 < p95s["k=6, m=2"] < 1400
    # ODL detection is several times slower than ONOS at the same rate.
    assert p95s["k=6, m=0"] > 3 * onos_p95
