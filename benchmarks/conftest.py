"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures and prints
the same rows/series the paper reports. Simulated experiments run once per
benchmark (``benchmark.pedantic(..., rounds=1)``) — re-running a multi-second
discrete-event simulation dozens of times would measure nothing new — while
pure-computation benchmarks (policy validation, decapsulation) use normal
pytest-benchmark statistics.

Windows are shorter than the paper's 60 s runs; the paper's *shapes* (who
wins, by what factor, where crossovers and saturation points fall) are the
reproduction targets, not absolute testbed numbers. See EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.faults.injector import default_policy_engine
from repro.api import Jury
from repro.config import JuryConfig
from repro.workloads.traffic import TrafficDriver


def run_once(benchmark, fn):
    """Run a whole-experiment benchmark exactly once and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def onos_detection_run(k: int, rate: float, seed: int = 11,
                       slow_controllers=(), slowdown: float = 3.0,
                       duration_ms: float = 1200.0, timeout_ms: float = 400.0):
    """One ONOS detection-time measurement (Fig 4a/4b building block).

    ``slow_controllers`` marks m replicas as faulty (timing-degraded), the
    paper's m>0 configurations.
    """
    experiment = Jury.experiment(JuryConfig(kind="onos", n=7, k=k, switches=24,
                                  seed=seed, timeout_ms=timeout_ms))
    for cid in slow_controllers:
        controller = experiment.cluster.controller(cid)
        controller.profile.jitter_median_ms *= slowdown
    experiment.warmup()
    driver = TrafficDriver(experiment.sim, experiment.topology,
                           packet_in_rate_per_s=rate, duration_ms=duration_ms)
    driver.start()
    experiment.begin_window()
    experiment.run(duration_ms + 600.0)
    return experiment


def odl_detection_run(k: int, rate: float, seed: int = 11,
                      slow_controllers=(), slowdown: float = 3.0,
                      duration_ms: float = 2500.0, timeout_ms: float = 1500.0):
    """One ODL detection-time measurement (Fig 4c building block)."""
    experiment = Jury.experiment(JuryConfig(kind="odl", n=7, k=k, switches=24,
                                  seed=seed, timeout_ms=timeout_ms))
    for cid in slow_controllers:
        controller = experiment.cluster.controller(cid)
        controller.profile.jitter_median_ms *= slowdown
    experiment.warmup()
    driver = TrafficDriver(experiment.sim, experiment.topology,
                           packet_in_rate_per_s=rate, duration_ms=duration_ms)
    driver.start()
    experiment.begin_window()
    experiment.run(duration_ms + 1200.0)
    return experiment


def throughput_run(kind: str, n: int, rate: float, k=None, seed: int = 5,
                   duration_ms: float = 1000.0, keep_results: bool = False):
    """One throughput measurement point (Fig 4f/4g/4h building block)."""
    experiment = Jury.experiment(JuryConfig(kind=kind, n=n, k=k, switches=24, seed=seed,
                                  keep_results=keep_results, timeout_ms=200.0))
    experiment.warmup()
    driver = TrafficDriver(experiment.sim, experiment.topology,
                           packet_in_rate_per_s=rate, duration_ms=duration_ms)
    driver.start()
    experiment.begin_window()
    experiment.run(duration_ms)
    return experiment.throughput()


@pytest.fixture
def policy_engine():
    return default_policy_engine()
