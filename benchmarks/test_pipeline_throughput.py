"""Sequential vs. sharded validation pipeline throughput.

Starts the repo's recorded perf trajectory: `repro.harness.bench.compare`
runs one synthetic 2k+2 response workload through the sequential
:class:`~repro.core.validator.Validator` and through the N-shard
:class:`~repro.core.pipeline.ValidationPipeline`, measures sustained
ingest+decide throughput and per-chunk decision latency, and writes the
result to ``BENCH_validator_pipeline.json`` (sequential and sharded ops/s,
p50/p99 latency, speedup, shard/queue/batch counters).

The pipeline only counts as a win if it is both *faster* (≥1.5× at N=4,
the ISSUE acceptance floor) and *identical* — the payload carries the
canonical-alarm-stream comparison so a perf regression can never hide a
correctness regression.
"""

from __future__ import annotations

import pathlib

from repro.harness.bench import compare, write_payload

from conftest import run_once

TRIGGERS = 8_000
OUTPUT = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_validator_pipeline.json"


def test_pipeline_vs_sequential_throughput(benchmark):
    payload = run_once(benchmark, lambda: compare(
        triggers=TRIGGERS, k=6, seed=0, fault_rate=0.02, shards=4))
    write_payload(payload, OUTPUT)

    sequential = payload["sequential"]
    pipeline = payload["pipeline"]
    print(f"\nsequential: {sequential['ops_per_s']:,.0f} triggers/s "
          f"(p50 {sequential['p50_ms']:.4f} ms, p99 {sequential['p99_ms']:.4f} ms)")
    print(f"pipeline N=4: {pipeline['ops_per_s']:,.0f} triggers/s "
          f"(p50 {pipeline['p50_ms']:.4f} ms, p99 {pipeline['p99_ms']:.4f} ms)")
    print(f"speedup: {payload['speedup']:.2f}x -> {OUTPUT.name}")

    assert payload["alarm_streams_identical"] is True, \
        "pipeline and sequential alarm streams must be byte-identical"
    assert sequential["decided"] == pipeline["decided"] == TRIGGERS
    # The acceptance floor from ISSUE.md: N=4 sharding buys >=1.5x on the
    # benchmark workload. Measured headroom is ~1.7-1.8x.
    assert payload["speedup"] >= 1.5
