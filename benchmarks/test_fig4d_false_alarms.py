"""Fig 4d — false alarms on benign traces (LBNL / UNIV / SMIA).

Paper: replaying three benign traces against JURY-enhanced ONOS with the
worst-case k=6, m=2 configuration and the empirically derived validation
timeout yields a false-positive rate of just 0.35% across all traces.
Reproduction target: sub-percent FP rate on every trace with two degraded
replicas present.
"""

from conftest import run_once

from repro.api import Jury
from repro.config import JuryConfig
from repro.harness.reporting import format_table
from repro.workloads.traces import ALL_TRACES, TraceReplayDriver

DURATION_MS = 2000.0
TIMEOUT_MS = 250.0  # ~the k=6,m=2 95th-percentile timeout (Fig 4a)


def replay(profile, seed):
    experiment = Jury.experiment(JuryConfig(kind="onos", n=7, k=6, switches=24,
                                  seed=seed, timeout_ms=TIMEOUT_MS))
    # m=2: two replicas run degraded (timing-faulty but not dead).
    for cid in ("c6", "c7"):
        experiment.cluster.controller(cid).profile.jitter_median_ms *= 3.0
    experiment.warmup()
    driver = TraceReplayDriver(experiment.sim, experiment.topology,
                               profile, duration_ms=DURATION_MS)
    driver.start()
    experiment.begin_window()
    experiment.run(DURATION_MS + 600.0)
    return experiment


def test_fig4d_false_alarms_benign_traces(benchmark):
    def run():
        rows = []
        rates = {}
        for index, profile in enumerate(ALL_TRACES):
            experiment = replay(profile, seed=40 + index)
            validator = experiment.validator
            stats = experiment.detection_stats()
            fp = validator.false_positive_rate()
            rates[profile.name] = fp
            rows.append([profile.name, validator.triggers_decided,
                         validator.triggers_alarmed, f"{100 * fp:.3f}%",
                         f"{stats.median:.0f}", f"{stats.p95:.0f}"])
        print()
        print(format_table(
            "Fig 4d — benign traces, k=6 m=2 (paper: 0.35% FP overall)",
            ["trace", "triggers", "alarms", "FP rate",
             "median det ms", "p95 det ms"], rows))
        overall = sum(rates.values()) / len(rates)
        print(f"\nMean FP rate across traces: {100 * overall:.3f}%")
        return rates

    rates = run_once(benchmark, run)
    # Sub-percent false positives on every benign trace.
    for name, rate in rates.items():
        assert rate < 0.02, f"{name}: FP rate {rate:.4f} too high"
