"""§VII-B.2(3) — policy validation cost scales linearly with policy count.

Paper: "as the policies increase from 100 to 1K, the validation time
increases linearly from 200 µs to 1.2 ms. Even with 10K policies, JURY
takes just 11.2 ms for response validation."

These are genuine wall-clock microbenchmarks (pytest-benchmark statistics):
the engine checks one consensus-approved response against simulated policy
sets of growing size.
"""

import pytest

from repro.core.consensus import ConsensusOutcome
from repro.policy.engine import PolicyEngine
from repro.policy.language import Policy

CACHE_ENTRY = (
    ("cache", "FlowsDB", ("flow", 3, (("dl_dst", "aa:bb"),), 100), "create",
     (("actions", (("output", 2),)), ("command", "add"), ("dpid", 3),
      ("match", (("dl_dst", "aa:bb"),)), ("priority", 100),
      ("state", "pending_add"))),
)


def simulated_policies(count: int):
    """A policy set like the paper's simulated policies: non-matching
    constraints over many cache/controller combinations, so the scan runs
    its full length (worst case)."""
    return [
        Policy(allow=False, controller=f"cx{i % 97}",
               cache=("ArpDB", "HostsDB", "EdgesDB")[i % 3],
               operation=("create", "update", "delete")[i % 3])
        for i in range(count)
    ]


def outcome():
    return ConsensusOutcome(ok=True, primary_id="c1",
                            primary_cache_entry=CACHE_ENTRY)


@pytest.mark.parametrize("count", [100, 1000, 10000])
def test_policy_validation_scales_linearly(benchmark, count):
    engine = PolicyEngine(simulated_policies(count))
    result = benchmark(lambda: engine.check_decision(
        outcome(), external=True, mastership_lookup=lambda dpid: "c1"))
    assert result == []  # no violations among simulated policies


def test_policy_validation_10k_under_paper_bound(benchmark):
    """10K policies validate within the paper's ~11.2 ms."""
    engine = PolicyEngine(simulated_policies(10_000))
    benchmark(lambda: engine.check_decision(
        outcome(), external=True, mastership_lookup=lambda dpid: "c1"))
    mean_s = benchmark.stats.stats.mean
    assert mean_s < 0.0112 * 4, f"10K policies took {1000 * mean_s:.1f} ms"
