"""§VII-B.2(1) — JURY's network overhead vs inter-controller traffic.

Paper (ONOS, n=7, full switch-to-controller connectivity, ~5.5K
PACKET_IN/s): inter-controller Hazelcast traffic dominates at ~142 Mbps
(96.3%), while JURY's replicated PACKET_INs + validator traffic total just
~14.2 / ~25.2 / ~36.1 Mbps for k = 2 / 4 / 6 (8.8% / 14.6% / 19.6%).
ODL at 500 PACKET_IN/s: 37 Mbps Infinispan vs 12 Mbps JURY.

Reproduction targets: inter-controller traffic dominates JURY's overhead at
every k; JURY overhead grows roughly linearly with k.
"""

from conftest import run_once

from repro.api import Jury
from repro.config import JuryConfig
from repro.harness.reporting import format_table
from repro.workloads.traffic import TrafficDriver


def measure(kind, k, rate, seed, duration_ms=1000.0, timeout_ms=400.0):
    experiment = Jury.experiment(JuryConfig(kind=kind, n=7, k=k, switches=24,
                                  seed=seed, timeout_ms=timeout_ms,
                                  keep_results=False))
    experiment.warmup()
    driver = TrafficDriver(experiment.sim, experiment.topology,
                           packet_in_rate_per_s=rate,
                           duration_ms=duration_ms)
    driver.start()
    experiment.begin_window()
    experiment.run(duration_ms)
    overheads = experiment.overhead_mbps()
    overheads["packet_in_rate"] = experiment.throughput().packet_in_rate_per_s
    return overheads


def test_network_overhead_onos(benchmark):
    def run():
        rows = []
        results = {}
        for k in (2, 4, 6):
            data = measure("onos", k, rate=8000.0, seed=45 + k)
            jury_mbps = data["replication"] + data["validator"]
            total = data["inter_controller"] + jury_mbps
            results[k] = (data["inter_controller"], jury_mbps)
            rows.append([f"k={k}", f"{data['packet_in_rate']:.0f}",
                         f"{data['inter_controller']:.1f}",
                         f"{data['replication']:.1f}",
                         f"{data['validator']:.1f}",
                         f"{100 * jury_mbps / total:.1f}%"])
        print()
        print(format_table(
            "§VII-B.2 — ONOS n=7 network traffic (Mbps) "
            "(paper: 142 Mbps store vs 14.2/25.2/36.1 JURY)",
            ["config", "PACKET_IN/s", "inter-controller", "replication",
             "validator", "JURY share"], rows))
        return results

    results = run_once(benchmark, run)
    for k, (store_mbps, jury_mbps) in results.items():
        # Inter-controller store traffic dominates JURY's overhead.
        assert store_mbps > 2 * jury_mbps, f"k={k}"
    # JURY overhead grows with k (roughly linearly).
    assert results[2][1] < results[4][1] < results[6][1]
    assert results[6][1] < 2.5 * results[2][1] * 3  # sane growth


def test_network_overhead_odl(benchmark):
    def run():
        data = measure("odl", k=6, rate=500.0, seed=49,
                       duration_ms=1500.0, timeout_ms=1500.0)
        jury_mbps = data["replication"] + data["validator"]
        print(f"\nODL n=7 k=6 @ {data['packet_in_rate']:.0f} PACKET_IN/s: "
              f"inter-controller {data['inter_controller']:.1f} Mbps, "
              f"JURY {jury_mbps:.1f} Mbps "
              "(paper: 37 vs 12 Mbps)")
        return data["inter_controller"], jury_mbps

    store_mbps, jury_mbps = run_once(benchmark, run)
    assert store_mbps > jury_mbps
