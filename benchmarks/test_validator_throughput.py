"""Validator ingest throughput — the "near real time" claim (§I, §IV).

JURY's validator is light-weight: it only detects inconsistencies, never
resolves them, so it must sustain the response stream of a loaded cluster
(2k+2 responses per trigger at thousands of triggers per second). This
wall-clock microbenchmark measures sustained ingest+decide throughput of
the Algorithm 1 implementation.
"""

from repro.core.responses import Response, ResponseKind
from repro.core.timeouts import StaticTimeout
from repro.core.validator import Validator
from repro.sim.simulator import Simulator

CACHE = (("cache", "FlowsDB", ("flow", 1, (), 100), "create",
          (("actions", (("output", 2),)), ("command", "add"), ("dpid", 1),
           ("match", ()), ("priority", 100), ("state", "pending_add"))),)
NET = (("flow_mod", 1, "add", (), (("output", 2),), 100),)
COMBINED = (CACHE, NET)


def make_batch(tau_base: int, k: int = 6, count: int = 200):
    """``count`` triggers' worth of full external response sets."""
    digest = (("c1", 5),)
    batches = []
    for i in range(count):
        tau = ("ext", tau_base + i)
        responses = [
            Response("c1", tau, ResponseKind.NETWORK_WRITE, NET,
                     state_digest=digest),
            Response("c1", tau, ResponseKind.CACHE_UPDATE, CACHE,
                     state_digest=digest, origin="c1"),
        ]
        for s in range(k):
            sid = f"s{s}"
            responses.append(Response(sid, tau, ResponseKind.CACHE_UPDATE,
                                      CACHE, state_digest=digest, origin="c1"))
            responses.append(Response(sid, tau, ResponseKind.REPLICA_RESULT,
                                      COMBINED, tainted=True,
                                      state_digest=digest, primary_hint="c1"))
        batches.append(responses)
    return batches


def test_validator_ingest_throughput(benchmark):
    sim = Simulator()
    validator = Validator(sim, k=6, timeout=StaticTimeout(10_000.0),
                          keep_results=False)
    counter = {"tau": 0}

    def ingest_200_triggers():
        batches = make_batch(counter["tau"], k=6, count=200)
        counter["tau"] += 200
        for responses in batches:
            for response in responses:
                validator.ingest(response)

    benchmark(ingest_200_triggers)
    mean_s = benchmark.stats.stats.mean
    triggers_per_s = 200 / mean_s
    print(f"\nValidator decides ~{triggers_per_s:,.0f} full 2k+2 triggers/s "
          f"({triggers_per_s * 14:,.0f} responses/s) at k=6")
    # Near-real-time: the decision path must be in the same league as the
    # paper's loaded-cluster trigger rates (~5.5K PACKET_IN/s); a generous
    # floor keeps the assertion robust to slow CI machines.
    assert triggers_per_s > 2500
