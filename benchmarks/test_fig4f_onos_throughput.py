"""Fig 4f — vanilla ONOS FLOW_MOD vs PACKET_IN rate across cluster sizes.

Paper: FLOW_MOD throughput tracks the PACKET_IN rate and saturates at ~5K/s
when PACKET_INs reach ~7.5K/s; clustering barely matters (<8% overhead at
n=7) because Hazelcast multicasts state updates.
"""

from conftest import run_once, throughput_run

from repro.harness.reporting import format_table

SIZES = (1, 3, 5, 7)
RATES = (2000.0, 5000.0, 7500.0, 10000.0)


def test_fig4f_onos_cluster_throughput(benchmark):
    def run():
        table = {}
        rows = []
        for n in SIZES:
            for rate in RATES:
                point = throughput_run("onos", n=n, rate=rate)
                table[(n, rate)] = point
                rows.append([f"n={n}", f"{rate:.0f}",
                             f"{point.packet_in_rate_per_s:.0f}",
                             f"{point.flow_mod_rate_per_s:.0f}"])
        print()
        print(format_table(
            "Fig 4f — vanilla ONOS FLOW_MOD vs PACKET_IN (saturation ~5K)",
            ["cluster", "requested/s", "PACKET_IN/s", "FLOW_MOD/s"], rows))
        return table

    table = run_once(benchmark, run)
    # Below saturation FLOW_MOD tracks PACKET_IN...
    low = table[(7, 2000.0)]
    assert low.flow_mod_rate_per_s > 0.5 * low.packet_in_rate_per_s
    # ...saturating in the ~5K/s region at high input rates.
    peaks = {n: max(table[(n, r)].flow_mod_rate_per_s for r in RATES)
             for n in SIZES}
    for n in SIZES:
        assert 4000 < peaks[n] < 6500, f"n={n} peak {peaks[n]:.0f}"
    # Clustering overhead at the saturation point is small (<8% in the
    # paper; allow a little slack).
    overhead = 1.0 - peaks[7] / peaks[1]
    print(f"\nClustering overhead at saturation (n=7 vs n=1): "
          f"{100 * overhead:.1f}%")
    assert overhead < 0.12
