"""Fig 4g — vanilla ODL FLOW_MOD vs PACKET_IN rate across cluster sizes.

Paper: "vanilla ODL's performance is significantly hampered by any amount
of clustering. In cluster mode but with a single node (n=1), ODL saturates
at a peak FLOW_MOD rate of ~800, and at n=7, it drops down to ~140. Thus,
ODL's cluster mode performance is limited by Infinispan."
"""

from conftest import run_once, throughput_run

from repro.harness.reporting import format_table

SIZES = (1, 3, 5, 7)
RATES = (200.0, 400.0, 800.0, 1200.0)


def test_fig4g_odl_cluster_throughput(benchmark):
    def run():
        table = {}
        rows = []
        for n in SIZES:
            for rate in RATES:
                point = throughput_run("odl", n=n, rate=rate,
                                       duration_ms=1500.0)
                table[(n, rate)] = point
                rows.append([f"n={n}", f"{rate:.0f}",
                             f"{point.packet_in_rate_per_s:.0f}",
                             f"{point.flow_mod_rate_per_s:.0f}"])
        print()
        print(format_table(
            "Fig 4g — vanilla ODL FLOW_MOD vs PACKET_IN (collapse with n)",
            ["cluster", "requested/s", "PACKET_IN/s", "FLOW_MOD/s"], rows))
        return table

    table = run_once(benchmark, run)
    peaks = {n: max(table[(n, r)].flow_mod_rate_per_s for r in RATES)
             for n in SIZES}
    print("\nPeak FLOW_MOD rates:", {n: f"{p:.0f}" for n, p in peaks.items()})
    # Paper: ~800 at n=1 collapsing to ~140 at n=7 (allow ~40% slack).
    assert 500 < peaks[1] < 1100
    assert 90 < peaks[7] < 230
    # Strictly decreasing with cluster size.
    assert peaks[1] > peaks[3] > peaks[7]
    # The collapse factor is large (paper: ~5.7x).
    assert peaks[1] / peaks[7] > 3.5
