"""§VII-A1 — detection accuracy in the worst-case configuration.

Paper: a driver program injects combinations of the synthetic and adapted
real faults with n=7, full replication (k=6) and two faulty replicas (m=2);
over 10 repetitions "in each case the JURY-enhanced controller successfully
detected the fault within ~129 ms for ONOS and ~700 ms for ODL, well within
the validation timeout".

The reproduction runs the fault catalog over fresh clusters (3 repetitions
per scenario to keep runtime sane) with m=2 degraded replicas present and
asserts a 100% detection rate with detection inside the settle bound.
"""

from conftest import run_once

from repro.faults import (
    FaultyProactiveFault,
    LinkFailureFault,
    OdlFlowModDropFault,
    OdlIncorrectFlowModFault,
    OnosDatabaseLockFault,
    UndesirableFlowModFault,
)
from repro.faults.injector import FaultDriver, default_policy_engine
from repro.api import Jury
from repro.config import JuryConfig
from repro.harness.reporting import format_table

REPETITIONS = 3


def factory_for(kind):
    timeout = 250.0 if kind == "onos" else 1200.0

    def build(seed):
        experiment = Jury.experiment(JuryConfig(
            kind=kind, n=7, k=6, switches=12, seed=seed,
            timeout_ms=timeout, policy_engine=default_policy_engine(),
            with_northbound=True))
        # m=2: two degraded (timing-faulty) replicas alongside the injected
        # fault, per the paper's worst-case setup.
        for cid in ("c6", "c7"):
            experiment.cluster.controller(cid).profile.jitter_median_ms *= 3.0
        return experiment

    return build


SCENARIOS = [
    ("onos", lambda: OnosDatabaseLockFault("c1")),
    ("onos", lambda: LinkFailureFault(1, 2)),
    ("onos", lambda: UndesirableFlowModFault("c2")),
    ("onos", lambda: FaultyProactiveFault("c3")),
    ("odl", lambda: OdlFlowModDropFault("c1")),
    ("odl", lambda: OdlIncorrectFlowModFault("c1")),
]


def test_detection_accuracy_worst_case(benchmark):
    def run():
        rows = []
        reports = []
        for index, (kind, factory) in enumerate(SCENARIOS):
            driver = FaultDriver(factory_for(kind))
            report = driver.run(factory, repetitions=REPETITIONS,
                                base_seed=200 + 50 * index)
            reports.append((kind, report))
            rows.append([report.scenario, kind,
                         f"{report.detected}/{report.runs}",
                         f"{report.attribution_correct}/{report.runs}",
                         f"{report.max_detection_ms:.0f} ms"
                         if report.max_detection_ms else "-"])
        print()
        print(format_table(
            "§VII-A1 — fault detection, n=7 k=6 m=2 "
            f"({REPETITIONS} repetitions each)",
            ["scenario", "controller", "detected", "attributed",
             "max detection"], rows))
        return reports

    reports = run_once(benchmark, run)
    for kind, report in reports:
        assert report.detection_rate == 1.0, report.scenario
        assert report.attribution_correct == report.runs, report.scenario
