"""Appendix — the four additional reported faults, all detected.

1. ODL flow deletion failure (T1): REST deletion locks the controller up.
2. ONOS link detection inconsistent (T1): edge writes sporadically lost.
3. ODL flow instantiation failure (T2): restconf OK, no FLOW_MOD emitted.
4. ONOS flow rules stuck in PENDING_ADD (T2): store/switch mismatch.
"""

from conftest import run_once

from repro.faults import (
    FlowDeletionFailureFault,
    FlowInstantiationFailureFault,
    LinkDetectionInconsistencyFault,
    PendingAddFault,
)
from repro.faults.base import run_scenario
from repro.faults.injector import default_policy_engine
from repro.api import Jury
from repro.config import JuryConfig
from repro.harness.reporting import format_table

SCENARIOS = [
    ("odl", lambda: FlowDeletionFailureFault("c1"), "Appendix 1 (T1)"),
    ("onos", lambda: LinkDetectionInconsistencyFault(2, 3), "Appendix 2 (T1)"),
    ("odl", lambda: FlowInstantiationFailureFault("c1"), "Appendix 3 (T2)"),
    ("onos", lambda: PendingAddFault(4), "Appendix 4 (T2)"),
]


def test_appendix_faults_detected(benchmark):
    def run():
        rows = []
        outcomes = []
        for index, (kind, factory, reference) in enumerate(SCENARIOS):
            experiment = Jury.experiment(JuryConfig(
                kind=kind, n=7, k=6, switches=12, seed=120 + index,
                timeout_ms=250.0 if kind == "onos" else 1200.0,
                policy_engine=default_policy_engine(), with_northbound=True))
            experiment.warmup()
            scenario = factory()
            result = run_scenario(experiment, scenario)
            outcomes.append(result)
            rows.append([scenario.name, reference,
                         "YES" if result.detected else "NO",
                         result.matching_alarms[0].reason.value
                         if result.matching_alarms else "-",
                         f"{result.detection_ms:.0f} ms"
                         if result.detection_ms else "-"])
        print()
        print(format_table("Appendix faults — detection matrix",
                           ["scenario", "paper ref", "detected",
                            "mechanism", "latency"], rows))
        return outcomes

    outcomes = run_once(benchmark, run)
    assert all(result.detected for result in outcomes)
    assert all(result.attribution_correct for result in outcomes)
