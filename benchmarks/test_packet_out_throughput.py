"""§VII-B.1 — PACKET_OUT throughput far exceeds FLOW_MOD throughput.

Paper: "the PACKET_OUT throughput in ONOS saturates at ~220K with Cbench,
while the FLOW_MOD throughput peaks at just ~5K. Thus, the controller's
FLOW_MOD pipeline is the real bottleneck", and PACKET_OUT throughput
"remains unaffected by any amount of clustering".

The reproduction drives an ARP-heavy workload (proxied ARPs produce
PACKET_OUTs with no FLOW_MODs, so they skip the flow subsystem entirely)
and compares the two rates; absolute PACKET_OUT ceilings are testbed
artifacts, the bottleneck asymmetry is the target.
"""

from conftest import run_once

from repro.api import Jury
from repro.config import JuryConfig
from repro.harness.reporting import format_table
from repro.workloads.traffic import TrafficDriver


def measure(n, arp_fraction, rate, seed):
    experiment = Jury.experiment(JuryConfig(kind="onos", n=n, switches=24, seed=seed, k=None, timeout_ms=200.0))
    experiment.warmup()
    driver = TrafficDriver(experiment.sim, experiment.topology,
                           packet_in_rate_per_s=rate, duration_ms=1000.0,
                           arp_fraction=arp_fraction)
    driver.start()
    experiment.begin_window()
    experiment.run(1000.0)
    return experiment.throughput()


def test_packet_out_vs_flow_mod_bottleneck(benchmark):
    def run():
        rows = []
        results = {}
        # ARP-only workload: every trigger elicits PACKET_OUTs, none FLOW_MODs.
        for n in (1, 7):
            point = measure(n, arp_fraction=1.0, rate=9000.0, seed=85 + n)
            results[("arp", n)] = point
            rows.append([f"ARP-only n={n}",
                         f"{point.packet_in_rate_per_s:.0f}",
                         f"{point.packet_out_rate_per_s:.0f}",
                         f"{point.flow_mod_rate_per_s:.0f}"])
        # Flow-heavy workload at the same input: FLOW_MODs cap out.
        point = measure(7, arp_fraction=0.0, rate=9000.0, seed=88)
        results[("flows", 7)] = point
        rows.append(["flow-heavy n=7",
                     f"{point.packet_in_rate_per_s:.0f}",
                     f"{point.packet_out_rate_per_s:.0f}",
                     f"{point.flow_mod_rate_per_s:.0f}"])
        print()
        print(format_table(
            "§VII-B.1 — PACKET_OUT vs FLOW_MOD throughput",
            ["workload", "PACKET_IN/s", "PACKET_OUT/s", "FLOW_MOD/s"], rows))
        return results

    results = run_once(benchmark, run)
    arp1 = results[("arp", 1)]
    arp7 = results[("arp", 7)]
    flows = results[("flows", 7)]
    # PACKET_OUTs are not flow-subsystem bound: no FLOW_MODs at all.
    assert arp7.flow_mods == 0
    # PACKET_OUT rate exceeds the FLOW_MOD saturation plateau.
    assert arp7.packet_out_rate_per_s > flows.flow_mod_rate_per_s
    # Clustering does not hurt the PACKET_OUT path (within noise).
    assert arp7.packet_out_rate_per_s > 0.85 * arp1.packet_out_rate_per_s
