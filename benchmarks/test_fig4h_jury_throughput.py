"""Fig 4h — JURY's impact on ONOS cluster throughput (n=7, k=2/4/6).

Paper: "Even in the worst case with full replication, i.e., n=7, k=6, we
observe that the FLOW_MOD throughput experiences a drop of <11% over the
base case of n=7. ... Thus, JURY is not the bottleneck in eliciting
FLOW_MOD messages under different cluster settings."
"""

from conftest import run_once, throughput_run

from repro.harness.reporting import format_table

RATES = (3000.0, 10000.0)
CONFIGS = [("without JURY", None), ("JURY k=2", 2), ("JURY k=4", 4),
           ("JURY k=6", 6)]


def test_fig4h_jury_throughput_impact(benchmark):
    def run():
        rows = []
        peaks = {}
        for label, k in CONFIGS:
            best = 0.0
            for rate in RATES:
                point = throughput_run("onos", n=7, rate=rate, k=k,
                                       duration_ms=800.0)
                best = max(best, point.flow_mod_rate_per_s)
                rows.append([label, f"{rate:.0f}",
                             f"{point.packet_in_rate_per_s:.0f}",
                             f"{point.flow_mod_rate_per_s:.0f}"])
            peaks[label] = best
        print()
        print(format_table(
            "Fig 4h — ONOS FLOW_MOD throughput with JURY (n=7)",
            ["config", "requested/s", "PACKET_IN/s", "FLOW_MOD/s"], rows))
        base = peaks["without JURY"]
        for label, _ in CONFIGS[1:]:
            drop = 100 * (1 - peaks[label] / base)
            print(f"{label}: {drop:.1f}% drop vs vanilla n=7")
        return peaks

    peaks = run_once(benchmark, run)
    base = peaks["without JURY"]
    # Worst case (full replication) costs <11% of FLOW_MOD throughput.
    assert peaks["JURY k=6"] > 0.89 * base
    assert peaks["JURY k=2"] >= peaks["JURY k=6"] * 0.97  # k=2 no worse
