"""Fig 4b — ONOS detection times vs PACKET_IN rate (k=6, m=0).

Paper: "with increase in PACKET_IN rate, validation time also increases" —
the load-dependent response-time tail of the controllers stretches the wait
for the full 2k+2 response complement.
"""

from conftest import onos_detection_run, run_once

from repro.harness.reporting import format_table

# Requested rates chosen to measure roughly the paper's 500/3000/5500.
RATES = [700.0, 4300.0, 8000.0]


def test_fig4b_onos_detection_vs_rate(benchmark):
    def run():
        rows = []
        medians = []
        for rate in RATES:
            experiment = onos_detection_run(k=6, rate=rate)
            stats = experiment.detection_stats()
            point = experiment.throughput()
            rows.append([f"{point.packet_in_rate_per_s:.0f}/s", stats.count,
                         f"{stats.median:.0f}", f"{stats.p95:.0f}"])
            medians.append(stats.median)
        print()
        print(format_table(
            "Fig 4b — ONOS detection times vs PACKET_IN rate (k=6, m=0)",
            ["measured PACKET_IN rate", "samples", "median ms", "p95 ms"],
            rows))
        return medians

    medians = run_once(benchmark, run)
    # Shape: detection time grows with the PACKET_IN rate.
    assert medians[0] < medians[-1]
