"""Single-server FIFO service stations.

Controller message pipelines are modeled as service stations: each incoming
unit of work (a PACKET_IN to process, a FLOW_MOD to emit, a store write to
replicate) occupies the server for a sampled service time. Stations expose
the two behaviours the paper's throughput experiments hinge on:

* **Saturation** — once work arrives faster than the service rate, the queue
  grows, and with a bounded queue the excess is dropped, so the completion
  rate plateaus at the service rate (Fig 4f/4g/4h).
* **Overload collapse** — Cbench's blocking bursts overwhelm ONOS: the TCP
  window closes and the FLOW_MOD output falls to *zero*, not to the service
  rate (Fig 4e). Stations model this with an optional collapse threshold:
  when the backlog exceeds it, the station stalls for a recovery period,
  serving nothing and dropping everything that arrives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.sim.latency import LatencyModel
from repro.sim.simulator import Simulator


def _BACKGROUND_WORK(work):  # sentinel "done" callback for hold()
    return None


@dataclass
class StationStats:
    """Counters maintained by a :class:`ServiceStation`."""

    submitted: int = 0
    completed: int = 0
    dropped: int = 0
    stalled_drops: int = 0
    busy_time: float = 0.0
    completion_times: list = field(default_factory=list)

    def throughput(self, window: float) -> float:
        """Completions per millisecond over ``window`` ms."""
        if window <= 0:
            return 0.0
        return self.completed / window


class ServiceStation:
    """A single-server FIFO queue with optional capacity and collapse.

    Parameters
    ----------
    sim:
        The driving simulator.
    service_time:
        Distribution of per-item service times (ms).
    capacity:
        Maximum queued items (excluding the one in service). ``None`` means
        unbounded. Arrivals beyond capacity are dropped.
    collapse_threshold:
        If set, a backlog beyond this many items stalls the station for
        ``collapse_recovery`` ms, during which every arrival is dropped and
        the existing queue is discarded. Models TCP zero-window collapse.
    collapse_recovery:
        Stall duration in ms after a collapse.
    name:
        Label for diagnostics.
    """

    def __init__(
        self,
        sim: Simulator,
        service_time: LatencyModel,
        capacity: Optional[int] = None,
        collapse_threshold: Optional[int] = None,
        collapse_recovery: float = 5000.0,
        name: str = "station",
        record_completions: bool = False,
    ):
        self.sim = sim
        self.service_time = service_time
        self.capacity = capacity
        self.collapse_threshold = collapse_threshold
        self.collapse_recovery = collapse_recovery
        self.name = name
        self.record_completions = record_completions
        self.stats = StationStats()
        self._rng = sim.fork_rng(f"station/{name}")
        self._queue: list = []
        self._busy = False
        self._stalled_until = 0.0

    # ------------------------------------------------------------------
    @property
    def backlog(self) -> int:
        """Items waiting (excluding the one in service)."""
        return len(self._queue)

    @property
    def stalled(self) -> bool:
        """True while the station is recovering from an overload collapse."""
        return self.sim.now < self._stalled_until

    def submit(self, work: Any, done: Callable[[Any], None],
               service_override: Optional[float] = None) -> bool:
        """Enqueue ``work``; call ``done(work)`` when service completes.

        ``service_override`` replaces the sampled service time for this item
        (used to model fixed-cost background work such as mastership-update
        processing). Returns ``False`` (and counts a drop) if the item was
        rejected because the station is stalled or the queue is full.
        """
        self.stats.submitted += 1
        if self.stalled:
            self.stats.dropped += 1
            self.stats.stalled_drops += 1
            return False
        if self.capacity is not None and len(self._queue) >= self.capacity:
            self.stats.dropped += 1
            return False
        self._queue.append((work, done, service_override))
        if self.collapse_threshold is not None and len(self._queue) > self.collapse_threshold:
            self._collapse()
            return False
        if not self._busy:
            self._start_next()
        return True

    def hold(self, duration: float) -> None:
        """Occupy the server for ``duration`` ms of background work.

        Background holds contend for the server like real items but are not
        counted as arrivals or completions — they just steal capacity (e.g.
        mastership-update processing at the primary under JURY replication).
        """
        if self.stalled:
            return
        self._queue.append((None, _BACKGROUND_WORK, duration))
        self.stats.submitted += 1  # balanced back out in _finish
        if not self._busy:
            self._start_next()

    # ------------------------------------------------------------------
    def _collapse(self) -> None:
        """Discard the backlog and stall — the zero-window state."""
        discarded = len(self._queue)
        self.stats.dropped += discarded
        self.stats.stalled_drops += discarded
        self._queue.clear()
        self._stalled_until = self.sim.now + self.collapse_recovery

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        work, done, service_override = self._queue.pop(0)
        if done is _BACKGROUND_WORK:
            delay = service_override
        elif service_override is not None:
            delay = service_override
        else:
            delay = self.service_time.sample(self._rng)
        self.stats.busy_time += delay
        self.sim.schedule(delay, self._finish, work, done)

    def _finish(self, work: Any, done: Callable[[Any], None]) -> None:
        if done is _BACKGROUND_WORK:
            self.stats.submitted -= 1  # holds are not real traffic
            if not self.stalled:
                self._start_next()
            else:
                self._busy = False
            return
        self.stats.completed += 1
        if self.record_completions:
            self.stats.completion_times.append(self.sim.now)
        # A handler may return a float: extra milliseconds the server stays
        # busy after this item. This is how synchronous store-replication
        # cost (Infinispan) occupies the controller pipeline.
        extra = done(work)
        if self.stalled:
            # Collapsed mid-service: drop the remaining queue handling.
            self._busy = False
            return
        if isinstance(extra, (int, float)) and not isinstance(extra, bool) and extra > 0:
            self.stats.busy_time += extra
            self.sim.schedule(extra, self._start_next)
        else:
            self._start_next()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceStation({self.name!r}, backlog={self.backlog}, "
            f"completed={self.stats.completed}, dropped={self.stats.dropped})"
        )
