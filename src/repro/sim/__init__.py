"""Discrete-event simulation kernel.

Every subsystem in this reproduction (switches, links, controllers, the
distributed store, JURY's replicator and validator) is driven by a single
:class:`~repro.sim.simulator.Simulator` instance. Time is measured in
*simulated milliseconds* — the same unit the paper reports detection times in.

Public API::

    from repro.sim import Simulator, Fixed, Uniform, Exponential

    sim = Simulator(seed=7)
    sim.schedule(5.0, callback, arg)
    sim.run(until=1000.0)
"""

from repro.sim.events import Event, EventHandle
from repro.sim.latency import (
    Exponential,
    Fixed,
    LatencyModel,
    LogNormal,
    Shifted,
    Uniform,
)
from repro.sim.simulator import Simulator
from repro.sim.station import ServiceStation, StationStats

__all__ = [
    "Event",
    "EventHandle",
    "Exponential",
    "Fixed",
    "LatencyModel",
    "LogNormal",
    "ServiceStation",
    "Shifted",
    "Simulator",
    "StationStats",
    "Uniform",
]
