"""The discrete-event simulator driving every experiment in this repo.

Design notes
------------
* Time is a ``float`` in **simulated milliseconds**. The paper reports
  detection times in ms and decapsulation overheads in µs; both fit
  comfortably (µs are fractional ms).
* A single global ``random.Random`` seeded per-simulation makes every run
  reproducible. Components must draw randomness only from ``sim.rng`` (or
  from :meth:`Simulator.fork_rng` streams) — never the module-level
  ``random``.
* Events at equal timestamps fire in scheduling (FIFO) order; the validator's
  in-order processing of cache updates depends on this.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import Event, EventHandle


class Simulator:
    """A minimal, fast discrete-event simulation kernel.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random number generator. Two simulators
        constructed with the same seed and driven by the same schedule of
        calls produce identical traces.
    """

    def __init__(self, seed: int = 0):
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._events_fired = 0
        self.rng = random.Random(seed)
        self._seed = seed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def seed(self) -> int:
        """The seed this simulator was constructed with."""
        return self._seed

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the queue."""
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    def fork_rng(self, label: str) -> random.Random:
        """Return an independent RNG stream derived from the base seed.

        Giving each stochastic component its own stream keeps runs
        reproducible even when components are added or reordered.
        """
        return random.Random(f"{self._seed}/{label}")

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., None], *args) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ms in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} ms; current time is {self._now} ms"
            )
        event = Event(time=time, seq=next(self._seq), callback=callback, args=args)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next pending event.

        Returns ``True`` if an event fired, ``False`` if the queue was empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_fired += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so rate computations over a
        fixed window are exact.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                if max_events is not None and fired >= max_events:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                self._events_fired += 1
                fired += 1
                event.callback(*event.args)
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.3f} ms, pending={self.pending})"
