"""Latency models.

Every delay in the simulation — link propagation, controller service time,
store synchronization — is drawn from a :class:`LatencyModel`. Models are
sampled with an explicit ``random.Random`` so components can own independent
RNG streams (see :meth:`repro.sim.simulator.Simulator.fork_rng`).

All values are simulated milliseconds.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod

from repro.errors import SimulationError


class LatencyModel(ABC):
    """A distribution over non-negative delays in milliseconds."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one delay."""

    @abstractmethod
    def mean(self) -> float:
        """Expected delay, used by calibration code and tests."""


class Fixed(LatencyModel):
    """A deterministic delay."""

    def __init__(self, value: float):
        if value < 0:
            raise SimulationError(f"negative latency: {value}")
        self.value = float(value)

    def sample(self, rng: random.Random) -> float:
        return self.value

    def mean(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Fixed({self.value})"


class Uniform(LatencyModel):
    """Uniform delay over ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if low < 0 or high < low:
            raise SimulationError(f"invalid uniform range [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"Uniform({self.low}, {self.high})"


class Exponential(LatencyModel):
    """Exponential delay with the given mean.

    The memoryless choice for queueing-style service and inter-arrival times.
    """

    def __init__(self, mean: float):
        if mean <= 0:
            raise SimulationError(f"exponential mean must be positive: {mean}")
        self._mean = float(mean)

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self._mean)

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean})"


class LogNormal(LatencyModel):
    """Log-normal delay, parameterized by its *median* and shape ``sigma``.

    Long-tailed: a good fit for JVM controller response times, where GC pauses
    and lock contention produce occasional large outliers — exactly the tail
    the paper's 95th-percentile validation timeouts are designed around.
    """

    def __init__(self, median: float, sigma: float = 0.5):
        if median <= 0:
            raise SimulationError(f"log-normal median must be positive: {median}")
        if sigma <= 0:
            raise SimulationError(f"log-normal sigma must be positive: {sigma}")
        self.median = float(median)
        self.sigma = float(sigma)
        self._mu = math.log(median)

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self._mu, self.sigma)

    def mean(self) -> float:
        return math.exp(self._mu + self.sigma**2 / 2.0)

    def __repr__(self) -> str:
        return f"LogNormal(median={self.median}, sigma={self.sigma})"


class Shifted(LatencyModel):
    """A base model plus a constant offset: ``offset + base.sample()``.

    Used for "propagation + jitter" style links.
    """

    def __init__(self, offset: float, base: LatencyModel):
        if offset < 0:
            raise SimulationError(f"negative latency offset: {offset}")
        self.offset = float(offset)
        self.base = base

    def sample(self, rng: random.Random) -> float:
        return self.offset + self.base.sample(rng)

    def mean(self) -> float:
        return self.offset + self.base.mean()

    def __repr__(self) -> str:
        return f"Shifted({self.offset} + {self.base!r})"
