"""Event records for the discrete-event simulator.

An :class:`Event` is an internal, heap-ordered record. Callers interact with
an :class:`EventHandle`, which supports cancellation and status queries but
hides heap bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Tuple


@dataclass(order=True)
class Event:
    """A scheduled callback, ordered by ``(time, seq)``.

    ``seq`` is a monotonically increasing tie-breaker so that events scheduled
    for the same instant fire in FIFO order — a property several protocols in
    this library (TCP-ordered cache update delivery, in-order trigger
    replication) rely on.
    """

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: Tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Caller-facing handle for a scheduled event."""

    __slots__ = ("_event",)

    def __init__(self, event: Event):
        self._event = event

    @property
    def time(self) -> float:
        """Simulated time at which the event fires."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.

        Cancelling an already-cancelled or already-fired event is a no-op;
        cancellation is lazy (the heap entry is skipped when popped).
        """
        self._event.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, {state})"
