"""Distributed data store substrate.

Clustered SDN controllers achieve logical centralization through data
distribution platforms — Hazelcast (ONOS) and Infinispan (ODL) in the paper.
All topological and forwarding state lives in *controller-wide caches* built
atop the store; every non-adversarial controller action externalizes through
a cache write, which is the observation JURY's validation rests on.

Two backends with the consistency models that drive the paper's results:

* :class:`~repro.datastore.hazelcast.HazelcastCluster` — eventually
  consistent, multicast propagation, writes complete locally (ONOS's high
  cluster throughput, transient state asynchrony).
* :class:`~repro.datastore.infinispan.InfinispanCluster` — strongly
  consistent, synchronous replication on the write path (ODL's cluster
  throughput collapse as ``n`` grows).
"""

from repro.datastore.caches import (
    ARPDB,
    EDGESDB,
    FLOWSDB,
    HOSTSDB,
    KNOWN_CACHES,
    SWITCHESDB,
    flow_key,
    flow_value,
)
from repro.datastore.events import CacheEvent, CacheOp, cache_canonical
from repro.datastore.hazelcast import HazelcastCluster
from repro.datastore.infinispan import InfinispanCluster
from repro.datastore.store import DatastoreCluster, DatastoreNode, PutResult

__all__ = [
    "ARPDB",
    "CacheEvent",
    "CacheOp",
    "cache_canonical",
    "DatastoreCluster",
    "DatastoreNode",
    "EDGESDB",
    "FLOWSDB",
    "HOSTSDB",
    "HazelcastCluster",
    "InfinispanCluster",
    "KNOWN_CACHES",
    "PutResult",
    "SWITCHESDB",
    "flow_key",
    "flow_value",
]
