"""Controller-wide cache names and canonical entry helpers.

The paper's policy language (Table 2) names the caches an administrator can
constrain: ARPDB, HOSTDB, EDGEDB, FLOWSDB, etc. These constants are the
shared vocabulary between controllers, faults, policies, and the validator.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.openflow.constants import FlowModCommand, FlowState
from repro.openflow.match import Match

ARPDB = "ArpDB"
HOSTSDB = "HostsDB"
EDGESDB = "EdgesDB"  # aka LinksDB — topology edges
FLOWSDB = "FlowsDB"
SWITCHESDB = "SwitchesDB"

KNOWN_CACHES = (ARPDB, HOSTSDB, EDGESDB, FLOWSDB, SWITCHESDB)


def flow_key(dpid: int, match: Match, priority: int = 100) -> Tuple:
    """Cache key for a flow rule in FlowsDB."""
    return ("flow", dpid, match.canonical(), priority)


def flow_value(
    dpid: int,
    match: Match,
    actions: Tuple,
    priority: int = 100,
    command: FlowModCommand = FlowModCommand.ADD,
    state: FlowState = FlowState.PENDING_ADD,
) -> Dict[str, Any]:
    """Cache value for a flow rule; ``state`` follows the ONOS lifecycle."""
    from repro.openflow.actions import canonical_actions

    return {
        "dpid": dpid,
        "match": match.canonical(),
        "actions": canonical_actions(actions),
        "priority": priority,
        "command": command.value,
        "state": state.value,
    }


def edge_key(dpid_a: int, port_a: int, dpid_b: int, port_b: int) -> Tuple:
    """Cache key for a unidirectional topology edge in EdgesDB."""
    return ("edge", dpid_a, port_a, dpid_b, port_b)


def edge_value(dpid_a: int, port_a: int, dpid_b: int, port_b: int,
               alive: bool = True) -> Dict[str, Any]:
    """Cache value for a topology edge."""
    return {
        "src": (dpid_a, port_a),
        "dst": (dpid_b, port_b),
        "alive": alive,
    }


def host_key(mac: str) -> Tuple:
    """Cache key for a host location in HostsDB."""
    return ("host", mac)


def host_value(mac: str, ip: str, dpid: int, port: int) -> Dict[str, Any]:
    """Cache value for a host location."""
    return {"mac": mac, "ip": ip, "dpid": dpid, "port": port}


def switch_key(dpid: int) -> Tuple:
    """Cache key for a connected switch in SwitchesDB."""
    return ("switch", dpid)


def switch_value(dpid: int, ports: Tuple[int, ...], master: str) -> Dict[str, Any]:
    """Cache value for a connected switch."""
    return {"dpid": dpid, "ports": tuple(ports), "master": master}
