"""Distributed store core: nodes, writes, propagation, locks.

A :class:`DatastoreCluster` owns the propagation strategy (subclassed by the
Hazelcast- and Infinispan-like backends); a :class:`DatastoreNode` is one
controller's local replica of every cache. Writes return a
:class:`PutResult` whose ``cost_ms`` the controller adds to its processing
pipeline — that is how strong consistency's synchronous replication shows up
as ODL's cluster-throughput collapse.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.datastore.events import CacheEvent, CacheOp
from repro.errors import CacheLockError, DatastoreError
from repro.net.channel import ByteCounter
from repro.sim.latency import Fixed, LatencyModel
from repro.sim.simulator import Simulator


@dataclass
class PutResult:
    """Outcome of a cache write.

    ``cost_ms`` is the synchronous cost the writer must absorb before
    continuing (zero-ish for eventually consistent stores, substantial for
    strongly consistent ones). ``event`` is the emitted cache event.
    """

    cost_ms: float
    event: CacheEvent


LockManager = Callable[[str, Any], bool]


class DatastoreNode:
    """One controller's replica of the controller-wide caches."""

    def __init__(self, cluster: "DatastoreCluster", node_id: str):
        self.cluster = cluster
        self.node_id = node_id
        self.caches: Dict[str, Dict[Any, Any]] = {}
        self.listeners: List[Callable[["DatastoreNode", CacheEvent], None]] = []
        self._seq = itertools.count(1)
        # Overridable by fault injectors (ONOS database-locking fault).
        self.lock_manager: Optional[LockManager] = None
        self.writes = 0
        self.remote_applies = 0
        # Highest write sequence applied per origin node — the basis of the
        # state digest JURY's state-aware consensus compares (§IV-C).
        self.applied_seqs: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, cache: str, key: Any, default: Any = None) -> Any:
        """Read one entry from the local replica."""
        return self.caches.get(cache, {}).get(key, default)

    def entries(self, cache: str) -> Dict[Any, Any]:
        """A copy of the local replica of ``cache``."""
        return dict(self.caches.get(cache, {}))

    def __contains__(self, cache_key) -> bool:
        cache, key = cache_key
        return key in self.caches.get(cache, {})

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, cache: str, key: Any, value: Any,
            op: Optional[CacheOp] = None, tau: Optional[tuple] = None,
            ctx_digest: tuple = ()) -> PutResult:
        """Write an entry, emit the cache event, and propagate cluster-wide.

        ``tau`` attributes the write to a controller trigger (JURY action
        attribution). Raises :class:`CacheLockError` if the (injectable)
        lock manager refuses the write — the ONOS "failed to obtain lock"
        fault.
        """
        if self.lock_manager is not None and not self.lock_manager(cache, key):
            raise CacheLockError(
                f"{self.node_id}: failed to obtain lock on {cache}[{key!r}]"
            )
        local = self.caches.setdefault(cache, {})
        if op is None:
            op = CacheOp.UPDATE if key in local else CacheOp.CREATE
        local[key] = value
        return self._emit(cache, key, value, op, tau, ctx_digest)

    def delete(self, cache: str, key: Any, tau: Optional[tuple] = None,
               ctx_digest: tuple = ()) -> PutResult:
        """Remove an entry (emits a DELETE event; the key is dropped)."""
        local = self.caches.setdefault(cache, {})
        local.pop(key, None)
        return self._emit(cache, key, None, CacheOp.DELETE, tau, ctx_digest)

    def _emit(self, cache: str, key: Any, value: Any, op: CacheOp,
              tau: Optional[tuple], ctx_digest: tuple = ()) -> PutResult:
        self.writes += 1
        seq = next(self._seq)
        self.applied_seqs[self.node_id] = seq
        event = CacheEvent(
            cache=cache, key=key, value=value, op=op,
            origin=self.node_id, seq=seq,
            time=self.cluster.sim.now, tau=tau, ctx_digest=ctx_digest,
        )
        self._notify(event)
        cost = self.cluster.propagate(self, event)
        return PutResult(cost_ms=cost, event=event)

    def state_digest(self) -> tuple:
        """Compact digest of this replica's view: per-origin applied seqs.

        Two replicas with an equivalent network view produce equal digests;
        a replica lagging behind (eventual consistency) differs. JURY
        responses carry this digest so the validator's consensus can group
        replicas by equivalent state (§IV-C, transient state asynchrony).
        """
        return tuple(sorted(self.applied_seqs.items()))

    # ------------------------------------------------------------------
    # Propagation receive path
    # ------------------------------------------------------------------
    def apply_remote(self, event: CacheEvent) -> None:
        """Apply a propagated event from another node and notify listeners."""
        local = self.caches.setdefault(event.cache, {})
        if event.op == CacheOp.DELETE:
            local.pop(event.key, None)
        else:
            local[event.key] = event.value
        self.remote_applies += 1
        self.applied_seqs[event.origin] = max(
            self.applied_seqs.get(event.origin, 0), event.seq)
        self._notify(event)

    def add_listener(self, listener: Callable[["DatastoreNode", CacheEvent], None]) -> None:
        """Subscribe to every cache event visible at this node."""
        self.listeners.append(listener)

    def _notify(self, event: CacheEvent) -> None:
        for listener in list(self.listeners):
            listener(self, event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DatastoreNode({self.node_id!r}, caches={list(self.caches)})"


class DatastoreCluster:
    """Base class owning membership and the propagation strategy."""

    #: human-readable consistency model, used in reports
    consistency = "abstract"

    def __init__(self, sim: Simulator,
                 peer_latency: Optional[LatencyModel] = None,
                 counter: Optional[ByteCounter] = None):
        self.sim = sim
        self.peer_latency = peer_latency if peer_latency is not None else Fixed(1.0)
        self.counter = counter if counter is not None else ByteCounter("inter-controller")
        self.nodes: Dict[str, DatastoreNode] = {}
        self._rng = sim.fork_rng("datastore")
        #: Optional cluster-shared flow-rule backup stage (set by backends
        #: whose flow subsystem serializes on the store — Hazelcast/ONOS).
        #: FLOW_MOD egress waits for backup completion, capping the
        #: *cluster-wide* FLOW_MOD rate independent of cluster size.
        self.flow_backup = None
        # FIFO watermarks per (origin, destination) pair: TCP-like in-order
        # delivery, which the validator's state maintenance relies on (§IV-C).
        self._watermarks: Dict[tuple, float] = {}

    def create_node(self, node_id: str) -> DatastoreNode:
        """Join a node to the cluster."""
        if node_id in self.nodes:
            raise DatastoreError(f"duplicate store node {node_id}")
        node = DatastoreNode(self, node_id)
        self.nodes[node_id] = node
        return node

    def remove_node(self, node_id: str) -> None:
        """Remove a node (crash or decommission)."""
        self.nodes.pop(node_id, None)

    def peers_of(self, origin: DatastoreNode) -> List[DatastoreNode]:
        """All nodes except ``origin``."""
        return [n for n in self.nodes.values() if n is not origin]

    def _schedule_delivery(self, origin: DatastoreNode, peer: DatastoreNode,
                           event: CacheEvent, delay: float) -> None:
        """Deliver ``event`` to ``peer`` after ``delay``, preserving FIFO order."""
        key = (origin.node_id, peer.node_id)
        arrival = max(self.sim.now + delay, self._watermarks.get(key, 0.0))
        self._watermarks[key] = arrival
        self.counter.add(event.wire_size())
        self.sim.schedule_at(arrival, self._apply_if_member, peer.node_id, event)

    def _apply_if_member(self, node_id: str, event: CacheEvent) -> None:
        node = self.nodes.get(node_id)
        if node is not None:
            node.apply_remote(event)

    def propagate(self, origin: DatastoreNode, event: CacheEvent) -> float:
        """Ship ``event`` to every peer; returns the writer's synchronous cost."""
        raise NotImplementedError
