"""Hazelcast-like backend: eventually consistent, multicast propagation.

ONOS (v1.0.0) uses Hazelcast, which "uses multicast to deliver messages to
the cluster nodes" (§VII-B.1) — the reason clustering barely dents ONOS's
FLOW_MOD throughput (<8% at n=7). Writes complete locally; peers converge
after a propagation delay, which is what creates the *transient state
asynchrony* JURY's state-aware consensus must tolerate (§IV-C).
"""

from __future__ import annotations

from typing import Optional

from repro.datastore.events import CacheEvent
from repro.datastore.store import DatastoreCluster, DatastoreNode
from repro.net.channel import ByteCounter
from repro.sim.latency import LatencyModel, Uniform
from repro.sim.simulator import Simulator


class HazelcastCluster(DatastoreCluster):
    """Eventually consistent store with near-zero writer-side cost."""

    consistency = "eventual"

    #: Writer-side bookkeeping cost per put (serialization, local map update).
    LOCAL_WRITE_COST_MS = 0.02
    #: Mean per-rule flow-backup cost: caps cluster-wide FLOW_MOD throughput
    #: at ~5.2K/s (the Fig 4f saturation plateau).
    FLOW_BACKUP_MEAN_MS = 0.185
    #: Mild per-extra-node degradation (<8% overhead at n=7, §VII-B.1).
    FLOW_BACKUP_NODE_FACTOR = 0.012

    def __init__(self, sim: Simulator,
                 peer_latency: Optional[LatencyModel] = None,
                 counter: Optional[ByteCounter] = None):
        if peer_latency is None:
            # Multicast over the cluster LAN: low, mildly jittered.
            peer_latency = Uniform(0.5, 3.0)
        super().__init__(sim, peer_latency=peer_latency, counter=counter)

    def flow_backup_station(self):
        """The lazily created cluster-shared flow-backup stage.

        Created on first FLOW_MOD so its service rate reflects the final
        cluster size.
        """
        if self.flow_backup is None:
            from repro.sim.latency import Exponential
            from repro.sim.station import ServiceStation

            mean = self.FLOW_BACKUP_MEAN_MS * (
                1.0 + self.FLOW_BACKUP_NODE_FACTOR * max(0, len(self.nodes) - 1))
            self.flow_backup = ServiceStation(
                self.sim, Exponential(mean), name="hazelcast-flow-backup")
        return self.flow_backup

    def propagate(self, origin: DatastoreNode, event: CacheEvent) -> float:
        # One multicast transmission reaches every peer after an independent
        # small delay; the writer does not wait for anyone.
        for peer in self.peers_of(origin):
            delay = self.peer_latency.sample(self._rng)
            self._schedule_delivery(origin, peer, event, delay)
        return self.LOCAL_WRITE_COST_MS
