"""Cache events: the externalization of every controller action.

A :class:`CacheEvent` is emitted at the origin node on every write and
re-emitted at each peer when the store propagates it. JURY's controller
module hooks these events for action attribution of internal triggers
(§IV-B): the event's ``origin`` and per-origin ``seq`` uniquely identify the
action across the whole cluster, so every replica relays the *same* trigger
identifier to the validator without coordination.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional, Tuple


class CacheOp(enum.Enum):
    """Operations distinguishable by JURY policies (Table 2)."""

    CREATE = "create"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True)
class CacheEvent:
    """One write to a controller-wide cache.

    ``origin`` is the node that performed the write; ``seq`` is that node's
    write sequence number. ``(origin, seq)`` is the cluster-wide identity of
    the action. ``tau`` carries the trigger id of the controller action that
    performed the write (set by the controller's trigger context); for
    purely internal actions it equals the action id.
    """

    cache: str
    key: Any
    value: Any
    op: CacheOp
    origin: str
    seq: int
    time: float
    tau: Optional[Tuple] = None
    #: The writing trigger's processing-start state digest (JURY metadata).
    ctx_digest: Tuple = ()

    @property
    def action_id(self) -> Tuple[str, int]:
        """Cluster-wide identity of the action that caused this event."""
        return (self.origin, self.seq)

    @property
    def trigger_id(self) -> Tuple:
        """The trigger this write is attributed to (``tau`` or action id)."""
        return self.tau if self.tau is not None else ("int", self.origin, self.seq)

    def canonical(self) -> Tuple:
        """Canonical body for consensus comparison at the validator."""
        return cache_canonical(self.cache, self.key, self.op, self.value)

    def wire_size(self) -> int:
        """Approximate bytes on the inter-controller wire."""
        value_size = getattr(self.value, "wire_size", None)
        if callable(value_size):
            payload = value_size()
        elif self.value is None:
            payload = 0
        else:
            payload = min(512, 32 + len(repr(self.value)))
        return 96 + payload


def cache_canonical(cache: str, key: Any, op: CacheOp, value: Any) -> Tuple:
    """Canonical form of a (would-be) cache write.

    Shared by :meth:`CacheEvent.canonical` and the shadow-execution capture
    path, so a suppressed secondary write compares equal to the primary's
    real one at the validator.
    """
    return ("cache", cache, _canonical_value(key), op.value, _canonical_value(value))


def _canonical_value(value: Any) -> Any:
    """Reduce a stored value to a hashable, comparable form."""
    canonical = getattr(value, "canonical", None)
    if callable(canonical):
        return canonical()
    if isinstance(value, dict):
        return tuple(sorted((k, _canonical_value(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_value(v) for v in value)
    return value


CacheListener = "Callable[[DatastoreNode, CacheEvent], None]"
