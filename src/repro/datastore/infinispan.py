"""Infinispan-like backend: strongly consistent, synchronous replication.

ODL (Hydrogen) clusters on Infinispan, whose synchronous write path is why
"ODL's cluster mode performance is limited by Infinispan" (§VII-B.1): the
paper measures peak FLOW_MOD throughput of ~800/s at n=1 collapsing to
~140/s at n=7 — consistent with a writer-side replication cost that grows
roughly linearly in cluster size. We model sequential synchronous
replication: the writer pays ``base + sum(per-peer sync)`` before its
pipeline can take the next message.
"""

from __future__ import annotations

from typing import Optional

from repro.datastore.events import CacheEvent
from repro.datastore.store import DatastoreCluster, DatastoreNode
from repro.net.channel import ByteCounter
from repro.sim.latency import LatencyModel, Uniform
from repro.sim.simulator import Simulator


class InfinispanCluster(DatastoreCluster):
    """Strongly consistent store whose write cost scales with cluster size."""

    consistency = "strong"

    #: Writer-side cost at n=1 (transaction bookkeeping, local commit).
    LOCAL_WRITE_COST_MS = 0.9

    def __init__(self, sim: Simulator,
                 peer_latency: Optional[LatencyModel] = None,
                 sync_cost: Optional[LatencyModel] = None,
                 counter: Optional[ByteCounter] = None):
        if peer_latency is None:
            peer_latency = Uniform(0.5, 2.0)
        super().__init__(sim, peer_latency=peer_latency, counter=counter)
        # Per-peer synchronous round-trip charged to the writer.
        self.sync_cost = sync_cost if sync_cost is not None else Uniform(0.8, 1.2)
        # Strong consistency serializes writes cluster-wide: transactions on
        # the same cache take a global lock, so the *cluster's* write rate —
        # not each node's — is bounded by the per-write cost. This is why
        # ODL at n=7 peaks at ~140 FLOW_MOD/s total (Fig 4g).
        self._lock_free_at = 0.0

    def propagate(self, origin: DatastoreNode, event: CacheEvent) -> float:
        own_cost = self.LOCAL_WRITE_COST_MS
        peers = self.peers_of(origin)
        for peer in peers:
            own_cost += self.sync_cost.sample(self._rng)
        now = self.sim.now
        lock_wait = max(0.0, self._lock_free_at - now)
        self._lock_free_at = now + lock_wait + own_cost
        for index, peer in enumerate(peers):
            # Peers apply the write once their synchronous ack round
            # completes, after the lock is acquired.
            self._schedule_delivery(origin, peer, event, lock_wait + own_cost)
        return lock_wait + own_cost
