"""Alarm forensics: per-alarm explanations built from DecisionCore evidence.

The validator's alarms say *that* something failed; this module says *why*.
For every alarm raised by the check battery, :class:`AlarmForensics` builds
an :class:`AlarmExplanation` out of the evidence the decision already had in
hand — the response vector, the :class:`~repro.core.consensus.ConsensusOutcome`,
and the external/internal classification — and records:

* the **failed check** (consensus / sanity / staleness / policy, including
  the violated policy rule text),
* the **dissenting replica set** versus the agreeing one,
* the exact **cache keys and network writes that diverged**, as per-field
  diffs between the expected (majority) entry and the observed one,
* the inferred **T1/T2/T3 fault class** of the paper's taxonomy.

Explanations are plain frozen data: deterministic, JSON-serializable, and
held entirely inside the forensics object — look one up for a given alarm
with :meth:`AlarmForensics.explanation_for`. Alarm objects themselves are
never touched, so the byte-identical alarm-stream contract of the
differential suite holds with forensics on or off by construction (the
X501 cross-module rule enforces this: observers must not mutate engine
state, even one attribute deep). The forensics object is a pure observer
behind the same ``None`` fast path as the tracer and the metrics registry;
it never schedules events, draws randomness, or mutates validator state.

``explanations_from_files`` rebuilds (degraded) explanations offline from a
recorded trace + alarm-log pair, for post-mortem use when the live run did
not have forensics enabled.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.alarms import Alarm, AlarmReason
from repro.core.consensus import ConsensusOutcome, _flow_mods_implied_by_cache
from repro.core.responses import Response, ResponseKind

#: Check of Algorithm 1 that raised each alarm reason.
CHECK_BY_REASON: Dict[AlarmReason, str] = {
    AlarmReason.PRIMARY_OMISSION: "consensus",
    AlarmReason.CONSENSUS_MISMATCH: "consensus",
    AlarmReason.SANITY_MISMATCH: "sanity",
    AlarmReason.STALE_REPLICA: "staleness",
    AlarmReason.POLICY_VIOLATION: "policy",
}

#: Inferred fault class (paper §III taxonomy) per detection mechanism.
#: Consensus deviations and omissions are wrong/withheld responses to a
#: trigger (T1); a cache/network coherence break is an inconsistent-state
#: fault (T2); a policy violation on an accepted outcome is faulty logic
#: the replicas agreed on (T3). Persistent staleness is a desynchronized
#: replica answering from the wrong state — T1, matching the class the
#: built-in StoreDesyncFault scenario declares.
FAULT_CLASS_BY_REASON: Dict[AlarmReason, str] = {
    AlarmReason.PRIMARY_OMISSION: "T1",
    AlarmReason.CONSENSUS_MISMATCH: "T1",
    AlarmReason.SANITY_MISMATCH: "T2",
    AlarmReason.STALE_REPLICA: "T1",
    AlarmReason.POLICY_VIOLATION: "T3",
}

FAULT_CLASS_DESCRIPTIONS: Dict[str, str] = {
    "T1": "wrong or withheld response to a trigger",
    "T2": "inconsistent controller state (cache/network divergence)",
    "T3": "policy-violating logic the replicas agree on",
}


@dataclass(frozen=True)
class FieldDiff:
    """One divergence between an expected and an observed entry.

    ``kind`` is ``missing`` (expected, not observed), ``unexpected``
    (observed, not expected) or ``changed`` (same key, different field
    value). All payloads are ``repr`` strings so the record is JSON-able
    and deterministic regardless of the underlying canonical types.
    """

    kind: str
    key: str
    field: str = ""
    expected: str = ""
    actual: str = ""

    def to_dict(self) -> Dict[str, str]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def render(self) -> str:
        if self.kind == "changed":
            return (f"~ {self.key}: field {self.field!r} expected "
                    f"{self.expected} got {self.actual}")
        marker = "-" if self.kind == "missing" else "+"
        return f"{marker} {self.key} ({self.kind})"


def _entry_identity(canonical: Tuple) -> Tuple[Tuple, Dict[str, object]]:
    """Split a canonical entry into a stable identity key and its fields.

    Cache canonicals are identified by ``(cache, db, key)`` with ``op`` and
    the value fields comparable; FLOW_MOD canonicals by
    ``(flow_mod, dpid, match, priority)`` with ``command``/``actions``
    comparable. Anything else diffs as an opaque whole.
    """
    if (isinstance(canonical, tuple) and len(canonical) == 5
            and canonical[0] == "cache"):
        _, db, key, op, value = canonical
        attrs: Dict[str, object] = {"op": op}
        if (isinstance(value, tuple)
                and all(isinstance(pair, tuple) and len(pair) == 2
                        and isinstance(pair[0], str) for pair in value)):
            attrs.update(dict(value))
        else:
            attrs["value"] = value
        return ("cache", db, key), attrs
    if (isinstance(canonical, tuple) and len(canonical) == 6
            and canonical[0] == "flow_mod"):
        _, dpid, command, match, actions, priority = canonical
        return (("flow_mod", dpid, match, priority),
                {"command": command, "actions": actions})
    return (canonical,), {}


def diff_entries(expected: Sequence[Tuple],
                 actual: Sequence[Tuple]) -> Tuple[FieldDiff, ...]:
    """Per-field diff of two canonical entry bundles, deterministic order."""
    expected_by_id = {}
    actual_by_id = {}
    for canonical in expected:
        identity, attrs = _entry_identity(canonical)
        expected_by_id[identity] = attrs
    for canonical in actual:
        identity, attrs = _entry_identity(canonical)
        actual_by_id[identity] = attrs
    diffs: List[FieldDiff] = []
    for identity in sorted(expected_by_id, key=repr):
        if identity not in actual_by_id:
            diffs.append(FieldDiff(kind="missing", key=repr(identity)))
            continue
        want, got = expected_by_id[identity], actual_by_id[identity]
        for name in sorted(set(want) | set(got)):
            if want.get(name) != got.get(name):
                diffs.append(FieldDiff(
                    kind="changed", key=repr(identity), field=name,
                    expected=repr(want.get(name)), actual=repr(got.get(name))))
    for identity in sorted(actual_by_id, key=repr):
        if identity not in expected_by_id:
            diffs.append(FieldDiff(kind="unexpected", key=repr(identity)))
    return tuple(diffs)


@dataclass(frozen=True)
class AlarmExplanation:
    """Forensic record for one alarm: evidence, diffs, and fault class."""

    trigger_id: str
    raised_at: float
    reason: str
    failed_check: str
    fault_class: str
    offending_controller: str = ""
    dissenting_replicas: Tuple[str, ...] = ()
    agreeing_replicas: Tuple[str, ...] = ()
    cache_diffs: Tuple[FieldDiff, ...] = ()
    network_diffs: Tuple[FieldDiff, ...] = ()
    policy_rule: str = ""
    detail: str = ""
    external: Optional[bool] = None
    n_responses: int = 0
    #: ``live`` when built from DecisionCore evidence at decision time,
    #: ``offline`` when reconstructed from trace + alarm-log files.
    source: str = "live"

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name in ("cache_diffs", "network_diffs"):
                value = [diff.to_dict() for diff in value]
            elif isinstance(value, tuple):
                value = list(value)
            payload[spec.name] = value
        return payload

    def render(self, explanation_id: str = "") -> str:
        """Human-readable report block (deterministic)."""
        head = f"{explanation_id}  " if explanation_id else ""
        klass = FAULT_CLASS_DESCRIPTIONS.get(self.fault_class, "")
        lines = [
            f"{head}ALARM {self.reason}  trigger {self.trigger_id}"
            f"  at {self.raised_at:.3f} ms",
            f"  fault class:  {self.fault_class}"
            + (f" ({klass})" if klass else ""),
            f"  failed check: {self.failed_check}",
            f"  offender:     {self.offending_controller or '<unattributed>'}",
        ]
        if self.dissenting_replicas or self.agreeing_replicas:
            lines.append(
                f"  dissenting:   {', '.join(self.dissenting_replicas) or '-'}"
                f"   agreeing: {', '.join(self.agreeing_replicas) or '-'}")
        if self.policy_rule:
            lines.append(f"  policy rule:  {self.policy_rule}")
        for title, diffs in (("cache diff", self.cache_diffs),
                             ("network diff", self.network_diffs)):
            if diffs:
                lines.append(f"  {title}:")
                lines.extend(f"    {diff.render()}" for diff in diffs)
        if self.detail:
            lines.append(f"  detail:       {self.detail}")
        if self.source != "live":
            lines.append(f"  source:       {self.source}")
        return "\n".join(lines)


def _split_responses(responses: Sequence[Response]):
    replicas = [r for r in responses if r.kind == ResponseKind.REPLICA_RESULT]
    relays = [r for r in responses if r.kind == ResponseKind.CACHE_UPDATE]
    network = [r for r in responses if r.kind == ResponseKind.NETWORK_WRITE]
    return replicas, relays, network


def _majority_replica_entry(replicas: Sequence[Response]) -> Tuple:
    entries = Counter(r.entry for r in replicas)
    if not entries:
        return ((), ())
    best = max(entries.items(), key=lambda item: (item[1], repr(item[0])))
    return best[0]


def _consensus_evidence(alarm: Alarm, responses: Sequence[Response],
                        outcome: ConsensusOutcome) -> Dict[str, object]:
    replicas, relays, _ = _split_responses(responses)
    offender = alarm.offending_controller
    relay_entries = Counter(r.entry for r in relays)
    offender_relay = next(
        (r for r in relays if r.controller_id == offender), None)
    if offender_relay is not None and len(relay_entries) > 1:
        # A cache relay deviated from the other relays of the same origin
        # events: corrupted replicated state on the relayer.
        majority = max(relay_entries.items(),
                       key=lambda item: (item[1], repr(item[0])))[0]
        dissenting = sorted(r.controller_id for r in relays
                            if r.entry != majority)
        agreeing = sorted(r.controller_id for r in relays
                          if r.entry == majority)
        return {
            "dissenting_replicas": tuple(dissenting),
            "agreeing_replicas": tuple(agreeing),
            "cache_diffs": diff_entries(majority, offender_relay.entry),
        }
    # Primary deviation: the replicas' majority shadow entry is the
    # expectation, the primary's combined (cache, own-network) response the
    # observation.
    majority_entry = _majority_replica_entry(replicas)
    expected_cache, expected_network = (
        majority_entry if (isinstance(majority_entry, tuple)
                           and len(majority_entry) == 2)
        else (majority_entry, ()))
    agreeing = sorted(r.controller_id for r in replicas
                      if r.entry == majority_entry)
    return {
        "dissenting_replicas": (offender,) if offender else (),
        "agreeing_replicas": tuple(agreeing),
        "cache_diffs": diff_entries(expected_cache,
                                    outcome.primary_cache_entry),
        "network_diffs": diff_entries(expected_network,
                                      outcome.primary_network_entry),
    }


def _omission_evidence(alarm: Alarm,
                       responses: Sequence[Response]) -> Dict[str, object]:
    replicas, _, _ = _split_responses(responses)
    non_empty = [r for r in replicas if r.entry != ((), ())]
    majority_entry = _majority_replica_entry(non_empty)
    _, expected_network = (
        majority_entry if (isinstance(majority_entry, tuple)
                           and len(majority_entry) == 2)
        else (majority_entry, ()))
    offender = alarm.offending_controller
    return {
        "dissenting_replicas": (offender,) if offender else (),
        "agreeing_replicas": tuple(sorted(
            r.controller_id for r in non_empty)),
        "network_diffs": diff_entries(expected_network, ()),
    }


def _sanity_evidence(outcome: ConsensusOutcome) -> Dict[str, object]:
    implied = sorted(_flow_mods_implied_by_cache(outcome.primary_cache_entry),
                     key=repr)
    actual = sorted((c for c in outcome.primary_network_entry
                     if c and c[0] == "flow_mod"), key=repr)
    return {"network_diffs": diff_entries(implied, actual)}


def explain_alarm(alarm: Alarm, responses: Sequence[Response],
                  outcome: ConsensusOutcome,
                  external: bool) -> AlarmExplanation:
    """Build the forensic explanation for one alarm, from live evidence."""
    reason = alarm.reason
    evidence: Dict[str, object] = {}
    if reason is AlarmReason.CONSENSUS_MISMATCH:
        evidence = _consensus_evidence(alarm, responses, outcome)
    elif reason is AlarmReason.PRIMARY_OMISSION:
        evidence = _omission_evidence(alarm, responses)
    elif reason is AlarmReason.SANITY_MISMATCH:
        evidence = _sanity_evidence(outcome)
        if alarm.offending_controller:
            evidence["dissenting_replicas"] = (alarm.offending_controller,)
    elif reason is AlarmReason.STALE_REPLICA:
        if alarm.offending_controller:
            evidence["dissenting_replicas"] = (alarm.offending_controller,)
    elif reason is AlarmReason.POLICY_VIOLATION:
        evidence["policy_rule"] = alarm.detail
        if alarm.offending_controller:
            evidence["dissenting_replicas"] = (alarm.offending_controller,)
    return AlarmExplanation(
        trigger_id=repr(alarm.trigger_id),
        raised_at=alarm.raised_at,
        reason=reason.value,
        failed_check=CHECK_BY_REASON[reason],
        fault_class=FAULT_CLASS_BY_REASON[reason],
        offending_controller=alarm.offending_controller or "",
        detail=alarm.detail,
        external=external,
        n_responses=len(responses),
        **evidence)


def _alarm_key(alarm: Alarm) -> Tuple:
    """Identity-free lookup key for an alarm (its canonical fields)."""
    return (repr(alarm.trigger_id), alarm.reason.value,
            alarm.offending_controller or "", alarm.detail, alarm.raised_at)


class AlarmForensics:
    """Observer that builds an :class:`AlarmExplanation` for every alarm.

    Shared by the sequential validator and all pipeline shards the same way
    the tracer is; the per-trigger storage keeps shard interleavings out of
    the exported order (one shard owns all of a trigger's alarms, so each
    per-trigger list is internally deterministic, and export sorts the
    trigger buckets globally).

    Explanations live only here — the alarm objects pass through untouched
    (observer purity, X501). Retrieval is by the alarm's canonical fields
    via :meth:`explanation_for`; alarms with identical canonical fields get
    identical explanations, so the first recorded one stands for all.
    """

    def __init__(self) -> None:
        self._by_trigger: Dict[str, List[AlarmExplanation]] = {}
        self._by_alarm: Dict[Tuple, AlarmExplanation] = {}

    def observe_decision(self, tau: Tuple, responses: Sequence[Response],
                         outcome: ConsensusOutcome, result,
                         external: bool) -> None:
        """Record one decided trigger's alarms (no-op when it was clean)."""
        if not result.alarms:
            return
        bucket = self._by_trigger.setdefault(repr(tau), [])
        for alarm in result.alarms:
            explanation = explain_alarm(alarm, responses, outcome, external)
            bucket.append(explanation)
            self._by_alarm.setdefault(_alarm_key(alarm), explanation)

    def explanation_for(self, alarm: Alarm) -> Optional[AlarmExplanation]:
        """The explanation recorded for this alarm, or ``None``."""
        return self._by_alarm.get(_alarm_key(alarm))

    @property
    def alarm_count(self) -> int:
        return sum(len(bucket) for bucket in self._by_trigger.values())

    def explanations(self) -> List[AlarmExplanation]:
        """All explanations in the deterministic export order.

        Sorted by ``(raised_at, trigger id, per-trigger sequence)`` —
        the same total order the pipeline's merged alarm stream uses, so
        explanation ids line up with alarm positions across engines.
        """
        keyed = []
        for trigger, bucket in self._by_trigger.items():
            for index, explanation in enumerate(bucket):
                keyed.append(((explanation.raised_at, trigger, index),
                              explanation))
        keyed.sort(key=lambda item: item[0])
        return [explanation for _, explanation in keyed]


def explanation_id(index: int) -> str:
    """Stable id for the ``index``-th explanation of an export (0-based)."""
    return f"A{index + 1:04d}"


def export_explanations(
        explanations: Sequence[AlarmExplanation]) -> Dict[str, object]:
    """JSON-able diagnosis payload with stable per-alarm ids."""
    alarms = []
    for index, explanation in enumerate(explanations):
        record: Dict[str, object] = {"id": explanation_id(index)}
        record.update(explanation.to_dict())
        alarms.append(record)
    return {"format": "jury-diagnose", "version": 1,
            "alarm_count": len(alarms), "alarms": alarms}


def find_explanation(explanations: Sequence[AlarmExplanation],
                     query: str) -> Optional[Tuple[str, AlarmExplanation]]:
    """Resolve an alarm id (``A0001``) or trigger query to one explanation."""
    if not query or not query.strip():
        return None
    query = query.strip()
    for index, explanation in enumerate(explanations):
        if explanation_id(index).lower() == query.lower():
            return explanation_id(index), explanation
    # Trigger-id style queries: exact repr, ext:5 shorthand, substring.
    prefix, _, suffix = query.partition(":")
    if suffix:
        try:
            shorthand = repr((prefix, int(suffix)))
        except ValueError:
            shorthand = None
        if shorthand is not None:
            for index, explanation in enumerate(explanations):
                if explanation.trigger_id == shorthand:
                    return explanation_id(index), explanation
    for index, explanation in enumerate(explanations):
        if query == explanation.trigger_id or query in explanation.trigger_id:
            return explanation_id(index), explanation
    return None


def render_explanations(
        explanations: Sequence[AlarmExplanation]) -> str:
    """Render every explanation as a human-readable report."""
    if not explanations:
        return "no alarms — nothing to diagnose"
    blocks = [explanation.render(explanation_id(index))
              for index, explanation in enumerate(explanations)]
    return "\n\n".join(blocks)


# ----------------------------------------------------------------------
# Offline reconstruction from recorded trace + alarm-log files
# ----------------------------------------------------------------------

def explanations_from_files(alarm_log_path: str,
                            trace_path: Optional[str] = None
                            ) -> List[AlarmExplanation]:
    """Rebuild (degraded) explanations from recorded run artifacts.

    The alarm log carries reason/offender/detail per alarm; the optional
    trace adds the external/internal classification and response count from
    the trigger's DECIDE span. Response vectors are not recorded, so the
    offline path cannot reproduce per-field diffs — records carry
    ``source="offline"`` to make the degradation explicit.
    """
    from repro.core.alarm_log import load_alarm_records
    from repro.obs.trace import load_trace

    records = load_alarm_records(alarm_log_path)
    decide_attrs: Dict[str, Dict[str, str]] = {}
    if trace_path is not None:
        tracer = load_trace(trace_path)
        for span in tracer.spans:
            if span.stage == "decide":
                decide_attrs[repr(span.trigger_id)] = dict(span.attrs)
    explanations: List[AlarmExplanation] = []
    for record in records:
        reason = AlarmReason(record.reason)
        trigger = record.trigger_id
        attrs = decide_attrs.get(trigger, {})
        external: Optional[bool] = None
        if "external" in attrs:
            value = attrs["external"]  # bool live, may round-trip via JSON
            external = value if isinstance(value, bool) \
                else str(value) == "True"
        offender = record.offending_controller or ""
        explanations.append(AlarmExplanation(
            trigger_id=trigger,
            raised_at=record.time_ms,
            reason=reason.value,
            failed_check=CHECK_BY_REASON[reason],
            fault_class=FAULT_CLASS_BY_REASON[reason],
            offending_controller=offender,
            dissenting_replicas=(offender,) if offender else (),
            policy_rule=(record.detail
                         if reason is AlarmReason.POLICY_VIOLATION else ""),
            detail=record.detail,
            external=external,
            n_responses=record.n_responses,
            source="offline"))
    keyed = sorted(
        ((explanation.raised_at, explanation.trigger_id, index), explanation)
        for index, explanation in enumerate(explanations))
    return [explanation for _, explanation in keyed]


def dump_diagnosis(payload: Dict[str, object], path: str) -> None:
    """Write a diagnosis payload (stable JSON) to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
