"""Wall-clock profiling for execution-backend workers.

The :class:`~repro.obs.trace.Tracer` is keyed on **simulated** time by
design — it answers "what did the validator decide, and when, in the
modelled network". It cannot answer "where does the *real* CPU time go
inside a worker", which is the question the backend speedup work lives
on. This module collects that second kind of time: per-stage, per-shard
wall-clock durations measured **inside** thread/process backend workers,
shipped home piggybacked on the worker's
:class:`~repro.core.backends.frames.VerdictFrame`, and merged into the
parent's :class:`~repro.obs.metrics.MetricsRegistry` under per-worker
labels.

Separation rules that keep this safe:

* Wall-clock reads happen **only in worker code** (the thread loop / the
  worker-process main), never in the validator hot path —
  ``core/validator.py``, ``core/pipeline.py``, and ``core/consensus.py``
  must stay wall-clock-free (rules D101/X502). The parent side of the
  merge only copies numbers a worker already measured.
* Profiling never touches the Tracer: the canonical simulated-time trace
  is byte-identical with profiling on or off (asserted in the
  differential suite).
* The ship-home format is a plain dict of per-stage aggregates
  (count/total/min/max), so a verdict frame grows by a few floats — not
  by a sample list.

Stages: ``batch`` (a worker processed a batch frame), ``wakeup`` (a θτ
timer frame), ``restore`` (a respawned worker rebuilt state from a
snapshot).
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

#: Metric family names the merge step writes (exported with HELP/TYPE
#: metadata by repro.obs.export).
STAGE_WALL_MS = "backend_stage_wall_ms"
STAGE_OPS = "backend_stage_operations_total"


class StageProfiler:
    """Per-stage wall-clock accumulator living inside one backend worker.

    ``observe`` folds one duration into the per-stage aggregate;
    ``take`` drains the aggregates accumulated since the previous take —
    the delta a verdict frame carries home. All methods are worker-local
    (one profiler per worker; no locking needed).
    """

    __slots__ = ("_acc",)

    def __init__(self) -> None:
        self._acc: Dict[str, list] = {}

    @staticmethod
    def now() -> float:
        """A wall-clock timestamp for bracketing one worker stage."""
        # Worker-side wall clock by design: this is the one sanctioned
        # home for real-time reads (module docstring), and the simulated
        # clock is not advancing inside a worker.
        return time.perf_counter()  # jury: ignore[D101]

    def observe(self, stage: str, seconds: float) -> None:
        """Fold one stage duration (seconds) into the running aggregate."""
        acc = self._acc.get(stage)
        if acc is None:
            self._acc[stage] = [1, seconds, seconds, seconds]
            return
        acc[0] += 1
        acc[1] += seconds
        if seconds < acc[2]:
            acc[2] = seconds
        if seconds > acc[3]:
            acc[3] = seconds

    def take(self) -> Optional[Dict[str, Tuple[int, float, float, float]]]:
        """Drain accumulated aggregates; None when nothing was measured.

        Returns ``{stage: (count, total_s, min_s, max_s)}`` — a small,
        picklable payload attached to the next verdict frame.
        """
        if not self._acc:
            return None
        out = {stage: tuple(acc) for stage, acc in self._acc.items()}
        self._acc.clear()
        return out


def merge_profile(metrics, backend: str, shard: int, profile) -> None:
    """Fold one verdict frame's profile delta into the metrics registry.

    Runs on the parent at merge time. Per-stage wall-clock totals land in
    the ``backend_stage_wall_ms`` histogram (one sample per shipped
    delta) and operation counts in ``backend_stage_operations_total``,
    both labelled by backend, shard (the worker), and stage. Copies
    worker-measured numbers only — no clock reads here.
    """
    if not profile or metrics is None:
        return
    for stage in sorted(profile):
        count, total_s, _min_s, max_s = profile[stage]
        metrics.histogram(STAGE_WALL_MS, backend=backend, shard=shard,
                          stage=stage).observe(total_s * 1000.0)
        metrics.counter(STAGE_OPS, backend=backend, shard=shard,
                        stage=stage).inc(count)
        metrics.gauge("backend_stage_wall_ms_max", backend=backend,
                      shard=shard, stage=stage).set(max_s * 1000.0)


def profile_summary(metrics) -> Dict[str, Dict[str, float]]:
    """Readable per-(backend, shard, stage) wall-clock summary.

    Collapses the ``backend_stage_wall_ms`` histogram families into
    ``{"backend=threads,shard=0,stage=batch": {count, total_ms, p95_ms}}``
    for the CLI and the bench payloads.
    """
    out: Dict[str, Dict[str, float]] = {}
    for name, labels, histogram, _kind in metrics.instruments("histogram"):
        if name != STAGE_WALL_MS:
            continue
        key = ",".join(f"{k}={v}" for k, v in labels)
        out[key] = {"count": float(histogram.count),
                    "total_ms": float(histogram.total),
                    "p95_ms": float(histogram.percentile(0.95))}
    return out
