"""Zero-dependency exporters: Prometheus text, JSONL, and a snapshot sink.

``prometheus_text`` renders a :class:`~repro.obs.metrics.MetricsRegistry`
(plus optional health reports and SLO statuses) in the Prometheus text
exposition format — ``# TYPE`` headers, escaped labels, histograms as
summaries with ``quantile`` labels. The output is deterministic: families
and label sets render in sorted order, and histogram ``_sum`` lines use
``math.fsum`` so the value is independent of sample arrival order (the
cross-engine equivalence the differential suite asserts).

``lint_prometheus_text`` is a strict line-format checker used by the CI
observability job — it validates the exposition without any external
Prometheus tooling.

:class:`SnapshotSink` is the periodic export hook for the pipeline flush
path: it snapshots metrics/health on simulated-time boundary crossings and
renders the collected records as JSONL.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, Iterable, List, Sequence, Tuple

_QUANTILES = (("0.5", 50.0), ("0.95", 95.0), ("0.99", 99.0))

#: Histogram families rendered with real cumulative ``le`` buckets (plus
#: ``_sum``/``_count``) instead of the default summary-with-quantiles
#: rendering. Wall-clock profiling data is bucketed: scrapers aggregate it
#: across workers, which quantiles cannot do.
_BUCKETED_FAMILIES: Dict[str, Tuple[float, ...]] = {
    "backend_stage_wall_ms": (
        0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
        250.0, 500.0, 1000.0),
}

#: ``# HELP`` text per family. Families absent here fall back to a
#: prefix-derived generic line so every exposition family carries HELP.
_HELP_TEXT: Dict[str, str] = {
    "backend_frames_total": "Batch frames dispatched to backend workers.",
    "backend_frame_responses_total":
        "Responses carried by dispatched batch frames.",
    "backend_workers": "Worker processes/threads currently attached.",
    "backend_worker_deaths_total":
        "Worker deaths observed (timeout or dead pipe).",
    "backend_worker_restarts_total":
        "Workers recovered via respawn + snapshot replay.",
    "backend_degraded_total":
        "Shards degraded to in-parent inline execution.",
    "backend_stage_wall_ms":
        "Wall-clock stage duration measured inside backend workers (ms).",
    "backend_stage_wall_ms_max":
        "Largest single wall-clock stage duration shipped by a worker (ms).",
    "backend_stage_operations_total":
        "Worker stage executions aggregated into the wall-clock profile.",
    "validator_detection_ms": "Per-trigger detection latency (ms).",
    "validator_responses_total": "Responses ingested by the validator.",
}

_HELP_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("validator_", "Validation-core instrumentation (repro.core)."),
    ("pipeline_", "Sharded-pipeline instrumentation (repro.core.pipeline)."),
    ("backend_", "Execution-backend instrumentation (repro.core.backends)."),
    ("replicator_", "Trigger replication instrumentation."),
    ("jury_", "Deployment-level health/SLO export."),
)


def help_text(family: str) -> str:
    """The ``# HELP`` line body for a family (generic fallback included)."""
    text = _HELP_TEXT.get(family)
    if text is not None:
        return text
    for prefix, fallback in _HELP_PREFIXES:
        if family.startswith(prefix):
            return fallback
    return "JURY reproduction metric."

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>-?[0-9]+(?:\.[0-9]+)?(?:[eE][-+]?[0-9]+)?|NaN|[+-]Inf)$")
_LABEL_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"$')
_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_series(name: str, labels: Sequence[Tuple[str, str]],
                   value: float) -> str:
    if labels:
        body = ",".join(f'{k}="{escape_label_value(str(v))}"'
                        for k, v in sorted(labels))
        return f"{name}{{{body}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def prometheus_metrics_lines(registry) -> List[str]:
    """Exposition lines for every instrument in the registry."""
    lines: List[str] = []
    typed: set = set()

    def header(family: str, prom_type: str) -> None:
        if family not in typed:
            typed.add(family)
            lines.append(f"# HELP {family} {help_text(family)}")
            lines.append(f"# TYPE {family} {prom_type}")

    for name, labels, instrument, kind in registry.instruments():
        if kind == "counter":
            header(name, "counter")
            lines.append(_render_series(name, labels, instrument.value))
        elif kind == "gauge":
            header(name, "gauge")
            lines.append(_render_series(name, labels, instrument.value))
        elif name in _BUCKETED_FAMILIES:
            header(name, "histogram")
            lines.extend(_histogram_lines(name, labels, instrument))
        else:
            header(name, "summary")
            for quantile, q in _QUANTILES:
                lines.append(_render_series(
                    name, tuple(labels) + (("quantile", quantile),),
                    instrument.percentile(q / 100.0)))
            # fsum is order-independent over the sample multiset, so the
            # sum matches across engines that observed in different orders.
            lines.append(_render_series(
                f"{name}_sum", labels, math.fsum(instrument.samples)))
            lines.append(_render_series(
                f"{name}_count", labels, instrument.count))
    return lines


def _histogram_lines(name: str, labels, instrument) -> List[str]:
    """Cumulative ``_bucket{le=...}`` + ``_sum``/``_count`` for one series."""
    lines: List[str] = []
    samples = instrument.samples
    cumulative = 0
    for bound in _BUCKETED_FAMILIES[name]:
        cumulative = sum(1 for sample in samples if sample <= bound)
        lines.append(_render_series(
            f"{name}_bucket",
            tuple(labels) + (("le", _format_value(bound)),), cumulative))
    lines.append(_render_series(
        f"{name}_bucket", tuple(labels) + (("le", "+Inf"),),
        instrument.count))
    lines.append(_render_series(
        f"{name}_sum", labels, math.fsum(samples)))
    lines.append(_render_series(f"{name}_count", labels, instrument.count))
    return lines


def prometheus_health_lines(reports: Dict[str, object]) -> List[str]:
    """Exposition lines for a ``{replica: HealthReport}`` mapping."""
    lines: List[str] = []
    if not reports:
        return lines
    gauges = (
        ("jury_replica_health_score", "score"),
        ("jury_replica_disagreement_rate", "disagreement_rate"),
        ("jury_replica_timeout_miss_rate", "timeout_miss_rate"),
        ("jury_replica_lag_p95_ms", "lag_p95_ms"),
        ("jury_replica_suspected", "suspected"),
    )
    for family, attr in gauges:
        lines.append(f"# TYPE {family} gauge")
        for cid in sorted(reports):
            value = getattr(reports[cid], attr)
            lines.append(_render_series(
                family, (("replica", cid),), float(value)))
    return lines


def prometheus_slo_lines(statuses: Sequence) -> List[str]:
    """Exposition lines for a list of :class:`~repro.obs.health.SloStatus`."""
    lines: List[str] = []
    if not statuses:
        return lines
    ordered = sorted(statuses, key=lambda status: status.name)
    lines.append("# TYPE jury_slo_ok gauge")
    lines.extend(_render_series("jury_slo_ok", (("rule", status.name),),
                                float(status.ok)) for status in ordered)
    lines.append("# TYPE jury_slo_value gauge")
    lines.extend(_render_series("jury_slo_value", (("rule", status.name),),
                                status.value) for status in ordered)
    lines.append("# TYPE jury_slo_threshold gauge")
    lines.extend(_render_series("jury_slo_threshold",
                                (("rule", status.name),),
                                status.threshold) for status in ordered)
    return lines


def prometheus_text(registry=None, health_reports=None,
                    slo_statuses=None) -> str:
    """The full exposition document (trailing newline included)."""
    lines: List[str] = []
    if registry is not None:
        lines.extend(prometheus_metrics_lines(registry))
    if health_reports:
        lines.extend(prometheus_health_lines(health_reports))
    if slo_statuses:
        lines.extend(prometheus_slo_lines(slo_statuses))
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# Exposition linter (CI gate — no external Prometheus tooling needed)
# ----------------------------------------------------------------------

def lint_prometheus_text(text: str) -> List[str]:
    """Validate an exposition document; returns error strings (empty = ok).

    Checks the line grammar, label-pair syntax, ``# TYPE``/``# HELP``
    placement (before the family's first sample, at most once per family),
    duplicate series, and histogram bucket discipline: every ``_bucket``
    sample of a declared histogram must carry an ``le`` label, the bucket
    counts of each series must be cumulative (non-decreasing in ``le``
    order), and the ``+Inf`` bucket must be present and equal the series'
    ``_count``.
    """
    errors: List[str] = []
    declared: Dict[str, str] = {}
    helped: set = set()
    seen_series: set = set()
    sampled_families: set = set()
    #: (family, non-le label body) -> [(le, value), ...] / _count values
    buckets: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, str], float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            errors.append(f"line {lineno}: blank line in exposition")
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    errors.append(f"line {lineno}: malformed TYPE comment")
                    continue
                _, _, family, prom_type = parts
                if not _NAME_RE.match(family):
                    errors.append(
                        f"line {lineno}: bad family name {family!r}")
                if prom_type not in _TYPES:
                    errors.append(
                        f"line {lineno}: unknown type {prom_type!r}")
                if family in declared:
                    errors.append(
                        f"line {lineno}: duplicate TYPE for {family!r}")
                if family in sampled_families:
                    errors.append(
                        f"line {lineno}: TYPE for {family!r} after samples")
                declared[family] = prom_type
            elif len(parts) >= 2 and parts[1] == "HELP":
                if len(parts) < 4:
                    errors.append(f"line {lineno}: malformed HELP comment")
                    continue
                family = parts[2]
                if not _NAME_RE.match(family):
                    errors.append(
                        f"line {lineno}: bad family name {family!r}")
                if family in helped:
                    errors.append(
                        f"line {lineno}: duplicate HELP for {family!r}")
                if family in sampled_families:
                    errors.append(
                        f"line {lineno}: HELP for {family!r} after samples")
                helped.add(family)
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        family = _family_of(name, declared)
        sampled_families.add(family)
        if family not in declared:
            errors.append(
                f"line {lineno}: sample for undeclared family {family!r}")
        labels = match.group("labels")
        label_pairs: List[str] = []
        if labels:
            for pair in _split_label_pairs(labels):
                if not _LABEL_RE.match(pair):
                    errors.append(
                        f"line {lineno}: malformed label pair {pair!r}")
                else:
                    label_pairs.append(pair)
        series = (name, labels or "")
        if series in seen_series:
            errors.append(f"line {lineno}: duplicate series {line!r}")
        seen_series.add(series)
        if declared.get(family) != "histogram":
            continue
        value = float(match.group("value").replace("+Inf", "inf")
                      .replace("-Inf", "-inf").replace("NaN", "nan"))
        rest = ",".join(p for p in label_pairs if not p.startswith('le="'))
        if name == f"{family}_bucket":
            le_pairs = [p for p in label_pairs if p.startswith('le="')]
            if len(le_pairs) != 1:
                errors.append(
                    f"line {lineno}: histogram bucket without an le label")
                continue
            bound_text = le_pairs[0][len('le="'):-1]
            try:
                bound = float(bound_text.replace("+Inf", "inf"))
            except ValueError:
                errors.append(
                    f"line {lineno}: unparseable le bound {bound_text!r}")
                continue
            buckets.setdefault((family, rest), []).append((bound, value))
        elif name == f"{family}_count":
            counts[(family, rest)] = value
    for key, series_buckets in sorted(buckets.items()):
        family, rest = key
        label = f"{family}{{{rest}}}" if rest else family
        bounds = [bound for bound, _ in series_buckets]
        values = [value for _, value in series_buckets]
        if bounds != sorted(bounds):
            errors.append(f"{label}: bucket le bounds out of order")
        if any(later < earlier
               for earlier, later in zip(values, values[1:])):
            errors.append(f"{label}: bucket counts are not cumulative")
        if not bounds or bounds[-1] != math.inf:
            errors.append(f"{label}: missing +Inf bucket")
        elif key in counts and values[-1] != counts[key]:
            errors.append(
                f"{label}: +Inf bucket {values[-1]} != _count {counts[key]}")
    return errors


def _family_of(sample_name: str, declared: Dict[str, str]) -> str:
    """Map a sample name back to its family (summary _sum/_count suffixes)."""
    for suffix in ("_sum", "_count", "_bucket"):
        if sample_name.endswith(suffix):
            base = sample_name[:-len(suffix)]
            if declared.get(base) in ("summary", "histogram"):
                return base
    return sample_name


def _split_label_pairs(body: str) -> Iterable[str]:
    """Split ``k="v",k2="v2"`` on commas outside quoted values."""
    pairs: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        pairs.append("".join(current))
    return pairs


# ----------------------------------------------------------------------
# JSONL exports and the periodic snapshot sink
# ----------------------------------------------------------------------

def jsonl_line(record: Dict[str, object]) -> str:
    """One stable JSONL line (sorted keys, no trailing whitespace)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def metrics_jsonl(registry, now: float) -> str:
    """The registry snapshot as one JSONL record."""
    return jsonl_line({"kind": "metrics", "time_ms": now,
                       "metrics": registry.snapshot()})


def health_jsonl(reports: Dict[str, object], slo_statuses: Sequence = None,
                 now: float = 0.0) -> str:
    """Health reports plus SLO statuses as one JSONL record."""
    return jsonl_line({
        "kind": "health", "time_ms": now,
        "replicas": {cid: reports[cid].to_dict() for cid in sorted(reports)},
        "slo": [status.to_dict() for status in (slo_statuses or ())]})


class SnapshotSink:
    """Periodic metrics/health snapshots on simulated-time boundaries.

    ``observe(now)`` is called from the pipeline flush path; the first call
    at or past each ``interval_ms`` boundary records one snapshot (repeat
    calls within a boundary are no-ops, and idle gaps collapse to a single
    snapshot — the sink follows the engine's activity, it never schedules
    simulator events of its own).
    """

    def __init__(self, interval_ms: float = 500.0, registry=None,
                 health=None):
        if interval_ms <= 0:
            raise ValueError(f"interval_ms must be positive: {interval_ms}")
        self.interval_ms = interval_ms
        self.registry = registry
        self.health = health
        self.records: List[Dict[str, object]] = []
        self._next_boundary = interval_ms

    def observe(self, now: float) -> None:
        """Record one snapshot if ``now`` crossed the next boundary."""
        if now < self._next_boundary:
            return
        boundary = self._next_boundary
        while self._next_boundary <= now:
            self._next_boundary += self.interval_ms
        record: Dict[str, object] = {"kind": "snapshot", "time_ms": now,
                                     "boundary_ms": boundary}
        if self.registry is not None:
            record["metrics"] = self.registry.snapshot()
        if self.health is not None:
            reports = self.health.evaluate(boundary)
            record["health"] = {cid: reports[cid].to_dict()
                                for cid in sorted(reports)}
        self.records.append(record)

    def to_jsonl(self) -> str:
        """All recorded snapshots, one JSON object per line."""
        return "\n".join(jsonl_line(record) for record in self.records)

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            text = self.to_jsonl()
            if text:
                handle.write(text)
                handle.write("\n")
