"""Head sampling for the observability stack.

The full diagnose+health stack costs ~3x the bare validator
(``BENCH_observability.json``); production deployments need telemetry that
is *bounded*, not exhaustive. This module implements **head sampling**: the
keep/skip decision is made once per trigger, up front, as a pure function
of the trigger id — so every response, span, and metric sample of one
trigger is either fully recorded or fully skipped, on every shard, on
every backend, in every replay.

Two properties make this safe for the determinism contracts:

* **Pure, stable hash.** The decision is CRC-32 of ``repr(τ)`` modulo the
  sampling rate — the same keyed hash :func:`repro.core.pipeline.shard_of`
  uses for routing, stable across processes and Python versions. Two runs
  of the same scenario sample the same triggers; a sequential validator
  and a 8-shard pipeline sample the same triggers; canonical traces stay
  byte-identical across engines.
* **Severity gating is downstream.** Sampling only gates *observers*
  (spans, histograms, forensics, health). Decisions, alarms, and the
  check battery never consult the sampler, so the alarm stream is
  byte-identical at any rate. Alarmed decisions are always recorded in
  full at decision time (alarm spans + forensics + alarm counters)
  regardless of the head decision — see ``DecisionCore._observe_decision``.

``None`` means "sampling off" (record everything), mirroring the
``tracer=None`` fast-path convention; :func:`active_sampler` normalises a
rate-1 sampler to ``None`` so hot paths keep their single
``is not None`` branch.
"""

from __future__ import annotations

import itertools
import zlib
from typing import Optional, Tuple


class HeadSampler:
    """Deterministic 1-in-N head sampler keyed on the trigger id.

    ``rate=N`` keeps roughly one trigger in N (exactly the triggers whose
    CRC-32 bucket is 0). ``rate=1`` keeps everything.
    """

    __slots__ = ("rate", "_memo")

    #: Bound on the per-sampler decision memo. A trigger's lifecycle asks
    #: for the same decision once per response, span, and metric sample
    #: (~2k+2 times), so memoising the hash is what keeps the sampled
    #: deployment inside the overhead gate. Overflow evicts the *oldest*
    #: half of the memo (FIFO over insertion order) rather than clearing
    #: it wholesale: triggers still in flight are the most recently
    #: inserted, so they keep their memoised decision across the eviction
    #: and a trigger never pays the hash twice mid-lifecycle. (The
    #: decision is a pure function either way — eviction can never change
    #: an answer, only the cost of producing it.)
    _MEMO_LIMIT = 8192

    def __init__(self, rate: int = 1):
        if not isinstance(rate, int) or isinstance(rate, bool) or rate < 1:
            raise ValueError(f"sampling rate must be an int >= 1: {rate!r}")
        self.rate = rate
        self._memo: dict = {}

    def sampled(self, trigger_id: Tuple) -> bool:
        """True iff this trigger's telemetry should be recorded."""
        if self.rate <= 1:
            return True
        kept = self._memo.get(trigger_id)
        if kept is None:
            if len(self._memo) >= self._MEMO_LIMIT:
                # FIFO eviction of the oldest (= longest-completed) half;
                # recent, possibly in-flight triggers stay memoised.
                for stale in list(itertools.islice(iter(self._memo),
                                                   self._MEMO_LIMIT // 2)):
                    del self._memo[stale]
            kept = (zlib.crc32(repr(trigger_id).encode("utf-8"))
                    % self.rate == 0)
            self._memo[trigger_id] = kept
        return kept

    def describe(self) -> str:
        return f"head 1/{self.rate}" if self.rate > 1 else "off (record all)"

    def __repr__(self) -> str:
        return f"HeadSampler(rate={self.rate})"


def active_sampler(sampler: Optional[HeadSampler]) -> Optional[HeadSampler]:
    """Normalise a sampler argument to the internal fast-path convention.

    ``None`` and a rate-1 sampler both mean "record everything"; hot paths
    store ``None`` for that case so the unsampled deployment pays exactly
    one ``is not None`` branch per instrumentation site.
    """
    if sampler is None or sampler.rate <= 1:
        return None
    return sampler
