"""Counter/gauge/histogram families for the validation path.

A :class:`MetricsRegistry` holds named metric *families*; a family plus a
sorted label set identifies one child instrument (the Prometheus data
model, minus the wire format). Families the instrumentation emits:

* validator-side — ``validator_responses_total{kind}``,
  ``validator_decisions_total{outcome}``, ``validator_checks_total{check,
  verdict}``, ``validator_alarms_total{reason}``, and the
  ``validator_detection_ms`` histogram;
* replication-side — ``replicator_triggers_total{source}``,
  ``replicator_copies_total``;
* engine-side (collected, not inlined — zero hot-path cost) —
  ``pipeline_shard_*{shard}`` families scraped from each shard's
  :class:`~repro.core.pipeline.ShardStats` by :func:`collect_pipeline`.

Histograms keep raw samples and defer quantiles to
:func:`repro.harness.metrics.percentile` (imported lazily: the harness
package pulls in the whole experiment stack, which must not load just
because a deployment created a registry).

Like the tracer, a registry never touches simulated time, randomness, or
validator state — metrics on/off cannot change a decision.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, object]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> object:
        return self.value


class Gauge:
    """A point-in-time level (queue depth, high-water mark)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def max(self, value: float) -> None:
        """Keep the running maximum (high-water semantics)."""
        if value > self.value:
            self.value = value

    def snapshot(self) -> object:
        return self.value


class Histogram:
    """A sample distribution with percentile summaries.

    Stores raw samples (simulation scales here are thousands of decisions,
    not millions of requests); ``percentile`` interpolates through the
    harness helper so CLI reports and figures agree on quantile math.
    """

    __slots__ = ("samples", "total")

    def __init__(self) -> None:
        self.samples: List[float] = []
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.samples.append(value)
        self.total += value

    @property
    def count(self) -> int:
        return len(self.samples)

    def percentile(self, q: float) -> float:
        if not self.samples:
            return 0.0
        from repro.harness.metrics import percentile
        return percentile(self.samples, q)

    def snapshot(self) -> object:
        if not self.samples:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "min": min(self.samples),
            "p50": round(self.percentile(0.5), 9),
            "p95": round(self.percentile(0.95), 9),
            "p99": round(self.percentile(0.99), 9),
            "max": max(self.samples),
        }


class MetricsRegistry:
    """Get-or-create registry of labelled metric families."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelSet], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelSet], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelSet], Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _labelset(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _labelset(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, **labels: object) -> Histogram:
        key = (name, _labelset(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def value(self, name: str, **labels: object) -> object:
        """The current value of a counter or gauge (0 if never touched)."""
        key = (name, _labelset(labels))
        if key in self._counters:
            return self._counters[key].value
        if key in self._gauges:
            return self._gauges[key].value
        return 0

    def family_total(self, name: str) -> int:
        """Sum of a counter family across all label sets."""
        return sum(c.value for (n, _), c in self._counters.items()
                   if n == name)

    def instruments(self, kind: Optional[str] = None):
        """Yield ``(name, labelset, instrument, kind)`` deterministically.

        Sorted by (kind, name, labelset); ``kind`` filters to one of
        ``counter`` / ``gauge`` / ``histogram``. This is the exporter
        surface (:mod:`repro.obs.export`).
        """
        tables = (("counter", self._counters), ("gauge", self._gauges),
                  ("histogram", self._histograms))
        for table_kind, table in tables:
            if kind is not None and table_kind != kind:
                continue
            for (name, labels), instrument in sorted(
                    table.items(), key=lambda item: item[0]):
                yield name, labels, instrument, table_kind

    def snapshot(self) -> Dict[str, object]:
        """Deterministic JSON-able dump of every instrument.

        Keys render as ``name{label=value,...}`` with labels sorted, so
        two registries fed the same events snapshot identically.
        """
        out: Dict[str, object] = {}
        for kind, table in (("counter", self._counters),
                            ("gauge", self._gauges),
                            ("histogram", self._histograms)):
            for (name, labels), instrument in sorted(
                    table.items(), key=lambda item: item[0]):
                rendered = name
                if labels:
                    # Labels are sorted at creation (_labelset), but the
                    # render sorts again defensively so dumps stay stable
                    # even for label sets constructed by hand.
                    rendered += "{" + ",".join(
                        f"{k}={v}" for k, v in sorted(labels)) + "}"
                out[rendered] = {"type": kind,
                                 "value": instrument.snapshot()}
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def rows(self) -> List[List[str]]:
        """``[metric, type, value]`` rows for the human reporter."""
        return [[name, entry["type"], json.dumps(entry["value"], sort_keys=True)
                 if isinstance(entry["value"], dict) else str(entry["value"])]
                for name, entry in self.snapshot().items()]


def active_registry(metrics: Optional[MetricsRegistry]) -> Optional[MetricsRegistry]:
    """Normalise to the internal ``None``-means-off convention."""
    return metrics


# ----------------------------------------------------------------------
# Engine-side collection (pull, not push: zero hot-path cost)
# ----------------------------------------------------------------------

def collect_pipeline(registry: MetricsRegistry, pipeline) -> None:
    """Scrape a :class:`~repro.core.pipeline.ValidationPipeline`'s per-shard
    counters into the registry's ``pipeline_shard_*`` families."""
    stats = pipeline.stats
    registry.gauge("pipeline_shards").set(stats.shards)
    registry.counter("pipeline_responses_routed_total").inc(
        stats.responses_routed
        - registry.value("pipeline_responses_routed_total"))
    for index, shard in enumerate(stats.per_shard):
        for counter_name in ("enqueued", "processed", "batches",
                             "overflow_enqueued", "overflow_drained",
                             "backpressure_events", "timer_wakeups",
                             "fastpath_decisions", "slowpath_decisions",
                             "late_responses", "decided", "alarmed"):
            name = f"pipeline_shard_{counter_name}_total"
            instrument = registry.counter(name, shard=index)
            instrument.inc(shard[counter_name] - instrument.value)
        registry.gauge("pipeline_shard_queue_high_water",
                       shard=index).max(shard["queue_high_water"])
        registry.gauge("pipeline_shard_max_batch",
                       shard=index).max(shard["max_batch"])


def collect_deployment(registry: MetricsRegistry, deployment) -> None:
    """Scrape deployment-level counters: replication fan-out, module relay
    volume, byte counters, and (when sharded) the per-shard families."""
    registry.counter("replicator_triggers_replicated_total").inc(
        sum(r.triggers_replicated for r in deployment.replicators.values())
        - registry.value("replicator_triggers_replicated_total"))
    registry.counter("module_responses_sent_total").inc(
        sum(m.responses_sent for m in deployment.modules.values())
        - registry.value("module_responses_sent_total"))
    registry.counter("module_shadow_triggers_total").inc(
        deployment.total_shadow_triggers()
        - registry.value("module_shadow_triggers_total"))
    registry.gauge("replication_bytes").set(
        deployment.replication_counter.bytes)
    registry.gauge("validator_bytes").set(deployment.validator_counter.bytes)
    validator = deployment.validator
    if hasattr(validator, "stats"):
        collect_pipeline(registry, validator)


def dump_metrics(registry: MetricsRegistry, path: str) -> None:
    """Write a metrics snapshot as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(registry.to_json())
        handle.write("\n")
