"""Trigger-lifecycle observability: tracing and metrics for the validation path.

Two complementary views of the same pipeline:

* :class:`~repro.obs.trace.Tracer` — per-trigger lifecycle *spans*
  (intercept → replicate → ingest → Algorithm-1 checks with verdicts →
  alarm/accept), keyed on simulated time and deterministic under replay.
* :class:`~repro.obs.metrics.MetricsRegistry` — counter/gauge/histogram
  families (per-check verdicts, detection latency, per-shard queue and
  batch behaviour) for aggregate health.

Built on top of them, three diagnosis/health layers:

* :class:`~repro.obs.diagnose.AlarmForensics` — per-alarm
  :class:`~repro.obs.diagnose.AlarmExplanation` records (failed check,
  dissenting replicas, cache/network diffs, T1/T2/T3 fault class).
* :class:`~repro.obs.health.ReplicaHealthTracker` /
  :class:`~repro.obs.health.SloMonitor` — rolling-window replica health
  scores with hysteresis, plus SLO threshold rules over the registry.
* :mod:`repro.obs.export` — zero-dependency Prometheus-text and JSONL
  exporters and the periodic :class:`~repro.obs.export.SnapshotSink`.

All are strictly read-only observers of the validation path: enabling
them cannot change a decision, and disabling them (``None``, the default)
costs one branch per instrumented event. See ``docs/observability.md``
for the span model, metric catalog, explanation schema, and health/SLO
formulas.
"""

from repro.obs.diagnose import (
    CHECK_BY_REASON,
    FAULT_CLASS_BY_REASON,
    AlarmExplanation,
    AlarmForensics,
    FieldDiff,
    diff_entries,
    explain_alarm,
    explanations_from_files,
    export_explanations,
    find_explanation,
    render_explanations,
)
from repro.obs.export import (
    SnapshotSink,
    health_jsonl,
    lint_prometheus_text,
    metrics_jsonl,
    prometheus_text,
)
from repro.obs.health import (
    HealthReport,
    ReplicaHealthTracker,
    SloMonitor,
    SloRule,
    SloStatus,
    default_slo_rules,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_deployment,
    collect_pipeline,
    dump_metrics,
)
from repro.obs.trace import (
    ACCEPT,
    ALARM,
    CHECK_CONSENSUS,
    CHECK_POLICY,
    CHECK_SANITY,
    CHECK_STALENESS,
    DECIDE,
    INGEST,
    INTERCEPT,
    LATE_DROP,
    REPLICATE,
    STAGE_RANK,
    VERDICT_OK,
    NullTracer,
    Span,
    Tracer,
    TriggerTimeline,
    active_tracer,
    dump_trace,
    load_trace,
    match_trigger_key,
    span_sort_key,
)

__all__ = [
    "ACCEPT",
    "ALARM",
    "CHECK_BY_REASON",
    "CHECK_CONSENSUS",
    "CHECK_POLICY",
    "CHECK_SANITY",
    "CHECK_STALENESS",
    "AlarmExplanation",
    "AlarmForensics",
    "Counter",
    "DECIDE",
    "FAULT_CLASS_BY_REASON",
    "FieldDiff",
    "Gauge",
    "HealthReport",
    "Histogram",
    "INGEST",
    "INTERCEPT",
    "LATE_DROP",
    "MetricsRegistry",
    "NullTracer",
    "REPLICATE",
    "ReplicaHealthTracker",
    "STAGE_RANK",
    "SloMonitor",
    "SloRule",
    "SloStatus",
    "SnapshotSink",
    "Span",
    "Tracer",
    "TriggerTimeline",
    "VERDICT_OK",
    "active_tracer",
    "collect_deployment",
    "collect_pipeline",
    "default_slo_rules",
    "diff_entries",
    "dump_metrics",
    "dump_trace",
    "explain_alarm",
    "explanations_from_files",
    "export_explanations",
    "find_explanation",
    "health_jsonl",
    "lint_prometheus_text",
    "load_trace",
    "match_trigger_key",
    "metrics_jsonl",
    "prometheus_text",
    "render_explanations",
    "span_sort_key",
]
