"""Trigger-lifecycle observability: tracing and metrics for the validation path.

Two complementary views of the same pipeline:

* :class:`~repro.obs.trace.Tracer` — per-trigger lifecycle *spans*
  (intercept → replicate → ingest → Algorithm-1 checks with verdicts →
  alarm/accept), keyed on simulated time and deterministic under replay.
* :class:`~repro.obs.metrics.MetricsRegistry` — counter/gauge/histogram
  families (per-check verdicts, detection latency, per-shard queue and
  batch behaviour) for aggregate health.

Both are strictly read-only observers of the validation path: enabling
them cannot change a decision, and disabling them (``tracer=None`` /
``metrics=None``, the default) costs one branch per instrumented event.
See ``docs/observability.md`` for the span model and metric catalog.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_deployment,
    collect_pipeline,
    dump_metrics,
)
from repro.obs.trace import (
    ACCEPT,
    ALARM,
    CHECK_CONSENSUS,
    CHECK_POLICY,
    CHECK_SANITY,
    CHECK_STALENESS,
    DECIDE,
    INGEST,
    INTERCEPT,
    LATE_DROP,
    REPLICATE,
    STAGE_RANK,
    VERDICT_OK,
    NullTracer,
    Span,
    Tracer,
    TriggerTimeline,
    active_tracer,
    dump_trace,
    load_trace,
    match_trigger_key,
    span_sort_key,
)

__all__ = [
    "ACCEPT",
    "ALARM",
    "CHECK_CONSENSUS",
    "CHECK_POLICY",
    "CHECK_SANITY",
    "CHECK_STALENESS",
    "Counter",
    "DECIDE",
    "Gauge",
    "Histogram",
    "INGEST",
    "INTERCEPT",
    "LATE_DROP",
    "MetricsRegistry",
    "NullTracer",
    "REPLICATE",
    "STAGE_RANK",
    "Span",
    "Tracer",
    "TriggerTimeline",
    "VERDICT_OK",
    "active_tracer",
    "collect_deployment",
    "collect_pipeline",
    "dump_metrics",
    "dump_trace",
    "load_trace",
    "match_trigger_key",
    "span_sort_key",
]
