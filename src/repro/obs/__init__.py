"""Trigger-lifecycle observability: tracing and metrics for the validation path.

Two complementary views of the same pipeline:

* :class:`~repro.obs.trace.Tracer` — per-trigger lifecycle *spans*
  (intercept → replicate → ingest → Algorithm-1 checks with verdicts →
  alarm/accept), keyed on simulated time and deterministic under replay.
* :class:`~repro.obs.metrics.MetricsRegistry` — counter/gauge/histogram
  families (per-check verdicts, detection latency, per-shard queue and
  batch behaviour) for aggregate health.

Built on top of them, three diagnosis/health layers:

* :class:`~repro.obs.diagnose.AlarmForensics` — per-alarm
  :class:`~repro.obs.diagnose.AlarmExplanation` records (failed check,
  dissenting replicas, cache/network diffs, T1/T2/T3 fault class).
* :class:`~repro.obs.health.ReplicaHealthTracker` /
  :class:`~repro.obs.health.SloMonitor` — rolling-window replica health
  scores with hysteresis, plus SLO threshold rules over the registry.
* :mod:`repro.obs.export` — zero-dependency Prometheus-text and JSONL
  exporters and the periodic :class:`~repro.obs.export.SnapshotSink`.

Production-shaped telemetry bounding (PR 8):

* :class:`~repro.obs.recorder.FlightRecorder` — always-on fixed-size ring
  of recent decision/alarm/worker/SLO events, dumped on anomaly triggers.
* :class:`~repro.obs.sampling.HeadSampler` — deterministic 1-in-N head
  sampling of the observer stack, keyed on the trigger id.
* :mod:`repro.obs.profile` — wall-clock per-stage/per-shard worker
  profiling, distinct from the simulated-time tracer.
* :mod:`repro.obs.diff` — canonical trace diffing with first-divergence
  attribution (``jury-repro trace-diff``).

All are strictly read-only observers of the validation path: enabling
them cannot change a decision, and disabling them (``None``, the default)
costs one branch per instrumented event. See ``docs/observability.md``
for the span model, metric catalog, explanation schema, and health/SLO
formulas.
"""

from repro.obs.diagnose import (
    CHECK_BY_REASON,
    FAULT_CLASS_BY_REASON,
    AlarmExplanation,
    AlarmForensics,
    FieldDiff,
    diff_entries,
    explain_alarm,
    explanations_from_files,
    export_explanations,
    find_explanation,
    render_explanations,
)
from repro.obs.diff import (
    DiffEntry,
    TraceDiff,
    diff_payloads,
    diff_trace_files,
    diff_tracers,
    first_divergence_detail,
)
from repro.obs.export import (
    SnapshotSink,
    health_jsonl,
    lint_prometheus_text,
    metrics_jsonl,
    prometheus_text,
)
from repro.obs.health import (
    HealthReport,
    ReplicaHealthTracker,
    SloMonitor,
    SloRule,
    SloStatus,
    default_slo_rules,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_deployment,
    collect_pipeline,
    dump_metrics,
)
from repro.obs.profile import (
    StageProfiler,
    merge_profile,
    profile_summary,
)
from repro.obs.recorder import (
    FlightRecorder,
    dump_flight,
    load_flight,
    render_flight,
)
from repro.obs.sampling import (
    HeadSampler,
    active_sampler,
)
from repro.obs.trace import (
    ACCEPT,
    ALARM,
    CHECK_CONSENSUS,
    CHECK_POLICY,
    CHECK_SANITY,
    CHECK_STALENESS,
    DECIDE,
    INGEST,
    INTERCEPT,
    LATE_DROP,
    REPLICATE,
    STAGE_RANK,
    VERDICT_OK,
    NullTracer,
    Span,
    Tracer,
    TriggerTimeline,
    active_tracer,
    dump_trace,
    load_trace,
    match_trigger_key,
    span_sort_key,
)

__all__ = [
    "ACCEPT",
    "ALARM",
    "CHECK_BY_REASON",
    "CHECK_CONSENSUS",
    "CHECK_POLICY",
    "CHECK_SANITY",
    "CHECK_STALENESS",
    "AlarmExplanation",
    "AlarmForensics",
    "Counter",
    "DECIDE",
    "DiffEntry",
    "FAULT_CLASS_BY_REASON",
    "FieldDiff",
    "FlightRecorder",
    "Gauge",
    "HeadSampler",
    "HealthReport",
    "Histogram",
    "INGEST",
    "INTERCEPT",
    "LATE_DROP",
    "MetricsRegistry",
    "NullTracer",
    "REPLICATE",
    "ReplicaHealthTracker",
    "STAGE_RANK",
    "SloMonitor",
    "SloRule",
    "SloStatus",
    "SnapshotSink",
    "Span",
    "StageProfiler",
    "TraceDiff",
    "Tracer",
    "TriggerTimeline",
    "VERDICT_OK",
    "active_sampler",
    "active_tracer",
    "collect_deployment",
    "collect_pipeline",
    "default_slo_rules",
    "diff_entries",
    "diff_payloads",
    "diff_trace_files",
    "diff_tracers",
    "dump_flight",
    "dump_metrics",
    "dump_trace",
    "explain_alarm",
    "explanations_from_files",
    "export_explanations",
    "find_explanation",
    "first_divergence_detail",
    "health_jsonl",
    "lint_prometheus_text",
    "load_flight",
    "load_trace",
    "match_trigger_key",
    "merge_profile",
    "metrics_jsonl",
    "profile_summary",
    "prometheus_text",
    "render_explanations",
    "render_flight",
    "span_sort_key",
]
