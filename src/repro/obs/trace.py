"""Per-trigger lifecycle tracing for the validation path.

JURY's output is an alarm with attribution; *why* the alarm fired — which
Algorithm-1 check failed, what the validator had seen by then, where the
trigger spent its time — is what an operator debugging a cross-plane
divergence actually needs. This module records that decision path as a
stream of :class:`Span` records keyed on **simulated time**, so traces are
deterministic: replaying the same recorded response stream (see
:class:`~repro.workloads.recorder.ValidatorStreamRecorder`) reproduces the
trace byte for byte, at any pipeline shard count.

Design rules that keep tracing equivalence-safe:

* A tracer never schedules events, never draws randomness, and never
  mutates validator state — it only appends records. Tracing on/off cannot
  change a single decision, which is what lets the differential suite run
  byte-identical with tracing enabled.
* Spans carry only *engine-independent* facts (stage, verdict, counts).
  Shard indices, batch sizes, and queue depths live in the
  :class:`~repro.obs.metrics.MetricsRegistry` instead — a trace produced at
  ``pipeline=1`` and ``pipeline=4`` from the same stream is identical.
* The canonical encoding (:meth:`Tracer.canonical`) sorts spans by
  ``(time, trigger id, stage rank)`` with a stable sort, mirroring
  :func:`repro.core.alarms.canonical_alarm_stream`; equality of canonical
  traces is the trace-determinism contract asserted in the test suite.

The no-op fast path is ``tracer=None``: instrumentation sites guard with a
single ``is not None`` check, so a deployment built without ``trace=True``
pays one predictable branch per instrumented event and nothing else.
:class:`NullTracer` exists for call sites that want an object either way;
components normalise it to ``None`` internally via :func:`active_tracer`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# ----------------------------------------------------------------------
# Stage vocabulary
# ----------------------------------------------------------------------
# One trigger's lifecycle, in causal order. The rank both orders timeline
# rendering and tiebreaks the canonical sort at equal simulated times.

INTERCEPT = "intercept"          #: replicator saw the external trigger
REPLICATE = "replicate"          #: taint-wrapped copies shipped to secondaries
INGEST = "ingest"                #: one response reached the validator
LATE_DROP = "late-drop"          #: response for an already-decided trigger
DECIDE = "decide"                #: Vτ closed (full count or θτ expiry)
CHECK_CONSENSUS = "check:consensus"
CHECK_SANITY = "check:sanity"
CHECK_STALENESS = "check:staleness"
CHECK_POLICY = "check:policy"
ALARM = "alarm"                  #: one alarm raised for this trigger
ACCEPT = "accept"                #: decided clean — no alarms

# Execution-backend plumbing stages (repro.core.backends). These describe
# *how* a batch moved between the pipeline and a worker, not what happened
# to a trigger — they are excluded from the canonical encoding so traces
# stay byte-identical across serial/threads/processes backends.
ENGINE_SUBMIT = "engine:submit"    #: batch frame handed to a backend worker
ENGINE_EXECUTE = "engine:execute"  #: worker finished processing the frame
ENGINE_MERGE = "engine:merge"      #: verdict frame merged into shared state
ENGINE_DEGRADE = "engine:degrade"  #: worker lost twice; shard now runs inline
ENGINE_CHECKPOINT = "engine:checkpoint"  #: recovery snapshot taken
ENGINE_RESTORE = "engine:restore"        #: engine rehydrated from a snapshot

STAGE_RANK: Dict[str, int] = {
    INTERCEPT: 0,
    REPLICATE: 1,
    INGEST: 2,
    LATE_DROP: 3,
    DECIDE: 4,
    CHECK_CONSENSUS: 5,
    CHECK_SANITY: 6,
    CHECK_STALENESS: 7,
    CHECK_POLICY: 8,
    ALARM: 9,
    ACCEPT: 10,
    ENGINE_SUBMIT: 11,
    ENGINE_EXECUTE: 12,
    ENGINE_MERGE: 13,
    ENGINE_DEGRADE: 14,
    ENGINE_CHECKPOINT: 15,
    ENGINE_RESTORE: 16,
}

#: Verdict value for a passing check.
VERDICT_OK = "ok"


@dataclass(frozen=True)
class Span:
    """One typed event in a trigger's lifecycle, at a simulated instant.

    ``attrs`` is a sorted tuple of ``(key, value)`` pairs — hashable and
    deterministic, unlike a dict whose insertion order would leak
    call-site accidents into the canonical encoding.
    """

    at: float
    trigger_id: Tuple
    stage: str
    verdict: Optional[str] = None
    detail: str = ""
    attrs: Tuple[Tuple[str, object], ...] = ()

    def attr(self, key: str, default=None):
        """Look up one attribute by name."""
        for k, v in self.attrs:
            if k == key:
                return v
        return default

    def canonical_line(self) -> str:
        """One-line canonical rendering, stable across runs and engines."""
        attrs = ";".join(f"{k}={v!r}" for k, v in self.attrs)
        verdict = self.verdict if self.verdict is not None else "-"
        return (f"{self.at:.9f}|{self.trigger_id!r}|{self.stage}|"
                f"{verdict}|{self.detail}|{attrs}")


def span_sort_key(span: Span) -> Tuple[float, str, int]:
    """Deterministic total order for canonical trace encoding.

    Stable-sorting by this key leaves same-key spans (e.g. several ingests
    of one trigger at one instant) in emission order, which per trigger is
    arrival order on whichever shard owns it — identical at any shard
    count, because all of a trigger's responses route to one shard.
    """
    return (span.at, repr(span.trigger_id),
            STAGE_RANK.get(span.stage, len(STAGE_RANK)))


def _freeze_attrs(attrs: Dict[str, object]) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted(attrs.items()))


class Tracer:
    """Collects lifecycle spans for every trigger that crosses the system.

    One tracer is shared by the whole deployment (replicators, validator or
    pipeline shards, alarm emission); the single append-only list keeps
    memory accounting simple and the export deterministic.
    """

    #: Instrumentation sites check this once at construction; a subclass
    #: returning False (``NullTracer``) is normalised away entirely.
    enabled = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._by_trigger: Dict[str, List[Span]] = {}

    # ------------------------------------------------------------------
    # Emission (the validator-side hot path when tracing is on)
    # ------------------------------------------------------------------
    def emit(self, at: float, trigger_id: Tuple, stage: str,
             verdict: Optional[str] = None, detail: str = "",
             **attrs: object) -> Span:
        """Record one span. Returns it (handy in tests)."""
        span = Span(at=at, trigger_id=trigger_id, stage=stage,
                    verdict=verdict, detail=detail,
                    attrs=_freeze_attrs(attrs) if attrs else ())
        self.spans.append(span)
        self._by_trigger.setdefault(repr(trigger_id), []).append(span)
        return span

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def trigger_keys(self) -> List[str]:
        """``repr`` keys of every traced trigger, in first-seen order."""
        return list(self._by_trigger)

    def spans_for(self, trigger_id) -> List[Span]:
        """All spans of one trigger, in emission order.

        Accepts the trigger id tuple or its ``repr`` string (the form the
        CLI and JSON export use).
        """
        key = trigger_id if isinstance(trigger_id, str) else repr(trigger_id)
        return list(self._by_trigger.get(key, []))

    def timeline(self, trigger_id) -> "TriggerTimeline":
        """The reconstructed lifecycle of one trigger."""
        spans = self.spans_for(trigger_id)
        key = trigger_id if isinstance(trigger_id, str) else repr(trigger_id)
        return TriggerTimeline(trigger_key=key, spans=sorted(
            spans, key=span_sort_key))

    def stage_counts(self) -> Dict[str, int]:
        """Span count per stage — the conservation ledger."""
        counts: Dict[str, int] = {}
        for span in self.spans:
            counts[span.stage] = counts.get(span.stage, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Canonical encoding and JSON export
    # ------------------------------------------------------------------
    def canonical(self) -> bytes:
        """Byte-exact canonical encoding of the whole trace.

        Two runs are trace-equivalent iff their canonical encodings compare
        equal; see the module docstring for why this is engine-independent.
        ``engine:*`` spans (backend submit/execute/merge plumbing) are
        engine-*specific* by construction and are filtered out here, the
        same way shard indices are kept out of spans entirely.
        """
        ordered = sorted((s for s in self.spans
                          if not s.stage.startswith("engine:")),
                         key=span_sort_key)
        return "\n".join(s.canonical_line() for s in ordered).encode("utf-8")

    def to_payload(self) -> Dict[str, object]:
        """JSON-able export (``jury-repro trace --output``)."""
        ordered = sorted(self.spans, key=span_sort_key)
        return {
            "format": "jury-trace",
            "version": 1,
            "span_count": len(ordered),
            "trigger_count": len(self._by_trigger),
            "spans": [
                {
                    "t": span.at,
                    "trigger": repr(span.trigger_id),
                    "stage": span.stage,
                    "verdict": span.verdict,
                    "detail": span.detail,
                    "attrs": {k: v for k, v in span.attrs},
                }
                for span in ordered
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_payload(), indent=indent, sort_keys=True)

    @staticmethod
    def from_payload(payload: Dict[str, object]) -> "Tracer":
        """Rebuild a tracer from :meth:`to_payload` output.

        Trigger ids come back as their ``repr`` strings (tuples do not
        survive JSON); every lookup API accepts that form.
        """
        if payload.get("format") != "jury-trace":
            raise ValueError("not a jury-trace payload")
        tracer = Tracer()
        for entry in payload.get("spans", []):
            span = Span(
                at=float(entry["t"]),
                # Stored pre-repr'd: mark with a string trigger id whose
                # repr round-trips to itself for grouping purposes.
                trigger_id=_ReprKey(entry["trigger"]),
                stage=str(entry["stage"]),
                verdict=entry.get("verdict"),
                detail=str(entry.get("detail", "")),
                attrs=_freeze_attrs(dict(entry.get("attrs", {}))),
            )
            tracer.spans.append(span)
            tracer._by_trigger.setdefault(entry["trigger"], []).append(span)
        return tracer


class _ReprKey(str):
    """A string whose ``repr`` is itself — lets reloaded spans (which only
    kept the repr of their trigger id) group and sort exactly like live
    spans do."""

    __slots__ = ()

    def __repr__(self) -> str:  # noqa: D105 - identity repr by design
        return str.__str__(self)


class NullTracer(Tracer):
    """A tracer that records nothing (the explicit-object no-op path)."""

    enabled = False

    def emit(self, at, trigger_id, stage, verdict=None, detail="",
             **attrs) -> None:  # type: ignore[override]
        return None


def active_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Normalise a tracer argument to the internal fast-path convention.

    Components store ``None`` for "tracing off" so hot paths pay exactly
    one ``is not None`` branch; a disabled tracer (``NullTracer``) is
    folded into that same representation here.
    """
    if tracer is None or not tracer.enabled:
        return None
    return tracer


# ----------------------------------------------------------------------
# Timeline reconstruction
# ----------------------------------------------------------------------

@dataclass
class TriggerTimeline:
    """One trigger's lifecycle: ordered spans plus derived summary facts."""

    trigger_key: str
    spans: List[Span] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.spans

    @property
    def started_at(self) -> float:
        return self.spans[0].at if self.spans else 0.0

    @property
    def decided_at(self) -> Optional[float]:
        for span in self.spans:
            if span.stage == DECIDE:
                return span.at
        return None

    @property
    def verdict(self) -> str:
        """``accept``, ``alarm:<reasons>``, or ``undecided``."""
        reasons = [s.verdict for s in self.spans if s.stage == ALARM]
        if reasons:
            return "alarm:" + ",".join(sorted(set(r or "?" for r in reasons)))
        if any(s.stage == ACCEPT for s in self.spans):
            return "accept"
        return "undecided"

    @property
    def checks(self) -> List[Span]:
        return [s for s in self.spans if s.stage.startswith("check:")]

    def rows(self) -> List[List[str]]:
        """Human-renderable rows: relative time, stage, verdict, detail."""
        base = self.started_at
        rows = []
        for span in self.spans:
            attrs = " ".join(f"{k}={v}" for k, v in span.attrs)
            detail = span.detail
            if attrs:
                detail = f"{detail} [{attrs}]" if detail else f"[{attrs}]"
            rows.append([f"+{span.at - base:.3f} ms", span.stage,
                         span.verdict if span.verdict is not None else "-",
                         detail])
        return rows


def load_trace(path: str) -> Tracer:
    """Read a trace JSON file written by ``jury-repro trace --output``."""
    with open(path, "r", encoding="utf-8") as handle:
        return Tracer.from_payload(json.load(handle))


def dump_trace(tracer: Tracer, path: str) -> None:
    """Write a trace JSON file (stable key order, trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(tracer.to_json())
        handle.write("\n")


def match_trigger_key(tracer: Tracer, query: str) -> Optional[str]:
    """Resolve a user-supplied trigger query to a traced trigger key.

    Accepts the exact ``repr`` form (``('ext', 42)``), the compact
    ``ext:42`` shorthand, or a bare substring; returns the first traced
    key that matches, or ``None``.
    """
    if not query or not query.strip():
        return None  # an empty query would substring-match the first key
    keys = tracer.trigger_keys()
    if query in keys:
        return query
    if ":" in query and "(" not in query:
        head, _, tail = query.partition(":")
        parts = [head] + tail.split(":")
        rendered = "(" + ", ".join(
            repr(int(p)) if p.lstrip("-").isdigit() else repr(p)
            for p in parts) + ")"
        if rendered in keys:
            return rendered
    for key in keys:
        if query in key:
            return key
    return None
