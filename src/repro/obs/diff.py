"""Canonical trace diffing: align two traces, pinpoint first divergence.

Divergence triage — "pipeline N=4 produced a different trace than the
sequential replay" — lives or dies on knowing *where* two executions
first part ways, not just that their digests differ. This module aligns
two canonical traces by the same total order the canonical encoding uses
(``(time, trigger id, stage rank)``, :func:`repro.obs.trace.span_sort_key`)
and reports:

* the **first divergence**: the earliest aligned position where the two
  traces disagree — either a span present on one side only
  (``left-only`` / ``right-only``) or the same ``(time, trigger, stage)``
  slot with a different verdict/detail/attrs (``changed``);
* summary counts (spans per side, spans common, spans divergent).

Alignment walks the two sorted canonical span lists with a merge join on
``(time, trigger repr, stage rank)`` — engine plumbing spans
(``engine:*``) are excluded exactly as :meth:`Tracer.canonical` excludes
them, so the diff of two traces is empty iff their canonical encodings
are byte-identical.

Exposed as ``jury-repro trace-diff A B`` (exit 0 and an empty diff on
identical traces; exit 1 with the first-divergence point otherwise) and
used by the fuzz oracle to annotate ``ENGINE_DIVERGENCE`` /
``TRACE_DIVERGENCE`` counterexamples with their first-divergence point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.trace import STAGE_RANK, Span, Tracer, span_sort_key


@dataclass(frozen=True)
class DiffEntry:
    """One aligned position where the two traces disagree."""

    #: ``changed`` (same slot, different content), ``left-only``, or
    #: ``right-only``.
    kind: str
    at: float
    trigger: str
    stage: str
    left: Optional[str] = None   #: canonical line on the left, if present
    right: Optional[str] = None  #: canonical line on the right, if present

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "t": self.at, "trigger": self.trigger,
                "stage": self.stage, "left": self.left, "right": self.right}

    def render(self) -> str:
        lines = [f"{self.kind} at t={self.at:.3f} trigger={self.trigger} "
                 f"stage={self.stage}"]
        if self.left is not None:
            lines.append(f"  < {self.left}")
        if self.right is not None:
            lines.append(f"  > {self.right}")
        return "\n".join(lines)


@dataclass
class TraceDiff:
    """The full comparison verdict for a pair of traces."""

    left_spans: int = 0
    right_spans: int = 0
    common: int = 0
    entries: List[DiffEntry] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not self.entries

    @property
    def first_divergence(self) -> Optional[DiffEntry]:
        return self.entries[0] if self.entries else None

    def to_dict(self, limit: int = 50) -> Dict[str, object]:
        first = self.first_divergence
        return {
            "identical": self.identical,
            "left_spans": self.left_spans,
            "right_spans": self.right_spans,
            "common": self.common,
            "divergent": len(self.entries),
            "first_divergence": first.to_dict() if first else None,
            "entries": [e.to_dict() for e in self.entries[:limit]],
            "truncated": len(self.entries) > limit,
        }

    def render(self, limit: int = 10) -> str:
        if self.identical:
            return (f"traces identical: {self.left_spans} canonical spans, "
                    f"no divergence")
        lines = [f"traces diverge: {len(self.entries)} divergent position(s) "
                 f"(left {self.left_spans} spans, right {self.right_spans}, "
                 f"common {self.common})",
                 "first divergence:",
                 self.entries[0].render()]
        if len(self.entries) > 1:
            lines.append(f"next {min(limit, len(self.entries)) - 1} of "
                         f"{len(self.entries) - 1} further divergences:")
            for entry in self.entries[1:limit]:
                lines.append(entry.render())
        return "\n".join(lines)


def _align_key(span: Span) -> Tuple[float, str, int]:
    return (span.at, repr(span.trigger_id),
            STAGE_RANK.get(span.stage, len(STAGE_RANK)))


def _canonical_spans(tracer: Tracer) -> List[Span]:
    return sorted((s for s in tracer.spans
                   if not s.stage.startswith("engine:")),
                  key=span_sort_key)


def _entry(kind: str, span: Span, left: Optional[str],
           right: Optional[str]) -> DiffEntry:
    return DiffEntry(kind=kind, at=span.at, trigger=repr(span.trigger_id),
                     stage=span.stage, left=left, right=right)


def diff_tracers(left: Tracer, right: Tracer) -> TraceDiff:
    """Merge-join two traces on the canonical order; collect divergences.

    Same-key runs (several ingests of one trigger at one instant) are
    compared positionally within the run — emission order is part of the
    canonical contract, so a reordering inside a run is a divergence.
    """
    a = _canonical_spans(left)
    b = _canonical_spans(right)
    diff = TraceDiff(left_spans=len(a), right_spans=len(b))
    i = j = 0
    while i < len(a) and j < len(b):
        ka, kb = _align_key(a[i]), _align_key(b[j])
        if ka < kb:
            diff.entries.append(_entry("left-only", a[i],
                                       a[i].canonical_line(), None))
            i += 1
        elif kb < ka:
            diff.entries.append(_entry("right-only", b[j],
                                       None, b[j].canonical_line()))
            j += 1
        else:
            la, lb = a[i].canonical_line(), b[j].canonical_line()
            if la == lb:
                diff.common += 1
            else:
                diff.entries.append(_entry("changed", a[i], la, lb))
            i += 1
            j += 1
    while i < len(a):
        diff.entries.append(_entry("left-only", a[i],
                                   a[i].canonical_line(), None))
        i += 1
    while j < len(b):
        diff.entries.append(_entry("right-only", b[j],
                                   None, b[j].canonical_line()))
        j += 1
    return diff


def diff_payloads(left: Dict[str, object],
                  right: Dict[str, object]) -> TraceDiff:
    """Diff two ``jury-trace`` payload dicts (the on-disk JSON form)."""
    return diff_tracers(Tracer.from_payload(left), Tracer.from_payload(right))


def diff_trace_files(left_path: str, right_path: str) -> TraceDiff:
    """Diff two trace JSON files written by ``jury-repro trace --output``."""
    from repro.obs.trace import load_trace
    return diff_tracers(load_trace(left_path), load_trace(right_path))


def first_divergence_detail(diff: TraceDiff) -> str:
    """One-line first-divergence summary for violation details."""
    first = diff.first_divergence
    if first is None:
        return "no divergence"
    return (f"first divergence at t={first.at:.3f} trigger={first.trigger} "
            f"stage={first.stage} ({first.kind})")
