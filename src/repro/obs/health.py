"""Replica health scoring and SLO monitoring over simulated time.

:class:`ReplicaHealthTracker` scores every controller replica from three
rolling-window signals the validator already sees — how often the replica is
named as an alarm offender (disagreement rate), how often it fails to answer
a trigger that timed out (timeout-miss rate), and its response-lag
percentiles — and flags a *suspected-faulty* replica with hysteresis so a
single bad window cannot flap the flag.

The tracker is an order-independent pure function of its event log. The
hooks called from the hot path (:meth:`record_response`,
:meth:`record_decision`) only append raw time-stamped events; every derived
number comes out of :meth:`evaluate`, which sorts the events and replays
fixed window boundaries from t=0. Because sorting erases arrival-order
differences, the sequential validator and the sharded pipeline produce
identical health reports at any shard count — the same determinism contract
the tracer keeps, tested by the differential suite. Like every observer in
``repro.obs``, the tracker sits behind a ``None`` fast path and cannot
perturb decisions.

:class:`SloMonitor` evaluates a small catalog of threshold rules over a
:class:`~repro.obs.metrics.MetricsRegistry` snapshot — detection-latency
p95, ingest-queue overflow rate, late-drop rate — on simulated time.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple

#: Health-score weights: disagreement, timeout-miss, lag (sum to 1).
DEFAULT_WEIGHTS = (0.5, 0.3, 0.2)


@dataclass(frozen=True)
class HealthReport:
    """Final health verdict for one replica at an evaluation horizon."""

    controller_id: str
    score: float
    disagreement_rate: float
    timeout_miss_rate: float
    lag_p50_ms: float
    lag_p95_ms: float
    responses: int
    decisions: int
    suspected: bool
    suspected_since: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}


@dataclass
class _ReplicaWindow:
    """Mutable per-replica accumulator for one window evaluation."""

    offender: int = 0
    involved: int = 0
    expected_timeouts: int = 0
    missed_timeouts: int = 0
    lags: Optional[List[float]] = None


@dataclass
class _HysteresisState:
    suspect_streak: int = 0
    clear_streak: int = 0
    suspected: bool = False
    suspected_since: Optional[float] = None


class ReplicaHealthTracker:
    """Rolling-window replica health scores with hysteresis flagging."""

    def __init__(self, window_ms: float = 1000.0,
                 interval_ms: float = 250.0,
                 suspect_threshold: float = 0.5,
                 clear_threshold: float = 0.2,
                 suspect_after: int = 2,
                 clear_after: int = 2,
                 lag_budget_ms: float = 250.0,
                 weights: Tuple[float, float, float] = DEFAULT_WEIGHTS):
        if window_ms <= 0 or interval_ms <= 0:
            raise ValueError("window_ms and interval_ms must be positive")
        self.window_ms = window_ms
        self.interval_ms = interval_ms
        self.suspect_threshold = suspect_threshold
        self.clear_threshold = clear_threshold
        self.suspect_after = max(1, suspect_after)
        self.clear_after = max(1, clear_after)
        self.lag_budget_ms = lag_budget_ms
        self.weights = weights
        #: Raw event logs: appended from the hot path, never read there.
        #: (time, controller, lag or None)
        self._responses: List[Tuple[float, str, Optional[float]]] = []
        #: (time, responders, offenders, timed_out)
        self._decisions: List[
            Tuple[float, Tuple[str, ...], Tuple[str, ...], bool]] = []

    # ------------------------------------------------------------------
    # Hot-path hooks (append-only)
    # ------------------------------------------------------------------
    def record_response(self, now: float, controller_id: str,
                        lag_ms: Optional[float] = None) -> None:
        """One response ingested by the validator (engine-level, pre-queue)."""
        self._responses.append((now, controller_id, lag_ms))

    def record_decision(self, now: float, responses: Sequence,
                        alarms: Sequence, timed_out: bool) -> None:
        """One trigger decided; extracts responders and alarm offenders."""
        responders = tuple(sorted({r.controller_id for r in responses}))
        offenders = tuple(sorted({a.offending_controller for a in alarms
                                  if a.offending_controller}))
        self._decisions.append((now, responders, offenders, timed_out))

    @property
    def response_events(self) -> int:
        return len(self._responses)

    @property
    def decision_events(self) -> int:
        return len(self._decisions)

    # ------------------------------------------------------------------
    # Pure evaluation
    # ------------------------------------------------------------------
    def evaluate(self, now: float) -> Dict[str, HealthReport]:
        """Replay window boundaries up to ``now`` and score every replica.

        Deterministic: the event logs are sorted first, so any arrival-order
        difference between engines (or shard interleavings at the same
        simulated instant) evaluates identically.
        """
        from repro.harness.metrics import percentile

        responses = sorted(
            self._responses,
            key=lambda e: (e[0], e[1], -1.0 if e[2] is None else e[2]))
        decisions = sorted(self._decisions)
        response_times = [event[0] for event in responses]
        decision_times = [event[0] for event in decisions]

        first_seen: Dict[str, float] = {}
        for at, cid, _ in responses:
            if cid not in first_seen:
                first_seen[cid] = at
        replicas = sorted(set(first_seen)
                          | {cid for _, responders, offenders, _ in decisions
                             for cid in responders + offenders})
        totals_responses = {cid: 0 for cid in replicas}
        for _, cid, _ in responses:
            totals_responses[cid] = totals_responses.get(cid, 0) + 1
        totals_decisions = {cid: 0 for cid in replicas}
        for _, responders, offenders, _ in decisions:
            for cid in set(responders) | set(offenders):
                totals_decisions[cid] = totals_decisions.get(cid, 0) + 1

        hysteresis = {cid: _HysteresisState() for cid in replicas}
        last_window: Dict[str, _ReplicaWindow] = {
            cid: _ReplicaWindow() for cid in replicas}
        boundary = self.interval_ms
        while boundary <= now:
            windows = self._window_stats(
                boundary, responses, decisions,
                response_times, decision_times, first_seen, replicas)
            for cid in replicas:
                window = windows[cid]
                last_window[cid] = window
                score = self._score(window, percentile)
                self._advance_hysteresis(hysteresis[cid], score, boundary)
            boundary += self.interval_ms

        reports: Dict[str, HealthReport] = {}
        for cid in replicas:
            window = last_window[cid]
            lags = window.lags or []
            reports[cid] = HealthReport(
                controller_id=cid,
                score=self._score(window, percentile),
                disagreement_rate=_ratio(window.offender, window.involved),
                timeout_miss_rate=_ratio(window.missed_timeouts,
                                         window.expected_timeouts),
                lag_p50_ms=percentile(lags, 0.5) if lags else 0.0,
                lag_p95_ms=percentile(lags, 0.95) if lags else 0.0,
                responses=totals_responses.get(cid, 0),
                decisions=totals_decisions.get(cid, 0),
                suspected=hysteresis[cid].suspected,
                suspected_since=hysteresis[cid].suspected_since)
        return reports

    def suspected(self, now: float) -> List[str]:
        """Replica ids currently flagged as suspected-faulty."""
        return [cid for cid, report in sorted(self.evaluate(now).items())
                if report.suspected]

    def snapshot(self, now: float) -> Dict[str, object]:
        """JSON-able health snapshot at ``now``."""
        return {"time_ms": now,
                "window_ms": self.window_ms,
                "replicas": {cid: report.to_dict()
                             for cid, report in
                             sorted(self.evaluate(now).items())}}

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _window_stats(self, boundary, responses, decisions,
                      response_times, decision_times, first_seen, replicas):
        lo = bisect_left(response_times, boundary - self.window_ms)
        hi = bisect_left(response_times, boundary)
        windows = {cid: _ReplicaWindow() for cid in replicas}
        for at, cid, lag in responses[lo:hi]:
            window = windows[cid]
            if lag is not None:
                if window.lags is None:
                    window.lags = []
                window.lags.append(lag)
        lo = bisect_left(decision_times, boundary - self.window_ms)
        hi = bisect_left(decision_times, boundary)
        for at, responders, offenders, timed_out in decisions[lo:hi]:
            involved = set(responders) | set(offenders)
            for cid in involved:
                windows[cid].involved += 1
            for cid in offenders:
                windows[cid].offender += 1
            if timed_out:
                responder_set = set(responders)
                for cid in replicas:
                    if first_seen.get(cid, boundary) >= at:
                        continue  # not yet known to respond at that time
                    windows[cid].expected_timeouts += 1
                    if cid not in responder_set:
                        windows[cid].missed_timeouts += 1
        return windows

    def _score(self, window: _ReplicaWindow, percentile) -> float:
        lags = window.lags or []
        lag_p95 = percentile(lags, 0.95) if lags else 0.0
        lag_term = min(1.0, lag_p95 / self.lag_budget_ms) \
            if self.lag_budget_ms > 0 else 0.0
        w_disagree, w_timeout, w_lag = self.weights
        return (w_disagree * _ratio(window.offender, window.involved)
                + w_timeout * _ratio(window.missed_timeouts,
                                     window.expected_timeouts)
                + w_lag * lag_term)

    def _advance_hysteresis(self, state: _HysteresisState, score: float,
                            boundary: float) -> None:
        if score >= self.suspect_threshold:
            state.suspect_streak += 1
            state.clear_streak = 0
            if (not state.suspected
                    and state.suspect_streak >= self.suspect_after):
                state.suspected = True
                state.suspected_since = boundary
        elif score <= self.clear_threshold:
            state.clear_streak += 1
            state.suspect_streak = 0
            if state.suspected and state.clear_streak >= self.clear_after:
                state.suspected = False
                state.suspected_since = None
        else:
            # Dead band: neither streak advances — that is the hysteresis.
            state.suspect_streak = 0
            state.clear_streak = 0


def _ratio(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else 0.0


# ----------------------------------------------------------------------
# SLO monitoring over the metrics registry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SloRule:
    """One threshold rule over metric families.

    ``kind`` selects the evaluator: ``histogram_p95`` reads ``metric``'s
    merged samples; ``ratio`` divides the family totals of ``numerator``
    by ``denominator`` (0 when the denominator family is empty).
    """

    name: str
    description: str
    kind: str
    threshold: float
    metric: str = ""
    numerator: str = ""
    denominator: str = ""


@dataclass(frozen=True)
class SloStatus:
    """Outcome of one rule at one evaluation instant."""

    name: str
    description: str
    value: float
    threshold: float
    ok: bool
    evaluated_at: float

    def to_dict(self) -> Dict[str, object]:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}


def default_slo_rules() -> Tuple[SloRule, ...]:
    """The shipped rule catalog (see docs/observability.md)."""
    return (
        SloRule(name="detection-latency-p95",
                description="p95 per-trigger detection latency stays under "
                            "2x the paper's sub-250ms envelope",
                kind="histogram_p95", threshold=500.0,
                metric="validator_detection_ms"),
        SloRule(name="ingest-overflow-rate",
                description="fraction of routed responses diverted to a "
                            "shard overflow ring",
                kind="ratio", threshold=0.05,
                numerator="pipeline_shard_overflow_enqueued_total",
                denominator="pipeline_responses_routed_total"),
        SloRule(name="late-drop-rate",
                description="fraction of responses arriving after their "
                            "trigger was decided",
                kind="ratio", threshold=0.02,
                numerator="validator_late_responses_total",
                denominator="validator_responses_total"),
    )


class SloMonitor:
    """Evaluate threshold rules against a metrics registry on sim time."""

    def __init__(self, rules: Optional[Sequence[SloRule]] = None):
        self.rules: Tuple[SloRule, ...] = tuple(
            rules if rules is not None else default_slo_rules())
        #: (evaluated_at, statuses) per evaluate() call, oldest first.
        self.history: List[Tuple[float, Tuple[SloStatus, ...]]] = []

    def evaluate(self, registry, now: float) -> List[SloStatus]:
        """Run every rule against ``registry`` at simulated time ``now``."""
        from repro.harness.metrics import percentile

        statuses: List[SloStatus] = []
        for rule in self.rules:
            if rule.kind == "histogram_p95":
                samples: List[float] = []
                for name, _, instrument, _ in registry.instruments(
                        "histogram"):
                    if name == rule.metric:
                        samples.extend(instrument.samples)
                value = percentile(sorted(samples), 0.95) if samples else 0.0
            elif rule.kind == "ratio":
                value = _ratio(registry.family_total(rule.numerator),
                               registry.family_total(rule.denominator))
            else:
                raise ValueError(f"unknown SLO rule kind: {rule.kind!r}")
            statuses.append(SloStatus(
                name=rule.name, description=rule.description,
                value=value, threshold=rule.threshold,
                ok=value <= rule.threshold, evaluated_at=now))
        self.history.append((now, tuple(statuses)))
        return statuses

    def breached(self, registry, now: float) -> List[SloStatus]:
        """The subset of rules currently out of budget."""
        return [status for status in self.evaluate(registry, now)
                if not status.ok]
