"""The flight recorder: a fixed-size ring of recent decision-path events.

Sampling (:mod:`repro.obs.sampling`) bounds the *steady-state* telemetry
cost, but the events an operator actually needs — the ones leading up to
an anomaly — are exactly the ones a sampler may have skipped. The flight
recorder closes that gap the way an aircraft FDR does: it is **always
on**, it costs one bounded-deque append per decision (near zero), and it
only materialises output when something goes wrong.

* The ring holds the last ``capacity`` events: decision events (span-
  shaped: stage, verdict, detail, attrs), alarms, worker lifecycle
  transitions (death / restart / degrade), SLO breaches, and metric
  deltas. Old events fall off the back; memory is O(capacity) forever.
* On an anomaly trigger — alarm raised, worker death or degrade, SLO
  breach, fuzz invariant failure — :meth:`trigger` freezes a copy of the
  ring into a **dump**: a JSON-able payload stamped with the simulated
  time and the reason. Dumps are kept in a bounded list (oldest evicted)
  and written to disk with :func:`dump_flight` /
  :meth:`FlightRecorder.payload`.
* Determinism: events carry only simulated time and decision facts (no
  wall clock, no object ids), and the JSON rendering sorts keys — two
  runs of the same scenario produce byte-identical dumps, which the test
  suite asserts. The recorder is an observer under the purity contract:
  it never mutates validator state, schedules events, or draws
  randomness; decision code feeds it only through :meth:`record` and
  :meth:`trigger`.

Offline, a dump attaches to ``jury-repro diagnose --flight`` and to the
fuzz oracle's counterexample artifacts, so a surviving counterexample
ships with the event window around its violation.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, List, Optional, Tuple

#: Flight-dump format marker / version (bump on incompatible change).
FLIGHT_FORMAT = "jury-flight"
FLIGHT_VERSION = 1


class FlightRecorder:
    """Bounded ring buffer of recent events plus anomaly-triggered dumps."""

    def __init__(self, capacity: int = 256, max_dumps: int = 8):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        if max_dumps < 1:
            raise ValueError(f"max_dumps must be >= 1: {max_dumps}")
        self.capacity = capacity
        self.max_dumps = max_dumps
        self._ring: deque = deque(maxlen=capacity)
        self._dumps: deque = deque(maxlen=max_dumps)
        self.events_recorded = 0
        self.dumps_triggered = 0

    # ------------------------------------------------------------------
    # Hot-path hook (append-only; called from the decision path)
    # ------------------------------------------------------------------
    def record(self, at: float, kind: str, key, verdict: str = "",
               detail: str = "", **attrs: object) -> None:
        """Append one event to the ring. Near-zero cost, never fails.

        ``key`` is the trigger id (or an ``("engine", shard)`` tuple for
        worker lifecycle events); it is serialised as its ``repr`` at
        export time so dumps read identically whether the event came from
        a live tuple or a reloaded string key. Serialisation work (repr,
        canonical attr order) is deferred to export on purpose: this
        method runs once per decision on the always-on path, so its cost
        is one tuple construction and one bounded-deque append.
        """
        self.events_recorded += 1
        self._ring.append((at, kind, key, verdict, detail, attrs))

    # ------------------------------------------------------------------
    # Anomaly triggers
    # ------------------------------------------------------------------
    def trigger(self, reason: str, at: float) -> Tuple:
        """Freeze the current ring into a dump; returns the frozen record.

        Consecutive triggers with the same reason at the same simulated
        instant coalesce into one dump (a burst of alarms from one decision
        batch is one anomaly, not twenty). The freeze is a shallow tuple
        copy of the ring — hot-path cost stays O(capacity) pointer copies;
        the JSON-able event dicts are only materialised at export
        (:attr:`dumps` / :meth:`payload`), and only for dumps that survive
        the ``max_dumps`` eviction window.
        """
        if self._dumps:
            last = self._dumps[-1]
            if last[0] == reason and last[1] == at:
                return last
        self.dumps_triggered += 1
        dump = (reason, at, tuple(self._ring))
        self._dumps.append(dump)
        return dump

    @staticmethod
    def _event_dict(event: Tuple) -> Dict[str, object]:
        at, kind, key, verdict, detail, attrs = event
        return {"t": at, "kind": kind,
                "key": key if isinstance(key, str) else repr(key),
                "verdict": verdict, "detail": detail, "attrs": dict(attrs)}

    @classmethod
    def _dump_dict(cls, dump: Tuple) -> Dict[str, object]:
        reason, at, events = dump
        return {"reason": reason, "at": at,
                "events": [cls._event_dict(event) for event in events]}

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dumps(self) -> List[Dict[str, object]]:
        return [self._dump_dict(dump) for dump in self._dumps]

    def last_dump(self) -> Optional[Dict[str, object]]:
        return self._dump_dict(self._dumps[-1]) if self._dumps else None

    def payload(self, now: float = 0.0,
                metrics=None) -> Dict[str, object]:
        """Full JSON-able export: ring, dumps, and counters.

        ``now`` is the simulated clock at export time (injected — the
        recorder never reads a clock itself, which is what keeps dumps
        byte-identical across runs). ``metrics`` may be a
        :class:`~repro.obs.metrics.MetricsRegistry`; when given, a
        read-only counter snapshot rides along as the ring's "metric
        deltas since boot" companion.
        """
        payload: Dict[str, object] = {
            "format": FLIGHT_FORMAT,
            "version": FLIGHT_VERSION,
            "exported_at": now,
            "capacity": self.capacity,
            "events_recorded": self.events_recorded,
            "dumps_triggered": self.dumps_triggered,
            "ring": [self._event_dict(event) for event in self._ring],
            "dumps": self.dumps,
        }
        if metrics is not None:
            payload["metrics"] = {
                name: value for name, value in sorted(metrics.snapshot().items())}
        return payload

    def to_json(self, now: float = 0.0, metrics=None, indent: int = 2) -> str:
        return json.dumps(self.payload(now, metrics=metrics),
                          indent=indent, sort_keys=True)


def dump_flight(recorder: FlightRecorder, path: str, now: float = 0.0,
                metrics=None) -> None:
    """Write a flight payload as JSON (stable key order, trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(recorder.to_json(now, metrics=metrics))
        handle.write("\n")


def load_flight(path: str) -> Dict[str, object]:
    """Read a flight payload written by :func:`dump_flight`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != FLIGHT_FORMAT:
        raise ValueError("not a jury-flight payload")
    return payload


def render_flight(payload: Dict[str, object], limit: int = 20) -> str:
    """Human rendering of a flight payload's tail (CLI / diagnose attach)."""
    lines = [f"flight recorder: {payload.get('events_recorded', 0)} events "
             f"recorded, {payload.get('dumps_triggered', 0)} dumps, "
             f"ring {len(payload.get('ring', []))}/"
             f"{payload.get('capacity', '?')}"]
    for dump in payload.get("dumps", []):
        lines.append(f"  dump reason={dump.get('reason')} "
                     f"at={dump.get('at'):.3f} "
                     f"events={len(dump.get('events', []))}")
    tail = payload.get("ring", [])[-limit:]
    if tail:
        lines.append(f"  last {len(tail)} events:")
        for event in tail:
            verdict = event.get("verdict") or "-"
            lines.append(f"    t={event.get('t'):.3f} {event.get('kind')} "
                         f"{event.get('key')} {verdict} "
                         f"{event.get('detail', '')}".rstrip())
    return "\n".join(lines)
