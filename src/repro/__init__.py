"""JURY — validating controller actions in software-defined networks.

A complete Python reproduction of JURY (Mahajan, Poddar, Dhawan, Mann —
DSN 2016), including every substrate the paper's evaluation depends on:
a discrete-event network simulator with OpenFlow soft switches, Hazelcast-
and Infinispan-like distributed stores, ONOS- and ODL-like controller
clusters, the workload generators, and a catalog of injectable faults.

Most users start from the harness::

    from repro.harness import build_experiment

    exp = build_experiment(kind="onos", n=7, k=6, timeout_ms=250.0)
    exp.warmup()
    ...
    exp.validator.detection_times()

See README.md for a tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"
__paper__ = ("JURY: Validating Controller Actions in Software-Defined "
             "Networks, DSN 2016")

__all__ = ["__version__", "__paper__"]
