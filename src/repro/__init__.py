"""JURY — validating controller actions in software-defined networks.

A complete Python reproduction of JURY (Mahajan, Poddar, Dhawan, Mann —
DSN 2016), including every substrate the paper's evaluation depends on:
a discrete-event network simulator with OpenFlow soft switches, Hazelcast-
and Infinispan-like distributed stores, ONOS- and ODL-like controller
clusters, the workload generators, and a catalog of injectable faults.

Most users start from the config-driven facade::

    from repro import Jury, JuryConfig

    exp = Jury.experiment(JuryConfig(k=6, timeout_ms=250.0, trace=True))
    exp.warmup()
    ...
    exp.jury.detection_times()

See README.md for a tour, DESIGN.md for the system inventory,
docs/observability.md for the tracing/metrics layer, and EXPERIMENTS.md
for paper-vs-measured results.
"""

__version__ = "1.0.0"
__paper__ = ("JURY: Validating Controller Actions in Software-Defined "
             "Networks, DSN 2016")

#: The supported import surface. Resolved lazily (PEP 562) so that
#: ``import repro`` stays cheap — pulling in ``Jury`` or ``Validator``
#: loads only the modules that symbol actually needs.
_EXPORTS = {
    "Jury": ("repro.api", "Jury"),
    "JuryConfig": ("repro.config", "JuryConfig"),
    "JuryDeployment": ("repro.core.deployment", "JuryDeployment"),
    "Validator": ("repro.core.validator", "Validator"),
    "ValidationPipeline": ("repro.core.pipeline", "ValidationPipeline"),
    "ExecutionBackend": ("repro.core.backends", "ExecutionBackend"),
    "resolve_backend": ("repro.core.backends", "resolve_backend"),
    "Response": ("repro.core.responses", "Response"),
    "Alarm": ("repro.core.alarms", "Alarm"),
    "AlarmReason": ("repro.core.alarms", "AlarmReason"),
    "ValidationResult": ("repro.core.alarms", "ValidationResult"),
    "Tracer": ("repro.obs.trace", "Tracer"),
    "MetricsRegistry": ("repro.obs.metrics", "MetricsRegistry"),
    "AlarmExplanation": ("repro.obs.diagnose", "AlarmExplanation"),
    "AlarmForensics": ("repro.obs.diagnose", "AlarmForensics"),
    "ReplicaHealthTracker": ("repro.obs.health", "ReplicaHealthTracker"),
    "SloMonitor": ("repro.obs.health", "SloMonitor"),
    "SnapshotSink": ("repro.obs.export", "SnapshotSink"),
    "ScenarioGen": ("repro.fuzz.scenario", "ScenarioGen"),
    "ScenarioSpec": ("repro.fuzz.scenario", "ScenarioSpec"),
    "DifferentialOracle": ("repro.fuzz.oracle", "DifferentialOracle"),
    "Shrinker": ("repro.fuzz.shrink", "Shrinker"),
}

__all__ = ["__version__", "__paper__", *sorted(_EXPORTS)]


def __getattr__(name: str):
    """Lazy attribute resolution for the public exports (PEP 562)."""
    try:
        module_name, symbol = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib
    value = getattr(importlib.import_module(module_name), symbol)
    globals()[name] = value  # cache: subsequent lookups skip __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
