"""Command-line interface: ``python -m repro <command>``.

Gives operators the paper's experiments without writing code:

* ``validate`` — run a JURY-enhanced cluster under traffic and report
  validation statistics (the quickstart as a command).
* ``faults`` — inject a named fault (or the whole catalog) and report
  detection/attribution.
* ``throughput`` — the Fig 4f/4g cluster-throughput sweep.
* ``detection`` — the Fig 4a/4c detection-time distribution.
* ``trace`` — reconstruct one trigger's lifecycle (intercept → replicate →
  ingest → Algorithm-1 checks → alarm/accept) from a live run or a trace
  JSON file (see ``docs/observability.md``).
* ``trace-diff`` — align two canonical trace files by (time, trigger,
  stage) and pinpoint the first divergence (exit 0 identical, 1 diverged).
* ``metrics`` — run under traffic and dump the metrics registry
  (``--format prom`` for the Prometheus text exposition).
* ``diagnose`` — per-alarm forensics: the failed Algorithm-1 check,
  dissenting replicas, field-level cache/network diffs, and the inferred
  T1/T2/T3 fault class, live or offline from recorded
  alarm-log/trace files.
* ``health`` — rolling-window replica health scores (with hysteresis on
  the suspected-faulty flag) and SLO rule status.
* ``fuzz`` — seeded scenario fuzzing: generate scenarios, check the
  differential-oracle invariants, shrink counterexamples, and replay the
  regression corpus (see ``docs/fuzzing.md``).
* ``soak`` — crash-recovery soak: a worker process runs a long seeded
  workload with a file-backed WAL and periodic checkpoints, SIGKILLs
  itself mid-run, and the parent restores + replays and byte-compares
  against an uninterrupted run under an RSS ceiling
  (see ``docs/recovery.md``).
* ``list-faults`` — show the fault catalog.
* ``analyze`` — static determinism/taint-safety analysis of controller and
  app code (the CI gate; see ``docs/static_analysis.md``).
* ``bench validator`` — sequential-vs-sharded validator benchmark; writes
  ``BENCH_validator_pipeline.json`` (see ``docs/pipeline.md``).
* ``bench obs`` — observability overhead benchmark (tracing-off noise
  floor, tracing-on cost, alarm-stream equivalence); the CI overhead gate.

Every subcommand builds its experiment through one
:class:`~repro.config.JuryConfig` and returns a
:class:`~repro.harness.reporting.CommandResult`; ``--format json`` prints
the structured payload instead of the human tables, and the exit-code
contract is uniform: 0 ok, 1 findings-or-failure, 2 usage/config error.
Simulation commands accept ``--pipeline N`` to validate through the
sharded :class:`~repro.core.pipeline.ValidationPipeline` instead of the
sequential validator, ``--backend serial|threads|processes`` to pick its
execution backend (see ``docs/backends.md``), and ``--config file.json``
to load the whole config from JSON through the validated
:meth:`~repro.config.JuryConfig.from_dict` path. ``bench validator
--backend X`` switches to the backend sweep, emitting
``BENCH_backends.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Callable, Dict, List, Optional

from repro.api import Jury
from repro.config import JuryConfig
from repro.faults import (
    CrashFault,
    StoreDesyncFault,
    FaultyProactiveFault,
    FlowDeletionFailureFault,
    FlowInstantiationFailureFault,
    LinkDetectionInconsistencyFault,
    LinkFailureFault,
    OdlFlowModDropFault,
    OdlIncorrectFlowModFault,
    OnosDatabaseLockFault,
    OnosMasterElectionFault,
    PendingAddFault,
    ResponseCorruptionFault,
    ResponseOmissionFault,
    TimingFault,
    UndesirableFlowModFault,
)
from repro.faults.base import run_scenario
from repro.harness.figures import ascii_cdf
from repro.harness.reporting import CommandResult, format_table, render_result
from repro.workloads.traffic import TrafficDriver

FAULTS: Dict[str, Callable] = {
    "onos-database-locking": lambda: OnosDatabaseLockFault("c1"),
    "onos-master-election": lambda: OnosMasterElectionFault(1, 2),
    "onos-link-detection": lambda: LinkDetectionInconsistencyFault(2, 3),
    "onos-pending-add": lambda: PendingAddFault(4),
    "odl-flow-mod-drop": lambda: OdlFlowModDropFault("c1"),
    "odl-incorrect-flow-mod": lambda: OdlIncorrectFlowModFault("c1"),
    "odl-flow-deletion-failure": lambda: FlowDeletionFailureFault("c1"),
    "odl-flow-instantiation-failure": lambda: FlowInstantiationFailureFault("c1"),
    "link-failure": lambda: LinkFailureFault(1, 2),
    "undesirable-flow-mod": lambda: UndesirableFlowModFault("c2"),
    "faulty-proactive": lambda: FaultyProactiveFault("c3"),
    "crash": lambda: CrashFault("c1"),
    "response-omission": lambda: ResponseOmissionFault("c2"),
    "timing": lambda: TimingFault("c3"),
    "response-corruption": lambda: ResponseCorruptionFault("c1"),
    "store-desync": lambda: StoreDesyncFault("c2"),
}

ODL_FAULTS = {"odl-flow-mod-drop", "odl-incorrect-flow-mod",
              "odl-flow-deletion-failure", "odl-flow-instantiation-failure"}


def _load_config_file(path: str) -> JuryConfig:
    """``--config file.json`` → a validated :class:`JuryConfig`.

    Routed through :meth:`JuryConfig.from_dict`, the one construction path
    for every serialized config source; unknown keys fail with a
    did-you-mean hint and surface as usage errors (exit 2).
    """
    from repro.errors import ValidationError
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ValidationError(f"--config {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ValidationError(
            f"--config {path}: invalid JSON ({exc})") from None
    return JuryConfig.from_dict(payload)


def _config_from_args(args, kind: Optional[str] = None,
                      k: Optional[int] = None,
                      trace: bool = False,
                      metrics: bool = False,
                      diagnose: bool = False,
                      health: bool = False,
                      flight: bool = False) -> JuryConfig:
    """One place where argparse namespaces become a :class:`JuryConfig`."""
    if getattr(args, "config", None) is not None:
        # The file defines the experiment; only the subcommand's own
        # observability needs are OR-merged on top of it.
        base = _load_config_file(args.config)
        overlay = {name: True
                   for name, wanted in (("trace", trace),
                                        ("metrics", metrics),
                                        ("diagnose", diagnose),
                                        ("health", health),
                                        ("flight", flight))
                   if wanted and not getattr(base, name)}
        return base.replace(**overlay) if overlay else base
    kind = kind or args.controller
    return JuryConfig(
        kind=kind,
        n=args.nodes,
        k=args.replicas if k is None else k,
        switches=args.switches,
        seed=args.seed,
        timeout_ms=args.timeout,  # None → the paper default for the kind
        policies=("default",),
        with_northbound=True,
        pipeline=getattr(args, "pipeline", None),
        backend=getattr(args, "backend", None) or "serial",
        trace=trace,
        metrics=metrics,
        diagnose=diagnose,
        health=health,
        flight=flight,
    )


def _build(args, kind: Optional[str] = None, k: Optional[int] = None,
           trace: bool = False, metrics: bool = False,
           diagnose: bool = False, health: bool = False,
           flight: bool = False):
    experiment = Jury.experiment(
        _config_from_args(args, kind=kind, k=k, trace=trace, metrics=metrics,
                          diagnose=diagnose, health=health, flight=flight))
    experiment.warmup()
    return experiment


def _drive_traffic(experiment, args, settle_ms: float = 600.0) -> None:
    driver = TrafficDriver(experiment.sim, experiment.topology,
                           packet_in_rate_per_s=args.rate,
                           duration_ms=args.duration)
    driver.start()
    experiment.begin_window()
    experiment.run(args.duration + settle_ms)


def cmd_validate(args) -> CommandResult:
    experiment = _build(args)
    _drive_traffic(experiment, args)
    validator = experiment.validator
    stats = experiment.detection_stats()
    throughput = experiment.throughput()
    data = {
        "command": "validate",
        "config": experiment.jury.config.describe(),
        "packet_in_rate_per_s": throughput.packet_in_rate_per_s,
        "flow_mod_rate_per_s": throughput.flow_mod_rate_per_s,
        "triggers_validated": validator.triggers_decided,
        "alarms": validator.triggers_alarmed,
        "false_positive_rate": validator.false_positive_rate(),
        "detection_ms": {"median": stats.median, "p95": stats.p95,
                         "count": stats.count},
    }
    human = format_table(
        f"JURY validation — {args.controller} n={args.nodes} k={args.replicas}",
        ["metric", "value"],
        [
            ["PACKET_IN rate", f"{throughput.packet_in_rate_per_s:.0f}/s"],
            ["FLOW_MOD rate", f"{throughput.flow_mod_rate_per_s:.0f}/s"],
            ["triggers validated", validator.triggers_decided],
            ["alarms", validator.triggers_alarmed],
            ["false-positive rate",
             f"{100 * validator.false_positive_rate():.3f}%"],
            ["median detection", f"{stats.median:.1f} ms"],
            ["p95 detection", f"{stats.p95:.1f} ms"],
        ])
    return CommandResult.ok("validate", human=human, data=data)


def cmd_faults(args) -> CommandResult:
    names: List[str] = args.names or sorted(FAULTS)
    unknown = [n for n in names if n not in FAULTS]
    if unknown:
        return CommandResult.usage_error(
            "faults", f"unknown fault(s): {', '.join(unknown)}")
    rows = []
    entries = []
    failures = 0
    for name in names:
        kind = "odl" if name in ODL_FAULTS else "onos"
        experiment = _build(args, kind=kind)
        result = run_scenario(experiment, FAULTS[name]())
        if not result.detected:
            failures += 1
        alarm = result.matching_alarms[0] if result.matching_alarms else None
        entries.append({
            "fault": name,
            "detected": result.detected,
            "mechanism": alarm.reason.value if alarm else None,
            "detection_ms": result.detection_ms,
            "blamed": alarm.offending_controller if alarm else None,
        })
        rows.append([
            name,
            "YES" if result.detected else "NO",
            alarm.reason.value if alarm else "-",
            f"{result.detection_ms:.0f} ms" if result.detection_ms else "-",
            alarm.offending_controller if alarm else "-",
        ])
    human = format_table("Fault detection",
                         ["fault", "detected", "mechanism", "latency",
                          "blamed"], rows)
    return CommandResult(
        command="faults", exit_code=1 if failures else 0, human=human,
        data={"command": "faults", "results": entries,
              "undetected": failures})


def cmd_throughput(args) -> CommandResult:
    rows = []
    points = []
    for n in args.cluster_sizes:
        experiment = Jury.experiment(JuryConfig(
            kind=args.controller, n=n, k=None, switches=args.switches,
            seed=args.seed))
        experiment.warmup()
        driver = TrafficDriver(experiment.sim, experiment.topology,
                               packet_in_rate_per_s=args.rate,
                               duration_ms=args.duration)
        driver.start()
        experiment.begin_window()
        experiment.run(args.duration)
        point = experiment.throughput()
        points.append({"n": n,
                       "packet_in_rate_per_s": point.packet_in_rate_per_s,
                       "flow_mod_rate_per_s": point.flow_mod_rate_per_s,
                       "packet_out_rate_per_s": point.packet_out_rate_per_s})
        rows.append([f"n={n}", f"{point.packet_in_rate_per_s:.0f}",
                     f"{point.flow_mod_rate_per_s:.0f}",
                     f"{point.packet_out_rate_per_s:.0f}"])
    human = format_table(
        f"{args.controller} cluster throughput @ requested "
        f"{args.rate:.0f} PACKET_IN/s",
        ["cluster", "PACKET_IN/s", "FLOW_MOD/s", "PACKET_OUT/s"], rows)
    return CommandResult.ok("throughput", human=human,
                            data={"command": "throughput", "points": points})


def cmd_detection(args) -> CommandResult:
    experiment = _build(args)
    driver = TrafficDriver(experiment.sim, experiment.topology,
                           packet_in_rate_per_s=args.rate,
                           duration_ms=args.duration)
    driver.start()
    experiment.run(args.duration + 600.0)
    stats = experiment.detection_stats()
    human = (f"{stats.count} detections  median={stats.median:.1f} ms  "
             f"p95={stats.p95:.1f} ms  p99={stats.p99:.1f} ms\n\n"
             + ascii_cdf({f"k={args.replicas}": stats.samples}))
    data = {
        "command": "detection",
        "count": stats.count,
        "median_ms": stats.median,
        "p95_ms": stats.p95,
        "p99_ms": stats.p99,
        "samples_ms": stats.samples,
    }
    return CommandResult.ok("detection", human=human, data=data)


def _live_tracer(args):
    """Run a traced experiment and return its tracer (the live path)."""
    experiment = _build(args, trace=True)
    _drive_traffic(experiment, args)
    return experiment.jury.tracer


def cmd_trace(args) -> CommandResult:
    from repro.obs.trace import dump_trace, load_trace, match_trigger_key

    if args.input is not None:
        try:
            tracer = load_trace(args.input)
        except (OSError, ValueError) as exc:
            return CommandResult.usage_error("trace", f"trace: {exc}")
    else:
        tracer = _live_tracer(args)
        if args.output:
            dump_trace(tracer, args.output)

    keys = tracer.trigger_keys()
    if args.trigger is None:
        # No query: list what the trace holds.
        shown = keys[:args.limit]
        rows = [[key, tracer.timeline(key).verdict,
                 len(tracer.spans_for(key))] for key in shown]
        human = format_table(
            f"traced triggers ({len(keys)} total, showing {len(shown)})",
            ["trigger", "verdict", "spans"], rows)
        data = {"command": "trace", "trigger_count": len(keys),
                "span_count": len(tracer),
                "stage_counts": tracer.stage_counts(),
                "triggers": [{"trigger": key,
                              "verdict": tracer.timeline(key).verdict}
                             for key in shown]}
        return CommandResult.ok("trace", human=human, data=data)

    key = match_trigger_key(tracer, args.trigger)
    if key is None:
        preview = ", ".join(keys[:5]) or "<trace is empty>"
        return CommandResult.usage_error(
            "trace", f"trace: no traced trigger matches {args.trigger!r} "
                     f"(first keys: {preview})")
    timeline = tracer.timeline(key)
    human = "\n".join([
        format_table(f"trigger {key} — lifecycle",
                     ["t", "stage", "verdict", "detail"], timeline.rows()),
        f"verdict: {timeline.verdict}",
    ])
    data = {
        "command": "trace",
        "trigger": key,
        "verdict": timeline.verdict,
        "started_at": timeline.started_at,
        "decided_at": timeline.decided_at,
        "spans": [{"t": s.at, "stage": s.stage, "verdict": s.verdict,
                   "detail": s.detail, "attrs": dict(s.attrs)}
                  for s in timeline.spans],
    }
    return CommandResult.ok("trace", human=human, data=data)


def cmd_trace_diff(args) -> CommandResult:
    from repro.obs.diff import diff_trace_files, first_divergence_detail

    try:
        diff = diff_trace_files(args.left, args.right)
    except (OSError, ValueError) as exc:
        return CommandResult.usage_error("trace-diff", f"trace-diff: {exc}")

    data = {"command": "trace-diff", "left": args.left, "right": args.right,
            **diff.to_dict(limit=args.limit)}
    if diff.identical:
        human = (f"traces are identical: {diff.common} aligned span(s), "
                 f"no divergence")
        return CommandResult.ok("trace-diff", human=human, data=data)
    human = "\n".join([
        f"traces diverge: {len(diff.entries)} differing slot(s) over "
        f"{diff.common} aligned span(s) "
        f"({diff.left_spans} left / {diff.right_spans} right)",
        first_divergence_detail(diff),
        diff.render(limit=args.limit),
    ])
    return CommandResult(command="trace-diff", exit_code=1, human=human,
                         data=data,
                         errors=[f"trace-diff: {first_divergence_detail(diff)}"])


def cmd_metrics(args) -> CommandResult:
    experiment = _build(args, metrics=True)
    _drive_traffic(experiment, args)
    snapshot = experiment.jury.metrics_snapshot()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.format == "prom":
        # Prometheus text is its own exposition format, not a table: render
        # it verbatim through the "human" channel.
        text = experiment.jury.prometheus_text()
        return CommandResult.ok("metrics", human=text.rstrip("\n"),
                                data={"command": "metrics",
                                      "metrics": snapshot})
    registry = experiment.jury.metrics
    human = format_table(
        f"JURY metrics — {args.controller} n={args.nodes} k={args.replicas}",
        ["metric", "type", "value"], registry.rows())
    return CommandResult.ok("metrics", human=human,
                            data={"command": "metrics", "metrics": snapshot})


def _diagnosis_payload_from_files(args):
    """Offline diagnosis: reconstruct explanations from recorded files."""
    from repro.obs.diagnose import explanations_from_files

    try:
        return explanations_from_files(args.alarm_log, trace_path=args.trace)
    except (OSError, ValueError) as exc:
        return CommandResult.usage_error("diagnose", f"diagnose: {exc}")


def cmd_diagnose(args) -> CommandResult:
    from repro.obs.diagnose import (
        dump_diagnosis,
        export_explanations,
        find_explanation,
        render_explanations,
    )

    if args.trace is not None and args.alarm_log is None:
        return CommandResult.usage_error(
            "diagnose", "diagnose: --trace needs --alarm-log (the trace "
                        "alone does not carry alarm records)")
    if args.flight_output is not None and args.alarm_log is not None:
        return CommandResult.usage_error(
            "diagnose", "diagnose: --flight-output records a live run and "
                        "cannot be combined with --alarm-log")

    flight_attachment = None
    if args.flight is not None:
        from repro.obs.recorder import load_flight
        try:
            flight_attachment = load_flight(args.flight)
        except (OSError, ValueError) as exc:
            return CommandResult.usage_error("diagnose",
                                             f"diagnose: {exc}")

    if args.alarm_log is not None:
        explanations = _diagnosis_payload_from_files(args)
        if isinstance(explanations, CommandResult):
            return explanations
    else:
        fault = None
        if args.fault is not None:
            if args.fault not in FAULTS:
                return CommandResult.usage_error(
                    "diagnose", f"diagnose: unknown fault {args.fault!r} "
                                f"(see list-faults)")
            fault = FAULTS[args.fault]()
        kind = "odl" if args.fault in ODL_FAULTS else None
        experiment = _build(args, kind=kind, diagnose=True,
                            flight=args.flight_output is not None)
        alarm_log = None
        if args.record_alarm_log:
            from repro.core.alarm_log import AlarmLog
            alarm_log = AlarmLog(experiment.validator)
        if fault is not None:
            run_scenario(experiment, fault)
        else:
            _drive_traffic(experiment, args)
        if alarm_log is not None:
            from repro.core.alarm_log import dump_alarm_log
            dump_alarm_log(alarm_log, args.record_alarm_log)
        if args.flight_output is not None:
            from repro.obs.recorder import dump_flight
            jury = experiment.jury
            dump_flight(jury.recorder, args.flight_output,
                        now=experiment.sim.now, metrics=jury.metrics)
        explanations = experiment.jury.forensics.explanations()

    payload = export_explanations(explanations)
    if flight_attachment is not None:
        payload["flight"] = flight_attachment
    if args.output:
        dump_diagnosis(payload, args.output)

    if args.alarm is not None:
        match = find_explanation(explanations, args.alarm)
        if match is None:
            known = ", ".join(
                entry["id"] for entry in payload["alarms"][:5]) or "<none>"
            return CommandResult.usage_error(
                "diagnose", f"diagnose: no alarm matches {args.alarm!r} "
                            f"(first ids: {known})")
        explanation_id, explanation = match
        human = explanation.render(explanation_id)
        data = {"command": "diagnose", "alarm": explanation_id,
                "explanation": explanation.to_dict()}
        return CommandResult.ok("diagnose", human=human, data=data)

    human = render_explanations(explanations)
    if flight_attachment is not None:
        from repro.obs.recorder import render_flight
        human = "\n".join([human, render_flight(flight_attachment)])
    data = {"command": "diagnose", **payload}
    return CommandResult.ok("diagnose", human=human, data=data)


def cmd_health(args) -> CommandResult:
    experiment = _build(args, metrics=True, health=True)
    _drive_traffic(experiment, args)
    jury = experiment.jury

    if args.output:
        from repro.obs.export import health_jsonl
        reports = jury.health.evaluate(experiment.sim.now)
        statuses = None
        if jury.slo is not None and jury.metrics is not None:
            from repro.obs.metrics import collect_deployment
            collect_deployment(jury.metrics, jury)
            statuses = jury.slo.evaluate(jury.metrics, experiment.sim.now)
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(health_jsonl(reports, slo_statuses=statuses,
                                      now=experiment.sim.now))

    if args.format == "prom":
        text = jury.prometheus_text()
        snapshot = jury.health_snapshot()
        return CommandResult.ok("health", human=text.rstrip("\n"),
                                data={"command": "health", **snapshot})

    snapshot = jury.health_snapshot()
    replica_rows = [
        [r["controller_id"], f"{r['score']:.3f}",
         f"{r['disagreement_rate']:.3f}", f"{r['timeout_miss_rate']:.3f}",
         f"{r['lag_p95_ms']:.1f}", "YES" if r["suspected"] else "no"]
        for r in snapshot["replicas"].values()]
    tables = [format_table(
        f"replica health — {args.controller} n={args.nodes} "
        f"k={args.replicas} @ t={snapshot['time_ms']:.0f} ms",
        ["replica", "score", "disagree", "timeout-miss", "lag p95 (ms)",
         "suspected"], replica_rows)]
    if snapshot.get("slo"):
        slo_rows = [[s["name"], f"{s['value']:.4f}", f"{s['threshold']:.4f}",
                     "ok" if s["ok"] else "BREACH"]
                    for s in snapshot["slo"]]
        tables.append(format_table("SLO rules",
                                   ["rule", "value", "threshold", "status"],
                                   slo_rows))
    human = "\n".join(tables)
    return CommandResult.ok("health", human=human,
                            data={"command": "health", **snapshot})


def cmd_analyze(args) -> CommandResult:
    # Imported lazily: the analyzer is stdlib-only and must stay usable in
    # minimal environments, but the other commands shouldn't pay for it.
    from repro.analysis import (
        AnalysisCache,
        Baseline,
        Severity,
        analyze_paths,
        render_human,
        render_json,
        render_rule_list,
    )
    from repro.analysis.baseline import DEFAULT_BASELINE_PATH

    if args.list_rules:
        return CommandResult.ok("analyze", human=render_rule_list(),
                                data={"command": "analyze",
                                      "rules": render_rule_list()})
    if not args.paths:
        return CommandResult.usage_error(
            "analyze", "analyze: at least one PATH is required")
    fail_on = Severity.parse(args.fail_on)

    baseline_path = args.baseline
    if baseline_path is None and args.write_baseline:
        baseline_path = DEFAULT_BASELINE_PATH
    baseline = None
    if baseline_path is not None and not args.write_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except FileNotFoundError:
            return CommandResult.usage_error(
                "analyze", f"analyze: baseline file not found: {baseline_path}")
        except ValueError as exc:
            return CommandResult.usage_error("analyze", f"analyze: {exc}")

    cache = None if args.no_cache else AnalysisCache.load(args.cache)
    try:
        report = analyze_paths(args.paths, baseline=baseline,
                               jobs=args.jobs, cache=cache)
    except FileNotFoundError as exc:
        return CommandResult.usage_error("analyze", f"analyze: {exc}")

    if args.write_baseline:
        Baseline.from_findings(report.findings).write(baseline_path)
        return CommandResult.ok(
            "analyze",
            human=f"wrote {len(report.findings)} finding(s) to {baseline_path}",
            data={"command": "analyze", "wrote": len(report.findings),
                  "baseline": str(baseline_path)})

    failed = bool(report.count_at_least(fail_on))
    return CommandResult(
        command="analyze", exit_code=1 if failed else 0,
        human=render_human(report, fail_on),
        data=json.loads(render_json(report, fail_on)))


def cmd_analyze_policy(args) -> CommandResult:
    """Statically verify policy XML (P-rules) before deployment."""
    from repro.analysis import AnalysisReport, Severity, render_human, render_json
    from repro.policy.lint import lint_builtin_policies, lint_policy_file

    if not args.paths and not args.builtin:
        return CommandResult.usage_error(
            "analyze-policy",
            "analyze-policy: give at least one policy file (or --builtin)")
    fail_on = Severity.parse(args.fail_on)

    index = None
    project = args.project
    if project is None and os.path.isdir("src/repro"):
        project = "src/repro"
    if project and project != "none":
        from repro.analysis import (
            build_project_index,
            discover_files,
            extract_module_facts,
        )
        from repro.analysis.registry import ModuleContext
        import ast as ast_mod
        facts = []
        try:
            files = discover_files([project])
        except FileNotFoundError as exc:
            return CommandResult.usage_error(
                "analyze-policy", f"analyze-policy: {exc}")
        for path in files:
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast_mod.parse(source, filename=str(path))
            except (OSError, UnicodeDecodeError, SyntaxError):
                continue  # unparseable project files just shrink the index
            facts.append(extract_module_facts(
                ModuleContext(path=str(path), source=source, tree=tree)))
        index = build_project_index(facts)

    paths = []
    for raw in args.paths:
        if os.path.isdir(raw):
            paths.extend(sorted(
                os.path.join(raw, name) for name in os.listdir(raw)
                if name.endswith(".xml")))
        else:
            paths.append(raw)
    report = AnalysisReport()
    for path in paths:
        report.files_scanned += 1
        report.findings.extend(lint_policy_file(path, index=index))
    if args.builtin:
        report.findings.extend(lint_builtin_policies(index=index))
    report.findings.sort(key=lambda f: f.sort_key())

    failed = bool(report.count_at_least(fail_on))
    return CommandResult(
        command="analyze-policy", exit_code=1 if failed else 0,
        human=render_human(report, fail_on),
        data=json.loads(render_json(report, fail_on)))


def cmd_bench_analyze(args) -> CommandResult:
    from repro.harness.bench import compare_analysis, write_payload

    payload = compare_analysis(paths=tuple(args.paths), jobs=args.jobs,
                               reps=args.reps)
    write_payload(payload, args.output)
    errors = []
    if not payload["reports_identical"]:
        errors.append("bench analyze: cold/parallel/warm reports diverged")
    if (args.min_warm_speedup is not None
            and payload["warm_speedup"] < args.min_warm_speedup):
        errors.append(
            f"bench analyze: warm speedup {payload['warm_speedup']:.1f}x "
            f"below the {args.min_warm_speedup:.1f}x gate")
    # The parallel gate only binds when parallelism is physically possible:
    # on a single-CPU runner the pool can't beat the sequential pass.
    if payload["cpu_count"] > 1 and payload["parallel_speedup"] < 1.0:
        errors.append(
            f"bench analyze: --jobs {payload['jobs']} slower than "
            f"sequential ({payload['parallel_speedup']:.2f}x) on a "
            f"{payload['cpu_count']}-CPU host")
    human = "\n".join([
        format_table(
            f"analyzer benchmark — {payload['files_scanned']} files, "
            f"best of {payload['reps']}",
            ["variant", "wall (s)"],
            [
                ["cold, jobs=1", f"{payload['cold_jobs1']['wall_s']:.3f}"],
                [f"cold, jobs={payload['jobs']}",
                 f"{payload['cold_jobsN']['wall_s']:.3f}"],
                ["warm cache", f"{payload['warm']['wall_s']:.3f}"],
            ]),
        f"warm speedup: {payload['warm_speedup']:.1f}x   "
        f"parallel speedup: {payload['parallel_speedup']:.2f}x "
        f"({payload['cpu_count']} CPU(s))   "
        f"reports identical: {payload['reports_identical']}",
        f"wrote {args.output}",
    ])
    return CommandResult(command="bench analyze",
                         exit_code=1 if errors else 0,
                         human=human, data=payload, errors=errors)


def _bench_backends(args, triggers: int) -> CommandResult:
    """``bench validator --backend X``: the execution-backend sweep."""
    from repro.harness.bench import compare_backends, write_payload

    payload = compare_backends(triggers=triggers, k=args.k, seed=args.seed,
                               fault_rate=args.fault_rate,
                               shards=args.shards)
    output = args.output
    if output == "BENCH_validator_pipeline.json":
        output = "BENCH_backends.json"
    write_payload(payload, output)
    errors = []
    if not payload["alarm_streams_identical"]:
        errors.append(
            "bench backends: alarm streams diverged across backends")
    speedup = payload["speedups"].get(args.backend, 0.0)
    # The speedup gate only binds where parallelism is physically
    # possible: worker processes can't beat serial on one CPU.
    if (args.min_speedup is not None and payload["cpu_count"] > 1
            and speedup < args.min_speedup):
        errors.append(
            f"bench backends: {args.backend} speedup {speedup:.2f}x "
            f"below the {args.min_speedup:.1f}x gate on a "
            f"{payload['cpu_count']}-CPU host")
    rows = [[backend,
             f"{run['ops_per_s']:,.0f}",
             f"{run['p50_ms']:.4f}",
             f"{payload['speedups'][backend]:.2f}x",
             run["alarmed"]]
            for backend, run in payload["backends"].items()]
    human = "\n".join([
        format_table(
            f"backend sweep — {triggers} triggers, k={args.k}, "
            f"{args.shards} shard(s), {payload['cpu_count']} CPU(s)",
            ["backend", "triggers/s", "p50 chunk (ms)", "speedup",
             "alarms"], rows),
        f"alarm streams identical: {payload['alarm_streams_identical']}",
        f"wrote {output}",
    ])
    return CommandResult(command="bench validator",
                         exit_code=1 if errors else 0,
                         human=human, data=payload, errors=errors)


def cmd_bench_validator(args) -> CommandResult:
    # Imported lazily: the harness pulls in the perf-measurement code only
    # when benchmarking is requested.
    from repro.harness.bench import compare, write_payload

    triggers = 2000 if args.smoke else args.triggers
    if args.backend is not None:
        return _bench_backends(args, triggers)
    payload = compare(triggers=triggers, k=args.k, seed=args.seed,
                      fault_rate=args.fault_rate, shards=args.shards,
                      queue_capacity=args.queue_capacity,
                      batch_max=args.batch_max)
    write_payload(payload, args.output)
    sequential = payload["sequential"]
    pipeline = payload["pipeline"]
    human = "\n".join([
        format_table(
            f"validator benchmark — {triggers} triggers, k={args.k}, "
            f"{args.shards} shard(s)",
            ["metric", "sequential", f"pipeline (N={args.shards})"],
            [
                ["throughput", f"{sequential['ops_per_s']:,.0f} triggers/s",
                 f"{pipeline['ops_per_s']:,.0f} triggers/s"],
                ["p50 decision latency", f"{sequential['p50_ms']:.4f} ms",
                 f"{pipeline['p50_ms']:.4f} ms"],
                ["p99 decision latency", f"{sequential['p99_ms']:.4f} ms",
                 f"{pipeline['p99_ms']:.4f} ms"],
                ["alarms", sequential["alarmed"], pipeline["alarmed"]],
            ]),
        f"speedup: {payload['speedup']:.2f}x   "
        f"alarm streams identical: {payload['alarm_streams_identical']}",
        f"wrote {args.output}",
    ])
    errors = []
    if not payload["alarm_streams_identical"]:
        errors.append("bench: sequential and pipeline alarm streams diverged")
    return CommandResult(command="bench validator",
                         exit_code=1 if errors else 0,
                         human=human, data=payload, errors=errors)


def _bench_obs_baseline_errors(args, payload) -> List[str]:
    """``bench obs --baseline``: gate always-on overhead regressions."""
    try:
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"bench obs: --baseline {args.baseline}: {exc}"]
    committed = baseline.get("full_overhead_pct")
    if not isinstance(committed, (int, float)):
        return [f"bench obs: --baseline {args.baseline} has no "
                f"full_overhead_pct to compare against"]
    current = payload["full_overhead_pct"]
    payload["baseline_full_overhead_pct"] = committed
    allowed = committed * (1.0 + args.max_full_regression_pct / 100.0)
    if current > allowed:
        return [
            f"bench obs: always-on full-stack overhead {current:.2f}% "
            f"regressed more than {args.max_full_regression_pct:.0f}% over "
            f"the committed {committed:.2f}% (allowed {allowed:.2f}%)"]
    return []


def cmd_bench_obs(args) -> CommandResult:
    from repro.harness.bench import compare_observability, write_payload

    triggers = 2000 if args.smoke else args.triggers
    payload = compare_observability(
        triggers=triggers, k=args.k, seed=args.seed,
        fault_rate=args.fault_rate, shards=args.shards, reps=args.reps,
        obs_sample=args.obs_sample)
    errors = []
    if not payload["alarm_streams_identical"]:
        errors.append("bench obs: alarm streams diverged with tracing on")
    if not payload["alarm_streams_identical_full"]:
        errors.append("bench obs: alarm streams diverged with the full "
                      "stack (forensics + health) on")
    if not payload["alarm_streams_identical_sampled"]:
        errors.append("bench obs: alarm streams diverged with the sampled "
                      "full stack (sampling must gate telemetry only)")
    if not payload["span_conservation"]["holds"]:
        errors.append("bench obs: span conservation violated "
                      f"({payload['span_conservation']})")
    if (args.max_off_delta_pct is not None
            and payload["off_delta_pct"] > args.max_off_delta_pct):
        errors.append(
            f"bench obs: tracing-off delta {payload['off_delta_pct']:.2f}% "
            f"exceeds the {args.max_off_delta_pct:.2f}% gate")
    if (args.max_trace_overhead_pct is not None
            and payload["trace_overhead_pct"] > args.max_trace_overhead_pct):
        errors.append(
            f"bench obs: tracing-on overhead "
            f"{payload['trace_overhead_pct']:.2f}% exceeds the "
            f"{args.max_trace_overhead_pct:.2f}% gate")
    if (args.max_sampled_overhead_pct is not None
            and payload["sampled_overhead_pct"]
            > args.max_sampled_overhead_pct):
        errors.append(
            f"bench obs: sampled full-stack overhead "
            f"{payload['sampled_overhead_pct']:.2f}% exceeds the "
            f"{args.max_sampled_overhead_pct:.2f}% gate "
            f"(obs_sample=1/{args.obs_sample})")
    if args.baseline is not None:
        errors.extend(_bench_obs_baseline_errors(args, payload))
    write_payload(payload, args.output)
    human = "\n".join([
        format_table(
            f"observability overhead — {triggers} triggers, k={args.k}, "
            f"{args.shards} shard(s), best of {args.reps}",
            ["variant", "wall (s)", "triggers/s"],
            [
                ["tracing off", f"{payload['off']['wall_s']:.4f}",
                 f"{payload['off']['ops_per_s']:,.0f}"],
                ["tracing off (rerun)", f"{payload['off2']['wall_s']:.4f}",
                 f"{payload['off2']['ops_per_s']:,.0f}"],
                ["tracing + metrics on", f"{payload['on']['wall_s']:.4f}",
                 f"{payload['on']['ops_per_s']:,.0f}"],
                [f"full stack sampled 1/{args.obs_sample}",
                 f"{payload['sampled']['wall_s']:.4f}",
                 f"{payload['sampled']['ops_per_s']:,.0f}"],
                ["full stack (best of 2)",
                 f"{payload['full']['wall_s']:.4f}",
                 f"{payload['full']['ops_per_s']:,.0f}"],
            ]),
        f"tracing-off delta (noise floor): {payload['off_delta_pct']:.2f}%   "
        f"tracing-on overhead: {payload['trace_overhead_pct']:.2f}%",
        f"sampled full-stack overhead: "
        f"{payload['sampled_overhead_pct']:.2f}%   "
        f"always-on full-stack overhead: "
        f"{payload['full_overhead_pct']:.2f}%",
        f"alarm streams identical: {payload['alarm_streams_identical']} "
        f"(full stack: {payload['alarm_streams_identical_full']}, "
        f"sampled: {payload['alarm_streams_identical_sampled']})   "
        f"spans: {payload['on']['spans']} "
        f"(sampled: {payload['sampled']['spans']})",
        f"wrote {args.output}",
    ])
    return CommandResult(command="bench obs", exit_code=1 if errors else 0,
                         human=human, data=payload, errors=errors)


def _fuzz_corpus_result(args) -> CommandResult:
    """``fuzz --replay``: re-run every saved corpus entry."""
    from repro.errors import ValidationError
    from repro.fuzz import (
        DifferentialOracle,
        default_corpus_dir,
        load_corpus,
        replay_entry,
    )

    directory = args.corpus if args.corpus else default_corpus_dir()
    try:
        entries = load_corpus(directory)
    except ValidationError as exc:
        return CommandResult.usage_error("fuzz", f"fuzz: {exc}")
    if not entries:
        return CommandResult.usage_error(
            "fuzz", f"fuzz: no corpus entries under {directory}")
    backends = ("serial",)
    if args.backend:
        backends = tuple(dict.fromkeys(("serial",) + tuple(args.backend)))
    oracle = DifferentialOracle(backends=backends)
    rows, outcomes, mismatches = [], [], 0
    for entry in entries:
        outcome = replay_entry(entry, oracle=oracle)
        if not outcome.matched:
            mismatches += 1
        rows.append([entry.name,
                     ",".join(entry.expect) or "-",
                     ",".join(outcome.report.codes()) or "-",
                     "ok" if outcome.matched else "MISMATCH"])
        outcomes.append({"name": entry.name,
                         "expect": list(entry.expect),
                         "actual": list(outcome.report.codes()),
                         "matched": outcome.matched,
                         "detail": outcome.detail,
                         "artifacts": sorted(outcome.report.artifacts)})
    human = format_table(f"corpus replay — {directory}",
                         ["entry", "expect", "actual", "status"], rows)
    errors = [f"fuzz: {o['name']}: {o['detail']}"
              for o in outcomes if not o["matched"]]
    return CommandResult(
        command="fuzz", exit_code=2 if mismatches else 0, human=human,
        data={"command": "fuzz", "mode": "replay",
              "corpus": str(directory), "entries": outcomes,
              "mismatches": mismatches},
        errors=errors)


def cmd_fuzz(args) -> CommandResult:
    import time

    from repro.fuzz import CorpusEntry, run_campaign, save_entry

    if args.replay:
        return _fuzz_corpus_result(args)
    if args.runs <= 0:
        return CommandResult.usage_error("fuzz", "fuzz: --runs must be >= 1")

    progress_lines: List[str] = []

    def on_progress(report):
        status = "ok" if report.ok else ",".join(report.codes())
        progress_lines.append(
            f"seed {report.spec.seed}: {status}  "
            f"[{report.spec.describe()}]")

    oracle = None
    if args.backend:
        from repro.fuzz import DifferentialOracle
        # Serial stays in the matrix as the reference; the requested
        # backend joins the ENGINE_DIVERGENCE axis.
        backends = tuple(dict.fromkeys(("serial",) + tuple(args.backend)))
        oracle = DifferentialOracle(backends=backends)

    result = run_campaign(
        base_seed=args.seed, runs=args.runs, oracle=oracle,
        shrink=args.shrink, shrink_budget=args.shrink_budget,
        time_budget_s=args.time_budget,
        clock=time.monotonic if args.time_budget is not None else None,
        on_progress=on_progress)

    lines = progress_lines if args.verbose else []
    summary = (f"{result.completed_runs}/{result.requested_runs} scenarios "
               f"from seed {args.seed}: "
               f"{len(result.counterexamples)} counterexample(s)")
    if result.budget_exhausted:
        summary += f"  (time budget {args.time_budget:.0f}s exhausted)"
    lines.append(summary)
    errors = []
    for counterexample in result.counterexamples:
        minimal = counterexample.minimal_spec
        lines.append(f"counterexample seed {counterexample.seed}: "
                     f"{','.join(counterexample.report.codes())}")
        lines.append(f"  original : {counterexample.spec.describe()}")
        lines.append(f"  minimized: {minimal.describe()}")
        lines.append(f"  repro    : {minimal.canonical_json()}")
        errors.append(
            f"fuzz: surviving counterexample at seed {counterexample.seed} "
            f"(shrunk: {minimal.describe()})")
        if args.save_failing:
            entry = CorpusEntry(
                name=f"fuzz-seed-{counterexample.seed}",
                spec=minimal,
                expect=counterexample.report.codes(),
                notes=f"found by fuzz --seed {args.seed} "
                      f"--runs {args.runs}; shrunk from seed "
                      f"{counterexample.seed}")
            path = save_entry(entry, args.save_failing)
            lines.append(f"  saved    : {path}")
            for name, suffix in (("trace_diff", "diff"), ("flight", "flight")):
                artifact = counterexample.report.artifacts.get(name)
                if artifact is None:
                    continue
                artifact_path = path.with_suffix(f".{suffix}.json")
                artifact_path.write_text(
                    json.dumps(artifact, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
                lines.append(f"  artifact : {artifact_path}")
    return CommandResult(
        command="fuzz",
        exit_code=2 if result.counterexamples else 0,
        human="\n".join(lines),
        data={"command": "fuzz", "mode": "campaign", **result.to_dict()},
        errors=errors)


def cmd_soak(args) -> CommandResult:
    import tempfile

    from repro.errors import CheckpointError
    from repro.harness.soak import CHECKPOINT_FILE, run_soak

    if args.backend is not None and args.pipeline is None:
        return CommandResult.usage_error(
            "soak", "soak: --backend requires --pipeline N")
    kill_at = args.kill_at
    if kill_at is None:
        kill_at = args.duration / 2.0
    elif kill_at <= 0:
        kill_at = None  # explicit 0 (or negative) disables the kill

    workdir = args.workdir or tempfile.mkdtemp(prefix="jury-soak-")
    os.makedirs(workdir, exist_ok=True)
    try:
        payload = run_soak(
            duration_s=args.duration,
            kill_at_s=kill_at,
            checkpoint_every=args.checkpoint_every,
            rate_per_s=args.rate,
            k=args.replicas,
            shards=args.pipeline,
            backend=args.backend,
            timeout_ms=args.timeout,
            seed=args.seed,
            max_rss_mb=args.max_rss_mb,
            workdir=workdir)
    except CheckpointError as exc:
        return CommandResult.usage_error("soak", f"soak: {exc}")

    if args.checkpoint_output:
        source = os.path.join(workdir, CHECKPOINT_FILE)
        with open(source, "rb") as src, \
                open(args.checkpoint_output, "wb") as dst:
            dst.write(src.read())
        payload["checkpoint_output"] = args.checkpoint_output

    checkpoint = payload["checkpoint"]
    lines = [
        f"soak: {payload['triggers']} triggers over {args.duration:g}s "
        f"simulated at {args.rate:g}/s "
        f"({'pipeline N=%d %s' % (args.pipeline, args.backend or 'serial') if args.pipeline else 'sequential validator'})",
        f"  kill     : "
        + (f"SIGKILL at t={kill_at:g}s (worker exit "
           f"{payload['worker_exitcode']})" if kill_at else "disabled"),
        f"  snapshot : {checkpoint['sha256'][:12]}… "
        f"{checkpoint['body_bytes']} bytes at "
        f"t={checkpoint['sim_now_ms']:.0f}ms "
        f"({checkpoint['triggers_decided']} decided)",
        f"  recovery : WAL tail {payload['wal_tail_replayed']} replayed, "
        f"{payload['resumed_records']} resumed, "
        f"streams identical: {payload['alarm_streams_identical']}",
        f"  memory   : worker peak RSS "
        f"{payload['worker_peak_rss_kb'] / 1024.0:.1f} MiB "
        f"(ceiling {args.max_rss_mb:g} MiB)",
    ]
    for failure in payload["failures"]:
        lines.append(f"  FAIL     : {failure}")
    lines.append("soak: OK" if payload["ok"] else "soak: FAILED")
    return CommandResult(
        command="soak",
        exit_code=0 if payload["ok"] else 1,
        human="\n".join(lines),
        data=payload,
        errors=[] if payload["ok"] else
        [f"soak: {failure}" for failure in payload["failures"]])


def cmd_list_faults(args) -> CommandResult:
    rows = [[name, FAULTS[name]().fault_class.value,
             "odl" if name in ODL_FAULTS else "onos"]
            for name in sorted(FAULTS)]
    human = format_table("Fault catalog", ["name", "class", "controller"],
                         rows)
    data = {"command": "list-faults",
            "faults": [{"name": r[0], "class": r[1], "controller": r[2]}
                       for r in rows]}
    return CommandResult.ok("list-faults", human=human, data=data)


def _add_format(parser: argparse.ArgumentParser, extra=()) -> None:
    parser.add_argument("--format", choices=("human", "json") + tuple(extra),
                        default="human", help="report format")


def _add_common(parser: argparse.ArgumentParser, format_extra=()) -> None:
    parser.add_argument("--controller", choices=("onos", "odl"),
                        default="onos")
    parser.add_argument("--nodes", "-n", type=int, default=7)
    parser.add_argument("--replicas", "-k", type=int, default=6)
    parser.add_argument("--switches", type=int, default=12)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=None,
                        help="validation timeout in ms")
    parser.add_argument("--rate", type=float, default=1500.0,
                        help="target PACKET_IN rate per second")
    parser.add_argument("--duration", type=float, default=1000.0,
                        help="traffic window in simulated ms")
    parser.add_argument("--pipeline", type=int, default=None, metavar="N",
                        help="validate through the sharded pipeline with "
                             "N shards (default: sequential validator)")
    parser.add_argument("--backend",
                        choices=("serial", "threads", "processes"),
                        default=None,
                        help="execution backend for the sharded pipeline "
                             "(requires --pipeline; default: serial)")
    parser.add_argument("--config", default=None, metavar="CONFIG.json",
                        help="build the JuryConfig from this JSON file "
                             "instead of the flags above")
    _add_format(parser, extra=format_extra)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="JURY (DSN 2016) reproduction command-line interface")
    commands = parser.add_subparsers(dest="command", required=True)

    validate = commands.add_parser(
        "validate", help="validate live traffic on a JURY-enhanced cluster")
    _add_common(validate)
    validate.set_defaults(fn=cmd_validate)

    faults = commands.add_parser("faults", help="inject faults from the catalog")
    _add_common(faults)
    faults.add_argument("names", nargs="*",
                        help="fault names (default: the whole catalog)")
    faults.set_defaults(fn=cmd_faults)

    throughput = commands.add_parser(
        "throughput", help="cluster FLOW_MOD throughput sweep (Fig 4f/4g)")
    _add_common(throughput)
    throughput.add_argument("--cluster-sizes", type=int, nargs="+",
                            default=[1, 3, 7])
    throughput.set_defaults(fn=cmd_throughput)

    detection = commands.add_parser(
        "detection", help="detection-time distribution (Fig 4a/4c)")
    _add_common(detection)
    detection.set_defaults(fn=cmd_detection)

    trace = commands.add_parser(
        "trace", help="reconstruct one trigger's validation lifecycle")
    _add_common(trace)
    trace.add_argument("trigger", nargs="?", default=None,
                       help="trigger id: repr form ('ext', 42), ext:42 "
                            "shorthand, or a substring (omit to list)")
    trace.add_argument("--input", default=None, metavar="TRACE.json",
                       help="read a recorded trace instead of running")
    trace.add_argument("--output", default=None, metavar="TRACE.json",
                       help="also dump the full trace (live runs only)")
    trace.add_argument("--limit", type=int, default=20,
                       help="triggers shown when listing (no query)")
    trace.set_defaults(fn=cmd_trace)

    trace_diff = commands.add_parser(
        "trace-diff",
        help="align two canonical traces by (time, trigger, stage) and "
             "pinpoint the first divergence (exit 0 identical, 1 diverged)")
    trace_diff.add_argument("left", metavar="A.json",
                            help="left trace file (the reference)")
    trace_diff.add_argument("right", metavar="B.json",
                            help="right trace file (the candidate)")
    trace_diff.add_argument("--limit", type=int, default=10,
                            help="differing slots shown/embedded")
    _add_format(trace_diff)
    trace_diff.set_defaults(fn=cmd_trace_diff)

    metrics = commands.add_parser(
        "metrics", help="run under traffic and dump the metrics registry")
    _add_common(metrics, format_extra=("prom",))
    metrics.add_argument("--output", default=None, metavar="METRICS.json",
                         help="also write the snapshot as JSON")
    metrics.set_defaults(fn=cmd_metrics)

    diagnose = commands.add_parser(
        "diagnose",
        help="explain alarms: failed check, dissenting replicas, "
             "field-level diffs, T1/T2/T3 fault class")
    _add_common(diagnose)
    diagnose.add_argument("alarm", nargs="?", default=None,
                          help="alarm to explain: id (A0001), trigger "
                               "shorthand (ext:42), or a substring "
                               "(omit for all alarms)")
    diagnose.add_argument("--fault", default=None, metavar="NAME",
                          help="inject this catalog fault instead of "
                               "driving plain traffic")
    diagnose.add_argument("--alarm-log", default=None, metavar="ALARMS.jsonl",
                          help="reconstruct offline from a recorded alarm "
                               "log instead of running")
    diagnose.add_argument("--trace", default=None, metavar="TRACE.json",
                          help="recorded trace enriching the offline "
                               "reconstruction (with --alarm-log)")
    diagnose.add_argument("--output", default=None, metavar="DIAG.json",
                          help="also write the diagnosis payload as JSON")
    diagnose.add_argument("--record-alarm-log", default=None,
                          metavar="ALARMS.jsonl",
                          help="record the run's alarm log for later "
                               "offline diagnosis (live runs only)")
    diagnose.add_argument("--flight", default=None, metavar="FLIGHT.json",
                          help="attach a recorded flight-recorder dump to "
                               "the diagnosis (offline, any mode)")
    diagnose.add_argument("--flight-output", default=None,
                          metavar="FLIGHT.json",
                          help="run with the flight recorder on and write "
                               "its ring + dumps (live runs only)")
    diagnose.set_defaults(fn=cmd_diagnose)

    health = commands.add_parser(
        "health",
        help="replica health scores (rolling-window, with hysteresis) "
             "and SLO rule status")
    _add_common(health, format_extra=("prom",))
    health.add_argument("--output", default=None, metavar="HEALTH.jsonl",
                        help="also write health/SLO records as JSONL")
    health.set_defaults(fn=cmd_health)

    fuzz = commands.add_parser(
        "fuzz",
        help="seeded scenario fuzzing with differential oracles "
             "(exit 0 clean, 2 on a surviving counterexample)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="base seed; run i uses seed+i")
    fuzz.add_argument("--runs", type=int, default=20,
                      help="scenarios to generate and check")
    fuzz.add_argument("--time-budget", type=float, default=None,
                      metavar="SECONDS",
                      help="stop starting new scenarios after this much "
                           "wall-clock time")
    shrink_group = fuzz.add_mutually_exclusive_group()
    shrink_group.add_argument("--shrink", dest="shrink",
                              action="store_true", default=True,
                              help="minimize counterexamples (default)")
    shrink_group.add_argument("--no-shrink", dest="shrink",
                              action="store_false",
                              help="report counterexamples unshrunk")
    fuzz.add_argument("--shrink-budget", type=int, default=40,
                      metavar="EVALS",
                      help="max oracle evaluations per shrink")
    fuzz.add_argument("--corpus", default=None, metavar="DIR",
                      help="corpus directory for --replay "
                           "(default: tests/corpus)")
    fuzz.add_argument("--replay", action="store_true",
                      help="replay the regression corpus instead of "
                           "generating new scenarios")
    fuzz.add_argument("--save-failing", default=None, metavar="DIR",
                      help="save shrunk counterexamples as corpus entries "
                           "into DIR")
    fuzz.add_argument("--backend", action="append", default=None,
                      choices=("serial", "threads", "processes"),
                      metavar="BACKEND",
                      help="add an execution backend to the differential "
                           "matrix (repeatable; serial always included)")
    fuzz.add_argument("--verbose", action="store_true",
                      help="print one line per scenario")
    _add_format(fuzz)
    fuzz.set_defaults(fn=cmd_fuzz)

    soak = commands.add_parser(
        "soak",
        help="crash-recovery soak: long seeded workload in a worker "
             "process, hard SIGKILL mid-run, restore from the on-disk "
             "checkpoint + WAL, byte-compare against an uninterrupted "
             "run, and enforce a peak-RSS ceiling (docs/recovery.md)")
    soak.add_argument("--duration", type=float, default=60.0,
                      metavar="SECONDS",
                      help="simulated seconds of traffic (wall time is "
                           "however fast the host replays it)")
    soak.add_argument("--kill-at", type=float, default=None,
                      metavar="SECONDS",
                      help="simulated second at which the worker SIGKILLs "
                           "itself (default: duration/2; 0 disables the "
                           "kill — the worker must then exit cleanly)")
    soak.add_argument("--checkpoint-every", type=int, default=200,
                      metavar="TRIGGERS",
                      help="auto-checkpoint after this many decided "
                           "triggers")
    soak.add_argument("--max-rss-mb", type=float, default=512.0,
                      help="fail if the worker's peak RSS exceeds this")
    soak.add_argument("--rate", type=float, default=200.0,
                      help="triggers per simulated second")
    soak.add_argument("--replicas", "-k", type=int, default=3)
    soak.add_argument("--timeout", type=float, default=250.0,
                      help="validation timeout in ms")
    soak.add_argument("--seed", type=int, default=0)
    soak.add_argument("--pipeline", type=int, default=None, metavar="N",
                      help="soak the sharded pipeline with N shards "
                           "(default: sequential validator)")
    soak.add_argument("--backend",
                      choices=("serial", "threads", "processes"),
                      default=None,
                      help="execution backend for the worker's pipeline "
                           "(requires --pipeline)")
    soak.add_argument("--workdir", default=None, metavar="DIR",
                      help="directory for the WAL and checkpoint artifacts "
                           "(default: a fresh temp dir)")
    soak.add_argument("--checkpoint-output", default=None,
                      metavar="CHECKPOINT.json",
                      help="also copy the final checkpoint artifact here "
                           "(the CI-uploaded sample)")
    _add_format(soak)
    soak.set_defaults(fn=cmd_soak)

    list_faults = commands.add_parser("list-faults", help="show the catalog")
    _add_format(list_faults)
    list_faults.set_defaults(fn=cmd_list_faults)

    analyze = commands.add_parser(
        "analyze",
        help="static analysis: per-file D/T/S/H rules plus cross-module "
             "X rules over the project call graph")
    analyze.add_argument("paths", nargs="*", metavar="PATH",
                         help="files or directories to analyze (explicit "
                              ".xml files are linted as policy documents)")
    analyze.add_argument("--format", choices=("human", "json"),
                         default="human", help="report format")
    analyze.add_argument(
        "--baseline", nargs="?", const="analysis-baseline.json",
        default=None, metavar="PATH",
        help="suppress findings recorded in this baseline file "
             "(default path when the flag is given bare: "
             "analysis-baseline.json)")
    analyze.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to the baseline file and exit 0")
    analyze.add_argument(
        "--fail-on", choices=("warning", "error"), default="error",
        help="exit non-zero when findings at/above this severity exist")
    analyze.add_argument("--list-rules", action="store_true",
                         help="print the rule catalog and exit")
    analyze.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="analyze files with N worker processes")
    analyze.add_argument("--cache", default=".jury-analysis-cache.json",
                         metavar="PATH",
                         help="incremental result cache file")
    analyze.add_argument("--no-cache", action="store_true",
                         help="disable the incremental result cache")
    analyze.set_defaults(fn=cmd_analyze)

    analyze_policy = commands.add_parser(
        "analyze-policy",
        help="statically verify policy XML before deployment "
             "(P-rules: contradictions, shadowing, schema, provenance)")
    analyze_policy.add_argument(
        "paths", nargs="*", metavar="POLICY.xml",
        help="policy files (or directories of .xml files) to verify")
    analyze_policy.add_argument(
        "--builtin", action="store_true",
        help="also lint the built-in policy sets shipped with the repro")
    analyze_policy.add_argument(
        "--project", default=None, metavar="DIR",
        help="project tree for the call-graph provenance checks "
             "(default: src/repro when present; 'none' disables P604)")
    analyze_policy.add_argument("--format", choices=("human", "json"),
                                default="human", help="report format")
    analyze_policy.add_argument(
        "--fail-on", choices=("warning", "error"), default="warning",
        help="exit non-zero at/above this severity (default: warning — "
             "shadowed clauses should block deployment too)")
    analyze_policy.set_defaults(fn=cmd_analyze_policy)

    bench = commands.add_parser(
        "bench", help="wall-clock performance benchmarks")
    bench_targets = bench.add_subparsers(dest="target", required=True)
    bench_validator = bench_targets.add_parser(
        "validator",
        help="sequential vs sharded validator throughput/latency")
    bench_validator.add_argument("--triggers", type=int, default=20_000,
                                 help="triggers in the synthetic workload")
    bench_validator.add_argument("--k", type=int, default=6,
                                 help="secondaries per trigger (2k+2 "
                                      "responses each)")
    bench_validator.add_argument("--shards", type=int, default=4)
    bench_validator.add_argument("--seed", type=int, default=0)
    bench_validator.add_argument("--fault-rate", type=float, default=0.02,
                                 help="fraction of triggers with a "
                                      "corrupted cache relay")
    bench_validator.add_argument("--queue-capacity", type=int, default=1024)
    bench_validator.add_argument("--batch-max", type=int, default=512)
    bench_validator.add_argument("--smoke", action="store_true",
                                 help="small CI-sized workload "
                                      "(2000 triggers)")
    bench_validator.add_argument(
        "--backend", choices=("serial", "threads", "processes"),
        default=None,
        help="sweep execution backends instead of sequential-vs-pipeline; "
             "gates and the default output switch to BENCH_backends.json")
    bench_validator.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="with --backend: fail unless that backend is at least X "
             "times faster than serial (skipped on single-CPU hosts)")
    bench_validator.add_argument("--output", default="BENCH_validator_pipeline.json",
                                 help="path for the JSON payload")
    _add_format(bench_validator)
    bench_validator.set_defaults(fn=cmd_bench_validator)

    bench_obs = bench_targets.add_parser(
        "obs",
        help="observability overhead: no-op path noise floor vs tracing on")
    bench_obs.add_argument("--triggers", type=int, default=20_000)
    bench_obs.add_argument("--k", type=int, default=6)
    bench_obs.add_argument("--shards", type=int, default=4)
    bench_obs.add_argument("--seed", type=int, default=0)
    bench_obs.add_argument("--fault-rate", type=float, default=0.02)
    bench_obs.add_argument("--reps", type=int, default=3,
                           help="interleaved repetitions (best wall kept)")
    bench_obs.add_argument("--smoke", action="store_true",
                           help="small CI-sized workload (2000 triggers)")
    bench_obs.add_argument("--max-off-delta-pct", type=float, default=15.0,
                           help="fail if the off-vs-off rerun delta "
                                "(tracing-off overhead bound) exceeds this; "
                                "a real off-path regression measures in the "
                                "hundreds of percent, the default only needs "
                                "to clear shared-runner timing noise")
    bench_obs.add_argument("--max-trace-overhead-pct", type=float,
                           default=None,
                           help="fail if tracing-on overhead exceeds this")
    bench_obs.add_argument("--obs-sample", type=int, default=64, metavar="N",
                           help="head-sampling rate (1-in-N) for the "
                                "sampled full-stack variant")
    bench_obs.add_argument("--max-sampled-overhead-pct", type=float,
                           default=25.0,
                           help="fail if the sampled full-stack overhead "
                                "exceeds this (the production-shaped gate)")
    bench_obs.add_argument("--baseline", default=None,
                           metavar="BENCH_observability.json",
                           help="committed payload to regression-gate the "
                                "always-on full-stack overhead against")
    bench_obs.add_argument("--max-full-regression-pct", type=float,
                           default=10.0,
                           help="with --baseline: allowed relative growth "
                                "of full_overhead_pct over the committed "
                                "number")
    bench_obs.add_argument("--output", default="BENCH_observability.json",
                           help="path for the JSON payload")
    _add_format(bench_obs)
    bench_obs.set_defaults(fn=cmd_bench_obs)

    bench_analyze = bench_targets.add_parser(
        "analyze",
        help="static-analyzer performance: cold vs warm cache vs --jobs")
    bench_analyze.add_argument("paths", nargs="*", default=["src/repro"],
                               metavar="PATH",
                               help="tree(s) to analyze (default: src/repro)")
    bench_analyze.add_argument("--jobs", type=int, default=4,
                               help="worker processes for the parallel run")
    bench_analyze.add_argument("--reps", type=int, default=3,
                               help="repetitions per variant (best kept)")
    bench_analyze.add_argument("--min-warm-speedup", type=float, default=5.0,
                               help="fail if the warm-cache run is not at "
                                    "least this much faster than cold")
    bench_analyze.add_argument("--output", default="BENCH_analysis.json",
                               help="path for the JSON payload")
    _add_format(bench_analyze)
    bench_analyze.set_defaults(fn=cmd_bench_analyze)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.errors import ValidationError

    args = build_parser().parse_args(argv)
    try:
        result = args.fn(args)
    except ValidationError as exc:
        # Config mistakes (bad --config file, backend without --pipeline,
        # removed-API calls) are usage errors: exit 2, like argparse's own.
        result = CommandResult.usage_error(
            getattr(args, "command", None) or "repro", str(exc))
    fmt = getattr(args, "format", "human")
    # "prom" output is pre-rendered exposition text in result.human.
    return render_result(result, "human" if fmt == "prom" else fmt)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
