"""Command-line interface: ``python -m repro <command>``.

Gives operators the paper's experiments without writing code:

* ``validate`` — run a JURY-enhanced cluster under traffic and report
  validation statistics (the quickstart as a command).
* ``faults`` — inject a named fault (or the whole catalog) and report
  detection/attribution.
* ``throughput`` — the Fig 4f/4g cluster-throughput sweep.
* ``detection`` — the Fig 4a/4c detection-time distribution.
* ``list-faults`` — show the fault catalog.
* ``analyze`` — static determinism/taint-safety analysis of controller and
  app code (the CI gate; see ``docs/static_analysis.md``).
* ``bench validator`` — sequential-vs-sharded validator benchmark; writes
  ``BENCH_validator_pipeline.json`` (see ``docs/pipeline.md``).

Simulation commands accept ``--pipeline N`` to validate through the sharded
:class:`~repro.core.pipeline.ValidationPipeline` instead of the sequential
validator.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.faults import (
    CrashFault,
    StoreDesyncFault,
    FaultyProactiveFault,
    FlowDeletionFailureFault,
    FlowInstantiationFailureFault,
    LinkDetectionInconsistencyFault,
    LinkFailureFault,
    OdlFlowModDropFault,
    OdlIncorrectFlowModFault,
    OnosDatabaseLockFault,
    OnosMasterElectionFault,
    PendingAddFault,
    ResponseCorruptionFault,
    ResponseOmissionFault,
    TimingFault,
    UndesirableFlowModFault,
)
from repro.faults.base import run_scenario
from repro.faults.injector import default_policy_engine
from repro.harness.experiment import build_experiment
from repro.harness.figures import ascii_cdf
from repro.harness.reporting import format_table
from repro.workloads.traffic import TrafficDriver

FAULTS: Dict[str, Callable] = {
    "onos-database-locking": lambda: OnosDatabaseLockFault("c1"),
    "onos-master-election": lambda: OnosMasterElectionFault(1, 2),
    "onos-link-detection": lambda: LinkDetectionInconsistencyFault(2, 3),
    "onos-pending-add": lambda: PendingAddFault(4),
    "odl-flow-mod-drop": lambda: OdlFlowModDropFault("c1"),
    "odl-incorrect-flow-mod": lambda: OdlIncorrectFlowModFault("c1"),
    "odl-flow-deletion-failure": lambda: FlowDeletionFailureFault("c1"),
    "odl-flow-instantiation-failure": lambda: FlowInstantiationFailureFault("c1"),
    "link-failure": lambda: LinkFailureFault(1, 2),
    "undesirable-flow-mod": lambda: UndesirableFlowModFault("c2"),
    "faulty-proactive": lambda: FaultyProactiveFault("c3"),
    "crash": lambda: CrashFault("c1"),
    "response-omission": lambda: ResponseOmissionFault("c2"),
    "timing": lambda: TimingFault("c3"),
    "response-corruption": lambda: ResponseCorruptionFault("c1"),
    "store-desync": lambda: StoreDesyncFault("c2"),
}

ODL_FAULTS = {"odl-flow-mod-drop", "odl-incorrect-flow-mod",
              "odl-flow-deletion-failure", "odl-flow-instantiation-failure"}


def _build(args, kind: Optional[str] = None, k: Optional[int] = None):
    kind = kind or args.controller
    experiment = build_experiment(
        kind=kind,
        n=args.nodes,
        k=args.replicas if k is None else k,
        switches=args.switches,
        seed=args.seed,
        timeout_ms=args.timeout if args.timeout is not None
        else (250.0 if kind == "onos" else 1200.0),
        policy_engine=default_policy_engine(),
        with_northbound=True,
        pipeline=getattr(args, "pipeline", None),
    )
    experiment.warmup()
    return experiment


def cmd_validate(args) -> int:
    experiment = _build(args)
    driver = TrafficDriver(experiment.sim, experiment.topology,
                           packet_in_rate_per_s=args.rate,
                           duration_ms=args.duration)
    driver.start()
    experiment.begin_window()
    experiment.run(args.duration + 600.0)
    validator = experiment.validator
    stats = experiment.detection_stats()
    throughput = experiment.throughput()
    print(format_table(
        f"JURY validation — {args.controller} n={args.nodes} k={args.replicas}",
        ["metric", "value"],
        [
            ["PACKET_IN rate", f"{throughput.packet_in_rate_per_s:.0f}/s"],
            ["FLOW_MOD rate", f"{throughput.flow_mod_rate_per_s:.0f}/s"],
            ["triggers validated", validator.triggers_decided],
            ["alarms", validator.triggers_alarmed],
            ["false-positive rate",
             f"{100 * validator.false_positive_rate():.3f}%"],
            ["median detection", f"{stats.median:.1f} ms"],
            ["p95 detection", f"{stats.p95:.1f} ms"],
        ]))
    return 0


def cmd_faults(args) -> int:
    names: List[str] = args.names or sorted(FAULTS)
    unknown = [n for n in names if n not in FAULTS]
    if unknown:
        print(f"unknown fault(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    rows = []
    failures = 0
    for name in names:
        kind = "odl" if name in ODL_FAULTS else "onos"
        experiment = _build(args, kind=kind)
        result = run_scenario(experiment, FAULTS[name]())
        if not result.detected:
            failures += 1
        rows.append([
            name,
            "YES" if result.detected else "NO",
            result.matching_alarms[0].reason.value
            if result.matching_alarms else "-",
            f"{result.detection_ms:.0f} ms" if result.detection_ms else "-",
            result.matching_alarms[0].offending_controller
            if result.matching_alarms else "-",
        ])
    print(format_table("Fault detection",
                       ["fault", "detected", "mechanism", "latency",
                        "blamed"], rows))
    return 1 if failures else 0


def cmd_throughput(args) -> int:
    rows = []
    for n in args.cluster_sizes:
        experiment = build_experiment(kind=args.controller, n=n,
                                      switches=args.switches, seed=args.seed)
        experiment.warmup()
        driver = TrafficDriver(experiment.sim, experiment.topology,
                               packet_in_rate_per_s=args.rate,
                               duration_ms=args.duration)
        driver.start()
        experiment.begin_window()
        experiment.run(args.duration)
        point = experiment.throughput()
        rows.append([f"n={n}", f"{point.packet_in_rate_per_s:.0f}",
                     f"{point.flow_mod_rate_per_s:.0f}",
                     f"{point.packet_out_rate_per_s:.0f}"])
    print(format_table(
        f"{args.controller} cluster throughput @ requested "
        f"{args.rate:.0f} PACKET_IN/s",
        ["cluster", "PACKET_IN/s", "FLOW_MOD/s", "PACKET_OUT/s"], rows))
    return 0


def cmd_detection(args) -> int:
    experiment = _build(args)
    driver = TrafficDriver(experiment.sim, experiment.topology,
                           packet_in_rate_per_s=args.rate,
                           duration_ms=args.duration)
    driver.start()
    experiment.run(args.duration + 600.0)
    stats = experiment.detection_stats()
    print(f"{stats.count} detections  median={stats.median:.1f} ms  "
          f"p95={stats.p95:.1f} ms  p99={stats.p99:.1f} ms")
    print()
    print(ascii_cdf({f"k={args.replicas}": stats.samples}))
    return 0


def cmd_analyze(args) -> int:
    # Imported lazily: the analyzer is stdlib-only and must stay usable in
    # minimal environments, but the other commands shouldn't pay for it.
    from repro.analysis import (
        Baseline,
        Severity,
        analyze_paths,
        render_human,
        render_json,
        render_rule_list,
    )
    from repro.analysis.baseline import DEFAULT_BASELINE_PATH

    if args.list_rules:
        print(render_rule_list())
        return 0
    if not args.paths:
        print("analyze: at least one PATH is required", file=sys.stderr)
        return 2
    fail_on = Severity.parse(args.fail_on)

    baseline_path = args.baseline
    if baseline_path is None and args.write_baseline:
        baseline_path = DEFAULT_BASELINE_PATH
    baseline = None
    if baseline_path is not None and not args.write_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except FileNotFoundError:
            print(f"analyze: baseline file not found: {baseline_path}",
                  file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"analyze: {exc}", file=sys.stderr)
            return 2

    try:
        report = analyze_paths(args.paths, baseline=baseline)
    except FileNotFoundError as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(report.findings).write(baseline_path)
        print(f"wrote {len(report.findings)} finding(s) to {baseline_path}")
        return 0

    if args.format == "json":
        print(render_json(report, fail_on))
    else:
        print(render_human(report, fail_on))
    return 1 if report.count_at_least(fail_on) else 0


def cmd_bench_validator(args) -> int:
    # Imported lazily: the harness pulls in the perf-measurement code only
    # when benchmarking is requested.
    from repro.harness.bench import compare, write_payload

    triggers = 2000 if args.smoke else args.triggers
    payload = compare(triggers=triggers, k=args.k, seed=args.seed,
                      fault_rate=args.fault_rate, shards=args.shards,
                      queue_capacity=args.queue_capacity,
                      batch_max=args.batch_max)
    write_payload(payload, args.output)
    sequential = payload["sequential"]
    pipeline = payload["pipeline"]
    print(format_table(
        f"validator benchmark — {triggers} triggers, k={args.k}, "
        f"{args.shards} shard(s)",
        ["metric", "sequential", f"pipeline (N={args.shards})"],
        [
            ["throughput", f"{sequential['ops_per_s']:,.0f} triggers/s",
             f"{pipeline['ops_per_s']:,.0f} triggers/s"],
            ["p50 decision latency", f"{sequential['p50_ms']:.4f} ms",
             f"{pipeline['p50_ms']:.4f} ms"],
            ["p99 decision latency", f"{sequential['p99_ms']:.4f} ms",
             f"{pipeline['p99_ms']:.4f} ms"],
            ["alarms", sequential["alarmed"], pipeline["alarmed"]],
        ]))
    print(f"speedup: {payload['speedup']:.2f}x   "
          f"alarm streams identical: {payload['alarm_streams_identical']}")
    print(f"wrote {args.output}")
    if not payload["alarm_streams_identical"]:
        print("bench: sequential and pipeline alarm streams diverged",
              file=sys.stderr)
        return 1
    return 0


def cmd_list_faults(args) -> int:
    rows = [[name, FAULTS[name]().fault_class.value,
             "odl" if name in ODL_FAULTS else "onos"]
            for name in sorted(FAULTS)]
    print(format_table("Fault catalog", ["name", "class", "controller"], rows))
    return 0


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--controller", choices=("onos", "odl"),
                        default="onos")
    parser.add_argument("--nodes", "-n", type=int, default=7)
    parser.add_argument("--replicas", "-k", type=int, default=6)
    parser.add_argument("--switches", type=int, default=12)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=None,
                        help="validation timeout in ms")
    parser.add_argument("--rate", type=float, default=1500.0,
                        help="target PACKET_IN rate per second")
    parser.add_argument("--duration", type=float, default=1000.0,
                        help="traffic window in simulated ms")
    parser.add_argument("--pipeline", type=int, default=None, metavar="N",
                        help="validate through the sharded pipeline with "
                             "N shards (default: sequential validator)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="JURY (DSN 2016) reproduction command-line interface")
    commands = parser.add_subparsers(dest="command", required=True)

    validate = commands.add_parser(
        "validate", help="validate live traffic on a JURY-enhanced cluster")
    _add_common(validate)
    validate.set_defaults(fn=cmd_validate)

    faults = commands.add_parser("faults", help="inject faults from the catalog")
    _add_common(faults)
    faults.add_argument("names", nargs="*",
                        help="fault names (default: the whole catalog)")
    faults.set_defaults(fn=cmd_faults)

    throughput = commands.add_parser(
        "throughput", help="cluster FLOW_MOD throughput sweep (Fig 4f/4g)")
    _add_common(throughput)
    throughput.add_argument("--cluster-sizes", type=int, nargs="+",
                            default=[1, 3, 7])
    throughput.set_defaults(fn=cmd_throughput)

    detection = commands.add_parser(
        "detection", help="detection-time distribution (Fig 4a/4c)")
    _add_common(detection)
    detection.set_defaults(fn=cmd_detection)

    list_faults = commands.add_parser("list-faults", help="show the catalog")
    list_faults.set_defaults(fn=cmd_list_faults)

    analyze = commands.add_parser(
        "analyze",
        help="static determinism/taint-safety analysis (D/T/S/H rules)")
    analyze.add_argument("paths", nargs="*", metavar="PATH",
                         help="files or directories to analyze")
    analyze.add_argument("--format", choices=("human", "json"),
                         default="human", help="report format")
    analyze.add_argument(
        "--baseline", nargs="?", const="analysis-baseline.json",
        default=None, metavar="PATH",
        help="suppress findings recorded in this baseline file "
             "(default path when the flag is given bare: "
             "analysis-baseline.json)")
    analyze.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to the baseline file and exit 0")
    analyze.add_argument(
        "--fail-on", choices=("warning", "error"), default="error",
        help="exit non-zero when findings at/above this severity exist")
    analyze.add_argument("--list-rules", action="store_true",
                         help="print the rule catalog and exit")
    analyze.set_defaults(fn=cmd_analyze)

    bench = commands.add_parser(
        "bench", help="wall-clock performance benchmarks")
    bench_targets = bench.add_subparsers(dest="target", required=True)
    bench_validator = bench_targets.add_parser(
        "validator",
        help="sequential vs sharded validator throughput/latency")
    bench_validator.add_argument("--triggers", type=int, default=20_000,
                                 help="triggers in the synthetic workload")
    bench_validator.add_argument("--k", type=int, default=6,
                                 help="secondaries per trigger (2k+2 "
                                      "responses each)")
    bench_validator.add_argument("--shards", type=int, default=4)
    bench_validator.add_argument("--seed", type=int, default=0)
    bench_validator.add_argument("--fault-rate", type=float, default=0.02,
                                 help="fraction of triggers with a "
                                      "corrupted cache relay")
    bench_validator.add_argument("--queue-capacity", type=int, default=1024)
    bench_validator.add_argument("--batch-max", type=int, default=512)
    bench_validator.add_argument("--smoke", action="store_true",
                                 help="small CI-sized workload "
                                      "(2000 triggers)")
    bench_validator.add_argument("--output", default="BENCH_validator_pipeline.json",
                                 help="path for the JSON payload")
    bench_validator.set_defaults(fn=cmd_bench_validator)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
