"""Ready-made policies for the paper's validation scenarios.

* :func:`no_internal_cache_changes` — Fig 3: alarm when any controller
  proactively (internal trigger) modifies a cache such as EdgesDB. Detects
  the T3 "faulty proactive action" fault.
* :func:`match_hierarchy_policy` — requires FlowsDB entries to respect the
  OpenFlow 1.0 match-field prerequisite hierarchy. Detects the "ODL
  incorrect FLOW_MOD" fault before the switch/store divergence can happen.
* :func:`stranded_flow_policy` — flags flow rules that remain in
  PENDING_ADD after repeated reconciliation attempts (Appendix fault 4).
"""

from __future__ import annotations

from repro.datastore.caches import EDGESDB, FLOWSDB
from repro.openflow.constants import FlowState
from repro.openflow.match import Match
from repro.policy.language import TRIGGER_INTERNAL, Policy, PolicyWrite


def no_internal_cache_changes(cache: str = EDGESDB,
                              controller: str = "*") -> Policy:
    """Alarm if a controller proactively modifies ``cache`` (Fig 3)."""
    return Policy(
        allow=False,
        controller=controller,
        trigger=TRIGGER_INTERNAL,
        cache=cache,
        name=f"no-internal-{cache}-changes",
    )


def _has_hierarchy_violation(write: PolicyWrite) -> bool:
    match_canonical = write.value.get("match")
    if match_canonical is None:
        return False
    try:
        match = Match.from_canonical(match_canonical)
    except TypeError:
        return True  # unparseable match is itself suspicious
    return bool(match.hierarchy_violations())


def match_hierarchy_policy() -> Policy:
    """Alarm on FlowsDB entries whose match violates field prerequisites.

    "We use a policy that specifies the correct hierarchy of match fields in
    the cache entry" (§VII-A1, ODL incorrect FLOW_MOD).
    """
    return Policy(
        allow=False,
        cache=FLOWSDB,
        entry_predicate=_has_hierarchy_violation,
        name="flow-match-hierarchy",
    )


def _is_stranded(write: PolicyWrite, max_attempts: int) -> bool:
    return (write.value.get("state") == FlowState.PENDING_ADD.value
            and write.value.get("attempts", 0) >= max_attempts)


def stranded_flow_policy(max_attempts: int = 2) -> Policy:
    """Alarm on flow rules stuck in PENDING_ADD after reconciliation retries."""
    return Policy(
        allow=False,
        cache=FLOWSDB,
        entry_predicate=lambda write: _is_stranded(write, max_attempts),
        name="stranded-pending-add",
    )
