"""The policy constraint language (Table 2).

A :class:`Policy` constrains controller actions along four directives:

==============  =====================================================
Controller      CONTROLLERID | ``*``
Trigger         INTERNAL | EXTERNAL | ``*``
Cache           ArpDB | HostsDB | EdgesDB | FlowsDB | ... | ``*``
Destination     LOCAL | REMOTE | ``*``
==============  =====================================================

plus an operation filter (create/update/delete) and an optional entry
pattern or predicate over the written value. ``allow=False`` policies raise
alarms on match (Fig 3); ``allow=True`` policies whitelist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import PolicyError

TRIGGER_INTERNAL = "internal"
TRIGGER_EXTERNAL = "external"
WILDCARD = "*"

DEST_LOCAL = "local"
DEST_REMOTE = "remote"


@dataclass(frozen=True)
class PolicyWrite:
    """One cache write as seen by the policy engine."""

    cache: str
    key: Tuple
    op: str
    value: Dict[str, Any]
    controller: str
    external: bool
    destination: str  # "local" | "remote" | "network"

    @property
    def trigger(self) -> str:
        return TRIGGER_EXTERNAL if self.external else TRIGGER_INTERNAL


@dataclass(frozen=True)
class PolicyViolation:
    """A deny policy matched a write."""

    policy: "Policy"
    write: PolicyWrite

    def __str__(self) -> str:
        name = self.policy.name or "<unnamed>"
        return (f"policy {name!r} violated: controller={self.write.controller} "
                f"trigger={self.write.trigger} cache={self.write.cache} "
                f"op={self.write.op} dest={self.write.destination}")


@dataclass(frozen=True)
class Policy:
    """One constraint in JURY's policy language."""

    allow: bool = False
    controller: str = WILDCARD
    trigger: str = WILDCARD
    cache: str = WILDCARD
    operation: str = WILDCARD
    entry: str = WILDCARD
    destination: str = WILDCARD
    #: Optional predicate over the write; the policy only matches writes for
    #: which it returns True. Used e.g. for match-field hierarchy checks.
    entry_predicate: Optional[Callable[[PolicyWrite], bool]] = field(
        default=None, compare=False)
    name: str = ""
    #: 1-based source position of the originating ``<Policy>`` clause when
    #: this policy was parsed from XML; ``None`` for built-in policies.
    source_line: Optional[int] = field(default=None, compare=False)
    source_column: Optional[int] = field(default=None, compare=False)

    def __post_init__(self):
        if self.trigger not in (WILDCARD, TRIGGER_INTERNAL, TRIGGER_EXTERNAL):
            raise PolicyError(f"invalid trigger directive: {self.trigger!r}")
        if self.destination not in (WILDCARD, DEST_LOCAL, DEST_REMOTE):
            raise PolicyError(f"invalid destination directive: {self.destination!r}")
        if self.operation not in (WILDCARD, "create", "update", "delete"):
            raise PolicyError(f"invalid operation directive: {self.operation!r}")

    # ------------------------------------------------------------------
    def matches(self, write: PolicyWrite) -> bool:
        """Does this policy apply to the given cache write?"""
        if self.controller != WILDCARD and self.controller != write.controller:
            return False
        if self.trigger != WILDCARD and self.trigger != write.trigger:
            return False
        if self.cache != WILDCARD and self.cache != write.cache:
            return False
        if self.operation != WILDCARD and self.operation != write.op:
            return False
        if (self.destination != WILDCARD
                and self.destination != write.destination):
            return False
        if self.entry != WILDCARD and not fnmatch(str(write.key), self.entry):
            return False
        if self.entry_predicate is not None and not self.entry_predicate(write):
            return False
        return True
