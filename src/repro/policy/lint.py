"""Policy linting: run the P-rules over policy XML or built-in policies.

The deployment path for a policy file is ``jury-repro analyze-policy
<file>``; this module is the library behind it. It parses leniently
(collecting *all* problems with positions, instead of dying on the first),
wraps the clauses into the :class:`~repro.analysis.rules_policy
.PolicyDocument` the P-rules consume, and returns plain
:class:`~repro.analysis.findings.Finding` records — the same currency as
the code analyzer, so reporters, baselines, and CI gates need no new
machinery.

Suppressions work like in Python sources: a ``jury: ignore[P602]`` marker
inside an XML comment on the reported line silences that finding::

    <Policy allow="No"> <!-- # jury: ignore[P602] -->
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import _SUPPRESS_RE, ALL_RULES, policy_rules
from repro.policy.language import Policy
from repro.policy.parser import parse_policy_document

#: Rule id for document-level parse failures (shared with the code analyzer).
PARSE_ERROR_RULE = "P001"


class _PolicyView:
    """Adapter giving a built-in :class:`Policy` the clause surface.

    Built-in policies are constructed in Python, so they have no XML
    positions; the view anchors them at line = 1-based position in the set,
    which keeps findings stable and distinguishable.
    """

    def __init__(self, policy: Policy, index: int):
        self._policy = policy
        self.index = index
        self.line = policy.source_line or index + 1
        self.column = policy.source_column or 1
        self.allow = policy.allow
        self.allow_raw = "yes" if policy.allow else "no"
        self.controller = policy.controller
        self.trigger = policy.trigger
        self.cache = policy.cache
        self.operation = policy.operation
        self.entry = policy.entry
        self.destination = policy.destination
        self.entry_predicate = policy.entry_predicate
        self.label = policy.name or f"policy #{index + 1}"

    def position_of(self, tag: str) -> Tuple[int, int]:
        return self.line, self.column


def _scan_suppressions(text: str) -> Dict[int, Set[str]]:
    """``jury: ignore`` markers (inside XML comments) by line number."""
    table: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        if match.group(1) is None:
            table[lineno] = {ALL_RULES}
        else:
            table[lineno] = {r.strip().upper()
                             for r in match.group(1).split(",") if r.strip()}
    return table


def lint_policy_text(text: str, path: str = "<policy>",
                     index=None) -> List[Finding]:
    """Lint one policy document; returns sorted findings, never raises.

    Malformed XML and unknown elements surface as ``P001`` parse findings;
    everything else comes from the registered P-rules. ``index`` is an
    optional :class:`~repro.analysis.project_index.ProjectIndex` enabling
    the provenance checks (P604).
    """
    from repro.analysis.rules_policy import PolicyDocument

    clauses, issues = parse_policy_document(text)
    suppressions = _scan_suppressions(text)
    findings: List[Finding] = []
    for issue in issues:
        if issue.kind != "error":
            continue  # schema-kind issues belong to P603
        rules = suppressions.get(issue.line)
        if rules is not None and (ALL_RULES in rules
                                  or PARSE_ERROR_RULE in rules):
            continue
        findings.append(Finding(
            rule_id=PARSE_ERROR_RULE, severity=Severity.ERROR, path=path,
            line=issue.line, column=issue.column, message=issue.message))
    doc = PolicyDocument(path=path, clauses=clauses, schema_issues=issues,
                         suppressions=suppressions, index=index)
    for rule in policy_rules():
        findings.extend(rule.run_policy(doc))
    return sorted(findings, key=Finding.sort_key)


def lint_policy_file(path: str, index=None) -> List[Finding]:
    """Read and lint one policy XML file (unreadable file → P001)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        return [Finding(rule_id=PARSE_ERROR_RULE, severity=Severity.ERROR,
                        path=path, line=1, column=1,
                        message=f"cannot read policy file: {exc}")]
    return lint_policy_text(text, path=path, index=index)


def lint_policies(policies: Sequence[Policy], path: str = "<builtin>",
                  index=None) -> List[Finding]:
    """Lint already-constructed :class:`Policy` objects as one document."""
    from repro.analysis.rules_policy import PolicyDocument

    views = [_PolicyView(policy, i) for i, policy in enumerate(policies)]
    doc = PolicyDocument(path=path, clauses=views, index=index)
    findings: List[Finding] = []
    for rule in policy_rules():
        findings.extend(rule.run_policy(doc))
    return sorted(findings, key=Finding.sort_key)


def builtin_policy_sets() -> Dict[str, List[Policy]]:
    """The shipped policy sets, by name (the analyze-policy --builtin gate)."""
    from repro.policy.builtin import (
        match_hierarchy_policy,
        no_internal_cache_changes,
        stranded_flow_policy,
    )

    return {
        "fig3-defaults": [no_internal_cache_changes()],
        "flow-integrity": [match_hierarchy_policy(), stranded_flow_policy()],
    }


def lint_builtin_policies(index=None) -> List[Finding]:
    """Lint every shipped policy set (self-application for policies)."""
    findings: List[Finding] = []
    for name, policies in sorted(builtin_policy_sets().items()):
        findings.extend(lint_policies(policies, path=f"<builtin:{name}>",
                                      index=index))
    return sorted(findings, key=Finding.sort_key)
