"""XML policy parser (Fig 3 format), position-aware.

Example::

    <Policy allow="No">
      <Controller id="*"/>
      <Action type="Internal"/>
      <Cache name="EdgesDB" entry="*,*" operation="*"/>
      <Destination value="*"/>
    </Policy>

Multiple policies wrap in a ``<Policies>`` root. Unknown elements raise
:class:`~repro.errors.PolicyError`; omitted directives default to ``*``.

The parser is built directly on ``xml.parsers.expat`` so every clause keeps
its 1-based source line and column: strict parses stamp them onto the
resulting :class:`~repro.policy.language.Policy` (``source_line`` /
``source_column``), parse failures raise :class:`PolicyError` with
``line``/``column`` attributes, and the lenient
:func:`parse_policy_document` entry point hands the policy linter raw
clauses plus per-position issues instead of dying on the first problem.
"""

from __future__ import annotations

import xml.parsers.expat
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import PolicyError
from repro.policy.language import WILDCARD, Policy

#: Child elements of <Policy> and the attributes each understands.
KNOWN_ELEMENTS: Dict[str, Tuple[str, ...]] = {
    "Controller": ("id",),
    "Action": ("type",),
    "Cache": ("name", "entry", "operation"),
    "Destination": ("value",),
}

#: Attributes understood on the <Policy> element itself.
POLICY_ATTRS = ("allow", "name")


def _positioned_error(message: str, line: Optional[int] = None,
                      column: Optional[int] = None) -> PolicyError:
    where = f" (line {line}, column {column})" if line is not None else ""
    error = PolicyError(f"{message}{where}")
    error.line = line
    error.column = column
    return error


@dataclass
class ParseIssue:
    """One problem found while parsing a policy document leniently."""

    message: str
    line: int
    column: int
    #: ``error`` stops a strict parse; ``schema`` is a P-rule-grade concern
    #: (unknown element/attribute/value) the linter reports as a finding.
    kind: str = "error"


@dataclass
class RawDirective:
    """One ``<Controller/Action/Cache/Destination>`` child, as written."""

    tag: str
    attrs: Dict[str, str]
    line: int
    column: int


@dataclass
class PolicyClause:
    """One ``<Policy>`` element before strict validation.

    Field values keep exactly what the document said (modulo whitespace
    trimming); positions are 1-based. ``directive_positions`` maps a
    directive tag to where it appeared so findings can point at the
    offending directive rather than the whole clause.
    """

    line: int
    column: int
    allow_raw: str = "No"
    name: str = ""
    directives: List[RawDirective] = field(default_factory=list)
    index: int = 0  #: 0-based position in the document

    # ------------------------------------------------------------------
    def directive(self, tag: str) -> Optional[RawDirective]:
        for raw in self.directives:
            if raw.tag == tag:
                return raw
        return None

    def field_value(self, tag: str, attr: str, default: str = WILDCARD) -> str:
        raw = self.directive(tag)
        if raw is None:
            return default
        return raw.attrs.get(attr, default)

    def position_of(self, tag: str) -> Tuple[int, int]:
        raw = self.directive(tag)
        if raw is None:
            return self.line, self.column
        return raw.line, raw.column

    @property
    def label(self) -> str:
        """Human handle: the policy name, or its ordinal in the document."""
        return self.name or f"policy #{self.index + 1}"

    # Normalized directive views ---------------------------------------
    @property
    def controller(self) -> str:
        return self.field_value("Controller", "id").strip()

    @property
    def trigger(self) -> str:
        return self.field_value("Action", "type").strip().lower()

    @property
    def cache(self) -> str:
        return self.field_value("Cache", "name").strip()

    @property
    def operation(self) -> str:
        return self.field_value("Cache", "operation").strip().lower()

    @property
    def entry(self) -> str:
        entry = self.field_value("Cache", "entry").strip()
        return WILDCARD if entry in ("*,*", "*, *") else entry

    @property
    def destination(self) -> str:
        return self.field_value("Destination", "value").strip().lower()

    @property
    def allow(self) -> bool:
        return self.allow_raw.strip().lower() in ("yes", "true")


class _DocumentBuilder:
    """Expat handlers accumulating clauses and issues."""

    def __init__(self) -> None:
        self.parser = xml.parsers.expat.ParserCreate()
        self.parser.StartElementHandler = self._start
        self.parser.EndElementHandler = self._end
        self.root_tag: Optional[str] = None
        self.clauses: List[PolicyClause] = []
        self.issues: List[ParseIssue] = []
        self._depth = 0
        self._current: Optional[PolicyClause] = None

    # ------------------------------------------------------------------
    def _position(self) -> Tuple[int, int]:
        return (self.parser.CurrentLineNumber,
                self.parser.CurrentColumnNumber + 1)

    def _issue(self, message: str, kind: str = "error",
               position: Optional[Tuple[int, int]] = None) -> None:
        line, column = position or self._position()
        self.issues.append(ParseIssue(message, line, column, kind=kind))

    def _start(self, tag: str, attrs: Dict[str, str]) -> None:
        line, column = self._position()
        if self._depth == 0:
            self.root_tag = tag
            if tag == "Policy":
                self._open_policy(attrs, line, column)
            elif tag != "Policies":
                self._issue(f"unexpected root element <{tag}>")
        elif tag == "Policy":
            if self.root_tag == "Policies" and self._depth == 1:
                self._open_policy(attrs, line, column)
            else:
                self._issue("<Policy> may not nest inside another clause")
        elif self._current is not None:
            if tag in KNOWN_ELEMENTS:
                for attr in attrs:
                    if attr not in KNOWN_ELEMENTS[tag]:
                        self._issue(
                            f"unknown attribute {attr!r} on <{tag}> "
                            f"(expected one of: "
                            f"{', '.join(KNOWN_ELEMENTS[tag])})",
                            kind="schema", position=(line, column))
                self._current.directives.append(
                    RawDirective(tag, dict(attrs), line, column))
            else:
                self._issue(f"unknown policy element <{tag}>",
                            position=(line, column))
        elif self.root_tag == "Policies":
            self._issue(f"unexpected element <{tag}> in a <Policies> list",
                        position=(line, column))
        self._depth += 1

    def _open_policy(self, attrs: Dict[str, str], line: int,
                     column: int) -> None:
        clause = PolicyClause(line=line, column=column,
                              allow_raw=attrs.get("allow", "No"),
                              name=attrs.get("name", ""),
                              index=len(self.clauses))
        for attr in attrs:
            if attr not in POLICY_ATTRS:
                self._issue(f"unknown attribute {attr!r} on <Policy> "
                            f"(expected one of: {', '.join(POLICY_ATTRS)})",
                            kind="schema", position=(line, column))
        self.clauses.append(clause)
        self._current = clause

    def _end(self, tag: str) -> None:
        self._depth -= 1
        if tag == "Policy":
            self._current = None


def parse_policy_document(text: str) -> Tuple[List[PolicyClause],
                                              List[ParseIssue]]:
    """Lenient parse: every clause with positions, plus every issue found.

    Never raises on content problems — malformed XML, unknown elements, and
    unknown attributes all come back as :class:`ParseIssue` records so the
    policy linter can report them as positioned findings. Only the XML
    well-formedness error is terminal (expat cannot continue past it); it
    too is returned as an issue, alongside whatever parsed before it.
    """
    builder = _DocumentBuilder()
    try:
        builder.parser.Parse(text, True)
    except xml.parsers.expat.ExpatError as exc:
        builder.issues.append(ParseIssue(
            f"malformed policy XML: "
            f"{xml.parsers.expat.errors.messages[exc.code]}",
            exc.lineno, exc.offset + 1))
    return builder.clauses, builder.issues


def build_policy(clause: PolicyClause) -> Policy:
    """Strictly validate one clause into a :class:`Policy`.

    Raises :class:`PolicyError` (with ``line``/``column``) on invalid
    values; the resulting policy carries the clause's source position.
    """
    allow_text = clause.allow_raw.strip().lower()
    if allow_text not in ("yes", "no", "true", "false"):
        raise _positioned_error(
            f"invalid allow attribute: {allow_text!r}",
            clause.line, clause.column)
    trigger = clause.trigger
    fields = {
        "allow": allow_text in ("yes", "true"),
        "name": clause.name,
        "controller": clause.controller or WILDCARD,
        "trigger": WILDCARD if trigger == WILDCARD else trigger,
        "cache": clause.cache or WILDCARD,
        "operation": clause.operation or WILDCARD,
        "entry": clause.entry or WILDCARD,
        "destination": clause.destination or WILDCARD,
    }
    try:
        policy = Policy(source_line=clause.line,
                        source_column=clause.column, **fields)
    except PolicyError as exc:
        raise _positioned_error(str(exc), clause.line, clause.column) from exc
    return policy


def parse_policies(text: str) -> List[Policy]:
    """Parse one ``<Policy>`` or a ``<Policies>`` list from XML text.

    Strict: the first problem raises :class:`PolicyError` carrying the
    1-based ``line``/``column`` of the offending construct.
    """
    clauses, issues = parse_policy_document(text)
    for issue in issues:
        # Schema-kind issues (unknown attributes) are lint concerns; the
        # strict parser still fails on structural ones, as it always has.
        if issue.kind == "error":
            raise _positioned_error(issue.message, issue.line, issue.column)
    # An empty <Policies/> list is a valid (if useless) document.
    return [build_policy(clause) for clause in clauses]
