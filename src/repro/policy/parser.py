"""XML policy parser (Fig 3 format).

Example::

    <Policy allow="No">
      <Controller id="*"/>
      <Action type="Internal"/>
      <Cache name="EdgesDB" entry="*,*" operation="*"/>
      <Destination value="*"/>
    </Policy>

Multiple policies wrap in a ``<Policies>`` root. Unknown elements raise
:class:`~repro.errors.PolicyError`; omitted directives default to ``*``.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List

from repro.errors import PolicyError
from repro.policy.language import WILDCARD, Policy


def parse_policies(text: str) -> List[Policy]:
    """Parse one ``<Policy>`` or a ``<Policies>`` list from XML text."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise PolicyError(f"malformed policy XML: {exc}") from exc
    if root.tag == "Policy":
        return [_parse_policy(root)]
    if root.tag == "Policies":
        return [_parse_policy(node) for node in root if node.tag == "Policy"]
    raise PolicyError(f"unexpected root element <{root.tag}>")


def _parse_policy(node: ET.Element) -> Policy:
    allow_text = node.get("allow", "No").strip().lower()
    if allow_text not in ("yes", "no", "true", "false"):
        raise PolicyError(f"invalid allow attribute: {allow_text!r}")
    fields = {
        "allow": allow_text in ("yes", "true"),
        "name": node.get("name", ""),
    }
    for child in node:
        if child.tag == "Controller":
            fields["controller"] = child.get("id", WILDCARD)
        elif child.tag == "Action":
            trigger = child.get("type", WILDCARD).strip().lower()
            fields["trigger"] = WILDCARD if trigger == WILDCARD else trigger
        elif child.tag == "Cache":
            fields["cache"] = child.get("name", WILDCARD)
            fields["entry"] = child.get("entry", WILDCARD)
            operation = child.get("operation", WILDCARD).strip().lower()
            fields["operation"] = operation
        elif child.tag == "Destination":
            value = child.get("value", WILDCARD).strip().lower()
            fields["destination"] = value
        else:
            raise PolicyError(f"unknown policy element <{child.tag}>")
    # Normalize "entry" patterns like "*,*" to a wildcard over the whole key.
    if fields.get("entry") in ("*,*", "*, *"):
        fields["entry"] = WILDCARD
    return Policy(**fields)
