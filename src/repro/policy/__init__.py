"""JURY's policy framework (§V, Table 2).

Administrators centralize fine-grained checks on controller actions in a
constraint language of four directives — Controller, Trigger, Cache, and
Destination. The validator evaluates policies after consensus, against
exactly one (the primary's) matching response per trigger.

Policies follow first-match semantics: the first policy matching a cache
write decides (``allow="Yes"`` whitelists, ``allow="No"`` raises an alarm);
non-matching writes are implicitly allowed.
"""

from repro.policy.builtin import (
    match_hierarchy_policy,
    no_internal_cache_changes,
    stranded_flow_policy,
)
from repro.policy.engine import PolicyEngine
from repro.policy.language import Policy, PolicyViolation, PolicyWrite
from repro.policy.parser import parse_policies

__all__ = [
    "Policy",
    "PolicyEngine",
    "PolicyViolation",
    "PolicyWrite",
    "match_hierarchy_policy",
    "no_internal_cache_changes",
    "parse_policies",
    "stranded_flow_policy",
]
