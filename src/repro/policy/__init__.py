"""JURY's policy framework (§V, Table 2).

Administrators centralize fine-grained checks on controller actions in a
constraint language of four directives — Controller, Trigger, Cache, and
Destination. The validator evaluates policies after consensus, against
exactly one (the primary's) matching response per trigger.

Policies follow first-match semantics: the first policy matching a cache
write decides (``allow="Yes"`` whitelists, ``allow="No"`` raises an alarm);
non-matching writes are implicitly allowed.

Before deployment, verify a policy file statically with
``jury-repro analyze-policy`` (library: :mod:`repro.policy.lint`) — it
catches contradictions, shadowed clauses, schema mismatches, and trigger
kinds no controller app emits, each anchored to the offending XML line.
"""

from repro.policy.builtin import (
    match_hierarchy_policy,
    no_internal_cache_changes,
    stranded_flow_policy,
)
from repro.policy.engine import PolicyEngine
from repro.policy.language import Policy, PolicyViolation, PolicyWrite
from repro.policy.lint import (
    builtin_policy_sets,
    lint_builtin_policies,
    lint_policies,
    lint_policy_file,
    lint_policy_text,
)
from repro.policy.parser import parse_policies, parse_policy_document

__all__ = [
    "Policy",
    "PolicyEngine",
    "PolicyViolation",
    "PolicyWrite",
    "builtin_policy_sets",
    "lint_builtin_policies",
    "lint_policies",
    "lint_policy_file",
    "lint_policy_text",
    "match_hierarchy_policy",
    "no_internal_cache_changes",
    "parse_policies",
    "parse_policy_document",
    "stranded_flow_policy",
]
