"""Policy evaluation engine.

The validator calls :meth:`PolicyEngine.check_decision` with the consensus
outcome for a trigger; the engine parses the primary's cache writes into
:class:`~repro.policy.language.PolicyWrite` records ("exactly one of the
matching responses" is checked per policy, §V) and scans the policy list.
Evaluation is deliberately a linear scan — the paper measures validation
time growing linearly from 200 µs at 100 policies to 1.2 ms at 1K and
11.2 ms at 10K, which is the behaviour the policy benchmark reproduces.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.policy.language import Policy, PolicyViolation, PolicyWrite


class PolicyEngine:
    """An ordered list of policies with first-match semantics."""

    def __init__(self, policies: Iterable[Policy] = ()):
        self.policies: List[Policy] = list(policies)
        self.checks_performed = 0

    def add(self, policy: Policy) -> None:
        """Append a policy (later policies only see writes earlier ones
        didn't match)."""
        self.policies.append(policy)

    def __len__(self) -> int:
        return len(self.policies)

    # ------------------------------------------------------------------
    def check_decision(self, outcome, external: bool,
                       mastership_lookup: Optional[Callable] = None
                       ) -> List[PolicyViolation]:
        """Check the primary's response from a consensus outcome."""
        writes = extract_writes(
            outcome.primary_cache_entry,
            controller=outcome.primary_id or "?",
            external=external,
            mastership_lookup=mastership_lookup)
        return self.check_writes(writes)

    def check_writes(self, writes: Iterable[PolicyWrite]) -> List[PolicyViolation]:
        """First-match evaluation of each write against the policy list."""
        violations: List[PolicyViolation] = []
        for write in writes:
            self.checks_performed += 1
            for policy in self.policies:
                if policy.matches(write):
                    if not policy.allow:
                        violations.append(PolicyViolation(policy, write))
                    break
        return violations


def extract_writes(cache_entry: Tuple, controller: str, external: bool,
                   mastership_lookup: Optional[Callable] = None
                   ) -> List[PolicyWrite]:
    """Parse canonical cache-event tuples into policy-checkable writes."""
    writes: List[PolicyWrite] = []
    for canonical in cache_entry:
        if not canonical or canonical[0] != "cache":
            continue
        _, cache, key, op, value_canonical = canonical
        value = dict(value_canonical) if isinstance(value_canonical, tuple) else {}
        destination = _destination_of(key, value, controller, mastership_lookup)
        writes.append(PolicyWrite(
            cache=cache, key=key, op=op, value=value,
            controller=controller, external=external,
            destination=destination))
    return writes


def _destination_of(key: Any, value: dict, controller: str,
                    mastership_lookup: Optional[Callable]) -> str:
    """LOCAL if the affected switch is mastered by the acting controller."""
    dpid = None
    if isinstance(key, tuple) and len(key) >= 2 and key[0] in ("flow", "switch"):
        dpid = key[1]
    elif isinstance(key, tuple) and key and key[0] == "edge":
        dpid = key[1]
    elif isinstance(value, dict) and "dpid" in value:
        dpid = value["dpid"]
    if dpid is None or mastership_lookup is None:
        return "network"
    master = mastership_lookup(dpid)
    return "local" if master == controller else "remote"
