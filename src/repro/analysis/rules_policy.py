"""P-rules: static verification of policy documents (Table 2 / Fig 3).

A policy file is configuration with first-match semantics: a clause that can
never fire, or that names a cache no datastore exposes, fails silently at
the worst possible time — when an operator believes a constraint is being
enforced. These rules lint parsed policy clauses *before* deployment:

* P601 — a clause is fully subsumed by an earlier clause with the opposite
  ``allow`` decision (a contradiction: the later clause can never apply).
* P602 — a clause is subsumed by an earlier clause with the *same* decision
  (shadowed / redundant; usually a stale leftover).
* P603 — a directive names an unknown cache, enum value, entry field, or
  XML attribute (checked against the datastore registry and the OpenFlow
  match schema).
* P604 — a trigger kind that no controller code in the analyzed project
  ever mints (checked against the :class:`ProjectIndex`).

Rules operate on any clause-like object exposing the
:class:`~repro.policy.parser.PolicyClause` surface (the XML parser's raw
clauses, or the adapter ``policy.lint`` wraps around built-in ``Policy``
objects), grouped into a :class:`PolicyDocument`.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass, field as dc_field
from dataclasses import fields as dataclass_fields
from fnmatch import fnmatch
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.project_index import ProjectIndex
from repro.analysis.registry import ALL_RULES, Rule, register
from repro.datastore.caches import KNOWN_CACHES
from repro.openflow.match import Match
from repro.policy.language import (
    DEST_LOCAL,
    DEST_REMOTE,
    TRIGGER_EXTERNAL,
    TRIGGER_INTERNAL,
    WILDCARD,
)
from repro.policy.parser import ParseIssue

#: Legal enum vocabularies, per the language (§ Table 2).
_TRIGGER_VALUES = (WILDCARD, TRIGGER_INTERNAL, TRIGGER_EXTERNAL)
_DEST_VALUES = (WILDCARD, DEST_LOCAL, DEST_REMOTE)
_OPERATION_VALUES = (WILDCARD, "create", "update", "delete")
_ALLOW_VALUES = ("yes", "no", "true", "false")

#: Entry-pattern field names the schemas understand: OpenFlow match fields
#: plus the topology/cache key vocabulary used by the datastore helpers.
_MATCH_FIELDS = frozenset(f.name for f in dataclass_fields(Match))
_TOPOLOGY_FIELDS = frozenset({"dpid", "priority", "port", "ports", "mac",
                              "ip", "master"})
_ENTRY_FIELDS = _MATCH_FIELDS | _TOPOLOGY_FIELDS

#: ``field=value`` tokens inside an entry pattern.
_ENTRY_FIELD_RE = re.compile(r"\b([A-Za-z_][A-Za-z0-9_]*)\s*=")

#: Directives compared wildcard-or-equal during subsumption.
_SUBSUMPTION_AXES = ("controller", "trigger", "cache", "operation",
                     "destination")


@dataclass
class PolicyDocument:
    """One policy source plus the context the P-rules need.

    ``clauses`` are clause-like objects (see module docstring);
    ``schema_issues`` are the parser's lenient findings about unknown
    attributes; ``suppressions`` maps line numbers to suppressed rule ids
    (scanned from ``jury: ignore`` markers inside XML comments); ``index``
    is the project call-graph, when one was built alongside this lint run.
    """

    path: str
    clauses: Sequence = ()
    schema_issues: Sequence[ParseIssue] = ()
    suppressions: Dict[int, Set[str]] = dc_field(default_factory=dict)
    index: Optional[ProjectIndex] = None

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        return rules is not None and (ALL_RULES in rules or rule_id in rules)


def _has_predicate(clause) -> bool:
    return getattr(clause, "entry_predicate", None) is not None


def _entry_subsumes(broad: str, narrow: str) -> bool:
    """Does entry pattern ``broad`` cover everything ``narrow`` matches?"""
    if broad == WILDCARD or broad == narrow:
        return True
    # A concrete (glob-free) narrow entry is covered iff broad matches it.
    if not any(ch in narrow for ch in "*?["):
        return fnmatch(narrow, broad)
    return False


def subsumes(earlier, later) -> bool:
    """Does ``earlier`` match every write ``later`` matches?

    Conservative: predicates are opaque, so a clause carrying one never
    subsumes (it may decline writes the directives accept), and a clause
    carrying one is never reported as subsumed (the predicate is reason
    enough for it to coexist with a broader clause).
    """
    if _has_predicate(earlier) or _has_predicate(later):
        return False
    for axis in _SUBSUMPTION_AXES:
        broad = getattr(earlier, axis)
        if broad != WILDCARD and broad != getattr(later, axis):
            return False
    return _entry_subsumes(earlier.entry, later.entry)


def _suggest(value: str, vocabulary: Iterable[str]) -> str:
    close = difflib.get_close_matches(value, list(vocabulary), n=1)
    return f" (did you mean {close[0]!r}?)" if close else ""


class PolicyRule(Rule):
    """Base for policy-document rules.

    Subclasses implement :meth:`check_document`, yielding
    ``(line, column, message, symbol)`` tuples; :meth:`run_policy` turns
    them into findings with ordinal attribution and honors suppressions on
    the reported line.
    """

    kind = "policy"

    def check_document(self, doc: PolicyDocument) -> Iterator[
            Tuple[int, int, str, str]]:
        raise NotImplementedError

    def run_policy(self, doc: PolicyDocument) -> Iterable[Finding]:
        ordinals: Dict[Tuple[str, str], int] = {}
        findings: List[Finding] = []
        for line, column, message, symbol in self.check_document(doc):
            if doc.is_suppressed(self.rule_id, line):
                continue
            key = (symbol, message)
            ordinal = ordinals.get(key, 0)
            ordinals[key] = ordinal + 1
            findings.append(Finding(
                rule_id=self.rule_id, severity=self.severity, path=doc.path,
                line=line, column=column, message=message, symbol=symbol,
                ordinal=ordinal))
        return sorted(findings, key=Finding.sort_key)


class _SubsumptionRule(PolicyRule):
    """Shared first-match shadowing scan; subclasses pick the allow parity."""

    #: True → report pairs whose decisions differ (contradiction).
    decisions_differ = True

    def phrase(self, earlier, later) -> str:
        raise NotImplementedError

    def check_document(self, doc: PolicyDocument) -> Iterator[
            Tuple[int, int, str, str]]:
        clauses = list(doc.clauses)
        for j, later in enumerate(clauses):
            for earlier in clauses[:j]:
                if not subsumes(earlier, later):
                    continue
                if (earlier.allow != later.allow) != self.decisions_differ:
                    continue
                yield (later.line, later.column,
                       self.phrase(earlier, later), later.label)
                break  # one report per dead clause is enough


@register
class PolicyContradictionRule(_SubsumptionRule):
    """P601 — clause subsumed by an earlier clause that decides opposite."""

    rule_id = "P601"
    severity = Severity.ERROR
    summary = "contradicted policy clause (unreachable, opposite decision)"
    rationale = ("First-match semantics: a clause whose every match is "
                 "already claimed by an earlier clause with the opposite "
                 "allow decision never fires. The operator wrote a "
                 "constraint the engine will silently never enforce — the "
                 "configuration-level analogue of dead code with inverted "
                 "intent.")
    decisions_differ = True

    def phrase(self, earlier, later) -> str:
        decision = "allow" if earlier.allow else "deny"
        return (f"clause '{later.label}' contradicts earlier clause "
                f"'{earlier.label}' (line {earlier.line}): every write it "
                f"matches is already decided '{decision}' by the earlier "
                f"clause, so this clause can never take effect")


@register
class PolicyShadowedRule(_SubsumptionRule):
    """P602 — clause subsumed by an earlier clause with the same decision."""

    rule_id = "P602"
    severity = Severity.WARNING
    summary = "shadowed policy clause (redundant under first-match)"
    rationale = ("A subsumed clause with the same decision is dead weight: "
                 "usually a stale leftover from a broadened earlier clause. "
                 "Harmless today, but it misleads review and masks the "
                 "contradiction that appears the day either clause's "
                 "decision is edited.")
    decisions_differ = False

    def phrase(self, earlier, later) -> str:
        return (f"clause '{later.label}' is shadowed by earlier clause "
                f"'{earlier.label}' (line {earlier.line}): it matches a "
                f"subset of that clause's writes with the same decision "
                f"and can be removed")


@register
class PolicySchemaRule(PolicyRule):
    """P603 — directive values the schemas don't know."""

    rule_id = "P603"
    severity = Severity.ERROR
    summary = "unknown cache, enum value, entry field, or attribute"
    rationale = ("A policy constraining a cache that no datastore exposes, "
                 "or matching an entry field absent from the OpenFlow "
                 "schema, matches nothing — the constraint silently never "
                 "applies. Caught against the same registries the engine "
                 "itself uses (KNOWN_CACHES, the Match dataclass), so the "
                 "linter cannot drift from the runtime.")

    def check_document(self, doc: PolicyDocument) -> Iterator[
            Tuple[int, int, str, str]]:
        for issue in doc.schema_issues:
            if issue.kind == "schema":
                yield issue.line, issue.column, issue.message, ""
        for clause in doc.clauses:
            yield from self._check_clause(clause)

    def _check_clause(self, clause) -> Iterator[Tuple[int, int, str, str]]:
        label = clause.label
        allow_raw = getattr(clause, "allow_raw", "").strip().lower()
        if allow_raw and allow_raw not in _ALLOW_VALUES:
            yield (clause.line, clause.column,
                   f"clause '{label}': invalid allow value {allow_raw!r} "
                   f"(expected Yes or No)", label)
        trigger = clause.trigger
        if trigger not in _TRIGGER_VALUES:
            line, column = clause.position_of("Action")
            yield (line, column,
                   f"clause '{label}': unknown trigger type {trigger!r}"
                   f"{_suggest(trigger, _TRIGGER_VALUES[1:])}", label)
        cache = clause.cache
        if cache != WILDCARD and cache not in KNOWN_CACHES:
            line, column = clause.position_of("Cache")
            yield (line, column,
                   f"clause '{label}': unknown cache {cache!r}"
                   f"{_suggest(cache, KNOWN_CACHES)}", label)
        operation = clause.operation
        if operation not in _OPERATION_VALUES:
            line, column = clause.position_of("Cache")
            yield (line, column,
                   f"clause '{label}': unknown operation {operation!r}"
                   f"{_suggest(operation, _OPERATION_VALUES[1:])}", label)
        destination = clause.destination
        if destination not in _DEST_VALUES:
            line, column = clause.position_of("Destination")
            yield (line, column,
                   f"clause '{label}': unknown destination {destination!r}"
                   f"{_suggest(destination, _DEST_VALUES[1:])}", label)
        for name in _ENTRY_FIELD_RE.findall(clause.entry):
            if name not in _ENTRY_FIELDS:
                line, column = clause.position_of("Cache")
                yield (line, column,
                       f"clause '{label}': entry pattern references unknown "
                       f"field {name!r}"
                       f"{_suggest(name, sorted(_ENTRY_FIELDS))}", label)


@register
class PolicyTriggerProvenanceRule(PolicyRule):
    """P604 — trigger kinds no analyzed controller code ever mints."""

    rule_id = "P604"
    severity = Severity.ERROR
    summary = "policy constrains a trigger kind no controller app emits"
    rationale = ("A deny policy on external triggers protects nothing if "
                 "the deployed controller apps only ever mint internal "
                 "trigger contexts: the clause is dead configuration. The "
                 "project call graph knows which trigger kinds the code "
                 "actually mints; a clause naming any other kind deserves "
                 "a hard question before deployment.")

    def check_document(self, doc: PolicyDocument) -> Iterator[
            Tuple[int, int, str, str]]:
        if doc.index is None:
            return
        emitted = self.emitted_kinds(doc.index)
        for clause in doc.clauses:
            trigger = clause.trigger
            if trigger == WILDCARD or trigger not in _TRIGGER_VALUES:
                continue  # wildcards always apply; bad enums are P603's
            if trigger in emitted:
                continue
            line, column = clause.position_of("Action")
            known = ", ".join(sorted(emitted)) or "none"
            yield (line, column,
                   f"clause '{clause.label}': no analyzed controller code "
                   f"emits {trigger!r} triggers (emitted kinds: {known}); "
                   f"this clause can never match a live write", clause.label)

    @staticmethod
    def emitted_kinds(index: ProjectIndex) -> Set[str]:
        return index.emitted_trigger_kinds()
