"""Baseline (legacy-finding) files.

A baseline freezes the findings that existed when the gate was introduced so
they warn humans without blocking CI, while *new* findings still fail the
build. The file maps fingerprint -> human-readable context, so reviews of
baseline changes stay meaningful.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Set, Union

#: Default checked-in location, next to pyproject at the repo root.
DEFAULT_BASELINE_PATH = "analysis-baseline.json"

_FORMAT_VERSION = 1


class Baseline:
    """An immutable-ish set of accepted finding fingerprints."""

    def __init__(self, entries: Dict[str, str]):
        self._entries = dict(entries)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(raw, dict) or "fingerprints" not in raw:
            raise ValueError(f"{path}: not a jury-repro baseline file")
        entries = raw["fingerprints"]
        if not isinstance(entries, dict):
            raise ValueError(f"{path}: 'fingerprints' must be an object")
        return cls(entries)

    @classmethod
    def empty(cls) -> "Baseline":
        return cls({})

    @classmethod
    def from_findings(cls, findings: Iterable) -> "Baseline":
        entries = {f.fingerprint(): f"{f.rule_id} {f.anchor} {f.message}"
                   for f in findings}
        return cls(entries)

    # ------------------------------------------------------------------
    def contains(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def fingerprints(self) -> Set[str]:
        return set(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def write(self, path: Union[str, Path]) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "tool": "jury-repro analyze",
            "note": ("Legacy findings accepted when the gate was "
                     "introduced; remove entries as the code is fixed."),
            "fingerprints": dict(sorted(self._entries.items(),
                                        key=lambda kv: kv[1])),
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                              encoding="utf-8")
