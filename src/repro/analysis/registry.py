"""Rule base class, per-module analysis context, and the rule registry.

Rules are small AST visitors registered by module import: each rule module
calls :func:`register` on its rule classes, and :func:`all_rules` imports the
four family modules on first use so the catalog is always complete without a
central hand-maintained list.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

from repro.analysis.findings import Finding, Severity

#: ``# jury: ignore`` or ``# jury: ignore[D101]`` / ``[D101, H403]``.
_SUPPRESS_RE = re.compile(r"#\s*jury:\s*ignore(?:\[([A-Za-z0-9_,\s]+)\])?")

#: Matches every rule on the line (blanket ``# jury: ignore``).
ALL_RULES = "*"


class ModuleContext:
    """One parsed module plus the derived views rules share.

    Parsing, suppression scanning, symbol attribution, and app-code
    detection happen once here instead of once per rule.
    """

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self._suppressions: Optional[Dict[int, set]] = None
        self._symbols: Optional[List[Tuple[ast.AST, str]]] = None
        self._app_functions: Optional[set] = None

    # ------------------------------------------------------------------
    # Suppressions
    # ------------------------------------------------------------------
    def suppressions(self) -> Dict[int, set]:
        """line number -> set of suppressed rule ids (or ``{ALL_RULES}``)."""
        if self._suppressions is None:
            table: Dict[int, set] = {}
            for lineno, line in enumerate(self.lines, start=1):
                match = _SUPPRESS_RE.search(line)
                if not match:
                    continue
                if match.group(1) is None:
                    table[lineno] = {ALL_RULES}
                else:
                    table[lineno] = {r.strip().upper()
                                     for r in match.group(1).split(",")
                                     if r.strip()}
            self._suppressions = table
        return self._suppressions

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rules = self.suppressions().get(line)
        return rules is not None and (ALL_RULES in rules or rule_id in rules)

    # ------------------------------------------------------------------
    # Symbol attribution
    # ------------------------------------------------------------------
    def _symbol_spans(self) -> List[Tuple[ast.AST, str]]:
        if self._symbols is None:
            spans: List[Tuple[ast.AST, str]] = []

            def walk(node: ast.AST, prefix: str) -> None:
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                          ast.ClassDef)):
                        qualified = f"{prefix}.{child.name}" if prefix else child.name
                        spans.append((child, qualified))
                        walk(child, qualified)
                    else:
                        walk(child, prefix)

            walk(self.tree, "")
            self._symbols = spans
        return self._symbols

    def symbol_at(self, line: int) -> str:
        """Innermost enclosing ``Class.method`` name for a source line."""
        best = ""
        best_start = -1
        for node, name in self._symbol_spans():
            end = getattr(node, "end_lineno", node.lineno)
            if node.lineno <= line <= end and node.lineno > best_start:
                best, best_start = name, node.lineno
        return best

    # ------------------------------------------------------------------
    # App-code detection (T/S rule scope)
    # ------------------------------------------------------------------
    @property
    def is_app_module(self) -> bool:
        """True when this module is app (handler) code by path convention."""
        normalized = self.path.replace("\\", "/")
        return "controllers/apps/" in normalized

    def app_functions(self) -> set:
        """FunctionDef nodes subject to the taint/sanity rules.

        Every function in a ``controllers/apps/`` module, plus — anywhere —
        methods of classes deriving from ``ControllerApp``.
        """
        if self._app_functions is None:
            functions: set = set()
            if self.is_app_module:
                for node in ast.walk(self.tree):
                    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        functions.add(node)
            else:
                for node in ast.walk(self.tree):
                    if not isinstance(node, ast.ClassDef):
                        continue
                    if not any(_base_name(b).endswith("ControllerApp")
                               for b in node.bases):
                        continue
                    for child in ast.walk(node):
                        if isinstance(child, (ast.FunctionDef,
                                              ast.AsyncFunctionDef)):
                            functions.add(child)
            self._app_functions = functions
        return self._app_functions


def _base_name(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def dotted_name(node: ast.AST) -> str:
    """Best-effort dotted name of a call target (``a.b.c`` for Name roots).

    Calls on intermediate call results render their root as ``()`` so rules
    can still match trailing attribute chains.
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    elif isinstance(current, ast.Call):
        parts.append("()")
    else:
        parts.append("?")
    return ".".join(reversed(parts))


class Rule:
    """Base class for analysis rules.

    Subclasses set the class attributes and implement :meth:`check`, yielding
    ``(node, message)`` or ``(node, message, severity)`` tuples; the engine
    turns them into :class:`Finding` objects with location, symbol, and
    ordinal attribution.
    """

    rule_id: str = ""
    severity: Severity = Severity.WARNING
    summary: str = ""
    #: Which JURY fault class / mechanism the rule guards (docs + reports).
    rationale: str = ""
    #: Dispatch kind: ``module`` rules run per parsed file, ``project``
    #: rules run once over the whole :class:`ProjectIndex`, ``policy``
    #: rules run over parsed policy documents.
    kind: str = "module"

    def check(self, module: ModuleContext) -> Iterator[tuple]:
        raise NotImplementedError

    def run(self, module: ModuleContext) -> Iterable[Finding]:
        ordinals: Dict[Tuple[str, str], int] = {}
        for item in self.check(module):
            node, message = item[0], item[1]
            severity = item[2] if len(item) > 2 else self.severity
            line = getattr(node, "lineno", 1)
            column = getattr(node, "col_offset", 0) + 1
            if module.is_suppressed(self.rule_id, line):
                continue
            symbol = module.symbol_at(line)
            key = (symbol, message)
            ordinal = ordinals.get(key, 0)
            ordinals[key] = ordinal + 1
            yield Finding(rule_id=self.rule_id, severity=severity,
                          path=module.path, line=line, column=column,
                          message=message, symbol=symbol, ordinal=ordinal)


_REGISTRY: Dict[str, Type[Rule]] = {}
_LOADED = False


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    existing = _REGISTRY.get(rule_cls.rule_id)
    if existing is not None and existing is not rule_cls:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def _load_builtin_rules() -> None:
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    # Importing the family modules populates the registry via @register.
    from repro.analysis import (  # noqa: F401  # jury: ignore[H405]
        rules_determinism,
        rules_hygiene,
        rules_policy,
        rules_sanity,
        rules_taint,
        rules_xmodule,
    )


def all_rules() -> List[Rule]:
    """Instantiate the per-module builtin catalog, sorted by rule id."""
    _load_builtin_rules()
    return [cls() for _, cls in sorted(_REGISTRY.items())
            if cls.kind == "module"]


def project_rules() -> List[Rule]:
    """Instantiate the interprocedural (ProjectIndex-driven) rules."""
    _load_builtin_rules()
    return [cls() for _, cls in sorted(_REGISTRY.items())
            if cls.kind == "project"]


def policy_rules() -> List[Rule]:
    """Instantiate the policy-document (P-family) rules."""
    _load_builtin_rules()
    return [cls() for _, cls in sorted(_REGISTRY.items())
            if cls.kind == "policy"]


def rule_catalog() -> List[Type[Rule]]:
    """The registered rule classes across all kinds (docs, --list-rules)."""
    _load_builtin_rules()
    return [cls for _, cls in sorted(_REGISTRY.items())]
