"""Static determinism & taint-safety analysis for the JURY reproduction.

JURY validates controller actions dynamically by comparing replica
executions; this package is the static complement — an AST-level pass that
catches divergence sources and interception bypasses before they ever reach
the validator. Four paper-grounded rule families:

* **D-rules** — nondeterminism sources (wall clock, global RNG, ``id()``
  keys, unordered set iteration, threads) that would make honest replicas
  disagree (false CONSENSUS_MISMATCH, §IV-C).
* **T-rules** — taint-safety: handler code must externalize only through
  the interception layer so replicated execution stays side-effect-free
  (§IV).
* **S-rules** — static analog of the T2 network/cache sanity check:
  FLOW_MOD emissions and flow-cache writes must pair up per handler.
* **H-rules** — hygiene with validator-path teeth (mutable defaults, bare
  or swallowed excepts, unused imports).

Entry points: :func:`analyze_paths` (library), ``jury-repro analyze`` (CLI).
Suppress a finding inline with ``# jury: ignore[D101]`` (comma-separated
ids, or bare ``# jury: ignore`` for all rules on that line); freeze legacy
findings with a baseline file (``--write-baseline``).
"""

from repro.analysis.baseline import DEFAULT_BASELINE_PATH, Baseline
from repro.analysis.engine import Analyzer, analyze_paths, discover_files
from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.registry import (
    ModuleContext,
    Rule,
    all_rules,
    register,
    rule_catalog,
)
from repro.analysis.reporters import render_human, render_json, render_rule_list

__all__ = [
    "AnalysisReport",
    "Analyzer",
    "Baseline",
    "DEFAULT_BASELINE_PATH",
    "Finding",
    "ModuleContext",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_paths",
    "discover_files",
    "register",
    "render_human",
    "render_json",
    "render_rule_list",
    "rule_catalog",
]
