"""Static determinism & taint-safety analysis for the JURY reproduction.

JURY validates controller actions dynamically by comparing replica
executions; this package is the static complement — an AST-level pass that
catches divergence sources and interception bypasses before they ever reach
the validator. Six paper-grounded rule families:

* **D-rules** — nondeterminism sources (wall clock, global RNG, ``id()``
  keys, unordered set iteration, threads) that would make honest replicas
  disagree (false CONSENSUS_MISMATCH, §IV-C).
* **T-rules** — taint-safety: handler code must externalize only through
  the interception layer so replicated execution stays side-effect-free
  (§IV).
* **S-rules** — static analog of the T2 network/cache sanity check:
  FLOW_MOD emissions and flow-cache writes must pair up per handler.
* **H-rules** — hygiene with validator-path teeth (mutable defaults, bare
  or swallowed excepts, unused imports).
* **X-rules** — interprocedural rules over the project call graph
  (:mod:`~repro.analysis.project_index`): observer purity (X501),
  hot-path simulated-time discipline (X502), and pipeline alarm-stream
  determinism (X503) hold *transitively*, not just per file.
* **P-rules** — static verification of policy documents (Table 2):
  contradictions (P601), shadowed clauses (P602), schema mismatches
  (P603), and trigger kinds no controller code emits (P604).

Entry points: :func:`analyze_paths` (library), ``jury-repro analyze`` and
``jury-repro analyze-policy`` (CLI). Suppress a finding inline with
``# jury: ignore[D101]`` (comma-separated ids, or bare ``# jury: ignore``
for all rules on that line); freeze legacy findings with a baseline file
(``--write-baseline``). Interprocedural findings are anchored at the entry
point that owns the violated contract, so that is where a suppression
belongs. Repeat runs are incremental (content-hash cache,
``.jury-analysis-cache.json``) and the per-file phase parallelizes with
``--jobs``.
"""

from repro.analysis.baseline import DEFAULT_BASELINE_PATH, Baseline
from repro.analysis.cache import DEFAULT_CACHE_PATH, AnalysisCache
from repro.analysis.engine import Analyzer, analyze_paths, discover_files
from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.project_index import (
    ModuleFacts,
    ProjectIndex,
    build_project_index,
    extract_module_facts,
)
from repro.analysis.registry import (
    ModuleContext,
    Rule,
    all_rules,
    policy_rules,
    project_rules,
    register,
    rule_catalog,
)
from repro.analysis.reporters import render_human, render_json, render_rule_list

__all__ = [
    "AnalysisCache",
    "AnalysisReport",
    "Analyzer",
    "Baseline",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_CACHE_PATH",
    "Finding",
    "ModuleContext",
    "ModuleFacts",
    "ProjectIndex",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_paths",
    "build_project_index",
    "discover_files",
    "extract_module_facts",
    "policy_rules",
    "project_rules",
    "register",
    "render_human",
    "render_json",
    "render_rule_list",
    "rule_catalog",
]
