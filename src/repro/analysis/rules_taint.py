"""T-rules: taint-safety of app (handler) code.

JURY replays taint-wrapped triggers through secondary controllers and
promises that "replicated execution has no side effects" — the controller's
interception layer (``cache_write`` / ``cache_delete`` / ``send_flow_mod`` /
``send_packet_out``) captures externalizations of shadow contexts instead of
performing them. Any app-code path that reaches a raw datastore mutation or
a raw channel transmit bypasses that capture: a replayed trigger would then
write shared state or the network *for real*, corrupting every replica the
shadow ran on. These rules statically fence handler code onto the
interception layer.

Scope: every function in a ``controllers/apps/`` module, plus methods of any
``ControllerApp`` subclass elsewhere (see ``ModuleContext.app_functions``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Severity
from repro.analysis.registry import ModuleContext, Rule, dotted_name, register

#: Datastore mutators that bypass shadow capture. Reads (``store.get`` /
#: ``store.entries``) are harmless — shadow executions are *supposed* to
#: read replicated state.
_STORE_MUTATORS = ("put", "delete", "clear", "put_all", "remove")

#: Raw transmit primitives on the controller / channel layer.
_RAW_TRANSMITS = ("_transmit", "_egress_send")


@register
class DirectStoreWriteRule(Rule):
    """T201 — raw datastore mutation from handler code."""

    rule_id = "T201"
    severity = Severity.ERROR
    summary = "datastore write bypasses shadow capture"
    rationale = ("Side-effect-free replication (§IV): shadow contexts only "
                 "suppress writes routed through Controller.cache_write / "
                 "cache_delete; store.put from an app handler would persist "
                 "a replayed trigger's write on every secondary.")

    def check(self, module: ModuleContext) -> Iterator[tuple]:
        for func in module.app_functions():
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                target = node.func
                if not isinstance(target, ast.Attribute):
                    continue
                if target.attr not in _STORE_MUTATORS:
                    continue
                chain = dotted_name(target)
                parts = chain.split(".")
                if "store" in parts[:-1]:
                    yield (node, f"{chain}() mutates the datastore "
                                 "directly; route through "
                                 "Controller.cache_write/cache_delete so "
                                 "shadow execution stays side-effect-free")


@register
class DirectTransmitRule(Rule):
    """T202 — raw network transmit from handler code."""

    rule_id = "T202"
    severity = Severity.ERROR
    summary = "network send bypasses shadow capture"
    rationale = ("Side-effect-free replication (§IV): only send_flow_mod / "
                 "send_packet_out capture-and-suppress under a tainted "
                 "context; a raw channel.send from a handler leaks a "
                 "replayed trigger's message onto the real network.")

    def check(self, module: ModuleContext) -> Iterator[tuple]:
        for func in module.app_functions():
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                target = node.func
                if not isinstance(target, ast.Attribute):
                    continue
                chain = dotted_name(target)
                parts = chain.split(".")
                if target.attr in _RAW_TRANSMITS:
                    yield (node, f"{chain}() transmits below the "
                                 "interception layer; use send_flow_mod / "
                                 "send_packet_out")
                elif target.attr == "send" and (
                        "channel" in parts[:-1]
                        or "channel_for" in parts[:-1]
                        or any(p.endswith("_channel") or p.endswith("channels")
                               for p in parts[:-1])):
                    yield (node, f"{chain}() writes a control channel "
                                 "directly from handler code; use "
                                 "send_flow_mod / send_packet_out so shadow "
                                 "execution is captured")
                elif target.attr == "submit" and "egress" in parts[:-1]:
                    yield (node, f"{chain}() enqueues the egress station "
                                 "directly; use send_flow_mod")
