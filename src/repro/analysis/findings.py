"""Findings and severities for the static-analysis subsystem.

A :class:`Finding` is one rule violation anchored to ``file:line``. Its
*fingerprint* deliberately excludes the line number so that unrelated edits
above a legacy finding do not invalidate the checked-in baseline — the
anchor for baselining is (rule, file, enclosing symbol, message, ordinal).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Tuple


class Severity(enum.IntEnum):
    """Severity ladder; ``--fail-on`` compares against this ordering."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{', '.join(s.name.lower() for s in cls)}") from None


@dataclass(frozen=True)
class Finding:
    """One rule violation at a precise source location."""

    rule_id: str
    severity: Severity
    path: str  #: path as reported (relative to the invocation cwd if possible)
    line: int
    column: int
    message: str
    symbol: str = ""  #: enclosing ``Class.method`` / function, if any
    #: Disambiguates repeated identical findings inside one symbol.
    ordinal: int = 0

    @property
    def family(self) -> str:
        """The rule family letter (D, T, S, H, P)."""
        return self.rule_id[:1]

    @property
    def anchor(self) -> str:
        """The clickable ``file:line`` anchor."""
        return f"{self.path}:{self.line}"

    def fingerprint(self) -> str:
        """Stable identity for baselining (line-shift tolerant)."""
        raw = "\x1f".join((self.rule_id, self.path, self.symbol,
                           self.message, str(self.ordinal)))
        return hashlib.sha1(raw.encode("utf-8")).hexdigest()[:16]

    def sort_key(self) -> Tuple:
        return (self.path, self.line, self.column, self.rule_id)

    def render(self) -> str:
        """One human-readable report line."""
        where = f" [{self.symbol}]" if self.symbol else ""
        return (f"{self.path}:{self.line}:{self.column}: "
                f"{self.severity.name.lower()} {self.rule_id}: "
                f"{self.message}{where}")

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "family": self.family,
            "severity": self.severity.name.lower(),
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "symbol": self.symbol,
            "ordinal": self.ordinal,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Finding":
        """Inverse of :meth:`to_dict` (the result cache round-trips findings)."""
        return cls(rule_id=raw["rule"], severity=Severity.parse(raw["severity"]),
                   path=raw["path"], line=raw["line"], column=raw["column"],
                   symbol=raw.get("symbol", ""), ordinal=raw.get("ordinal", 0),
                   message=raw["message"])


@dataclass
class AnalysisReport:
    """Everything one analyzer run produced."""

    findings: list = field(default_factory=list)
    #: Findings matched (and silenced) by the baseline.
    baselined: list = field(default_factory=list)
    #: Baseline fingerprints that no longer match anything (stale entries).
    stale_baseline: list = field(default_factory=list)
    files_scanned: int = 0
    #: Files served from the incremental result cache (no re-parse).
    cache_hits: int = 0

    def count_at_least(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity >= severity)

    def by_family(self) -> dict:
        counts: dict = {}
        for finding in self.findings:
            counts[finding.family] = counts.get(finding.family, 0) + 1
        return counts
