"""The analysis engine: file discovery, parsing, rule dispatch, baselining.

``analyze_paths`` is the one-call API used by the CLI, the CI gate, and the
self-application test: give it files/directories and (optionally) a baseline,
get back an :class:`AnalysisReport` with per-``file:line`` findings.
"""

from __future__ import annotations

import ast
import os
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.registry import ModuleContext, Rule, all_rules

#: Rule id reserved for files the engine itself cannot analyze.
PARSE_ERROR_RULE = "P001"


def discover_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(p for p in path.rglob("*.py")
                         if "__pycache__" not in p.parts)
        elif path.suffix == ".py" and path.exists():
            files.append(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
    unique = sorted({p.resolve() for p in files})
    return unique


def _display_path(path: Path) -> str:
    """Path relative to the invocation cwd when possible (stable anchors)."""
    try:
        return os.path.relpath(path)
    except ValueError:  # different drive on Windows
        return str(path)


class Analyzer:
    """Runs a rule set over modules and applies baseline/suppressions."""

    def __init__(self, rules: Optional[Iterable[Rule]] = None):
        self.rules: List[Rule] = list(rules) if rules is not None else all_rules()

    # ------------------------------------------------------------------
    def analyze_source(self, source: str, path: str = "<memory>") -> List[Finding]:
        """Analyze one in-memory module (test fixtures, editors)."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [Finding(
                rule_id=PARSE_ERROR_RULE, severity=Severity.ERROR,
                path=path, line=exc.lineno or 1, column=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}")]
        module = ModuleContext(path=path, source=source, tree=tree)
        findings: List[Finding] = []
        for rule in self.rules:
            findings.extend(rule.run(module))
        return sorted(findings, key=Finding.sort_key)

    def analyze_paths(self, paths: Sequence[str],
                      baseline: Optional[Baseline] = None) -> AnalysisReport:
        """Analyze files/directories; baseline-matched findings are split out."""
        report = AnalysisReport()
        all_findings: List[Finding] = []
        for path in discover_files(paths):
            display = _display_path(path)
            try:
                source = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                all_findings.append(Finding(
                    rule_id=PARSE_ERROR_RULE, severity=Severity.ERROR,
                    path=display, line=1, column=1,
                    message=f"file is unreadable: {exc}"))
                continue
            report.files_scanned += 1
            all_findings.extend(self.analyze_source(source, path=display))
        all_findings.sort(key=Finding.sort_key)
        if baseline is None:
            report.findings = all_findings
            return report
        matched_fps = set()
        for finding in all_findings:
            fingerprint = finding.fingerprint()
            if baseline.contains(fingerprint):
                matched_fps.add(fingerprint)
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
        report.stale_baseline = sorted(baseline.fingerprints() - matched_fps)
        return report


def analyze_paths(paths: Sequence[str],
                  baseline: Optional[Baseline] = None,
                  rules: Optional[Iterable[Rule]] = None) -> AnalysisReport:
    """Module-level convenience wrapper around :class:`Analyzer`."""
    return Analyzer(rules=rules).analyze_paths(paths, baseline=baseline)
