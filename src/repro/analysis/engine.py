"""The analysis engine: discovery, rule dispatch, caching, parallelism.

``analyze_paths`` is the one-call API used by the CLI, the CI gate, and the
self-application test: give it files/directories and (optionally) a baseline,
get back an :class:`AnalysisReport` with per-``file:line`` findings.

The run has two phases. The **module phase** parses each file and runs the
per-file rule families (D/T/S/H), simultaneously extracting the
:class:`~repro.analysis.project_index.ModuleFacts` the cross-module rules
need; it is embarrassingly parallel (``jobs``) and memoized per file in the
:class:`~repro.analysis.cache.AnalysisCache` keyed by content hash. The
**project phase** assembles the facts into a
:class:`~repro.analysis.project_index.ProjectIndex` and runs the
interprocedural X-rules over the whole graph — cheap enough that it always
runs fresh, so a warm cache still yields exact results. Policy XML files
passed explicitly are linted with the P-rules against the same index.
"""

from __future__ import annotations

import ast
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.baseline import Baseline
from repro.analysis.cache import AnalysisCache, content_hash
from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.project_index import (
    ModuleFacts,
    build_project_index,
    extract_module_facts,
)
from repro.analysis.registry import ModuleContext, Rule, all_rules, project_rules

#: Rule id reserved for files the engine itself cannot analyze.
PARSE_ERROR_RULE = "P001"


def _walk_py_files(root: Path) -> Iterator[Path]:
    """Yield ``.py`` files under ``root`` in a deterministic order.

    Follows directory symlinks but keeps a realpath trail so a cycle
    (``pkg/loop -> pkg``) terminates instead of recursing forever; files
    reached through several link paths dedupe via ``resolve()`` upstream.
    """
    seen: Set[str] = set()
    for dirpath, dirnames, filenames in os.walk(root, followlinks=True):
        real = os.path.realpath(dirpath)
        if real in seen:
            dirnames[:] = []
            continue
        seen.add(real)
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield Path(dirpath, name)


def discover_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of unique ``.py`` files.

    The result is independent of argument order, directory-entry order, and
    symlink aliasing, so two runs over the same tree see the same files in
    the same sequence — a prerequisite for byte-identical reports.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(p.resolve() for p in _walk_py_files(path))
        elif path.suffix == ".py" and path.exists():
            files.append(path.resolve())
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return sorted(set(files))


def _display_path(path: Path) -> str:
    """Path relative to the invocation cwd when possible (stable anchors)."""
    try:
        return os.path.relpath(path)
    except ValueError:  # different drive on Windows
        return str(path)


def _analyze_module(source: str, display: str,
                    rules: Optional[Sequence[Rule]] = None,
                    ) -> Tuple[List[Finding], Optional[ModuleFacts]]:
    """Module phase for one file: per-file findings + extracted facts."""
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        finding = Finding(
            rule_id=PARSE_ERROR_RULE, severity=Severity.ERROR, path=display,
            line=exc.lineno or 1, column=(exc.offset or 0) + 1,
            message=f"file does not parse: {exc.msg}")
        return [finding], None
    module = ModuleContext(path=display, source=source, tree=tree)
    findings: List[Finding] = []
    for rule in (rules if rules is not None else all_rules()):
        findings.extend(rule.run(module))
    findings.sort(key=Finding.sort_key)
    return findings, extract_module_facts(module)


def _module_worker(item: Tuple[str, str]
                   ) -> Tuple[str, List[Finding], Optional[ModuleFacts]]:
    """Top-level (picklable) worker for the ``--jobs`` process pool."""
    display, source = item
    findings, facts = _analyze_module(source, display)
    return display, findings, facts


class Analyzer:
    """Runs rule sets over modules and applies baseline/suppressions."""

    def __init__(self, rules: Optional[Iterable[Rule]] = None,
                 cross_rules: Optional[Iterable[Rule]] = None):
        #: A custom per-module rule set disables the cache and the process
        #: pool (both assume the builtin catalog) — tests inject tiny rule
        #: sets and must get exactly those rules, nothing memoized.
        self.custom_rules = rules is not None
        self.rules: List[Rule] = (list(rules) if rules is not None
                                  else all_rules())
        if cross_rules is not None:
            self.cross_rules: List[Rule] = list(cross_rules)
        else:
            self.cross_rules = [] if self.custom_rules else project_rules()

    # ------------------------------------------------------------------
    def analyze_source(self, source: str, path: str = "<memory>") -> List[Finding]:
        """Analyze one in-memory module (test fixtures, editors)."""
        findings, _ = _analyze_module(source, path, rules=self.rules)
        return findings

    # ------------------------------------------------------------------
    def analyze_paths(self, paths: Sequence[str],
                      baseline: Optional[Baseline] = None,
                      jobs: int = 1,
                      cache: Optional[AnalysisCache] = None) -> AnalysisReport:
        """Analyze files/directories; baseline-matched findings split out.

        ``jobs`` > 1 fans the module phase out over a process pool;
        ``cache`` serves unchanged files from their content-hash entry.
        Both are exact optimizations: the report is byte-identical across
        cold, warm, serial, and parallel runs.
        """
        if self.custom_rules:
            cache = None
        report = AnalysisReport()
        all_findings: List[Finding] = []
        xml_paths = [raw for raw in paths
                     if str(raw).endswith(".xml") and Path(raw).is_file()]
        py_paths = [raw for raw in paths if raw not in xml_paths]

        pending: List[Tuple[str, str, str]] = []  # display, source, hash
        facts: List[ModuleFacts] = []
        for path in discover_files(py_paths):
            display = _display_path(path)
            try:
                source = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                all_findings.append(Finding(
                    rule_id=PARSE_ERROR_RULE, severity=Severity.ERROR,
                    path=display, line=1, column=1,
                    message=f"file is unreadable: {exc}"))
                continue
            report.files_scanned += 1
            if cache is not None:
                file_hash = content_hash(source)
                hit = cache.get(display, file_hash)
                if hit is not None:
                    cached_findings, cached_facts = hit
                    all_findings.extend(cached_findings)
                    if cached_facts is not None:
                        facts.append(cached_facts)
                    report.cache_hits += 1
                    continue
                pending.append((display, source, file_hash))
            else:
                pending.append((display, source, ""))

        hashes = {display: file_hash for display, _, file_hash in pending}
        for display, found, mod_facts in self._run_module_phase(pending, jobs):
            all_findings.extend(found)
            if mod_facts is not None:
                facts.append(mod_facts)
            if cache is not None:
                cache.put(display, hashes[display], found, mod_facts)

        index = None
        if self.cross_rules or xml_paths:
            index = build_project_index(facts)
        for rule in self.cross_rules:
            all_findings.extend(rule.run_project(index))
        if xml_paths:
            from repro.policy.lint import lint_policy_file
            for raw in sorted(xml_paths):
                report.files_scanned += 1
                all_findings.extend(lint_policy_file(str(raw), index=index))
        if cache is not None:
            cache.write()

        all_findings.sort(key=Finding.sort_key)
        if baseline is None:
            report.findings = all_findings
            return report
        matched_fps = set()
        for finding in all_findings:
            fingerprint = finding.fingerprint()
            if baseline.contains(fingerprint):
                matched_fps.add(fingerprint)
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
        report.stale_baseline = sorted(baseline.fingerprints() - matched_fps)
        return report

    # ------------------------------------------------------------------
    def _run_module_phase(self, pending: Sequence[Tuple[str, str, str]],
                          jobs: int) -> Iterator[
                              Tuple[str, List[Finding],
                                    Optional[ModuleFacts]]]:
        items = [(display, source) for display, source, _ in pending]
        if jobs <= 1 or len(items) < 2 or self.custom_rules:
            for display, source in items:
                findings, facts = _analyze_module(source, display,
                                                  rules=self.rules)
                yield display, findings, facts
            return
        chunk = max(1, len(items) // (jobs * 4))
        # Dev-tool parallelism, not simulation code: per-file analysis is
        # pure and pool.map preserves input order, so results stay
        # deterministic.
        with ProcessPoolExecutor(max_workers=jobs) as pool:  # jury: ignore[D105]
            yield from pool.map(_module_worker, items, chunksize=chunk)


def analyze_paths(paths: Sequence[str],
                  baseline: Optional[Baseline] = None,
                  rules: Optional[Iterable[Rule]] = None,
                  jobs: int = 1,
                  cache: Optional[AnalysisCache] = None) -> AnalysisReport:
    """Module-level convenience wrapper around :class:`Analyzer`."""
    return Analyzer(rules=rules).analyze_paths(paths, baseline=baseline,
                                               jobs=jobs, cache=cache)
