"""S-rules: static analog of JURY's network/cache sanity check (T2).

At runtime the validator's SANITY_CHECK asserts that every FLOW_MOD the
primary emitted is justified by a flow-cache write and vice versa
(``repro.core.consensus.sanity_check``). A handler that structurally cannot
satisfy that pairing — it emits FLOW_MODs but never touches the cache, or
installs flow-cache state on the packet-in path without ever emitting — will
trip SANITY_MISMATCH on its very first trigger. Catching the shape
statically turns a runtime alarm storm into a review comment.

``on_cache_event`` handlers are exempt from S301 by design: the remote-master
pattern (§II-A1) emits the FLOW_MOD for a *peer's* cache write, which is the
pairing the validator sees cluster-wide.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.findings import Severity
from repro.analysis.registry import ModuleContext, Rule, register

_CACHE_MUTATORS = {"cache_write", "cache_delete"}
_NETWORK_EMITTERS = {"send_flow_mod", "send_packet_out"}

#: Handler entry points dispatched by the controller pipeline.
_HANDLER_ENTRY_POINTS = {"handle_packet_in", "handle_rest"}


def _called_attrs(func: ast.AST) -> Set[str]:
    """Attribute names invoked anywhere inside ``func`` (incl. lambdas)."""
    attrs: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attrs.add(node.func.attr)
    return attrs


def _first_call(func: ast.AST, attr: str) -> ast.AST:
    for node in ast.walk(func):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == attr):
            return node
    return func


@register
class UnjustifiedFlowModRule(Rule):
    """S301 — FLOW_MOD emission with no paired cache mutation."""

    rule_id = "S301"
    severity = Severity.WARNING
    summary = "send_flow_mod without a cache write in the same handler"
    rationale = ("T2 sanity: a FLOW_MOD with no matching flow-cache update "
                 "is exactly what sanity_check alarms on "
                 "(SANITY_MISMATCH, 'no matching cache update').")

    def check(self, module: ModuleContext) -> Iterator[tuple]:
        for func in module.app_functions():
            if func.name == "on_cache_event":
                continue  # remote-master emission for a peer's cache write
            attrs = _called_attrs(func)
            if "send_flow_mod" in attrs and not (attrs & _CACHE_MUTATORS):
                yield (_first_call(func, "send_flow_mod"),
                       f"{func.name}() emits a FLOW_MOD but performs no "
                       "cache_write/cache_delete; the runtime sanity check "
                       "(T2) will flag the emission as unjustified")


@register
class UnpromisedFlowCacheWriteRule(Rule):
    """S302 — handler installs flow-cache state but never emits."""

    rule_id = "S302"
    severity = Severity.WARNING
    summary = "FlowsDB write in a handler that never emits to the network"
    rationale = ("T2 sanity: a PENDING_ADD flow-cache write promises a "
                 "FLOW_MOD; a handler that writes FlowsDB and emits nothing "
                 "strands the rule and alarms as a missing network write.")

    def check(self, module: ModuleContext) -> Iterator[tuple]:
        for func in module.app_functions():
            if func.name not in _HANDLER_ENTRY_POINTS:
                continue
            attrs = _called_attrs(func)
            writes_flowsdb = any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "cache_write"
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == "FLOWSDB"
                for node in ast.walk(func))
            if writes_flowsdb and not (attrs & _NETWORK_EMITTERS):
                yield (_first_call(func, "cache_write"),
                       f"{func.name}() writes FlowsDB but emits no network "
                       "message on any path; the promised FLOW_MOD will be "
                       "reported missing by the sanity check")
