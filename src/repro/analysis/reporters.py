"""Human and JSON reporters for analysis runs.

The human format leads with per-family counts — D (determinism), T
(taint-safety), S (sanity pairing), H (hygiene), X (cross-module), P
(policy/parse) — so a clean run still shows which invariants were checked;
JSON carries the full rule catalog alongside the findings for machine
consumers (CI annotations, dashboards).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.findings import AnalysisReport, Severity
from repro.analysis.registry import rule_catalog

_FAMILY_TITLES = {
    "D": "determinism",
    "T": "taint-safety",
    "S": "sanity pairing",
    "H": "hygiene",
    "X": "cross-module",
    "P": "policy/parse",
}


def _families_in_catalog() -> List[str]:
    seen: Dict[str, None] = {}
    for rule in rule_catalog():
        seen.setdefault(rule.rule_id[:1], None)
    return list(seen)


def render_human(report: AnalysisReport, fail_on: Severity) -> str:
    """Multi-line human-readable report."""
    lines: List[str] = []
    counts = report.by_family()
    summary = "  ".join(
        f"{family}/{_FAMILY_TITLES.get(family, '?')}: "
        f"{counts.get(family, 0)}"
        for family in sorted(set(_families_in_catalog()) | set(counts)))
    cached = (f" ({report.cache_hits} cached)"
              if report.cache_hits else "")
    lines.append(f"jury-repro analyze — {report.files_scanned} file(s) "
                 f"scanned{cached}, {len(report.findings)} finding(s)")
    lines.append(f"  {summary}")
    for finding in report.findings:
        lines.append(finding.render())
    if report.baselined:
        lines.append(f"  {len(report.baselined)} legacy finding(s) "
                     "suppressed by the baseline")
    if report.stale_baseline:
        lines.append(f"  {len(report.stale_baseline)} stale baseline "
                     "entr(ies) no longer match; re-run with "
                     "--write-baseline to prune")
    failing = report.count_at_least(fail_on)
    if failing:
        lines.append(f"FAILED: {failing} finding(s) at or above "
                     f"{fail_on.name.lower()}")
    else:
        lines.append("OK")
    return "\n".join(lines)


def render_json(report: AnalysisReport, fail_on: Severity) -> str:
    """Machine-readable report, one JSON document."""
    payload = {
        "tool": "jury-repro analyze",
        "files_scanned": report.files_scanned,
        "fail_on": fail_on.name.lower(),
        "failed": report.count_at_least(fail_on) > 0,
        "counts_by_family": report.by_family(),
        "rules": [
            {
                "id": rule.rule_id,
                "family": rule.rule_id[:1],
                "severity": rule.severity.name.lower(),
                "summary": rule.summary,
                "rationale": rule.rationale,
            }
            for rule in rule_catalog()
        ],
        "findings": [f.to_dict() for f in report.findings],
        "baselined": [f.to_dict() for f in report.baselined],
        "stale_baseline": list(report.stale_baseline),
    }
    return json.dumps(payload, indent=2)


def render_rule_list() -> str:
    """The catalog, one rule per line (``--list-rules``)."""
    lines = []
    for rule in rule_catalog():
        lines.append(f"{rule.rule_id}  {rule.severity.name.lower():8s} "
                     f"{rule.summary}")
    return "\n".join(lines)
