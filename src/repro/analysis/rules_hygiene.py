"""H-rules: repo hygiene with validator-path teeth.

These are the classic Python footguns, kept because each has bitten (or
would bite) the validator/consensus hot path specifically: a mutable default
shared across Controller instances is cross-replica state leakage; a bare or
swallowed except in the validator turns a real alarm into silence — the
exact failure mode JURY exists to surface.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.findings import Severity
from repro.analysis.registry import ModuleContext, Rule, register

_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "deque", "Counter",
                  "OrderedDict"}


@register
class MutableDefaultRule(Rule):
    """H401 — mutable default argument."""

    rule_id = "H401"
    severity = Severity.ERROR
    summary = "mutable default argument"
    rationale = ("A default list/dict/set is created once and shared by "
                 "every call — and therefore by every controller replica "
                 "constructed with it, silently coupling their state.")

    def check(self, module: ModuleContext) -> Iterator[tuple]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(func.args.defaults) + [
                d for d in func.args.kw_defaults if d is not None]
            for default in defaults:
                if isinstance(default, (ast.List, ast.Dict, ast.Set,
                                        ast.ListComp, ast.DictComp,
                                        ast.SetComp)):
                    yield (default, f"{func.name}() has a mutable default "
                                    "argument; default to None and allocate "
                                    "inside the body")
                elif (isinstance(default, ast.Call)
                      and isinstance(default.func, ast.Name)
                      and default.func.id in _MUTABLE_CALLS):
                    yield (default, f"{func.name}() calls "
                                    f"{default.func.id}() as a default "
                                    "argument; it is evaluated once and "
                                    "shared across calls")


@register
class BareExceptRule(Rule):
    """H402 — bare ``except:``."""

    rule_id = "H402"
    severity = Severity.ERROR
    summary = "bare except"
    rationale = ("Catches SystemExit/KeyboardInterrupt and every coding "
                 "error; in the validation path this converts a crash that "
                 "deserves an alarm into silent mis-validation.")

    def check(self, module: ModuleContext) -> Iterator[tuple]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield (node, "bare 'except:' catches everything including "
                             "KeyboardInterrupt; name the exception type")


@register
class SwallowedExceptionRule(Rule):
    """H403 — exception handler that silently discards the error."""

    rule_id = "H403"
    severity = Severity.WARNING
    summary = "swallowed exception"
    rationale = ("A pass-only handler hides the fault class the paper's T3 "
                 "category exists to detect (omitted responses); "
                 "intentional drops must say why via a suppression "
                 "comment.")

    def check(self, module: ModuleContext) -> Iterator[tuple]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if len(node.body) == 1 and isinstance(node.body[0], ast.Pass):
                label = _handler_label(node)
                yield (node, f"except {label} swallows the exception "
                             "(pass-only body); log, re-raise, or suppress "
                             "explicitly with '# jury: ignore[H403]' and a "
                             "reason")


@register
class BroadExceptRule(Rule):
    """H404 — ``except Exception`` that never re-raises."""

    rule_id = "H404"
    severity = Severity.WARNING
    summary = "broad except without re-raise"
    rationale = ("Catching Exception wholesale in the consensus/validator "
                 "hot path masks programming errors as benign triggers; "
                 "narrow the type or re-raise after logging.")

    def check(self, module: ModuleContext) -> Iterator[tuple]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not (isinstance(node.type, ast.Name)
                    and node.type.id in ("Exception", "BaseException")):
                continue
            has_raise = any(isinstance(n, ast.Raise)
                            for n in ast.walk(node))
            if not has_raise:
                yield (node, f"except {node.type.id} without re-raise masks "
                             "unexpected errors; narrow the exception type "
                             "or re-raise")


@register
class UnusedImportRule(Rule):
    """H405 — unused import (``__init__.py`` re-export files exempt)."""

    rule_id = "H405"
    severity = Severity.WARNING
    summary = "unused import"
    rationale = ("Dead imports hide real dependencies and slow cold start; "
                 "the analyzer's own self-application keeps the tree "
                 "clean.")

    def check(self, module: ModuleContext) -> Iterator[tuple]:
        if module.path.replace("\\", "/").endswith("__init__.py"):
            return  # re-export surface; unused-looking imports are the API
        imported = []  # (binding name, node, display name)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    binding = (alias.asname or alias.name).split(".")[0]
                    imported.append((binding, node, alias.name))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    binding = alias.asname or alias.name
                    imported.append((binding, node, alias.name))
        if not imported:
            return
        used = self._used_names(module)
        for binding, node, display in imported:
            if binding not in used:
                yield (node, f"'{display}' is imported but unused")

    @staticmethod
    def _used_names(module: ModuleContext) -> Set[str]:
        used: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                # String annotations / __all__ entries / doctest references.
                for token in node.value.replace(".", " ").replace("[", " ") \
                        .replace("]", " ").replace(",", " ").split():
                    used.add(token)
        return used


#: Observer attribute names wired through the decision path. Binding one
#: (``self.tracer = ...``) and calling its hook API (``tracer.emit(...)``)
#: are the contract; reaching *into* one is not.
_OBSERVER_NAMES = {"tracer", "metrics", "forensics", "health",
                   "snapshot_sink", "recorder", "sampler"}

#: Method names that mutate built-in containers (and the observers built
#: from them).
_MUTATOR_METHODS = {"append", "extend", "insert", "add", "update", "clear",
                    "pop", "popitem", "remove", "discard", "setdefault",
                    "sort"}


def _attr_chain(node: ast.AST):
    """``a.b[k].c`` → ``["a", "b", "c"]``; None when the root is no Name.

    Subscripts are transparent (indexing into an observer's table is still
    reaching into the observer); chains rooted in call results are skipped —
    the object's provenance is unknowable statically.
    """
    parts = []
    current = node
    while True:
        if isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Name):
            parts.append(current.id)
            return list(reversed(parts))
        else:
            return None


def _observer_index(chain):
    """Index of the observer name in the chain, if it is the root object.

    Only ``tracer...`` (index 0) and ``self.tracer...`` / ``pipeline.
    tracer...`` (index 1) count: deeper occurrences are somebody else's
    attribute that merely shares the name.
    """
    for index in (0, 1):
        if index < len(chain) and chain[index] in _OBSERVER_NAMES:
            return index
    return None


@register
class ObserverMutationRule(Rule):
    """H406 — decision-path code mutating an observer's internals."""

    rule_id = "H406"
    severity = Severity.WARNING
    summary = "observer mutated from decision path"
    rationale = ("Tracer/metrics/forensics/health objects are read-only "
                 "observers of the validation path: the determinism "
                 "contract (byte-identical alarm streams with observability "
                 "on or off) only holds if decision code never writes into "
                 "them except through their append-only hook API. Reaching "
                 "into an observer's state from outside repro.obs couples "
                 "decisions to observer wiring.")

    def check(self, module: ModuleContext) -> Iterator[tuple]:
        normalized = module.path.replace("\\", "/")
        if "/obs/" in normalized or normalized.startswith("obs/"):
            return  # observer internals legitimately mutate themselves
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if not isinstance(target, (ast.Attribute, ast.Subscript)):
                        continue
                    chain = _attr_chain(target)
                    if chain is None:
                        continue
                    index = _observer_index(chain)
                    if index is None:
                        continue
                    # Binding the observer slot itself (self.tracer = x)
                    # is wiring, not mutation; writing past it is.
                    past_observer = (len(chain) - 1 > index
                                     or isinstance(target, ast.Subscript)
                                     and chain[-1] == chain[index])
                    if past_observer:
                        yield (node,
                               f"assignment into "
                               f"'{'.'.join(chain)}' mutates observer "
                               f"state from the decision path; observers "
                               f"must only be written through their own "
                               f"hook methods")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    chain = _attr_chain(target)
                    if chain is None:
                        continue
                    index = _observer_index(chain)
                    if index is not None and len(chain) - 1 > index:
                        yield (node,
                               f"del on '{'.'.join(chain)}' mutates "
                               f"observer state from the decision path")
            elif isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if chain is None or chain[-1] not in _MUTATOR_METHODS:
                    continue
                index = _observer_index(chain)
                # tracer.emit(...) (depth 1) is the hook API; a mutator
                # two or more levels down (tracer.spans.append) reaches
                # into the observer's containers.
                if index is not None and len(chain) - index >= 3:
                    yield (node,
                           f"'{'.'.join(chain)}(...)' mutates observer "
                           f"internals from the decision path; route "
                           f"writes through the observer's hook API")


def _handler_label(node: ast.ExceptHandler) -> str:
    if node.type is None:
        return "(bare)"
    if isinstance(node.type, ast.Name):
        return node.type.id
    if isinstance(node.type, ast.Tuple):
        names = [e.id for e in node.type.elts if isinstance(e, ast.Name)]
        return "(" + ", ".join(names) + ")"
    return "<expr>"
