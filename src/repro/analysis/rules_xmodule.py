"""X-rules: interprocedural rules over the ProjectIndex call graph.

The per-file D/T/S/H families see one module at a time, so an observer that
mutates validator state *two calls deep* — or a validator hot path that
reaches a wall-clock read through a helper in another file — is invisible
to them. Each X-rule picks a set of *entry points* (functions with a
contractual obligation: observer purity, hot-path time discipline,
pipeline-output determinism), walks the resolved call graph from each
entry, and reports the entry whose reachable closure violates the
obligation.

Findings are anchored at the **entry point** (the caller that owns the
contract), with the offending call path and site in the message. A
``# jury: ignore[X50x]`` suppression therefore belongs on the entry
function's ``def`` line; suppressing the callee's line silences only the
per-file rule that fires there (D101/D102/...), never the interprocedural
finding — the contract is the caller's, and the callee may be shared by
entry points with different obligations.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.project_index import (
    GLOBAL_RNG,
    SET_ITERATION,
    STATE_MUTATION,
    WALL_CLOCK,
    Effect,
    FunctionFacts,
    ModuleFacts,
    ProjectIndex,
)
from repro.analysis.registry import Rule, register

#: Path fragments selecting observer modules (entry scope of X501).
_OBSERVER_PATH_FRAGMENTS = ("obs/",)

#: Path fragments selecting validator hot-path modules (X502 entry scope).
_HOT_PATH_FRAGMENTS = ("core/validator.py", "core/pipeline.py",
                       "core/consensus.py")

#: Path fragments selecting pipeline modules (X503 entry scope).
_PIPELINE_FRAGMENTS = ("core/pipeline.py",)


def _path_matches(path: str, fragments: Tuple[str, ...]) -> bool:
    normalized = path.replace("\\", "/")
    return any(fragment in normalized or normalized.startswith(fragment)
               for fragment in fragments)


class ProjectRule(Rule):
    """Base for reachability rules: entry scope + effect kind + message.

    Subclasses set ``entry_fragments`` (module paths whose public functions
    carry the contract) and ``effect_kinds`` (the violating behaviours),
    and phrase the violation via :meth:`describe`.
    """

    kind = "project"
    entry_fragments: Tuple[str, ...] = ()
    effect_kinds: Tuple[str, ...] = ()

    def describe(self, effect: Effect) -> str:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def entry_points(self, index: ProjectIndex) -> Iterator[
            Tuple[str, ModuleFacts, FunctionFacts]]:
        for mod in index.modules:
            if not _path_matches(mod.path, self.entry_fragments):
                continue
            for fn in mod.functions:
                if fn.is_public:
                    yield f"{mod.module_name}.{fn.qualname}", mod, fn

    def run_project(self, index: ProjectIndex) -> Iterable[Finding]:
        findings: List[Finding] = []
        for entry_name, mod, fn in self.entry_points(index):
            if index.is_suppressed(mod, self.rule_id, fn.lineno):
                continue
            findings.extend(self._check_entry(index, entry_name, mod, fn))
        return sorted(findings, key=Finding.sort_key)

    def _check_entry(self, index: ProjectIndex, entry_name: str,
                     mod: ModuleFacts, fn: FunctionFacts) -> Iterator[Finding]:
        paths = index.reachable_from(entry_name)
        reported: Dict[str, int] = {}
        for reached_name in sorted(paths):
            reached = index.function(reached_name)
            if reached is None:
                continue
            offending = [e for e in reached.effects
                         if e.kind in self.effect_kinds]
            if not offending:
                continue
            # One finding per (entry, reached function): the first offending
            # site plus a count keeps reports readable and fingerprints
            # stable under within-function edits.
            effect = min(offending, key=lambda e: (e.line, e.column))
            extra = (f" (+{len(offending) - 1} more site(s))"
                     if len(offending) > 1 else "")
            reached_mod = index.module_of(reached_name)
            site = (f"{reached_mod.path}:{effect.line}"
                    if reached_mod else f"line {effect.line}")
            if reached_name == entry_name:
                via = "directly"
            else:
                hops = [index.function(p).qualname if index.function(p)
                        else p for p in paths[reached_name]]
                via = "via " + " -> ".join(hops)
            ordinal = reported.get(reached.qualname, 0)
            reported[reached.qualname] = ordinal + 1
            yield Finding(
                rule_id=self.rule_id, severity=self.severity,
                path=mod.path, line=fn.lineno, column=fn.column,
                symbol=fn.qualname, ordinal=ordinal,
                message=self.describe(effect).format(
                    entry=fn.qualname, reached=reached.qualname,
                    via=via, detail=effect.detail, site=site) + extra)


@register
class ObserverPurityRule(ProjectRule):
    """X501 — observer entry points must not (transitively) mutate state."""

    rule_id = "X501"
    severity = Severity.ERROR
    summary = "observer reaches a validator/datastore mutation"
    rationale = ("The byte-identical-alarm-stream contract rests on "
                 "observers (obs/) being pure: an observer that mutates "
                 "validator or datastore state — even through a helper two "
                 "calls deep — couples decisions to whether observability "
                 "is enabled, the exact divergence class H406 fences from "
                 "the engine side.")
    entry_fragments = _OBSERVER_PATH_FRAGMENTS
    effect_kinds = (STATE_MUTATION,)

    def describe(self, effect: Effect) -> str:
        return ("observer entry '{entry}' reaches '{reached}' ({via}), "
                "which mutates engine state: {detail} at {site}; observers "
                "must stay pure — return or store the derived value on the "
                "observer itself")


@register
class SimulatedTimeDisciplineRule(ProjectRule):
    """X502 — validator hot path must not reach wall clock / global RNG."""

    rule_id = "X502"
    severity = Severity.ERROR
    summary = "validator hot path reaches wall clock or global RNG"
    rationale = ("T1/T3 accuracy: replicas and re-executions share only "
                 "simulated time and seeded RNGs; a hot-path call chain "
                 "that ends in time.time()/random.random() — even in "
                 "another module — makes honest replicas diverge "
                 "(false CONSENSUS_MISMATCH) exactly like a direct D101/"
                 "D102 hit would.")
    entry_fragments = _HOT_PATH_FRAGMENTS
    effect_kinds = (WALL_CLOCK, GLOBAL_RNG)

    def describe(self, effect: Effect) -> str:
        what = ("reads the wall clock" if effect.kind == WALL_CLOCK
                else "draws from the process-global RNG")
        return ("hot-path entry '{entry}' reaches '{reached}' ({via}), "
                f"which {what}: " + "{detail} at {site}; use sim.now / a "
                "seeded random.Random parameter")


@register
class AlarmStreamDeterminismRule(ProjectRule):
    """X503 — pipeline-reachable code must not order output by set walks."""

    rule_id = "X503"
    severity = Severity.WARNING
    summary = "pipeline-reachable unordered set iteration"
    rationale = ("The pipeline's merged alarm stream is byte-compared "
                 "against the sequential validator; any set iteration "
                 "reachable from the pipeline can leak insertion/hash "
                 "order into that stream. Wrap the iteration in sorted() "
                 "or key it deterministically.")
    entry_fragments = _PIPELINE_FRAGMENTS
    effect_kinds = (SET_ITERATION,)

    def describe(self, effect: Effect) -> str:
        return ("pipeline entry '{entry}' reaches '{reached}' ({via}), "
                "which iterates an unordered set at {site}; wrap in "
                "sorted() so alarm-stream order is replica-independent")
