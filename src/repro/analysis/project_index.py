"""ProjectIndex: a module-level symbol table and call graph over the tree.

Per-file AST rules see one module at a time; the interprocedural X-rule
family needs to know *who calls whom across modules* — an observer entry
point in ``obs/`` may only mutate validator state two calls deep, through a
helper defined in another file. This module extracts, per analyzed module,
a serializable :class:`ModuleFacts` record (functions, raw call sites,
imports, class bases, effect sites, suppressions) and assembles the records
into a :class:`ProjectIndex` that resolves calls into a qualified-name call
graph and answers reachability queries.

Facts deliberately contain no AST nodes: they are plain dataclasses, safe
to pickle across ``--jobs`` worker processes and to round-trip through the
content-hash result cache, so a warm incremental run can rebuild the whole
index without re-parsing a single unchanged file.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.registry import ModuleContext, dotted_name
from repro.analysis.rules_determinism import (
    _GLOBAL_RNG_CALLS,
    _WALL_CLOCK_CALLS,
    _is_set_expr,
    _set_bound_names,
)

#: Effect kinds recorded on functions (consumed by the X-rules).
WALL_CLOCK = "wall_clock"
GLOBAL_RNG = "global_rng"
SET_ITERATION = "set_iteration"
STATE_MUTATION = "state_mutation"

#: Local names that, used as the root of a mutated attribute chain inside
#: observer code, denote engine-owned objects (validator evidence, alarms,
#: datastore handles) rather than the observer's own state. Heuristic by
#: construction — the convention throughout ``repro`` is that these names
#: are only ever bound to the corresponding engine objects.
ENGINE_OBJECT_NAMES = frozenset({
    "alarm", "alarms", "validator", "store", "datastore", "outcome",
    "outcomes", "response", "responses", "decision", "core", "pipeline",
    "engine", "shard", "shards", "replicator",
})

#: Container-mutator method names (mirrors the H406 set).
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "clear", "pop",
    "popitem", "remove", "discard", "setdefault", "sort", "put", "delete",
    "put_all",
})

#: Call chains that mint trigger contexts; the suffix identifies the kind.
_TRIGGER_MINTERS = {
    "internal_trigger": "internal",
    "external_trigger": "external",
    "new_external_trigger_id": "external",
}


@dataclass
class CallSite:
    """One call expression as written: dotted chain + position."""

    chain: str
    line: int
    column: int = 0


@dataclass
class Effect:
    """One interprocedurally-interesting behaviour of a function."""

    kind: str
    detail: str
    line: int
    column: int = 0


@dataclass
class FunctionFacts:
    """Everything the index keeps about one function/method."""

    qualname: str  #: ``Class.method`` / ``func`` / ``outer.inner``
    name: str
    lineno: int
    column: int
    class_name: str = ""  #: enclosing class, when a method
    calls: List[CallSite] = field(default_factory=list)
    effects: List[Effect] = field(default_factory=list)

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")


@dataclass
class ModuleFacts:
    """Serializable per-module extract feeding the ProjectIndex."""

    path: str  #: display path, as findings report it
    module_name: str  #: best-effort dotted name (``repro.obs.diagnose``)
    functions: List[FunctionFacts] = field(default_factory=list)
    imports: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, List[str]] = field(default_factory=dict)
    suppressions: Dict[int, List[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, raw: dict) -> "ModuleFacts":
        facts = cls(path=raw["path"], module_name=raw["module_name"],
                    imports=dict(raw.get("imports", {})),
                    classes={k: list(v)
                             for k, v in raw.get("classes", {}).items()},
                    suppressions={int(k): list(v)
                                  for k, v in raw.get("suppressions",
                                                      {}).items()})
        for fn in raw.get("functions", []):
            facts.functions.append(FunctionFacts(
                qualname=fn["qualname"], name=fn["name"],
                lineno=fn["lineno"], column=fn["column"],
                class_name=fn.get("class_name", ""),
                calls=[CallSite(**c) for c in fn.get("calls", [])],
                effects=[Effect(**e) for e in fn.get("effects", [])]))
        return facts


def module_name_for(path: str) -> str:
    """Best-effort dotted module name for a file path.

    ``src/repro/obs/diagnose.py`` → ``repro.obs.diagnose``; outside an
    ``src`` layout the full path (sans suffix) is dotted, which keeps names
    unique and lets import targets resolve by suffix match.
    """
    normalized = path.replace("\\", "/").strip("/")
    parts = [p for p in normalized.split("/") if p not in (".", "..", "")]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


# ----------------------------------------------------------------------
# Fact extraction (runs next to the per-module rules; AST in, facts out)
# ----------------------------------------------------------------------

def extract_module_facts(module: ModuleContext) -> ModuleFacts:
    """Extract the interprocedural facts for one parsed module."""
    facts = ModuleFacts(path=module.path,
                        module_name=module_name_for(module.path),
                        suppressions={line: sorted(rules) for line, rules
                                      in module.suppressions().items()})
    _collect_imports(module.tree, facts)
    _collect_functions(module.tree, facts, prefix="", class_name="")
    return facts


def _collect_imports(tree: ast.Module, facts: ModuleFacts) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                binding = (alias.asname or alias.name).split(".")[0]
                facts.imports[binding] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            base = _resolve_relative(facts.module_name, node.module,
                                     node.level)
            for alias in node.names:
                if alias.name == "*":
                    continue
                binding = alias.asname or alias.name
                facts.imports[binding] = (f"{base}.{alias.name}"
                                          if base else alias.name)


def _resolve_relative(module_name: str, target: Optional[str],
                      level: int) -> str:
    """``from ..x import y`` inside ``a.b.c`` → base ``a.x``."""
    if level == 0:
        return target or ""
    parts = module_name.split(".") if module_name else []
    parts = parts[:len(parts) - level] if level <= len(parts) else []
    if target:
        parts.append(target)
    return ".".join(parts)


def _collect_functions(node: ast.AST, facts: ModuleFacts, prefix: str,
                       class_name: str) -> None:
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.ClassDef):
            bases = [dotted_name(b) for b in child.bases]
            facts.classes[child.name] = [b for b in bases if b not in ("?",)]
            _collect_functions(child, facts, prefix=child.name,
                               class_name=child.name)
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}.{child.name}" if prefix else child.name
            fn = FunctionFacts(qualname=qualname, name=child.name,
                               lineno=child.lineno,
                               column=child.col_offset + 1,
                               class_name=class_name)
            _extract_body_facts(child, fn)
            facts.functions.append(fn)
            # Nested defs become their own facts; their bodies are not
            # re-attributed to the outer function.
            _collect_functions(child, facts, prefix=qualname, class_name="")


def _walk_own_body(func: ast.AST) -> Iterable[ast.AST]:
    """Walk a function's body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_fresh_container(node: ast.AST) -> bool:
    """Literal/constructor expressions that mint a function-owned object."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.Tuple, ast.ListComp,
                         ast.DictComp, ast.SetComp, ast.GeneratorExp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in {"list", "dict", "set", "tuple", "sorted",
                                 "defaultdict", "OrderedDict", "Counter",
                                 "deque"})


def _locally_minted_names(func: ast.AST) -> Set[str]:
    """Names bound to containers the function built itself.

    Mutating these is never an engine-state mutation even when the name
    collides with :data:`ENGINE_OBJECT_NAMES` (an exporter's local
    ``alarms = []`` accumulator, say) — the object cannot be engine-owned.
    Loop variables and parameters stay borrowed: iterating engine data
    binds engine objects.
    """
    owned: Set[str] = set()
    for node in _walk_own_body(func):
        if not isinstance(node, ast.Assign):
            continue
        if not _is_fresh_container(node.value):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                owned.add(target.id)
    return owned


def _extract_body_facts(func: ast.AST, fn: FunctionFacts) -> None:
    set_names = _set_bound_names(func)
    owned = _locally_minted_names(func)
    for node in _walk_own_body(func):
        if isinstance(node, ast.Call):
            chain = dotted_name(node.func)
            fn.calls.append(CallSite(chain=chain, line=node.lineno,
                                     column=node.col_offset + 1))
            _record_call_effects(node, chain, fn, owned)
            # tuple(some_set) / list(some_set) reaches ordered output too.
            if (isinstance(node.func, ast.Name)
                    and node.func.id in ("tuple", "list")
                    and len(node.args) == 1):
                _record_set_iteration(node.args[0], set_names, fn)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                _record_mutation_effect(target, node, fn, owned)
        elif isinstance(node, ast.For):
            _record_set_iteration(node.iter, set_names, fn)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                               ast.DictComp)):
            for gen in node.generators:
                _record_set_iteration(gen.iter, set_names, fn)


def _record_call_effects(node: ast.Call, chain: str, fn: FunctionFacts,
                         owned: Set[str]) -> None:
    parts = chain.split(".")
    if chain in _WALL_CLOCK_CALLS:
        fn.effects.append(Effect(WALL_CLOCK, f"{chain}()", node.lineno,
                                 node.col_offset + 1))
    elif (len(parts) == 2 and parts[0] == "random"
            and parts[1] in _GLOBAL_RNG_CALLS):
        fn.effects.append(Effect(GLOBAL_RNG, f"{chain}()", node.lineno,
                                 node.col_offset + 1))
    # Container-mutator or store-mutator call on an engine-owned chain.
    if (len(parts) >= 2 and parts[-1] in _MUTATOR_METHODS
            and parts[0] != "self" and parts[0] not in owned
            and any(p in ENGINE_OBJECT_NAMES for p in parts[:-1])):
        fn.effects.append(Effect(STATE_MUTATION, f"{chain}(...)",
                                 node.lineno, node.col_offset + 1))


def _record_mutation_effect(target: ast.AST, node: ast.AST,
                            fn: FunctionFacts, owned: Set[str]) -> None:
    if not isinstance(target, (ast.Attribute, ast.Subscript)):
        return
    parts: List[str] = []
    current = target
    while True:
        if isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Name):
            parts.append(current.id)
            break
        else:
            return
    chain = list(reversed(parts))
    if chain[0] == "self" or chain[0] in owned or len(chain) < 2:
        return  # an object's own (or locally built) state is its business
    if chain[0] in ENGINE_OBJECT_NAMES:
        fn.effects.append(Effect(
            STATE_MUTATION, f"{'.'.join(chain)} = ...", node.lineno,
            getattr(node, "col_offset", 0) + 1))


def _record_set_iteration(it: ast.AST, set_names: Set[str],
                          fn: FunctionFacts) -> None:
    if _is_set_expr(it, set_names):
        fn.effects.append(Effect(
            SET_ITERATION, "iteration over an unordered set", it.lineno,
            it.col_offset + 1))


# ----------------------------------------------------------------------
# The index
# ----------------------------------------------------------------------

class ProjectIndex:
    """Symbol table + resolved call graph over a set of module facts."""

    def __init__(self, modules: Sequence[ModuleFacts]):
        self.modules: List[ModuleFacts] = list(modules)
        #: full qualified name -> (module facts, function facts)
        self.functions: Dict[str, Tuple[ModuleFacts, FunctionFacts]] = {}
        #: class full name -> (module facts, base chains)
        self.classes: Dict[str, Tuple[ModuleFacts, List[str]]] = {}
        self._suffix_cache: Dict[str, Optional[str]] = {}
        for mod in self.modules:
            for fn in mod.functions:
                self.functions[f"{mod.module_name}.{fn.qualname}"] = (mod, fn)
            for cls, bases in mod.classes.items():
                self.classes[f"{mod.module_name}.{cls}"] = (mod, bases)
        #: resolved edges: caller full name -> sorted callee full names
        self.edges: Dict[str, List[str]] = {}
        self._resolve_all()

    # -- resolution ----------------------------------------------------
    def _resolve_all(self) -> None:
        for mod in self.modules:
            for fn in mod.functions:
                caller = f"{mod.module_name}.{fn.qualname}"
                targets: Set[str] = set()
                for call in fn.calls:
                    resolved = self.resolve_call(mod, fn, call.chain)
                    if resolved is not None:
                        targets.add(resolved)
                self.edges[caller] = sorted(targets)

    def resolve_call(self, mod: ModuleFacts, fn: FunctionFacts,
                     chain: str) -> Optional[str]:
        """Resolve a raw call chain to a known function's full name."""
        parts = chain.split(".")
        if not parts or parts[0] in ("?", "()"):
            return None
        root = parts[0]
        if root == "self" and fn.class_name and len(parts) == 2:
            return self._resolve_method(mod, fn.class_name, parts[1])
        if len(parts) == 1:
            local = f"{mod.module_name}.{root}"
            if local in self.functions:
                return local
            target = mod.imports.get(root)
            return self._by_suffix(target) if target else None
        if root in mod.imports:
            dotted = ".".join([mod.imports[root]] + parts[1:])
            return self._by_suffix(dotted)
        if root in mod.classes:
            return self._resolve_method(mod, root, parts[-1]) \
                if len(parts) == 2 else None
        return None

    def _resolve_method(self, mod: ModuleFacts, class_name: str,
                        method: str) -> Optional[str]:
        seen: Set[str] = set()
        queue = deque([(mod, class_name)])
        while queue:
            cur_mod, cur_cls = queue.popleft()
            full_cls = f"{cur_mod.module_name}.{cur_cls}"
            if full_cls in seen:
                continue
            seen.add(full_cls)
            candidate = f"{full_cls}.{method}"
            if candidate in self.functions:
                return candidate
            entry = self.classes.get(full_cls)
            if entry is None:
                continue
            base_mod, bases = entry
            for base in bases:
                resolved = self._resolve_class(base_mod, base)
                if resolved is not None:
                    queue.append(resolved)
        return None

    def _resolve_class(self, mod: ModuleFacts,
                       chain: str) -> Optional[Tuple[ModuleFacts, str]]:
        parts = chain.split(".")
        root = parts[0]
        if chain in mod.classes or root in mod.classes:
            return mod, root if root in mod.classes else chain
        target = mod.imports.get(root)
        if target is None:
            return None
        dotted = ".".join([target] + parts[1:])
        full = self._class_by_suffix(dotted)
        if full is None:
            return None
        cls_mod, _ = self.classes[full]
        return cls_mod, full[len(cls_mod.module_name) + 1:]

    def _by_suffix(self, dotted: Optional[str]) -> Optional[str]:
        if not dotted:
            return None
        if dotted in self._suffix_cache:
            return self._suffix_cache[dotted]
        result = None
        if dotted in self.functions:
            result = dotted
        else:
            matches = [name for name in self.functions
                       if name.endswith("." + dotted)]
            if len(matches) == 1:
                result = matches[0]
        self._suffix_cache[dotted] = result
        return result

    def _class_by_suffix(self, dotted: str) -> Optional[str]:
        if dotted in self.classes:
            return dotted
        matches = [name for name in self.classes
                   if name.endswith("." + dotted)]
        return matches[0] if len(matches) == 1 else None

    # -- queries -------------------------------------------------------
    def function(self, full_name: str) -> Optional[FunctionFacts]:
        entry = self.functions.get(full_name)
        return entry[1] if entry else None

    def module_of(self, full_name: str) -> Optional[ModuleFacts]:
        entry = self.functions.get(full_name)
        return entry[0] if entry else None

    def reachable_from(self, entry: str) -> Dict[str, List[str]]:
        """BFS closure from one function: reached name -> call path.

        The path starts at ``entry`` and ends at the reached function;
        deterministic because edges are sorted and BFS is FIFO.
        """
        paths: Dict[str, List[str]] = {entry: [entry]}
        queue = deque([entry])
        while queue:
            current = queue.popleft()
            for callee in self.edges.get(current, ()):
                if callee not in paths:
                    paths[callee] = paths[current] + [callee]
                    queue.append(callee)
        return paths

    def emitted_trigger_kinds(self) -> Set[str]:
        """Trigger kinds (``internal``/``external``) minted anywhere.

        Detected from raw call chains so that unresolved constructor-style
        calls (``TriggerContext.internal_trigger``) still count.
        """
        kinds: Set[str] = set()
        for mod in self.modules:
            for fn in mod.functions:
                for call in fn.calls:
                    leaf = call.chain.rsplit(".", 1)[-1]
                    kind = _TRIGGER_MINTERS.get(leaf)
                    if kind is not None:
                        kinds.add(kind)
        return kinds

    def is_suppressed(self, mod: ModuleFacts, rule_id: str,
                      line: int) -> bool:
        rules = mod.suppressions.get(line)
        return rules is not None and ("*" in rules or rule_id in rules)


def build_project_index(
        facts: Iterable[ModuleFacts]) -> ProjectIndex:
    """Assemble module facts (fresh or cache-thawed) into an index."""
    return ProjectIndex(sorted(facts, key=lambda m: m.path))
