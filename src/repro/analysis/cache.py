"""Content-hash keyed result cache for incremental analysis.

The analyzer's cost is parsing + rule visits, both pure functions of
(file contents, analyzer version). The cache keys each file by the SHA-1 of
its bytes and stores the per-module findings *and* the extracted
:class:`~repro.analysis.project_index.ModuleFacts`, so a warm run rebuilds
the whole project index — and re-runs the cross-module X-rules, which are
cheap — without re-parsing a single unchanged file.

The whole cache is invalidated when the analyzer itself changes: the header
records a fingerprint hashed over the source bytes of every module in
``repro.analysis``, so editing a rule never serves stale results. A corrupt
or incompatible cache file is silently ignored (it is only ever an
optimization).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.project_index import ModuleFacts

#: Default cache location (relative to the invocation cwd, like reports).
DEFAULT_CACHE_PATH = ".jury-analysis-cache.json"

_CACHE_VERSION = 1

_analyzer_fingerprint: Optional[str] = None


def content_hash(source: str) -> str:
    return hashlib.sha1(source.encode("utf-8")).hexdigest()


def analyzer_fingerprint() -> str:
    """Hash over the analysis package's own sources (cache invalidation)."""
    global _analyzer_fingerprint
    if _analyzer_fingerprint is None:
        digest = hashlib.sha1()
        package_dir = Path(__file__).parent
        for path in sorted(package_dir.glob("*.py")):
            digest.update(path.name.encode("utf-8"))
            try:
                digest.update(path.read_bytes())
            except OSError:
                continue
        _analyzer_fingerprint = digest.hexdigest()
    return _analyzer_fingerprint


class AnalysisCache:
    """Per-file (findings, facts) results keyed by content hash."""

    def __init__(self, path: str = DEFAULT_CACHE_PATH):
        self.path = path
        self._entries: Dict[str, dict] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str = DEFAULT_CACHE_PATH) -> "AnalysisCache":
        """Load a cache file; any problem yields an empty (fresh) cache."""
        cache = cls(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except (OSError, ValueError):
            return cache
        if (not isinstance(raw, dict)
                or raw.get("version") != _CACHE_VERSION
                or raw.get("analyzer") != analyzer_fingerprint()):
            return cache
        files = raw.get("files")
        if isinstance(files, dict):
            cache._entries = files
        return cache

    def get(self, display: str,
            file_hash: str) -> Optional[Tuple[List[Finding],
                                              Optional[ModuleFacts]]]:
        """Cached (findings, facts) for a file, or ``None`` on miss."""
        entry = self._entries.get(display)
        if not isinstance(entry, dict) or entry.get("hash") != file_hash:
            self.misses += 1
            return None
        try:
            findings = [Finding.from_dict(f) for f in entry["findings"]]
            raw_facts = entry.get("facts")
            facts = ModuleFacts.from_dict(raw_facts) if raw_facts else None
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings, facts

    def put(self, display: str, file_hash: str, findings: List[Finding],
            facts: Optional[ModuleFacts]) -> None:
        self._entries[display] = {
            "hash": file_hash,
            "findings": [f.to_dict() for f in findings],
            "facts": facts.to_dict() if facts is not None else None,
        }
        self._dirty = True

    # ------------------------------------------------------------------
    def write(self) -> None:
        """Persist atomically; write failures are ignored (cache is advisory)."""
        if not self._dirty:
            return
        payload = {
            "version": _CACHE_VERSION,
            "analyzer": analyzer_fingerprint(),
            "files": self._entries,
        }
        tmp_path = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_path, self.path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:  # jury: ignore[H403] — best-effort tmp cleanup
                pass
        else:
            self._dirty = False
