"""D-rules: sources of nondeterminism in controller / app code.

JURY's consensus step compares the primary's externalized actions against
``k`` shadow re-executions; any divergence source — wall-clock reads, the
process-global RNG, ``id()``-derived values, unordered set iteration that
reaches emitted output, threads — turns honest executions into
false-positive CONSENSUS_MISMATCH alarms (or, worse, masks real T1 faults
as "non-deterministic application logic", §IV-C). These rules flag the
divergence source at its origin, before it ever reaches the validator.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.findings import Severity
from repro.analysis.registry import ModuleContext, Rule, dotted_name, register

#: Wall-clock and process-clock reads. ``sim.now`` is the only legitimate
#: clock in replicated code: simulated time is part of the replicated state.
_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today", "date.today",
}

#: Module-level ``random.*`` draws share one process-global, unseeded-by-us
#: generator. Seeded instances (``random.Random(seed)``, ``sim.fork_rng``)
#: are the sanctioned alternative and are not flagged.
_GLOBAL_RNG_CALLS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "getrandbits", "randbytes",
}

_THREAD_CALLS = {
    "threading.Thread", "threading.Timer",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
    "ThreadPoolExecutor", "ProcessPoolExecutor",
    "multiprocessing.Process", "multiprocessing.Pool",
    "os.fork",
}


@register
class WallClockRule(Rule):
    """D101 — wall-clock reads diverge across replicas and re-executions."""

    rule_id = "D101"
    severity = Severity.ERROR
    summary = "wall-clock read in replicated code"
    rationale = ("T1/T3: replicas re-executing a trigger at different wall "
                 "times externalize different values; use sim.now, which is "
                 "replicated state.")

    def check(self, module: ModuleContext) -> Iterator[tuple]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _WALL_CLOCK_CALLS:
                yield (node, f"call to {name}() reads the wall clock; "
                             "replicated executions must use simulated time "
                             "(sim.now)")


@register
class GlobalRandomRule(Rule):
    """D102 — draws from the process-global ``random`` module."""

    rule_id = "D102"
    severity = Severity.ERROR
    summary = "unseeded global random draw"
    rationale = ("T1: the global RNG's state differs per process, so shadow "
                 "executions diverge from the primary; draw from a seeded "
                 "random.Random forked per component (sim.fork_rng).")

    def check(self, module: ModuleContext) -> Iterator[tuple]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                    and func.attr in _GLOBAL_RNG_CALLS):
                yield (node, f"random.{func.attr}() draws from the "
                             "process-global RNG; use a seeded "
                             "random.Random instance (sim.fork_rng)")


@register
class IdentityKeyRule(Rule):
    """D103 — ``id()`` values are process-dependent and reusable."""

    rule_id = "D103"
    severity = Severity.ERROR
    summary = "id()-derived value"
    rationale = ("T1: id() returns a process-specific address that differs "
                 "across replicas and can be reused after garbage "
                 "collection; key on a stable identifier instead.")

    def check(self, module: ModuleContext) -> Iterator[tuple]:
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "id"
                    and len(node.args) == 1):
                yield (node, "id() produces process-dependent, reusable "
                             "values; use a stable identifier (e.g. a "
                             "name or allocated uid) as the key")


@register
class SetIterationRule(Rule):
    """D104 — iterating a set in arbitrary order.

    Set iteration order depends on insertion history and hash seeding; when
    the iteration's results feed emitted messages or cache writes, replicas
    that learned the same facts in a different order externalize different
    responses. Only locally-provable set expressions are flagged (names
    bound to set constructors/literals in the same function, or inline set
    expressions); wrapping the iteration in ``sorted()`` resolves it.
    """

    rule_id = "D104"
    severity = Severity.WARNING
    summary = "unordered set iteration"
    rationale = ("T1: set iteration order is insertion/hash dependent; "
                 "sorted() makes the order replica-independent.")

    def check(self, module: ModuleContext) -> Iterator[tuple]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            set_names = _set_bound_names(func)
            for node in ast.walk(func):
                iterators = []
                if isinstance(node, ast.For):
                    iterators.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.GeneratorExp, ast.DictComp)):
                    iterators.extend(gen.iter for gen in node.generators)
                elif (isinstance(node, ast.Call)
                      and isinstance(node.func, ast.Name)
                      and node.func.id in ("tuple", "list")
                      and len(node.args) == 1):
                    iterators.append(node.args[0])
                for it in iterators:
                    if _is_set_expr(it, set_names):
                        yield (it, "iteration over a set has "
                                   "insertion/hash-dependent order; wrap "
                                   "in sorted() if the order can reach "
                                   "emitted output")


def _set_bound_names(func: ast.AST) -> Set[str]:
    """Names assigned a provably-set value anywhere in ``func``."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            if _builds_set(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if _builds_set(node.value) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _builds_set(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return True
        if name.split(".")[-1] in ("union", "intersection", "difference",
                                   "symmetric_difference"):
            return True
    return False


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, ast.Name):
        return node.id in set_names
    return _builds_set(node)


@register
class ThreadSpawnRule(Rule):
    """D105 — spawning OS threads/processes in simulated components."""

    rule_id = "D105"
    severity = Severity.WARNING
    summary = "thread/process spawn"
    rationale = ("T1/T3: preemptive scheduling interleaves cache writes "
                 "nondeterministically across replicas; use the simulator's "
                 "event loop (sim.schedule) for concurrency.")

    def check(self, module: ModuleContext) -> Iterator[tuple]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _THREAD_CALLS:
                yield (node, f"{name}() introduces preemptive scheduling; "
                             "use the deterministic event loop "
                             "(sim.schedule) instead")
