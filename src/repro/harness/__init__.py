"""Experiment harness: builds clusters, drives workloads, reports figures."""

from repro.harness.bench import (
    compare as bench_validator_compare,
    synthetic_validation_workload,
    write_payload,
)
from repro.harness.experiment import (
    DetectionStats,
    Experiment,
    ThroughputPoint,
    build_experiment,
)
from repro.harness.figures import ascii_cdf, ascii_series
from repro.harness.metrics import cdf_points, mbps, percentile
from repro.harness.reporting import format_series, format_table

__all__ = [
    "DetectionStats",
    "ascii_cdf",
    "ascii_series",
    "bench_validator_compare",
    "Experiment",
    "ThroughputPoint",
    "build_experiment",
    "cdf_points",
    "format_series",
    "format_table",
    "mbps",
    "percentile",
    "synthetic_validation_workload",
    "write_payload",
]
