"""Experiment harness: builds clusters, drives workloads, reports figures."""

from repro.harness.bench import (
    compare as bench_validator_compare,
    compare_backends as bench_backends_compare,
    compare_observability as bench_observability_compare,
    synthetic_validation_workload,
    write_payload,
)
from repro.harness.experiment import (
    DetectionStats,
    Experiment,
    ThroughputPoint,
    build_experiment,
)
from repro.harness.figures import ascii_cdf, ascii_series
from repro.harness.metrics import cdf_points, mbps, percentile
from repro.harness.reporting import (
    CommandResult,
    format_series,
    format_table,
    render_result,
)

__all__ = [
    "CommandResult",
    "DetectionStats",
    "ascii_cdf",
    "ascii_series",
    "bench_backends_compare",
    "bench_observability_compare",
    "bench_validator_compare",
    "Experiment",
    "ThroughputPoint",
    "build_experiment",
    "cdf_points",
    "format_series",
    "format_table",
    "mbps",
    "percentile",
    "render_result",
    "synthetic_validation_workload",
    "write_payload",
]
