"""Experiment harness: builds clusters, drives workloads, reports figures."""

from repro.harness.experiment import (
    DetectionStats,
    Experiment,
    ThroughputPoint,
    build_experiment,
)
from repro.harness.figures import ascii_cdf, ascii_series
from repro.harness.metrics import cdf_points, mbps, percentile
from repro.harness.reporting import format_series, format_table

__all__ = [
    "DetectionStats",
    "ascii_cdf",
    "ascii_series",
    "Experiment",
    "ThroughputPoint",
    "build_experiment",
    "cdf_points",
    "format_series",
    "format_table",
    "mbps",
    "percentile",
]
