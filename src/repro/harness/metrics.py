"""Statistical helpers for the evaluation harness."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def percentile(samples: Sequence[float], q: float) -> float:
    """The q-th percentile (q in [0, 1]) by linear interpolation.

    Interpolates between the closest ranks (the "linear" / "inclusive"
    method, numpy's default) rather than nearest-rank: ``q=0`` is the
    minimum, ``q=1`` the maximum, and intermediate quantiles fall between
    adjacent order statistics.
    """
    if not samples:
        raise ValueError("percentile of no samples")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1]: {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    # Interpolate as base + delta*f: exact when neighbours are equal and
    # monotone in q, unlike the a*(1-f) + b*f form under floating point.
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def cdf_points(samples: Sequence[float], points: int = 100) -> List[Tuple[float, float]]:
    """(value, cumulative probability) pairs for plotting a CDF."""
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    if n <= points:
        return [(value, (index + 1) / n) for index, value in enumerate(ordered)]
    step = n / points
    result = []
    for i in range(points):
        index = min(n - 1, int((i + 1) * step) - 1)
        result.append((ordered[index], (index + 1) / n))
    return result


def mbps(total_bytes: int, window_ms: float) -> float:
    """Megabits per second over a simulated window."""
    if window_ms <= 0:
        return 0.0
    return total_bytes * 8.0 / (window_ms * 1000.0)
