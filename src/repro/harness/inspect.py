"""Cluster and JURY health inspection.

Summarizes the live state of an experiment — per-controller pipeline
statistics, store convergence, JURY module activity, validator health — as
structured dictionaries and rendered tables. Used by the CLI and handy in
notebooks/REPLs when poking at a simulation.
"""

from __future__ import annotations

from typing import Dict, List

from repro.harness.experiment import Experiment
from repro.harness.reporting import format_table


def controller_summary(experiment: Experiment) -> List[Dict]:
    """One record per controller replica."""
    cluster = experiment.cluster
    rows = []
    for controller in cluster.controllers.values():
        mastered = sum(1 for master in cluster.mastership.values()
                       if master == controller.id)
        rows.append({
            "id": controller.id,
            "alive": controller.alive,
            "mastered_switches": mastered,
            "packet_ins": controller.packet_ins_received,
            "packet_ins_dropped": controller.packet_ins_dropped,
            "flow_mods_sent": controller.flow_mods_sent,
            "egress_drops": controller.flow_mods_dropped_egress,
            "pipeline_backlog": controller.pipeline.backlog,
            "utilization": round(controller.utilization(), 3),
            "store_writes": controller.store.writes,
        })
    return rows


def store_convergence(experiment: Experiment) -> Dict:
    """Are the replicas' views equal right now?"""
    digests = {cid: controller.store.state_digest()
               for cid, controller in experiment.cluster.controllers.items()}
    distinct = len(set(digests.values()))
    return {
        "replicas": len(digests),
        "distinct_views": distinct,
        "converged": distinct == 1,
    }


def jury_summary(experiment: Experiment) -> Dict:
    """Validator and module health."""
    if experiment.jury is None:
        return {"deployed": False}
    validator = experiment.validator
    return {
        "deployed": True,
        "k": experiment.jury.k,
        "responses_received": validator.responses_received,
        "triggers_decided": validator.triggers_decided,
        "triggers_alarmed": validator.triggers_alarmed,
        "pending": validator.pending_count,
        "false_positive_rate": round(validator.false_positive_rate(), 5),
        "shadow_triggers": experiment.jury.total_shadow_triggers(),
        "timeout_ms": round(validator.timeout.current(), 1),
    }


def render_report(experiment: Experiment) -> str:
    """A full human-readable health report."""
    sections = []
    rows = [[r["id"], "up" if r["alive"] else "DOWN", r["mastered_switches"],
             r["packet_ins"], r["flow_mods_sent"], r["pipeline_backlog"],
             f"{r['utilization']:.2f}"]
            for r in controller_summary(experiment)]
    sections.append(format_table(
        "Controllers",
        ["id", "state", "switches", "packet_ins", "flow_mods",
         "backlog", "util"], rows))
    convergence = store_convergence(experiment)
    sections.append(
        f"Store: {convergence['replicas']} replicas, "
        f"{convergence['distinct_views']} distinct view(s) "
        f"({'converged' if convergence['converged'] else 'diverged'})")
    jury = jury_summary(experiment)
    if jury["deployed"]:
        sections.append(
            f"JURY: k={jury['k']}, {jury['triggers_decided']} decided, "
            f"{jury['triggers_alarmed']} alarmed, {jury['pending']} pending, "
            f"FP={100 * jury['false_positive_rate']:.3f}%, "
            f"timeout={jury['timeout_ms']} ms")
    else:
        sections.append("JURY: not deployed")
    return "\n\n".join(sections)
