"""Experiment container and measurement helpers.

:meth:`repro.api.Jury.experiment` assembles a simulator, topology,
controller cluster (ONOS- or ODL-like), optional JURY deployment, and
northbound API the way the paper's testbed does; :class:`Experiment` then
drives warmup/measurement windows and extracts the quantities the figures
plot — detection-time distributions, cluster FLOW_MOD/PACKET_IN/PACKET_OUT
rates, and byte-counter based network overheads. The old keyword seam
``build_experiment(...)`` was removed (PR 7) and now raises with the
replacement spelled out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.controllers.cluster import ControllerCluster
from repro.controllers.northbound import NorthboundApi
from repro.core.deployment import JuryDeployment
from repro.errors import WorkloadError
from repro.harness.metrics import percentile
from repro.net.topology import Topology
from repro.sim.simulator import Simulator


@dataclass
class DetectionStats:
    """Summary of the validator's detection-time distribution."""

    samples: List[float]
    timeouts: int

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def median(self) -> float:
        return percentile(self.samples, 0.5) if self.samples else 0.0

    @property
    def p95(self) -> float:
        return percentile(self.samples, 0.95) if self.samples else 0.0

    @property
    def p99(self) -> float:
        return percentile(self.samples, 0.99) if self.samples else 0.0


@dataclass
class ThroughputPoint:
    """Measured cluster rates over one window."""

    window_ms: float
    packet_ins: int
    flow_mods: int
    packet_outs: int

    @property
    def packet_in_rate_per_s(self) -> float:
        return self.packet_ins * 1000.0 / self.window_ms

    @property
    def flow_mod_rate_per_s(self) -> float:
        return self.flow_mods * 1000.0 / self.window_ms

    @property
    def packet_out_rate_per_s(self) -> float:
        return self.packet_outs * 1000.0 / self.window_ms


class Experiment:
    """A wired-up cluster plus measurement utilities."""

    def __init__(self, sim: Simulator, topology: Topology,
                 cluster: ControllerCluster, store,
                 jury: Optional[JuryDeployment] = None,
                 northbound: Optional[NorthboundApi] = None):
        self.sim = sim
        self.topology = topology
        self.cluster = cluster
        self.store = store
        self.jury = jury
        self.northbound = northbound
        self._snapshot: Dict[str, int] = {}
        self._window_start = 0.0

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def warmup(self, discovery_ms: float = 2500.0, arp: bool = True) -> None:
        """Let topology discovery settle, then teach hosts to the cluster."""
        self.cluster.start()
        self.sim.run(until=self.sim.now + discovery_ms)
        if arp:
            hosts = self.topology.host_list()
            for index, host in enumerate(hosts):
                target = hosts[(index + 1) % len(hosts)]
                self.sim.schedule(index * 2.0, host.send_arp_request, target.ip)
            self.sim.run(until=self.sim.now + 2 * len(hosts) + 500.0)

    def begin_window(self) -> None:
        """Mark the start of a measurement window (snapshots counters)."""
        self._window_start = self.sim.now
        switches = self.topology.switches.values()
        self._snapshot = {
            "packet_ins": sum(s.packet_ins_sent for s in switches),
            "flow_mods": sum(s.flow_mods_received for s in switches),
            "packet_outs": sum(s.packet_outs_received for s in switches),
            "store_bytes": self.store.counter.bytes,
        }
        if self.jury is not None:
            self._snapshot["replication_bytes"] = self.jury.replication_counter.bytes
            self._snapshot["validator_bytes"] = self.jury.validator_counter.bytes

    def run(self, duration_ms: float) -> None:
        """Advance the simulation by ``duration_ms``."""
        self.sim.run(until=self.sim.now + duration_ms)

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def throughput(self) -> ThroughputPoint:
        """Cluster rates since :meth:`begin_window`."""
        if not self._snapshot:
            raise WorkloadError("call begin_window() before throughput()")
        window = self.sim.now - self._window_start
        switches = self.topology.switches.values()
        return ThroughputPoint(
            window_ms=window,
            packet_ins=sum(s.packet_ins_sent for s in switches)
            - self._snapshot["packet_ins"],
            flow_mods=sum(s.flow_mods_received for s in switches)
            - self._snapshot["flow_mods"],
            packet_outs=sum(s.packet_outs_received for s in switches)
            - self._snapshot["packet_outs"],
        )

    def overhead_mbps(self) -> Dict[str, float]:
        """Inter-controller and JURY traffic since :meth:`begin_window`."""
        if not self._snapshot:
            raise WorkloadError("call begin_window() before overhead_mbps()")
        window = self.sim.now - self._window_start
        if window <= 0:
            return {}
        def rate(total, key):
            return (total - self._snapshot.get(key, 0)) * 8.0 / (window * 1000.0)
        result = {"inter_controller": rate(self.store.counter.bytes, "store_bytes")}
        if self.jury is not None:
            result["replication"] = rate(
                self.jury.replication_counter.bytes, "replication_bytes")
            result["validator"] = rate(
                self.jury.validator_counter.bytes, "validator_bytes")
        return result

    def detection_stats(self, full_consensus_only: bool = True,
                        since_ms: Optional[float] = None) -> DetectionStats:
        """Detection-time distribution from the validator.

        ``full_consensus_only`` keeps triggers for which the complete
        ``2k+2`` response set arrived — the paper's "time taken to reach
        consensus on controller actions"; timer-bound decisions (triggers
        that externalized nothing) are excluded but counted.
        """
        if self.jury is None:
            raise WorkloadError("detection stats need a JURY deployment")
        results = self.jury.validator.results
        if since_ms is not None:
            results = [r for r in results if r.decided_at >= since_ms]
        external = [r for r in results if r.external]
        if full_consensus_only:
            samples = [r.detection_ms for r in external if not r.timed_out]
        else:
            samples = [r.detection_ms for r in external]
        return DetectionStats(
            samples=samples,
            timeouts=sum(1 for r in external if r.timed_out))

    @property
    def validator(self):
        if self.jury is None:
            raise WorkloadError("no JURY deployment in this experiment")
        return self.jury.validator


def build_experiment(*args, **kwargs) -> Experiment:
    """Removed keyword seam; the config path replaced it (PR 7)."""
    from repro.errors import ValidationError
    raise ValidationError(
        "build_experiment(...) was removed; build a JuryConfig and call "
        "Jury.experiment(config) (or Jury.build(config) for the deployment)")
