"""ASCII figure rendering for benchmark output.

The paper's figures are CDFs and rate curves; these helpers render
comparable plots as plain text so benchmark output is self-contained in a
terminal or a CI log.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.harness.metrics import cdf_points


def ascii_cdf(series: Dict[str, Sequence[float]], width: int = 60,
              height: int = 12, x_label: str = "ms") -> str:
    """Render one or more CDFs as an ASCII plot.

    ``series`` maps a label to its samples; each series gets a marker
    character. The x-axis spans [0, max sample across series].
    """
    markers = "ox+*#@%&"
    populated = {label: values for label, values in series.items() if values}
    if not populated:
        return "(no samples)"
    x_max = max(max(values) for values in populated.values())
    if x_max <= 0:
        return "(degenerate samples)"
    grid = [[" "] * width for _ in range(height)]
    for index, (label, values) in enumerate(populated.items()):
        marker = markers[index % len(markers)]
        for x, y in cdf_points(values, points=width):
            column = min(width - 1, int(x / x_max * (width - 1)))
            row = min(height - 1, int((1.0 - y) * (height - 1)))
            grid[row][column] = marker
    lines = ["1.0 |" + "".join(row) for row in grid[:1]]
    for row in grid[1:-1]:
        lines.append("    |" + "".join(row))
    lines.append("0.0 +" + "-" * width)
    lines.append(f"     0{' ' * (width - len(f'{x_max:.0f}') - 1)}"
                 f"{x_max:.0f} {x_label}")
    legend = "  ".join(f"{markers[i % len(markers)]}={label}"
                       for i, label in enumerate(populated))
    lines.append("     " + legend)
    return "\n".join(lines)


def ascii_series(points: Sequence[Tuple[float, float]], width: int = 60,
                 height: int = 12, x_label: str = "x",
                 y_label: str = "y") -> str:
    """Render one (x, y) series as an ASCII scatter/line plot."""
    if not points:
        return "(no points)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_max = max(xs) or 1.0
    y_max = max(ys) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        column = min(width - 1, int(x / x_max * (width - 1)))
        row = min(height - 1, int((1.0 - y / y_max) * (height - 1)))
        grid[row][column] = "o"
    lines = [f"{y_max:>8.0f} |" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append("         |" + "".join(row))
    lines.append("       0 +" + "-" * width)
    lines.append(f"          0{' ' * (width - len(f'{x_max:.0f}') - 1)}"
                 f"{x_max:.0f} {x_label}")
    lines.append(f"          ({y_label} vs {x_label})")
    return "\n".join(lines)
