"""Validator benchmark harness: sequential vs. sharded pipeline.

Generates a seeded synthetic response workload (full ``2k+2`` external
response sets with evolving state digests and a configurable rate of
consensus faults), drives it through the sequential
:class:`~repro.core.validator.Validator` and the sharded
:class:`~repro.core.pipeline.ValidationPipeline`, and emits the comparison
as the ``BENCH_validator_pipeline.json`` payload — the first point of the
repo's perf trajectory (see ``docs/pipeline.md`` for how to read it).
:func:`compare_backends` sweeps the pipeline's execution backends
(serial/threads/processes; see ``docs/backends.md``) over one workload and
emits ``BENCH_backends.json``.

Wall-clock reads are confined to this module and the CLI/benchmark entry
points that call it; simulation code stays deterministic (analyzer rule
D101).
"""

from __future__ import annotations

import gc
import json
import random
import time
from typing import Callable, Dict, List, Tuple

from repro.core.alarms import canonical_alarm_stream
from repro.core.pipeline import ValidationPipeline
from repro.core.responses import Response, ResponseKind
from repro.core.timeouts import StaticTimeout
from repro.core.validator import Validator
from repro.harness.metrics import percentile
from repro.sim.simulator import Simulator

#: Distinct flows to cycle through — entries repeat, as production flow
#: tables do, which is what makes the pipeline's memo caches honest.
_FLOW_VARIANTS = 50
#: Triggers per digest step: replica views advance slowly relative to the
#: trigger rate, so digests repeat across consecutive triggers.
_DIGEST_STRIDE = 10


def _entries(flow: int) -> Tuple[Tuple, Tuple]:
    cache = (("cache", "FlowsDB", ("flow", 1, ("ip", flow), 100), "create",
              (("actions", (("output", 2),)), ("command", "add"), ("dpid", 1),
               ("match", ("ip", flow)), ("priority", 100),
               ("state", "pending_add"))),)
    net = (("flow_mod", 1, "add", ("ip", flow), (("output", 2),), 100),)
    return cache, net


def synthetic_validation_workload(
        triggers: int, k: int = 6, seed: int = 0,
        fault_rate: float = 0.02) -> List[List[Response]]:
    """``triggers`` full external response sets, in arrival order.

    Each trigger contributes ``2k + 2`` responses: the primary's network
    write and cache update, plus a cache relay and a shadow replica result
    from each of ``k`` secondaries. With probability ``fault_rate`` one
    secondary's cache relay is corrupted — a T1-style incorrect replicated
    state that must alarm (and forces the consensus slow path).
    """
    rng = random.Random(seed)
    workload: List[List[Response]] = []
    for index in range(triggers):
        tau = ("ext", index)
        cache, net = _entries(rng.randrange(_FLOW_VARIANTS))
        combined = (cache, tuple(sorted(set(net), key=repr)))
        digest = (("c1", index // _DIGEST_STRIDE),)
        faulty = rng.random() < fault_rate
        responses = [
            Response("c1", tau, ResponseKind.NETWORK_WRITE, net,
                     state_digest=digest),
            Response("c1", tau, ResponseKind.CACHE_UPDATE, cache,
                     state_digest=digest, origin="c1"),
        ]
        for s in range(k):
            sid = f"s{s}"
            relayed = cache
            if faulty and s == 0:
                corrupted_cache, _ = _entries(_FLOW_VARIANTS + index)
                relayed = corrupted_cache
            responses.append(Response(sid, tau, ResponseKind.CACHE_UPDATE,
                                      relayed, state_digest=digest,
                                      origin="c1"))
            responses.append(Response(sid, tau, ResponseKind.REPLICA_RESULT,
                                      combined, tainted=True,
                                      state_digest=digest,
                                      primary_hint="c1"))
        workload.append(responses)
    return workload


def _timed_run(make_validator: Callable[[Simulator], object],
               workload: List[List[Response]],
               chunk: int = 64,
               drain: bool = False) -> Tuple[object, float, List[float]]:
    """Ingest the workload; returns (validator, wall_s, per-trigger ms)."""
    sim = Simulator(seed=0)
    validator = make_validator(sim)
    samples: List[float] = []
    start = time.perf_counter()  # jury: ignore[D101]
    for base in range(0, len(workload), chunk):
        group = workload[base:base + chunk]
        t0 = time.perf_counter()  # jury: ignore[D101]
        for responses in group:
            ingest = validator.ingest
            for response in responses:
                ingest(response)
        if drain:
            validator.drain()
        elapsed = time.perf_counter() - t0  # jury: ignore[D101]
        samples.append(elapsed * 1000.0 / len(group))
    wall = time.perf_counter() - start  # jury: ignore[D101]
    return validator, wall, samples


def _summary(wall_s: float, samples: List[float],
             triggers: int) -> Dict[str, float]:
    return {
        "ops_per_s": triggers / wall_s if wall_s > 0 else 0.0,
        "p50_ms": percentile(samples, 0.5),
        "p99_ms": percentile(samples, 0.99),
        "wall_s": wall_s,
    }


def compare(triggers: int = 20_000, k: int = 6, seed: int = 0,
            fault_rate: float = 0.02, shards: int = 4,
            queue_capacity: int = 1024, batch_max: int = 512,
            chunk: int = 64) -> Dict[str, object]:
    """Run the sequential-vs-pipeline comparison; returns the JSON payload.

    Both validators consume the *same* workload objects, so the canonical
    alarm streams are directly comparable — their equality is part of the
    payload (a benchmark that trades correctness for speed must fail loud).
    """
    workload = synthetic_validation_workload(triggers, k=k, seed=seed,
                                             fault_rate=fault_rate)
    timeout_ms = 10_000.0

    sequential, seq_wall, seq_samples = _timed_run(
        lambda sim: Validator(sim, k, timeout=StaticTimeout(timeout_ms),
                              keep_results=False),
        workload, chunk=chunk)
    pipe, pipe_wall, pipe_samples = _timed_run(
        lambda sim: ValidationPipeline(
            sim, k, shards=shards, timeout=StaticTimeout(timeout_ms),
            keep_results=False, queue_capacity=queue_capacity,
            batch_max=batch_max),
        workload, chunk=chunk, drain=True)

    seq_summary = _summary(seq_wall, seq_samples, triggers)
    pipe_summary = _summary(pipe_wall, pipe_samples, triggers)
    speedup = (pipe_summary["ops_per_s"] / seq_summary["ops_per_s"]
               if seq_summary["ops_per_s"] else 0.0)
    return {
        "benchmark": "validator_pipeline",
        "workload": {
            "triggers": triggers,
            "k": k,
            "seed": seed,
            "fault_rate": fault_rate,
            "responses_per_trigger": 2 * k + 2,
        },
        "sequential": {
            **seq_summary,
            "decided": sequential.triggers_decided,
            "alarmed": sequential.triggers_alarmed,
        },
        "pipeline": {
            "shards": shards,
            "queue_capacity": queue_capacity,
            "batch_max": batch_max,
            **pipe_summary,
            "decided": pipe.triggers_decided,
            "alarmed": pipe.triggers_alarmed,
            "stats": pipe.stats.snapshot(),
        },
        "speedup": speedup,
        "alarm_streams_identical": (
            canonical_alarm_stream(sequential.alarms)
            == canonical_alarm_stream(pipe.alarms)),
    }


def compare_observability(triggers: int = 20_000, k: int = 6, seed: int = 0,
                          fault_rate: float = 0.02, shards: int = 4,
                          reps: int = 3, chunk: int = 64,
                          obs_sample: int = 64) -> Dict[str, object]:
    """Measure the observability layer's cost on the sharded pipeline.

    Three variants consume the same workload: the no-op path twice
    (``off`` / ``off2`` — identical code, so their paired delta is the
    noise floor that bounds the tracing-off overhead) and the fully
    instrumented path (``on`` — tracer plus metrics registry). Variants are
    interleaved across ``reps`` repetitions and the best wall time per
    variant is kept, which cancels cache/frequency drift that sequential
    runs would fold into the comparison.

    The payload also carries the equivalence evidence: canonical alarm
    streams must be identical with observability on and off, and the
    trace's span ledger must conserve (ingest spans == responses fed).

    Overhead percentages compare the best-of-reps *median per-chunk* time
    rather than whole-run wall clock: the median discards scheduler
    hiccups that a single wall number folds in, which is what keeps the
    ``off_delta_pct`` gate usable on shared CI runners. The one exception
    is ``sampled_overhead_pct``, which is the *median of paired per-rep
    best-chunk ratios*: the sampled delta is µs-scale, and unpaired
    noise on either side of a global ratio would swing it by several
    points per run.

    A fourth interleaved variant, ``sampled``, runs the *full* stack
    (tracer + metrics + forensics + health) head-sampled at
    1-in-``obs_sample`` with the always-on flight recorder attached. This
    is the production-shaped configuration the ≤25% overhead gate watches
    (``sampled_overhead_pct``); its alarm stream must still match the
    uninstrumented run byte-for-byte (``alarm_streams_identical_sampled``)
    because sampling gates only telemetry, never checks.

    The unsampled ``full`` variant (tracer + metrics + alarm forensics +
    replica health) runs twice after the timed reps, best kept. Its
    overhead number is regression-gated against the committed payload
    (``bench obs --baseline``) rather than an absolute bound, and its
    alarm stream must still match the uninstrumented run byte-for-byte
    (``alarm_streams_identical_full``).
    """
    from repro.obs.diagnose import AlarmForensics
    from repro.obs.health import ReplicaHealthTracker
    from repro.obs.metrics import MetricsRegistry, collect_pipeline
    from repro.obs.recorder import FlightRecorder
    from repro.obs.sampling import HeadSampler
    from repro.obs.trace import INGEST, Tracer

    workload = synthetic_validation_workload(triggers, k=k, seed=seed,
                                             fault_rate=fault_rate)
    timeout_ms = 10_000.0

    def run(tracer=None, metrics=None, forensics=None, health=None,
            sampler=None, recorder=None):
        return _timed_run(
            lambda sim: ValidationPipeline(
                sim, k, shards=shards, timeout=StaticTimeout(timeout_ms),
                keep_results=False, tracer=tracer, metrics=metrics,
                forensics=forensics, health=health,
                sampler=sampler, recorder=recorder),
            workload, chunk=chunk, drain=True)

    def full_stack_kwargs():
        return {"tracer": Tracer(), "metrics": MetricsRegistry(),
                "forensics": AlarmForensics(),
                "health": ReplicaHealthTracker()}

    best_wall: Dict[str, float] = {}
    best_p50: Dict[str, float] = {}
    rep_min: Dict[str, List[float]] = {}
    finals: Dict[str, object] = {}
    variants = ("off", "off2", "on", "sampled")
    for rep in range(max(1, reps)):
        # Rotate the variant order each rep and collect garbage before each
        # timed region: otherwise the span-heavy "on" run leaves allocator
        # pressure that lands on whichever variant runs next, biasing the
        # off-vs-off2 paired delta the gate watches.
        shift = rep % len(variants)
        order = variants[shift:] + variants[:shift]
        for variant in order:
            gc.collect()
            if variant == "on":
                engine, wall, samples = run(tracer=Tracer(),
                                            metrics=MetricsRegistry())
            elif variant == "sampled":
                engine, wall, samples = run(
                    sampler=HeadSampler(obs_sample),
                    recorder=FlightRecorder(), **full_stack_kwargs())
            else:
                engine, wall, samples = run()
            p50 = percentile(samples, 0.5)
            if p50 < best_p50.get(variant, float("inf")):
                best_p50[variant] = p50
                finals[variant] = engine
            rep_min.setdefault(variant, []).append(min(samples))
            if variant not in best_wall or wall < best_wall[variant]:
                best_wall[variant] = wall
    best = best_wall
    best_min = {v: min(mins) for v, mins in rep_min.items()}

    # Paired per-rep ratios for the sampled gate: within one rep the four
    # variants run back-to-back, so a transient slowdown (another process,
    # frequency scaling) lands on both sides of the ratio; the median
    # across reps then discards the reps it didn't. Comparing global
    # minima instead lets one noisy window inflate the sampled side while
    # the off side keeps a fast chunk from a quiet window.
    sampled_ratios = sorted(
        rep_min["sampled"][r] / min(rep_min["off"][r], rep_min["off2"][r])
        for r in range(len(rep_min["sampled"])))
    sampled_overhead = (percentile(sampled_ratios, 0.5) - 1.0) * 100.0

    # Unsampled full stack: two runs, best kept — single-run numbers are
    # too noisy for the --baseline regression gate to trust.
    full_engine, full_wall, full_p50 = None, float("inf"), float("inf")
    for _ in range(2):
        gc.collect()
        engine, wall, samples = run(**full_stack_kwargs())
        p50 = percentile(samples, 0.5)
        if p50 < full_p50:
            full_engine, full_wall, full_p50 = engine, wall, p50

    def pct(slow: float, fast: float) -> float:
        return (slow - fast) / fast * 100.0 if fast > 0 else 0.0

    on_engine = finals["on"]
    tracer = on_engine.tracer
    registry = on_engine.metrics
    collect_pipeline(registry, on_engine)
    stage_counts = tracer.stage_counts()
    responses_fed = triggers * (2 * k + 2)
    return {
        "benchmark": "observability_overhead",
        "workload": {
            "triggers": triggers,
            "k": k,
            "seed": seed,
            "fault_rate": fault_rate,
            "shards": shards,
            "reps": reps,
            "obs_sample": obs_sample,
        },
        "off": {"wall_s": best["off"], "p50_chunk_ms": best_p50["off"],
                "min_chunk_ms": best_min["off"],
                "ops_per_s": triggers / best["off"]},
        "off2": {"wall_s": best["off2"], "p50_chunk_ms": best_p50["off2"],
                 "min_chunk_ms": best_min["off2"],
                 "ops_per_s": triggers / best["off2"]},
        "on": {"wall_s": best["on"], "p50_chunk_ms": best_p50["on"],
               "ops_per_s": triggers / best["on"],
               "spans": len(tracer),
               "metrics_series": len(registry.snapshot())},
        "sampled": {
            "wall_s": best["sampled"],
            "p50_chunk_ms": best_p50["sampled"],
            "min_chunk_ms": best_min["sampled"],
            "ops_per_s": triggers / best["sampled"],
            "obs_sample": obs_sample,
            "spans": len(finals["sampled"].tracer),
            "flight_events": len(finals["sampled"].recorder),
            "flight_dumps": len(finals["sampled"].recorder.dumps),
        },
        "full": {"wall_s": full_wall, "p50_chunk_ms": full_p50,
                 "ops_per_s": triggers / full_wall if full_wall > 0 else 0.0,
                 "explained_alarms": full_engine.forensics.alarm_count,
                 "health_response_events":
                     full_engine.health.response_events},
        # Best-of-2, still noisier than the interleaved numbers: gated
        # only relatively, against the committed payload (--baseline).
        "full_overhead_pct": pct(full_p50,
                                 min(best_p50["off"], best_p50["off2"])),
        # The production-shaped gate: full stack head-sampled 1-in-N plus
        # the always-on flight recorder must stay within the CI bound.
        # Unlike the order-of-magnitude overheads above, this delta is a
        # handful of µs per trigger, so it uses the median of paired
        # per-rep best-chunk ratios (see sampled_ratios above) instead of
        # a ratio of global medians, which swings by several points per
        # run on a shared machine.
        "sampled_overhead_pct": sampled_overhead,
        # |off - off2| / min on median chunk time: the noise floor bounding
        # the no-op path cost (two identical binaries should tie).
        "off_delta_pct": abs(pct(max(best_p50["off"], best_p50["off2"]),
                                 min(best_p50["off"], best_p50["off2"]))),
        "trace_overhead_pct": pct(best_p50["on"],
                                  min(best_p50["off"], best_p50["off2"])),
        "alarm_streams_identical": (
            canonical_alarm_stream(finals["off"].alarms)
            == canonical_alarm_stream(on_engine.alarms)),
        "alarm_streams_identical_full": (
            canonical_alarm_stream(finals["off"].alarms)
            == canonical_alarm_stream(full_engine.alarms)),
        "alarm_streams_identical_sampled": (
            canonical_alarm_stream(finals["off"].alarms)
            == canonical_alarm_stream(finals["sampled"].alarms)),
        "span_conservation": {
            "responses_fed": responses_fed,
            "ingest_spans": stage_counts.get(INGEST, 0),
            "holds": stage_counts.get(INGEST, 0) == responses_fed,
        },
        "stage_counts": stage_counts,
    }


def compare_backends(triggers: int = 20_000, k: int = 6, seed: int = 0,
                     fault_rate: float = 0.02, shards: int = 4,
                     backends: Tuple[str, ...] = ("serial", "threads",
                                                  "processes"),
                     chunk: int = 2048) -> Dict[str, object]:
    """Sweep execution backends over one workload; returns the payload.

    Every backend consumes the *same* workload objects through the same
    sharded pipeline shape, so throughput numbers are directly comparable
    and the canonical alarm streams must match byte-for-byte
    (``alarm_streams_identical`` — a backend that trades determinism for
    speed must fail loud). Speedups are relative to the ``serial``
    backend; ``cpu_count`` is recorded because the ``processes`` backend
    can only win with >1 CPU, and gates reading this payload must
    condition on it (same contract as :func:`compare_analysis`).

    The chunk is deliberately large: frame backends amortize their
    serialization cost over per-shard batches, so tiny flush groups
    measure pickling overhead instead of pipeline throughput.
    """
    import os

    from repro.core.alarms import canonical_alarm_stream as canonical

    workload = synthetic_validation_workload(triggers, k=k, seed=seed,
                                             fault_rate=fault_rate)
    timeout_ms = 10_000.0

    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity masks
        cpus = os.cpu_count() or 1

    runs: Dict[str, Dict[str, object]] = {}
    streams: Dict[str, bytes] = {}
    for backend in backends:
        gc.collect()
        engine, wall, samples = _timed_run(
            lambda sim, backend=backend: ValidationPipeline(
                sim, k, shards=shards, timeout=StaticTimeout(timeout_ms),
                keep_results=False, backend=backend),
            workload, chunk=chunk, drain=True)
        streams[backend] = canonical(engine.alarms)
        runs[backend] = {
            **_summary(wall, samples, triggers),
            "decided": engine.triggers_decided,
            "alarmed": engine.triggers_alarmed,
        }
        close = getattr(engine, "close", None)
        if close is not None:
            close()

    serial_ops = runs.get("serial", {}).get("ops_per_s", 0.0)
    speedups = {backend: (runs[backend]["ops_per_s"] / serial_ops
                          if serial_ops else 0.0)
                for backend in backends}
    reference = streams[backends[0]]
    return {
        "benchmark": "validator_backends",
        "workload": {
            "triggers": triggers,
            "k": k,
            "seed": seed,
            "fault_rate": fault_rate,
            "responses_per_trigger": 2 * k + 2,
            "shards": shards,
            "chunk": chunk,
        },
        "cpu_count": cpus,
        "backends": runs,
        "speedups": speedups,
        "alarm_streams_identical": all(
            stream == reference for stream in streams.values()),
    }


def compare_analysis(paths: Tuple[str, ...] = ("src/repro",),
                     jobs: int = 4, reps: int = 3,
                     cache_path: str = "") -> Dict[str, object]:
    """Benchmark the static analyzer: cold vs warm vs parallel module phase.

    Three variants over the same tree, best-of-``reps`` wall time each:
    ``cold_jobs1`` (no cache, sequential), ``cold_jobsN`` (no cache,
    ``jobs`` worker processes), and ``warm`` (content-hash cache populated
    by a priming run). All three must produce byte-identical finding lists
    — the cache and the pool are exact optimizations, and the payload
    records that equivalence alongside the speedups.

    ``cpu_count`` is recorded because the parallel speedup is only
    physically possible with >1 CPU; gates reading this payload must
    condition on it.
    """
    import os
    import tempfile

    from repro.analysis.cache import AnalysisCache
    from repro.analysis.engine import analyze_paths as run_analysis

    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity masks
        cpus = os.cpu_count() or 1

    def timed(**kwargs) -> Tuple[float, object]:
        gc.collect()
        t0 = time.perf_counter()  # jury: ignore[D101]
        report = run_analysis(list(paths), **kwargs)
        return time.perf_counter() - t0, report  # jury: ignore[D101]

    def best_of(variant_kwargs) -> Tuple[float, List[float], object]:
        walls: List[float] = []
        report = None
        for _ in range(reps):
            wall, report = timed(**variant_kwargs())
            walls.append(wall)
        return min(walls), walls, report

    own_cache = not cache_path
    if own_cache:
        handle, cache_path = tempfile.mkstemp(suffix=".jury-cache.json")
        os.close(handle)
        os.unlink(cache_path)
    try:
        cold1_best, cold1_walls, cold1_report = best_of(lambda: {})
        coldn_best, coldn_walls, coldn_report = best_of(
            lambda: {"jobs": jobs})
        # Priming run fills the cache; the measured runs are fully warm.
        run_analysis(list(paths), cache=AnalysisCache.load(cache_path))
        warm_best, warm_walls, warm_report = best_of(
            lambda: {"cache": AnalysisCache.load(cache_path)})
    finally:
        if own_cache:
            try:
                os.unlink(cache_path)
            except OSError:  # jury: ignore[H403] — tmp cache may not exist
                pass

    def digest(report) -> List[dict]:
        return [f.to_dict() for f in report.findings]

    identical = (digest(cold1_report) == digest(coldn_report)
                 == digest(warm_report))
    return {
        "paths": list(paths),
        "files_scanned": cold1_report.files_scanned,
        "findings": len(cold1_report.findings),
        "reps": reps,
        "jobs": jobs,
        "cpu_count": cpus,
        "cold_jobs1": {"wall_s": cold1_best, "runs": cold1_walls},
        "cold_jobsN": {"wall_s": coldn_best, "runs": coldn_walls},
        "warm": {"wall_s": warm_best, "runs": warm_walls,
                 "cache_hits": warm_report.cache_hits},
        "warm_speedup": cold1_best / warm_best if warm_best > 0 else 0.0,
        "parallel_speedup": (cold1_best / coldn_best
                             if coldn_best > 0 else 0.0),
        "reports_identical": identical,
    }


def write_payload(payload: Dict[str, object], path: str) -> None:
    """Write a benchmark payload as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
