"""Crash-recovery soak harness: kill a real process, restore, byte-compare.

The differential suites and the fuzz oracle exercise recovery *in
memory* (``run_with_recovery`` abandons an engine object). This harness
closes the remaining gap to the real failure model: a **separate worker
process** runs a long seeded workload with a file-backed
:class:`~repro.core.checkpoint.WriteAheadLog` and periodic on-disk
checkpoints, then ``SIGKILL``-s itself mid-run — no atexit hooks, no
flushing courtesy, exactly what the kernel OOM killer or a power event
would leave behind. The parent then proves two things:

* **Recovery correctness** — load the newest checkpoint artifact, replay
  the WAL tail, resume the not-yet-ingested remainder of the workload,
  and require the canonical alarm stream to be byte-identical to an
  uninterrupted reference run (the ``docs/recovery.md`` contract).
* **Bounded memory** — the worker's peak RSS (``ru_maxrss`` of the
  reaped child) stays under a ceiling, so the checkpoint/WAL machinery
  does not turn a long soak into an unbounded accumulation. The worker
  runs ``keep_results=False`` and schedules traffic through a streaming
  pump (one trigger ahead), so resident state is the validator's
  in-flight window, not the whole workload.

The workload is a *pure function of the trigger index* (CRC-32 of
``"flow:<seed>:<i>"`` picks the flow, ``"fault:<seed>:<i>"`` plants the
~2% consensus faults, arrival times are ``i·spacing + j·delta`` with all
offsets distinct) — so the parent recomputes the exact resume tail
without any channel to the dead worker beyond the checkpoint + WAL.

Wall-clock and process APIs are confined to this harness module
(analyzer rule D101 territory); simulation code stays deterministic.
"""

from __future__ import annotations

import multiprocessing
import os
import resource
import signal
from typing import Dict, List, Optional
from zlib import crc32

from repro.core.alarms import canonical_alarm_stream
from repro.core.checkpoint import (
    Checkpoint,
    WriteAheadLog,
    replay_wal,
    restore_engine,
    wal_last_ingest_time,
    wal_tail,
)
from repro.core.pipeline import ValidationPipeline
from repro.core.responses import Response, ResponseKind
from repro.core.timeouts import StaticTimeout
from repro.core.validator import Validator
from repro.errors import CheckpointError
# The soak reuses the bench workload's entry shapes so its triggers are
# indistinguishable from the benchmarked ones — only the draw changes
# (indexed CRC-32 instead of a sequential PRNG) to make any suffix
# recomputable from its first index.
from repro.harness.bench import _DIGEST_STRIDE, _FLOW_VARIANTS, _entries
from repro.sim.simulator import Simulator
from repro.workloads.recorder import RecordedResponse

#: One trigger in ``FAULT_STRIDE`` carries a corrupted cache relay.
FAULT_STRIDE = 50

CHECKPOINT_FILE = "CHECKPOINT_sample.json"
WAL_FILE = "soak-wal.bin"


# ----------------------------------------------------------------------
# Indexed workload (pure function of the trigger index)
# ----------------------------------------------------------------------
def trigger_time_ms(index: int, spacing_ms: float) -> float:
    """Arrival time of trigger ``index``'s first response."""
    return index * spacing_ms


def soak_trigger(index: int, k: int, seed: int,
                 spacing_ms: float) -> List[RecordedResponse]:
    """Trigger ``index``'s full ``2k+2`` response set, timestamped.

    Response ``j`` arrives at ``index*spacing + j*delta`` with
    ``delta = spacing/(2k+4)``: every response in the whole soak has a
    distinct timestamp, so "strictly after the WAL's newest ingest" is an
    exact resume boundary — no same-instant tie to mis-replay.
    """
    tau = ("ext", index)
    flow = crc32(f"flow:{seed}:{index}".encode()) % _FLOW_VARIANTS
    faulty = crc32(f"fault:{seed}:{index}".encode()) % FAULT_STRIDE == 0
    cache, net = _entries(flow)
    combined = (cache, tuple(sorted(set(net), key=repr)))
    digest = (("c1", index // _DIGEST_STRIDE),)
    responses = [
        Response("c1", tau, ResponseKind.NETWORK_WRITE, net,
                 state_digest=digest),
        Response("c1", tau, ResponseKind.CACHE_UPDATE, cache,
                 state_digest=digest, origin="c1"),
    ]
    for s in range(k):
        sid = f"s{s}"
        relayed = cache
        if faulty and s == 0:
            corrupted_cache, _ = _entries(_FLOW_VARIANTS + index)
            relayed = corrupted_cache
        responses.append(Response(sid, tau, ResponseKind.CACHE_UPDATE,
                                  relayed, state_digest=digest, origin="c1"))
        responses.append(Response(sid, tau, ResponseKind.REPLICA_RESULT,
                                  combined, tainted=True, state_digest=digest,
                                  primary_hint="c1"))
    base = trigger_time_ms(index, spacing_ms)
    delta = spacing_ms / (2 * k + 4)
    return [RecordedResponse(time_ms=base + j * delta, response=response)
            for j, response in enumerate(responses)]


def soak_stream(triggers: int, k: int, seed: int,
                spacing_ms: float) -> List[RecordedResponse]:
    """The whole soak workload, flat, in arrival order."""
    records: List[RecordedResponse] = []
    for index in range(triggers):
        records.extend(soak_trigger(index, k, seed, spacing_ms))
    return records


# ----------------------------------------------------------------------
# Engine construction (one shape for worker, reference, and twin)
# ----------------------------------------------------------------------
def _build_engine(sim: Simulator, params: Dict[str, object],
                  backend: Optional[str] = None):
    """The soak's engine: ``keep_results=False`` keeps RSS honest."""
    timeout = StaticTimeout(float(params["timeout_ms"]))
    shards = params.get("shards")
    if shards is None:
        return Validator(sim, int(params["k"]), timeout=timeout,
                         keep_results=False)
    return ValidationPipeline(
        sim, int(params["k"]), shards=int(shards), timeout=timeout,
        keep_results=False, flush_interval_ms=0.0,
        backend=backend if backend is not None
        else str(params.get("backend") or "serial"))


# ----------------------------------------------------------------------
# Worker side (the process that dies)
# ----------------------------------------------------------------------
def _hard_kill() -> None:
    """``kill -9`` ourselves from inside a simulation event.

    SIGKILL is not catchable: no finally blocks, no WAL flush beyond the
    per-append one, no backend worker reaping — the honest crash.
    """
    os.kill(os.getpid(), signal.SIGKILL)  # jury: ignore[D101]


def _pump(sim: Simulator, engine, params: Dict[str, object],
          index: int) -> None:
    """Schedule trigger ``index`` now, then re-arm for ``index+1``.

    Streaming one trigger ahead keeps the event heap (and therefore the
    worker's RSS) independent of the soak duration.
    """
    triggers = int(params["triggers"])
    if index >= triggers:
        return
    spacing = float(params["spacing_ms"])
    for record in soak_trigger(index, int(params["k"]),
                               int(params["seed"]), spacing):
        sim.schedule_at(record.time_ms, engine.ingest, record.response)
    if index + 1 < triggers:
        sim.schedule_at(trigger_time_ms(index + 1, spacing),
                        _pump, sim, engine, params, index + 1)


def _soak_worker(params: Dict[str, object], workdir: str) -> None:
    """Child-process entry: run the soak, checkpointing, until the kill.

    Every auto-checkpoint is atomically saved to ``CHECKPOINT_sample.json``
    (newest wins; ``Checkpoint.save`` is write-temp-then-rename, so the
    kill can never leave a torn artifact) and every ingest hits the
    file-backed WAL before it can influence a decision.
    """
    sim = Simulator(seed=0)
    engine = _build_engine(sim, params)
    wal = WriteAheadLog(os.path.join(workdir, WAL_FILE))
    engine.wal = wal
    engine.checkpoint_every = int(params["checkpoint_every"])
    checkpoint_path = os.path.join(workdir, CHECKPOINT_FILE)
    engine.on_checkpoint = lambda cp: cp.save(checkpoint_path)
    # Baseline at t=0: a kill inside the first interval still restores.
    engine.checkpoint().save(checkpoint_path)

    kill_at_ms = params.get("kill_at_ms")
    if kill_at_ms is not None:
        # Scheduled before the pump: at an exactly-coinciding timestamp
        # the kill fires first (FIFO), so the WAL's newest ingest stays
        # strictly earlier than the kill instant.
        sim.schedule_at(float(kill_at_ms), _hard_kill)
    sim.schedule_at(0.0, _pump, sim, engine, params, 0)
    sim.run(until=float(params["duration_ms"]) + float(params["settle_ms"]))
    drain = getattr(engine, "drain", None)
    if drain is not None:
        drain()
    close = getattr(engine, "close", None)
    if close is not None:
        close()
    wal.close()


# ----------------------------------------------------------------------
# Parent side (kill, recover, verify)
# ----------------------------------------------------------------------
def run_soak(duration_s: float = 60.0,
             kill_at_s: Optional[float] = 30.0,
             checkpoint_every: int = 200,
             rate_per_s: float = 200.0,
             k: int = 3,
             shards: Optional[int] = None,
             backend: Optional[str] = None,
             timeout_ms: float = 250.0,
             seed: int = 0,
             max_rss_mb: float = 512.0,
             workdir: str = ".",
             settle_ms: float = 10_000.0) -> Dict[str, object]:
    """Run the whole soak and return the JSON-able verdict payload.

    ``duration_s``/``kill_at_s`` are **simulated** seconds — wall time is
    however fast the machine chews through the event heap. ``ok`` in the
    returned payload is the single pass/fail bit; ``failures`` lists the
    individual broken guarantees for the report.
    """
    if kill_at_s is not None and not 0.0 < kill_at_s < duration_s:
        raise CheckpointError(
            f"--kill-at {kill_at_s} must fall inside (0, {duration_s}) "
            f"— killing before the first trigger or after the stream ends "
            f"soaks nothing")
    triggers = int(duration_s * rate_per_s)
    if triggers < 1:
        raise CheckpointError(
            f"duration {duration_s}s at {rate_per_s}/s yields no triggers")
    params: Dict[str, object] = {
        "triggers": triggers,
        "k": k,
        "seed": seed,
        "shards": shards,
        "backend": backend,
        "timeout_ms": timeout_ms,
        "spacing_ms": 1000.0 / rate_per_s,
        "duration_ms": duration_s * 1000.0,
        "settle_ms": settle_ms,
        "checkpoint_every": checkpoint_every,
        "kill_at_ms": None if kill_at_s is None else kill_at_s * 1000.0,
    }

    # The real OS process is the test subject: its SIGKILL death is the
    # failure the harness exists to recover from. Inside the worker the
    # workload itself stays on the deterministic event loop.
    worker = multiprocessing.Process(  # jury: ignore[D105]
        target=_soak_worker, args=(params, workdir), name="jury-soak-worker")
    worker.start()
    worker.join()
    # Linux ru_maxrss is KiB; measured before the parent spawns anything
    # else so the reading is the soak worker's peak, not a bystander's.
    rss_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss

    failures: List[str] = []
    expected_exit = (-int(signal.SIGKILL)
                     if params["kill_at_ms"] is not None else 0)
    if worker.exitcode != expected_exit:
        failures.append(
            f"worker exited {worker.exitcode}, expected {expected_exit} "
            f"({'SIGKILL' if expected_exit else 'clean exit'})")
    rss_limit_kb = max_rss_mb * 1024.0
    if rss_kb > rss_limit_kb:
        failures.append(
            f"worker peak RSS {rss_kb / 1024.0:.1f} MiB exceeds the "
            f"--max-rss-mb {max_rss_mb:g} ceiling")

    checkpoint_path = os.path.join(workdir, CHECKPOINT_FILE)
    checkpoint = Checkpoint.load(checkpoint_path)
    wal_records = WriteAheadLog.read(os.path.join(workdir, WAL_FILE))

    payload: Dict[str, object] = {
        "command": "soak",
        "triggers": triggers,
        "duration_s": duration_s,
        "kill_at_s": kill_at_s,
        "rate_per_s": rate_per_s,
        "k": k,
        "shards": shards,
        "backend": backend if shards is not None else None,
        "checkpoint_every": checkpoint_every,
        "worker_exitcode": worker.exitcode,
        "worker_peak_rss_kb": rss_kb,
        "max_rss_mb": max_rss_mb,
        "checkpoint": {
            "path": checkpoint_path,
            "sha256": checkpoint.sha256,
            "body_bytes": len(checkpoint.body),
            "sim_now_ms": checkpoint.meta.get("sim_now"),
            "triggers_decided": checkpoint.meta.get("triggers_decided"),
        },
        "wal_records": len(wal_records),
    }

    # Recovery twin: restore the on-disk artifact, replay the WAL tail,
    # then resume the workload strictly after the newest logged ingest —
    # recomputed from the trigger index, never received from the corpse.
    recovered = restore_engine(checkpoint, backend="serial")
    tail = wal_tail(wal_records, checkpoint.sha256)
    replayed, last = replay_wal(recovered, tail)
    boundary = wal_last_ingest_time(wal_records)
    stream = soak_stream(triggers, k, seed, float(params["spacing_ms"]))
    resumed = 0
    for record in stream:
        if boundary is not None and record.time_ms <= boundary:
            continue
        recovered.sim.schedule_at(record.time_ms, recovered.ingest,
                                  record.response)
        resumed += 1
        if record.time_ms > last:
            last = record.time_ms
    recovered.sim.run(until=last + settle_ms)
    drain = getattr(recovered, "drain", None)
    if drain is not None:
        drain()
    payload["wal_tail_replayed"] = replayed
    payload["resumed_records"] = resumed

    # Uninterrupted reference: same engine shape, same stream, no kill.
    reference_sim = Simulator(seed=0)
    reference = _build_engine(reference_sim, params, backend="serial")
    for record in stream:
        reference_sim.schedule_at(record.time_ms, reference.ingest,
                                  record.response)
    reference_sim.run(until=stream[-1].time_ms + settle_ms)
    drain = getattr(reference, "drain", None)
    if drain is not None:
        drain()

    recovered_stream = canonical_alarm_stream(recovered.alarms)
    reference_stream = canonical_alarm_stream(reference.alarms)
    payload["recovered"] = {
        "decided": recovered.triggers_decided,
        "alarms": len(recovered.alarms),
        "alarm_stream_bytes": len(recovered_stream),
    }
    payload["reference"] = {
        "decided": reference.triggers_decided,
        "alarms": len(reference.alarms),
        "alarm_stream_bytes": len(reference_stream),
    }
    payload["alarm_streams_identical"] = \
        recovered_stream == reference_stream
    if recovered_stream != reference_stream:
        failures.append(
            "recovered alarm stream diverges from the uninterrupted "
            "reference (checkpoint+WAL recovery is not byte-identical)")
    if recovered.triggers_decided != reference.triggers_decided:
        failures.append(
            f"recovered engine decided {recovered.triggers_decided} "
            f"triggers, reference decided {reference.triggers_decided}")
    close = getattr(recovered, "close", None)
    if close is not None:
        close()

    payload["failures"] = failures
    payload["ok"] = not failures
    return payload
