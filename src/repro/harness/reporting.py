"""Plain-text table/series formatting for benchmark output.

Benchmarks print the same rows and series the paper's tables and figures
report; these helpers keep that output consistent and diff-friendly for
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence]) -> str:
    """Fixed-width table with a title rule."""
    rendered_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title: str, points: Iterable[Tuple], x_label: str = "x",
                  y_label: str = "y") -> str:
    """Two-column series (one figure line) as text."""
    rows = [(x, y) for x, y in points]
    return format_table(title, [x_label, y_label], rows)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
