"""Plain-text table/series formatting and the CLI's unified result model.

Benchmarks print the same rows and series the paper's tables and figures
report; these helpers keep that output consistent and diff-friendly for
EXPERIMENTS.md.

Every ``jury-repro`` subcommand returns a :class:`CommandResult` — the
human rendering, the JSON payload, and the exit code in one structure —
and ``main`` pushes it through the single :func:`render_result` reporter.
That is what makes ``--format json`` uniform across subcommands: the JSON
output *is* ``result.data``, no per-command printing.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass
class CommandResult:
    """The structured outcome of one CLI subcommand.

    ``human`` is the pre-rendered text report; ``data`` is the JSON-able
    payload (printed verbatim under ``--format json``); ``errors`` go to
    stderr in either format. ``ok`` is a convenience constructor for the
    zero-exit case.
    """

    command: str
    exit_code: int = 0
    human: str = ""
    data: Dict[str, object] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)

    @classmethod
    def ok(cls, command: str, human: str = "",
           data: Optional[Dict[str, object]] = None) -> "CommandResult":
        """A successful result."""
        return cls(command=command, human=human, data=data or {})

    @classmethod
    def usage_error(cls, command: str, message: str) -> "CommandResult":
        """An argument/usage failure (exit code 2, message on stderr)."""
        return cls(command=command, exit_code=2, errors=[message])

    @property
    def failed(self) -> bool:
        return self.exit_code != 0


def render_result(result: CommandResult, fmt: str = "human",
                  out=None, err=None) -> int:
    """Render one :class:`CommandResult` and return its exit code."""
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    if fmt == "json":
        print(json.dumps(result.data, indent=2, sort_keys=True,
                         default=str), file=out)
    elif result.human:
        print(result.human, file=out)
    for message in result.errors:
        print(message, file=err)
    return result.exit_code


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence]) -> str:
    """Fixed-width table with a title rule."""
    rendered_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title: str, points: Iterable[Tuple], x_label: str = "x",
                  y_label: str = "y") -> str:
    """Two-column series (one figure line) as text."""
    rows = [(x, y) for x, y in points]
    return format_table(title, [x_label, y_label], rows)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
