"""Fault injection: every fault the paper demonstrates, plus generic classes.

Real faults (§III-B and §VII-A1):

* :class:`~repro.faults.onos_faults.OnosDatabaseLockFault` (T1)
* :class:`~repro.faults.onos_faults.OnosMasterElectionFault` (T1)
* :class:`~repro.faults.odl_faults.OdlFlowModDropFault` (T2)
* :class:`~repro.faults.odl_faults.OdlIncorrectFlowModFault` (T3)

Synthetic faults (§VII-A1):

* :class:`~repro.faults.synthetic.LinkFailureFault` (T1)
* :class:`~repro.faults.synthetic.UndesirableFlowModFault` (T2)
* :class:`~repro.faults.synthetic.FaultyProactiveFault` (T3)

Appendix faults:

* :class:`~repro.faults.odl_faults.FlowDeletionFailureFault` (T1)
* :class:`~repro.faults.onos_faults.LinkDetectionInconsistencyFault` (T1)
* :class:`~repro.faults.odl_faults.FlowInstantiationFailureFault` (T2)
* :class:`~repro.faults.onos_faults.PendingAddFault` (T2)

Generic distributed-system failure classes (§III-B):
crash, response omission, timing, and response corruption —
:mod:`repro.faults.generic`.
"""

from repro.faults.base import FaultClass, FaultScenario, ScenarioResult, run_scenario
from repro.faults.combination import CombinationScenario, run_combination
from repro.faults.generic import (
    CrashFault,
    ResponseCorruptionFault,
    ResponseOmissionFault,
    StoreDesyncFault,
    TimingFault,
)
from repro.faults.injector import FaultDriver
from repro.faults.odl_faults import (
    FlowDeletionFailureFault,
    FlowInstantiationFailureFault,
    OdlFlowModDropFault,
    OdlIncorrectFlowModFault,
)
from repro.faults.onos_faults import (
    LinkDetectionInconsistencyFault,
    OnosDatabaseLockFault,
    OnosMasterElectionFault,
    PendingAddFault,
)
from repro.faults.synthetic import (
    FaultyProactiveFault,
    LinkFailureFault,
    UndesirableFlowModFault,
)

__all__ = [
    "CombinationScenario",
    "CrashFault",
    "FaultClass",
    "FaultDriver",
    "FaultScenario",
    "FaultyProactiveFault",
    "FlowDeletionFailureFault",
    "FlowInstantiationFailureFault",
    "LinkDetectionInconsistencyFault",
    "LinkFailureFault",
    "OdlFlowModDropFault",
    "OdlIncorrectFlowModFault",
    "OnosDatabaseLockFault",
    "OnosMasterElectionFault",
    "PendingAddFault",
    "ResponseCorruptionFault",
    "ResponseOmissionFault",
    "ScenarioResult",
    "run_combination",
    "StoreDesyncFault",
    "TimingFault",
    "UndesirableFlowModFault",
]
