"""Fault combinations.

§VII-A1: "We wrote a driver program to inject *combination of the faults*
in different parts of the network". :class:`CombinationScenario` composes
independent scenarios — injected together, triggered together — and counts
as detected only when *every* member fault was detected with the right
attribution.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.faults.base import FaultClass, FaultScenario, ScenarioResult, run_scenario
from repro.harness.experiment import Experiment


class CombinationScenario(FaultScenario):
    """Several simultaneous faults in different parts of the network."""

    fault_class = FaultClass.T1  # mixed; per-member classes still apply

    def __init__(self, scenarios: Sequence[FaultScenario]):
        if not scenarios:
            raise ValueError("a combination needs at least one scenario")
        self.scenarios = list(scenarios)
        self.name = "combo(" + "+".join(s.name for s in self.scenarios) + ")"
        # Any member's expected reasons count toward the combined match set.
        reasons = []
        for scenario in self.scenarios:
            reasons.extend(scenario.expected_reasons)
        self.expected_reasons = tuple(dict.fromkeys(reasons))
        self.expected_offender = None  # judged per member instead

    def inject(self, experiment: Experiment) -> None:
        for scenario in self.scenarios:
            scenario.inject(experiment)

    def trigger(self, experiment: Experiment) -> None:
        for scenario in self.scenarios:
            scenario.trigger(experiment)

    def settle_ms(self, experiment: Experiment) -> float:
        return max(s.settle_ms(experiment) for s in self.scenarios)


def run_combination(experiment: Experiment,
                    scenarios: Sequence[FaultScenario]) -> List[ScenarioResult]:
    """Inject and trigger all scenarios at once; judge each member.

    Returns one :class:`ScenarioResult` per member scenario, each evaluated
    against the member's own expected reasons and offender over the shared
    alarm stream.
    """
    combined = CombinationScenario(scenarios)
    validator = experiment.validator
    alarms_before = len(validator.alarms)
    combined.inject(experiment)
    trigger_time = experiment.sim.now
    combined.trigger(experiment)
    experiment.run(combined.settle_ms(experiment))

    new_alarms = validator.alarms[alarms_before:]
    results = []
    for scenario in scenarios:
        matching = [
            alarm for alarm in new_alarms
            if (not scenario.expected_reasons
                or alarm.reason in tuple(scenario.expected_reasons))
            and (scenario.expected_offender is None
                 or alarm.offending_controller == scenario.expected_offender)
        ]
        detected = bool(matching)
        detection_ms = None
        if detected:
            first = min(matching, key=lambda a: a.raised_at)
            detection_ms = first.raised_at - trigger_time
        results.append(ScenarioResult(
            scenario=scenario.name,
            detected=detected,
            detection_ms=detection_ms,
            matching_alarms=matching,
            attribution_correct=detected if scenario.expected_offender else None,
            all_alarms=list(new_alarms),
        ))
    return results
